"""Self-instrumentation snapshots of the simulated machine.

LIKWID-style lightweight counters: the machine already counts everything
it does (per-level hits, prefetch hits, DRAM traffic per node, contention
queueing), and :class:`MachineStats` freezes one consistent snapshot of
those counters.  Snapshots subtract (``b - a`` is the activity between
two points in time) and add (accumulate deltas across repeated phases),
which is how ``SimProcess.phase`` attributes machine activity to program
phases and how the throughput benchmark reports simulated-accesses/sec.

Kept dependency-free of :mod:`repro.machine.hierarchy` (which imports
this module); the level names are the same five data sources.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["MachineStats"]

_LEVEL_NAMES = ("L1", "L2", "L3", "LMEM", "RMEM")


@dataclass(frozen=True)
class MachineStats:
    """One immutable snapshot of the machine's self-instrumentation."""

    level_counts: tuple[int, ...] = (0, 0, 0, 0, 0)
    # DRAM accesses by interconnect distance (0 = same node, 1 = same
    # socket / different die, 2 = cross-socket); prices remote DRAM by
    # observed hop distribution instead of a fixed worst case.
    hop_counts: tuple[int, ...] = (0, 0, 0)
    loads: int = 0
    stores: int = 0
    prefetch_hits: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l3_hits: int = 0
    l3_misses: int = 0
    dram_accesses: tuple[int, ...] = ()
    remote_dram_accesses: tuple[int, ...] = ()
    contention_queue_cycles: int = 0
    contention_windows: int = 0

    # -- arithmetic -------------------------------------------------------

    def _merge(self, other: "MachineStats", sign: int) -> "MachineStats":
        kwargs = {}
        for f in fields(self):
            a = getattr(self, f.name)
            b = getattr(other, f.name)
            if isinstance(a, tuple):
                if len(a) != len(b):
                    # Snapshots of differently-sized machines don't combine.
                    raise ValueError(f"mismatched {f.name}: {len(a)} vs {len(b)}")
                kwargs[f.name] = tuple(x + sign * y for x, y in zip(a, b))
            else:
                kwargs[f.name] = a + sign * b
        return MachineStats(**kwargs)

    def __add__(self, other: "MachineStats") -> "MachineStats":
        return self._merge(other, 1)

    def __sub__(self, other: "MachineStats") -> "MachineStats":
        """Delta: activity between snapshot ``other`` and this one."""
        return self._merge(other, -1)

    # -- derived ----------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.loads + self.stores

    @property
    def total_dram(self) -> int:
        return sum(self.dram_accesses)

    @property
    def remote_dram(self) -> int:
        return sum(self.remote_dram_accesses)

    def hit_rate(self, level: int) -> float:
        """Fraction of all accesses served at data-source ``level``."""
        total = self.accesses
        return self.level_counts[level] / total if total else 0.0

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            f.name: list(v) if isinstance(v := getattr(self, f.name), tuple) else v
            for f in fields(self)
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineStats":
        kwargs = {}
        for f in fields(cls):
            if f.name in data:
                v = data[f.name]
                kwargs[f.name] = tuple(v) if isinstance(v, list) else v
        return cls(**kwargs)

    # -- presentation -----------------------------------------------------

    def rows(self) -> list[tuple[str, str]]:
        """(counter, value) rows for ``hpcview info`` / report tables."""
        total = self.accesses
        out: list[tuple[str, str]] = [
            ("accesses", f"{total}"),
            ("loads / stores", f"{self.loads} / {self.stores}"),
        ]
        for lvl, name in enumerate(_LEVEL_NAMES):
            n = self.level_counts[lvl]
            pct = 100.0 * n / total if total else 0.0
            out.append((f"served by {name}", f"{n} ({pct:.1f}%)"))
        out.append(("prefetch hits", f"{self.prefetch_hits}"))
        out.append(("TLB hits / misses", f"{self.tlb_hits} / {self.tlb_misses}"))
        out.append(("L1 hits / misses", f"{self.l1_hits} / {self.l1_misses}"))
        out.append(("L2 hits / misses", f"{self.l2_hits} / {self.l2_misses}"))
        out.append(("L3 hits / misses", f"{self.l3_hits} / {self.l3_misses}"))
        out.append(
            (
                "DRAM accesses per hop",
                " ".join(str(n) for n in self.hop_counts) or "-",
            )
        )
        out.append(("DRAM accesses per node", " ".join(str(n) for n in self.dram_accesses) or "-"))
        out.append(
            (
                "remote DRAM per home node",
                " ".join(str(n) for n in self.remote_dram_accesses) or "-",
            )
        )
        out.append(("contention queue cycles", f"{self.contention_queue_cycles}"))
        out.append(("contention windows", f"{self.contention_windows}"))
        return out
