"""Machine presets mirroring the paper's two testbeds.

Cache/TLB capacities are *scaled down* relative to the real parts by
roughly the same factor as the benchmark working sets, so that the
simulated workloads (10^5-10^6 accesses) exercise the same hierarchy
levels the real runs did.  Latency ratios follow the real machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.machine.contention import ControllerContention
from repro.machine.hierarchy import MemoryHierarchy
from repro.machine.latency import LatencyModel
from repro.machine.topology import Topology

__all__ = [
    "MachineSpec",
    "Machine",
    "power7_spec",
    "power7_node",
    "amd_magnycours_spec",
    "amd_magnycours",
    "intel_ivybridge_spec",
    "intel_ivybridge",
    "tiny_spec",
    "tiny_machine",
    "builtin_specs",
]


@dataclass
class MachineSpec:
    """Everything needed to instantiate a :class:`Machine`."""

    name: str
    sockets: int
    cores_per_socket: int
    smt: int = 1
    numa_per_socket: int = 1
    latency: LatencyModel = field(default_factory=LatencyModel)
    line_bits: int = 6
    page_bits: int = 12
    l1_sets: int = 16
    l1_assoc: int = 4
    l2_sets: int = 64
    l2_assoc: int = 8
    l3_sets: int = 256
    l3_assoc: int = 8
    tlb_sets: int = 8
    tlb_assoc: int = 4
    contention_capacity: int = 64
    contention_max_penalty: int = 400
    contention_unloaded_carry: float = 0.0
    prefetch: bool = True
    sim_engine: str = "auto"  # access_run engine: auto | vector | python
    clock_hz: float = 2.0e9  # converts simulated cycles to reported seconds
    # Optional per-preset boundness-triage thresholds.  None means "use
    # the engine defaults" (0.25 / 0.4 / 0.2 — the paper's §5 gates);
    # a preset modelling a machine with, say, a much flatter remote
    # penalty can loosen the NUMA gate here and the formula registry
    # picks it up as a per-architecture constant override.
    memory_bound_fraction: float | None = None
    numa_bound_remote: float | None = None
    tlb_pressure: float | None = None

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError("clock_hz must be positive")

    @property
    def n_numa_nodes(self) -> int:
        return self.sockets * self.numa_per_socket

    @property
    def avg_remote_hops(self) -> float:
        """Mean interconnect distance to a *remote* NUMA node, assuming a
        uniform remote-access distribution over the topology.

        ``Topology.hops`` distances: same-socket/different-die nodes are
        1 hop, cross-socket nodes are 2.  From any node there are
        ``numa_per_socket - 1`` one-hop peers and the rest are two hops,
        so symmetric one-node-per-socket machines average exactly 2.0
        while multi-die packages (e.g. Magny-Cours) sit below it.  Used
        as the remote-DRAM pricing fallback when no observed per-hop
        counts are available.
        """
        n = self.n_numa_nodes
        if n <= 1:
            return 0.0
        one_hop = self.numa_per_socket - 1
        two_hop = n - 1 - one_hop
        return (one_hop + 2 * two_hop) / (n - 1)


class Machine:
    """A fully instantiated simulated machine."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.topology = Topology(
            sockets=spec.sockets,
            cores_per_socket=spec.cores_per_socket,
            smt=spec.smt,
            numa_per_socket=spec.numa_per_socket,
        )
        contention = ControllerContention(
            n_nodes=self.topology.n_numa_nodes,
            capacity_per_window=spec.contention_capacity,
            max_penalty=spec.contention_max_penalty,
            unloaded_carry=spec.contention_unloaded_carry,
        )
        self.hierarchy = MemoryHierarchy(
            self.topology,
            spec.latency,
            line_bits=spec.line_bits,
            page_bits=spec.page_bits,
            l1_sets=spec.l1_sets,
            l1_assoc=spec.l1_assoc,
            l2_sets=spec.l2_sets,
            l2_assoc=spec.l2_assoc,
            l3_sets=spec.l3_sets,
            l3_assoc=spec.l3_assoc,
            tlb_sets=spec.tlb_sets,
            tlb_assoc=spec.tlb_assoc,
            contention=contention,
            prefetch=spec.prefetch,
            engine=spec.sim_engine,
        )

    @property
    def n_threads(self) -> int:
        return self.topology.n_threads

    @property
    def n_numa_nodes(self) -> int:
        return self.topology.n_numa_nodes

    @property
    def page_size(self) -> int:
        return 1 << self.spec.page_bits

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.spec.clock_hz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine({self.spec.name}, threads={self.n_threads}, numa={self.n_numa_nodes})"


def power7_spec(smt: int = 4) -> MachineSpec:
    """Spec for one node of the paper's POWER7 cluster."""
    return MachineSpec(
        name="power7-node",
        sockets=4,
        cores_per_socket=8,
        smt=smt,
        numa_per_socket=1,
        l3_sets=128,
        latency=LatencyModel(
            l1=2, l2=8, l3=26, local_dram=130, hop=100, tlb_walk=45
        ),
    )


def power7_node(smt: int = 4) -> Machine:
    """One node of the paper's POWER7 cluster: 4 sockets, 32 cores,
    up to 128 hardware threads, 4 NUMA domains."""
    return Machine(power7_spec(smt))


def amd_magnycours_spec() -> MachineSpec:
    """Spec for the paper's AMD Magny-Cours box."""
    return MachineSpec(
        name="amd-magnycours",
        sockets=4,
        cores_per_socket=12,
        smt=1,
        numa_per_socket=2,
        l3_sets=128,
        contention_max_penalty=120,
        latency=LatencyModel(
            l1=3, l2=12, l3=40, local_dram=150, hop=70, tlb_walk=50
        ),
    )


def amd_magnycours() -> Machine:
    """The paper's 48-core AMD Magny-Cours box: 4 packages x 12 cores,
    two dies (NUMA domains) per package = 8 NUMA domains."""
    return Machine(amd_magnycours_spec())


def intel_ivybridge_spec(sockets: int = 2) -> MachineSpec:
    """Spec for a dual-socket Ivy Bridge-EP-style box."""
    return MachineSpec(
        name="intel-ivybridge",
        sockets=sockets,
        cores_per_socket=12,
        smt=2,
        numa_per_socket=1,
        l3_sets=256,
        contention_max_penalty=200,
        latency=LatencyModel(
            l1=4, l2=12, l3=34, local_dram=140, hop=60, tlb_walk=40
        ),
    )


def intel_ivybridge(sockets: int = 2) -> Machine:
    """A dual-socket Ivy Bridge-EP-style box (the paper's §7 mentions the
    post-publication PEBS port): 2 sockets x 12 cores x HT2, 2 NUMA
    domains, flatter remote penalty than POWER7."""
    return Machine(intel_ivybridge_spec(sockets))


def tiny_spec(
    sockets: int = 2,
    cores_per_socket: int = 2,
    smt: int = 1,
    numa_per_socket: int = 1,
    prefetch: bool = True,
    engine: str = "auto",
) -> MachineSpec:
    """Spec for the small unit-test machine."""
    return MachineSpec(
        name="tiny",
        sockets=sockets,
        cores_per_socket=cores_per_socket,
        smt=smt,
        numa_per_socket=numa_per_socket,
        sim_engine=engine,
        l1_sets=4,
        l1_assoc=2,
        l2_sets=8,
        l2_assoc=2,
        l3_sets=16,
        l3_assoc=4,
        tlb_sets=4,
        tlb_assoc=2,
        contention_capacity=32,
        prefetch=prefetch,
    )


def tiny_machine(
    sockets: int = 2,
    cores_per_socket: int = 2,
    smt: int = 1,
    numa_per_socket: int = 1,
    prefetch: bool = True,
    engine: str = "auto",
) -> Machine:
    """A small machine for unit tests: fast to build, easy to reason about."""
    return Machine(
        tiny_spec(sockets, cores_per_socket, smt, numa_per_socket, prefetch, engine)
    )


def builtin_specs() -> tuple[MachineSpec, ...]:
    """Default-configuration specs of every bundled preset, by which the
    formula registry registers its per-architecture constant overrides."""
    return (power7_spec(), amd_magnycours_spec(), intel_ivybridge_spec(), tiny_spec())
