"""Memory-controller bandwidth contention model.

Each NUMA node has one controller with finite bandwidth.  When many
threads funnel their DRAM traffic through a single controller — the
master-thread first-touch pathology of AMG/LULESH/Streamcluster/NW —
requests queue and effective latency grows.  This is the mechanism that
makes the paper's interleave/first-touch fixes deliver their 13-53%
speedups, so the simulator needs *some* model of it.

Model: simulated time is divided into windows (the scheduler rotates
them once per round-robin round).  From each window's measured traffic
the model derives, per node, a flat queueing delay charged to every DRAM
access in the *next* window::

    imbalance(node) = max(0, share(node) - 1/n) / (1 - 1/n)
    concurrency    = clamp((distinct issuing threads - 1) / 15, 0, 1)
    penalty(node)  = max_penalty * imbalance(node) * concurrency

- *Share-based*: a controller is punished for absorbing more than its
  fair share of the machine's DRAM traffic, independent of workload
  scale — all traffic on one of four nodes is full imbalance, perfectly
  interleaved traffic is zero.
- *Concurrency-gated*: a single thread cannot saturate a controller in
  this serialized-access simulator (it has no memory-level parallelism),
  so serial phases and one-rank-at-a-time MPI execution see no queueing.
- *Flat within a window*: charging every access the same delay keeps the
  model fair across threads under a round-robin scheduler; a
  backlog-positional model would bill the whole queue to whichever
  threads run late in the round.
- Windows with less than ``min_traffic`` total DRAM accesses are treated
  as unloaded.  By default an unloaded window *discards* its traffic and
  issuing-thread set entirely: ``min_traffic`` is a bandwidth (per-window
  rate) threshold, and a stream that never reaches it never queues, no
  matter how imbalanced its aggregate share across windows is.  That is
  intended behaviour (pinned by
  ``tests/test_machine_contention.py::TestUnloadedWindows``) — but it
  does mean a steady stream alternating just below/above the threshold
  resets its history on every sub-threshold window.  The opt-in
  ``unloaded_carry`` knob instead decays the unloaded window's per-node
  counts into the next window (retaining the issuing-thread set while
  any carried traffic remains), so sustained near-threshold imbalance
  accumulates and eventually crosses into the loaded path.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["ControllerContention"]

_FULL_CONCURRENCY = 16  # issuing threads at which the concurrency gate saturates


class ControllerContention:
    """Windowed share-based congestion model, one queue per NUMA node."""

    __slots__ = (
        "n_nodes",
        "min_traffic",
        "max_penalty",
        "unloaded_carry",
        "_counts",
        "_tids",
        "_penalty",
        "windows",
        "total_queue_cycles",
    )

    def __init__(
        self,
        n_nodes: int,
        capacity_per_window: int = 64,
        max_penalty: int = 300,
        unloaded_carry: float = 0.0,
    ) -> None:
        if n_nodes < 1:
            raise ConfigError("need at least one NUMA node")
        if capacity_per_window < 1:
            raise ConfigError("controller capacity must be >= 1")
        if max_penalty < 0:
            raise ConfigError("max_penalty must be non-negative")
        if not 0.0 <= unloaded_carry < 1.0:
            raise ConfigError("unloaded_carry must be in [0, 1)")
        self.n_nodes = n_nodes
        self.min_traffic = capacity_per_window
        self.max_penalty = max_penalty
        self.unloaded_carry = unloaded_carry
        self._counts = [0] * n_nodes
        self._tids: set[int] = set()
        self._penalty = [0] * n_nodes
        self.windows = 0
        self.total_queue_cycles = 0

    def new_window(self) -> None:
        """Advance to the next time window (called by the scheduler)."""
        self.windows += 1
        counts = self._counts
        penalty = self._penalty
        n = self.n_nodes
        total = 0
        for c in counts:
            total += c
        concurrency = (len(self._tids) - 1) / (_FULL_CONCURRENCY - 1)
        if concurrency > 1.0:
            concurrency = 1.0
        if total < self.min_traffic or n < 2 or concurrency <= 0.0:
            carry = self.unloaded_carry
            if carry > 0.0 and total > 0:
                # Decay this window's traffic into the next instead of
                # dropping it: sustained sub-threshold imbalance builds a
                # share over time.  The issuing threads stay associated
                # with their carried traffic.
                carried = 0
                for i in range(n):
                    penalty[i] = 0
                    counts[i] = int(counts[i] * carry)
                    carried += counts[i]
                if not carried:
                    self._tids.clear()
                return
            for i in range(n):
                penalty[i] = 0
                counts[i] = 0
            self._tids.clear()
            return
        fair = 1.0 / n
        scale = self.max_penalty * concurrency / (1.0 - fair)
        for i in range(n):
            share = counts[i] / total
            excess = share - fair
            penalty[i] = int(scale * excess) if excess > 0.0 else 0
            counts[i] = 0
        self._tids.clear()

    def dram_access(self, node: int, hw_tid: int = 0) -> int:
        """Register one DRAM access to ``node``; return its queueing delay."""
        self._counts[node] += 1
        self._tids.add(hw_tid)
        delay = self._penalty[node]
        if delay:
            self.total_queue_cycles += delay
        return delay

    def dram_access_bulk(self, node: int, hw_tid: int, n: int) -> int:
        """Register ``n`` DRAM accesses by one thread within one window.

        The penalty is flat within a window and windows only rotate from
        the scheduler between runs, so ``n`` scalar :meth:`dram_access`
        calls all observe the same delay — returned here once (per
        access) with the counters advanced in bulk.  Vector-engine path.
        """
        self._counts[node] += n
        self._tids.add(hw_tid)
        delay = self._penalty[node]
        if delay:
            self.total_queue_cycles += delay * n
        return delay

    def window_load(self, node: int) -> int:
        """Accesses absorbed by ``node`` so far in the current window."""
        return self._counts[node]

    def congestion_delay(self, node: int) -> int:
        """The flat delay currently charged for ``node`` (for tests)."""
        return self._penalty[node]
