"""Latency model: cycle costs for each memory-hierarchy response.

Numbers are in (simulated) processor cycles and follow the rough shape of
published POWER7 / AMD family-10h access latencies.  Absolute values do
not matter for the reproduction — only ordering and rough ratios do
(L1 << L2 << L3 << local DRAM < remote DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["LatencyModel"]


@dataclass(frozen=True)
class LatencyModel:
    """Cycle cost for each data source, plus TLB and interconnect terms."""

    l1: int = 3
    l2: int = 12
    l3: int = 40
    local_dram: int = 160
    hop: int = 80            # extra cycles per interconnect hop for remote DRAM
    tlb_walk: int = 50       # page-table walk on TLB miss
    store_extra: int = 0     # write-allocate penalty: stores that miss L1
    compute_cycle: int = 1   # cost of one abstract ALU op

    def __post_init__(self) -> None:
        if not (0 < self.l1 <= self.l2 <= self.l3 <= self.local_dram):
            raise ConfigError("latencies must satisfy l1<=l2<=l3<=local_dram")
        if self.hop < 0 or self.tlb_walk < 0 or self.store_extra < 0:
            raise ConfigError("latency terms must be non-negative")
        if self.compute_cycle < 0:
            raise ConfigError("compute_cycle must be non-negative")

    def dram(self, hops: int) -> int:
        """DRAM latency given interconnect distance in hops."""
        return self.local_dram + hops * self.hop
