"""Page placement policies.

Linux-style NUMA policies at page granularity.  The default is
*first-touch* (a page is placed on the NUMA domain of the first thread to
touch it) — the root cause of every NUMA pathology in the paper's case
studies: `calloc` zeroes pages from the master thread, so first-touch
pins them all to the master's domain.

`numactl --interleave=all` corresponds to installing :class:`Interleave`
as the process default; libnuma's `numa_alloc_interleaved` applies
:class:`Interleave` to a single allocation (see :mod:`repro.numa`).
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["AllocPolicy", "FirstTouch", "Interleave", "Bind", "PreferredNode"]


class AllocPolicy:
    """Decides the home NUMA node for a page at first touch.

    ``place`` receives the NUMA domain of the *touching* thread and the
    virtual page number (so interleaving can be position-based and thus
    deterministic regardless of touch order).
    """

    name = "abstract"

    def place(self, toucher_node: int, vpage: int) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FirstTouch(AllocPolicy):
    """Place the page on the toucher's NUMA domain (Linux default)."""

    name = "first-touch"

    def place(self, toucher_node: int, vpage: int) -> int:
        return toucher_node


class Interleave(AllocPolicy):
    """Round-robin pages across a node set, keyed by virtual page number."""

    name = "interleave"

    def __init__(self, nodes: list[int]) -> None:
        if not nodes:
            raise ConfigError("interleave requires a non-empty node set")
        self.nodes = list(nodes)

    def place(self, toucher_node: int, vpage: int) -> int:
        return self.nodes[vpage % len(self.nodes)]

    def __repr__(self) -> str:
        return f"Interleave(nodes={self.nodes})"


class Bind(AllocPolicy):
    """Pin every page to one node (``numactl --membind``)."""

    name = "bind"

    def __init__(self, node: int) -> None:
        if node < 0:
            raise ConfigError("bind node must be >= 0")
        self.node = node

    def place(self, toucher_node: int, vpage: int) -> int:
        return self.node

    def __repr__(self) -> str:
        return f"Bind(node={self.node})"


class PreferredNode(AllocPolicy):
    """Prefer one node (``numactl --preferred``).

    The capacity-pressure fallback of the real policy is out of scope —
    simulated nodes never fill — so this behaves like :class:`Bind` but is
    kept distinct for API fidelity and reporting.
    """

    name = "preferred"

    def __init__(self, node: int) -> None:
        if node < 0:
            raise ConfigError("preferred node must be >= 0")
        self.node = node

    def place(self, toucher_node: int, vpage: int) -> int:
        return self.node

    def __repr__(self) -> str:
        return f"PreferredNode(node={self.node})"
