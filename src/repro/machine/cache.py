"""Set-associative LRU cache model.

The tag store is a list of per-set Python lists ordered most-recently-used
first.  Associativities are small (2-16), so the list scan beats fancier
structures, and `list.remove`/`insert(0)` keep the hot path allocation
free.  This is the innermost loop of the whole simulator; keep it lean.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["SetAssocCache"]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class SetAssocCache:
    """A set-associative cache with true-LRU replacement.

    Addresses are tracked at line granularity; callers pass *line numbers*
    (address >> line_bits), not byte addresses, so one shift is shared by
    every level of the hierarchy.
    """

    __slots__ = ("name", "n_sets", "assoc", "_sets", "_set_mask", "hits", "misses")

    def __init__(self, name: str, n_sets: int, assoc: int) -> None:
        if not _is_pow2(n_sets):
            raise ConfigError(f"{name}: n_sets must be a power of two, got {n_sets}")
        if assoc < 1:
            raise ConfigError(f"{name}: associativity must be >= 1")
        self.name = name
        self.n_sets = n_sets
        self.assoc = assoc
        self._set_mask = n_sets - 1
        self._sets: list[list[int]] = [[] for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0

    @property
    def capacity_lines(self) -> int:
        return self.n_sets * self.assoc

    def access(self, line: int) -> bool:
        """Look up ``line``; on hit, promote to MRU.  Returns hit/miss.

        A miss does *not* install the line — the hierarchy decides what to
        fill where (so prefetch installs and demand fills share one path).
        """
        ways = self._sets[line & self._set_mask]
        if line in ways:
            self.hits += 1
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            return True
        self.misses += 1
        return False

    def install(self, line: int) -> int | None:
        """Insert ``line`` as MRU; return the evicted line, if any."""
        ways = self._sets[line & self._set_mask]
        if line in ways:
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            return None
        ways.insert(0, line)
        if len(ways) > self.assoc:
            return ways.pop()
        return None

    def note_repeat_hits(self, n: int) -> None:
        """Credit ``n`` hits to a line already resident and MRU.

        Batched-path counter flush: when ``MemoryHierarchy.access_run``
        short-circuits repeated lookups of the line it just touched, the
        set state is provably unchanged (the line is already MRU), so only
        the hit counter needs to catch up with the scalar path.
        """
        self.hits += n

    def contains(self, line: int) -> bool:
        """Non-promoting lookup (for tests and prefetch filtering)."""
        return line in self._sets[line & self._set_mask]

    def invalidate_all(self) -> None:
        for ways in self._sets:
            ways.clear()

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssocCache({self.name}, sets={self.n_sets}, assoc={self.assoc}, "
            f"hits={self.hits}, misses={self.misses})"
        )
