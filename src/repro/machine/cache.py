"""Set-associative LRU cache model.

The tag store is a list of per-set Python lists ordered most-recently-used
first.  Associativities are small (2-16), so the list scan beats fancier
structures, and `list.remove`/`insert(0)` keep the hot path allocation
free.  This is the innermost loop of the whole simulator; keep it lean.
"""

from __future__ import annotations

from math import gcd as _gcd

from repro.errors import ConfigError

__all__ = ["SetAssocCache"]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class SetAssocCache:
    """A set-associative cache with true-LRU replacement.

    Addresses are tracked at line granularity; callers pass *line numbers*
    (address >> line_bits), not byte addresses, so one shift is shared by
    every level of the hierarchy.
    """

    __slots__ = ("name", "n_sets", "assoc", "_sets", "_set_mask", "hits", "misses")

    def __init__(self, name: str, n_sets: int, assoc: int) -> None:
        if not _is_pow2(n_sets):
            raise ConfigError(f"{name}: n_sets must be a power of two, got {n_sets}")
        if assoc < 1:
            raise ConfigError(f"{name}: associativity must be >= 1")
        self.name = name
        self.n_sets = n_sets
        self.assoc = assoc
        self._set_mask = n_sets - 1
        self._sets: list[list[int]] = [[] for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0

    @property
    def capacity_lines(self) -> int:
        return self.n_sets * self.assoc

    def access(self, line: int) -> bool:
        """Look up ``line``; on hit, promote to MRU.  Returns hit/miss.

        A miss does *not* install the line — the hierarchy decides what to
        fill where (so prefetch installs and demand fills share one path).
        """
        ways = self._sets[line & self._set_mask]
        if line in ways:
            self.hits += 1
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            return True
        self.misses += 1
        return False

    def install(self, line: int) -> int | None:
        """Insert ``line`` as MRU; return the evicted line, if any."""
        ways = self._sets[line & self._set_mask]
        if line in ways:
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            return None
        ways.insert(0, line)
        if len(ways) > self.assoc:
            return ways.pop()
        return None

    def note_repeat_hits(self, n: int) -> None:
        """Credit ``n`` hits to a line already resident and MRU.

        Batched-path counter flush: when ``MemoryHierarchy.access_run``
        short-circuits repeated lookups of the line it just touched, the
        set state is provably unchanged (the line is already MRU), so only
        the hit counter needs to catch up with the scalar path.
        """
        self.hits += n

    def contains(self, line: int) -> bool:
        """Non-promoting lookup (for tests and prefetch filtering)."""
        return line in self._sets[line & self._set_mask]

    # -- bulk (vectorized-engine) primitives ------------------------------
    #
    # The vector engine (repro.machine.vector) processes a whole arithmetic
    # progression of lines in one step.  It needs three operations beyond
    # the scalar path: a residency scan over the progression, a bulk
    # counter credit, and per-set state rebuilds equivalent to the scalar
    # install/promote sequence.  Each is written to be *observably
    # identical* to the equivalent scalar loop — the differential suite in
    # tests/test_machine_bulk_access.py and tests/test_machine_vector.py
    # holds them to that.

    def bulk_credit(self, hits: int = 0, misses: int = 0) -> None:
        """Credit counters for lookups whose outcome was proven in bulk."""
        self.hits += hits
        self.misses += misses

    def progression_members(self, start: int, delta: int, n: int) -> list[int]:
        """Sorted indices ``k`` in ``[0, n)`` whose line ``start + k*delta``
        is currently resident.

        ``delta`` must be non-zero.  Two strategies with the same result:
        probe-driven (short progressions) and tag-store iteration (long
        progressions, cost bounded by resident entries, not ``n``).
        """
        if n <= 0:
            return []
        out: list[int] = []
        if n * (self.assoc + 1) < self.n_sets * self.assoc:
            line = start
            sets = self._sets
            mask = self._set_mask
            for k in range(n):
                if line in sets[line & mask]:
                    out.append(k)
                line += delta
            return out
        last = (n - 1) * delta
        for ways in self._sets:
            for line in ways:
                d = line - start
                if delta > 0:
                    if 0 <= d <= last and d % delta == 0:
                        out.append(d // delta)
                elif 0 >= d >= last and d % delta == 0:
                    out.append(d // delta)
        out.sort()
        return out

    def bulk_install_progression(self, start: int, delta: int, n: int) -> None:
        """Install lines ``start + k*delta`` for ``k`` in ``[0, n)``, in order.

        Equivalent to ``n`` scalar :meth:`install` calls when *none* of the
        lines are initially resident (the vector engine's cold regime):
        each set ends up holding the newest ``assoc`` installs that mapped
        to it, MRU-first, ahead of whatever survives of its old contents.
        Evictions inside the progression never affect later installs (the
        lines are distinct), so the final state is rebuilt per set with
        modular arithmetic instead of per line.
        """
        if n <= 0:
            return
        nsets = self.n_sets
        assoc = self.assoc
        mask = self._set_mask
        sets = self._sets
        # Lines k and k' map to the same set iff (k - k') * delta ≡ 0
        # (mod n_sets); the residue classes mod `step` partition the
        # progression among the touched sets.
        d = delta % nsets
        g = _gcd(d, nsets) if d else nsets
        step = nsets // g
        for r in range(min(step, n)):
            s = (start + r * delta) & mask
            c = (n - 1 - r) // step + 1  # installs that landed in this set
            take = c if c < assoc else assoc
            ways = [start + (r + (c - 1 - j) * step) * delta for j in range(take)]
            if take < assoc:
                # Evictions pop from the LRU tail, so the old residents
                # that survive are exactly the first assoc - take.
                ways.extend(sets[s][: assoc - take])
            sets[s] = ways

    def bulk_promote_progression(self, start: int, delta: int, n: int) -> None:
        """Promote resident lines ``start + k*delta``, ``k`` in ``[0, n)``,
        to MRU in ascending-``k`` order (the vector engine's hot regime).

        Every line must currently be resident; the rebuilt set holds the
        promoted lines newest-first followed by its untouched residents in
        their previous relative order — exactly what ``n`` scalar hits
        would leave behind.
        """
        if n <= 0:
            return
        nsets = self.n_sets
        mask = self._set_mask
        sets = self._sets
        d = delta % nsets
        g = _gcd(d, nsets) if d else nsets
        step = nsets // g
        for r in range(min(step, n)):
            s = (start + r * delta) & mask
            c = (n - 1 - r) // step + 1
            promoted = [start + (r + (c - 1 - j) * step) * delta for j in range(c)]
            promoted.extend(w for w in sets[s] if w not in promoted)
            sets[s] = promoted

    def invalidate_all(self) -> None:
        for ways in self._sets:
            ways.clear()

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssocCache({self.name}, sets={self.n_sets}, assoc={self.assoc}, "
            f"hits={self.hits}, misses={self.misses})"
        )
