"""TLB model — a thin specialization of the set-associative cache.

Tracked per core (SMT threads on a core share it).  A TLB miss charges a
page-walk penalty; long-stride access patterns cross pages on nearly every
access, which is one of the two effects (with lost spatial locality) that
the Sweep3D case study's layout transposition removes.
"""

from __future__ import annotations

from repro.machine.cache import SetAssocCache

__all__ = ["TLB"]


class TLB:
    """Fully-parameterized TLB over page numbers."""

    __slots__ = ("_cache",)

    def __init__(self, n_sets: int = 8, assoc: int = 4) -> None:
        self._cache = SetAssocCache("tlb", n_sets, assoc)

    def access(self, page: int) -> bool:
        """Translate ``page``; returns True on TLB hit.  Misses auto-fill."""
        if self._cache.access(page):
            return True
        self._cache.install(page)
        return False

    def note_repeat_hits(self, n: int) -> None:
        """Credit ``n`` hits to the already-resident, MRU page (bulk path)."""
        self._cache.note_repeat_hits(n)

    # -- bulk (vectorized-engine) primitives ------------------------------

    def bulk_credit(self, hits: int = 0, misses: int = 0) -> None:
        """Credit translation counters proven in bulk (vector engine)."""
        self._cache.bulk_credit(hits=hits, misses=misses)

    def progression_members(self, start: int, delta: int, n: int) -> list[int]:
        """Indices of resident pages along ``start + k*delta``, ``k < n``."""
        return self._cache.progression_members(start, delta, n)

    def bulk_install_progression(self, start: int, delta: int, n: int) -> None:
        """Fill ``n`` initially-absent pages in order (cold vector sweep)."""
        self._cache.bulk_install_progression(start, delta, n)

    def bulk_promote_progression(self, start: int, delta: int, n: int) -> None:
        """Promote ``n`` resident pages in order (hot vector sweep)."""
        self._cache.bulk_promote_progression(start, delta, n)

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def capacity_pages(self) -> int:
        return self._cache.capacity_lines

    def flush(self) -> None:
        self._cache.invalidate_all()
