"""The memory hierarchy: the simulator's hot path.

``MemoryHierarchy.access`` is called for every simulated load/store.  It
models, in order: address translation (per-core TLB), the per-core L1 and
L2, the per-socket shared L3, and finally DRAM on the page's home NUMA
node — local or remote across the interconnect, with bandwidth queueing
at the home controller.

A per-core stream prefetcher hides DRAM *latency* (not controller
traffic) for unit-stride misses: sequential streams are served at near-L3
latency while strided/indirect patterns pay full memory latency.  This is
the mechanism behind the Sweep3D/LULESH layout-transposition wins.

Performance notes (per the hpc-parallel guide): no per-access object
allocation — results are plain tuples, topology lookups are preflattened
lists, and the caches use list-based LRU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.cache import SetAssocCache
from repro.machine.contention import ControllerContention
from repro.machine.latency import LatencyModel
from repro.machine.memory import MemoryManager
from repro.machine.tlb import TLB
from repro.machine.topology import Topology

__all__ = [
    "MemoryHierarchy",
    "AccessResult",
    "LVL_L1",
    "LVL_L2",
    "LVL_L3",
    "LVL_LMEM",
    "LVL_RMEM",
    "LEVEL_NAMES",
]

# Data-source levels, matching the paper's event vocabulary:
# L1/L2/L3 cache hits, local memory, remote memory.
LVL_L1 = 0
LVL_L2 = 1
LVL_L3 = 2
LVL_LMEM = 3
LVL_RMEM = 4
LEVEL_NAMES = ("L1", "L2", "L3", "LMEM", "RMEM")

_STREAMS_PER_CORE = 4


@dataclass(frozen=True)
class AccessResult:
    """Rich result for one access (built on demand, e.g. for PMU samples)."""

    latency: int
    level: int
    tlb_miss: bool
    home_node: int
    remote: bool

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]


class MemoryHierarchy:
    """Caches + TLBs + NUMA DRAM for one machine."""

    def __init__(
        self,
        topology: Topology,
        latency: LatencyModel,
        *,
        line_bits: int = 6,
        page_bits: int = 12,
        l1_sets: int = 16,
        l1_assoc: int = 4,
        l2_sets: int = 64,
        l2_assoc: int = 8,
        l3_sets: int = 256,
        l3_assoc: int = 8,
        tlb_sets: int = 8,
        tlb_assoc: int = 4,
        contention: ControllerContention | None = None,
        prefetch: bool = True,
    ) -> None:
        if page_bits <= line_bits:
            raise ConfigError("pages must be larger than cache lines")
        self.topology = topology
        self.latency = latency
        self.line_bits = line_bits
        self.page_bits = page_bits
        self.prefetch_enabled = prefetch
        self.memmgr = MemoryManager(topology.n_numa_nodes)
        self.contention = contention or ControllerContention(topology.n_numa_nodes)

        n_cores = topology.n_cores
        n_sockets = topology.sockets
        self.l1 = [SetAssocCache(f"L1.c{c}", l1_sets, l1_assoc) for c in range(n_cores)]
        self.l2 = [SetAssocCache(f"L2.c{c}", l2_sets, l2_assoc) for c in range(n_cores)]
        self.l3 = [SetAssocCache(f"L3.s{s}", l3_sets, l3_assoc) for s in range(n_sockets)]
        self.tlb = [TLB(tlb_sets, tlb_assoc) for _ in range(n_cores)]
        # Per-core stream-prefetcher state: expected next miss line per stream.
        self._streams: list[list[int]] = [
            [-1] * _STREAMS_PER_CORE for _ in range(n_cores)
        ]
        self._stream_rr = [0] * n_cores

        # Flattened topology lookups for the hot path.
        self._core_of = [topology.core_of(t) for t in range(topology.n_threads)]
        self._socket_of = [topology.socket_of(t) for t in range(topology.n_threads)]
        self._numa_of = [topology.numa_of(t) for t in range(topology.n_threads)]

        self.level_counts = [0, 0, 0, 0, 0]
        self.load_count = 0
        self.store_count = 0
        self.prefetch_hits = 0

    # -- hot path ---------------------------------------------------------

    def access(
        self, hw_tid: int, vaddr: int, home_node: int, is_store: bool = False
    ) -> tuple[int, int, bool]:
        """Perform one memory access.

        Returns ``(latency_cycles, level, tlb_miss)`` as a plain tuple.
        ``home_node`` is the NUMA placement of the page containing
        ``vaddr`` (resolved by the process's address space at touch time).
        """
        lat = self.latency
        core = self._core_of[hw_tid]
        line = vaddr >> self.line_bits

        if is_store:
            self.store_count += 1
        else:
            self.load_count += 1

        cycles = 0
        if not self.tlb[core].access(vaddr >> self.page_bits):
            cycles += lat.tlb_walk
            tlb_miss = True
        else:
            tlb_miss = False

        if self.l1[core].access(line):
            self.level_counts[LVL_L1] += 1
            return (cycles + lat.l1, LVL_L1, tlb_miss)

        # L1 miss: consult the stream prefetcher before probing deeper.
        prefetched = False
        if self.prefetch_enabled:
            streams = self._streams[core]
            for i in range(_STREAMS_PER_CORE):
                if streams[i] == line:
                    prefetched = True
                    streams[i] = line + 1
                    break
            else:
                # Start/replace a stream at this miss.
                rr = self._stream_rr[core]
                streams[rr] = line + 1
                self._stream_rr[core] = (rr + 1) % _STREAMS_PER_CORE

        if self.l2[core].access(line):
            self.l1[core].install(line)
            self.level_counts[LVL_L2] += 1
            return (cycles + lat.l2, LVL_L2, tlb_miss)

        socket = self._socket_of[hw_tid]
        if self.l3[socket].access(line):
            self.l1[core].install(line)
            self.l2[core].install(line)
            self.level_counts[LVL_L3] += 1
            return (cycles + lat.l3, LVL_L3, tlb_miss)

        # DRAM access on the page's home node.
        my_node = self._numa_of[hw_tid]
        hops = self.topology.hops(my_node, home_node)
        remote = home_node != my_node
        queue = self.contention.dram_access(home_node, hw_tid)
        self.memmgr.note_dram_access(home_node, remote)
        if prefetched:
            # The prefetcher already brought the line most of the way in:
            # charge near-L3 latency but keep the queueing cost — prefetch
            # hides latency, not bandwidth.
            self.prefetch_hits += 1
            cycles += lat.l3 + queue
        else:
            cycles += lat.dram(hops) + queue
        if is_store:
            cycles += lat.store_extra
        self.l1[core].install(line)
        self.l2[core].install(line)
        self.l3[socket].install(line)
        level = LVL_RMEM if remote else LVL_LMEM
        self.level_counts[level] += 1
        return (cycles, level, tlb_miss)

    # -- conveniences -----------------------------------------------------

    def describe(self, hw_tid: int, result: tuple[int, int, bool], home_node: int) -> AccessResult:
        """Expand a hot-path tuple into a rich :class:`AccessResult`."""
        latency, level, tlb_miss = result
        return AccessResult(
            latency=latency,
            level=level,
            tlb_miss=tlb_miss,
            home_node=home_node,
            remote=level == LVL_RMEM,
        )

    def new_window(self) -> None:
        """Rotate the contention window (scheduler calls this per quantum)."""
        self.contention.new_window()

    def total_accesses(self) -> int:
        return self.load_count + self.store_count

    def flush_all(self) -> None:
        """Invalidate all caches and TLBs (used between benchmark phases)."""
        for c in self.l1:
            c.invalidate_all()
        for c in self.l2:
            c.invalidate_all()
        for c in self.l3:
            c.invalidate_all()
        for t in self.tlb:
            t.flush()
        for streams in self._streams:
            for i in range(_STREAMS_PER_CORE):
                streams[i] = -1
