"""The memory hierarchy: the simulator's hot path.

``MemoryHierarchy.access`` is called for every simulated load/store.  It
models, in order: address translation (per-core TLB), the per-core L1 and
L2, the per-socket shared L3, and finally DRAM on the page's home NUMA
node — local or remote across the interconnect, with bandwidth queueing
at the home controller.

``MemoryHierarchy.access_run`` is the batched fast path: a whole
contiguous/strided run of addresses in one call.  It is state- and
result-identical to the equivalent sequence of ``access`` calls (the
differential harness in ``tests/test_machine_bulk_access.py`` enforces
bit-identical level counts, latencies, contention cycles and PMU sample
streams), but hoists TLB lookups to once per page, short-circuits
repeated same-line L1 hits, and accumulates counters in locals flushed
once per run.

A per-core stream prefetcher hides DRAM *latency* (not controller
traffic) for unit-stride misses: sequential streams are served at near-L3
latency while strided/indirect patterns pay full memory latency.  This is
the mechanism behind the Sweep3D/LULESH layout-transposition wins.

Store cost model: ``LatencyModel.store_extra`` (the write-allocate
penalty) is charged to every store that *misses L1* — whether the line is
then served by L2, L3 or DRAM — because any L1 store miss triggers a line
allocation.  L1 store hits write into the already-present line and pay
nothing extra.  (Historically only DRAM-serviced stores paid it; the
asymmetry was a bug — L2/L3-serviced stores allocate into L1 exactly the
same way.  Pinned by ``tests/test_machine_hierarchy.py::TestStoreExtra``.)

Performance notes (per the hpc-parallel guide): no per-access object
allocation — results are plain tuples, topology lookups are preflattened
lists, and the caches use list-based LRU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.cache import SetAssocCache
from repro.machine.contention import ControllerContention
from repro.machine.latency import LatencyModel
from repro.machine.memory import MemoryManager
from repro.machine.stats import MachineStats
from repro.machine.tlb import TLB
from repro.machine.topology import Topology

__all__ = [
    "MemoryHierarchy",
    "AccessResult",
    "MachineStats",
    "LVL_L1",
    "LVL_L2",
    "LVL_L3",
    "LVL_LMEM",
    "LVL_RMEM",
    "LEVEL_NAMES",
]

# Data-source levels, matching the paper's event vocabulary:
# L1/L2/L3 cache hits, local memory, remote memory.
LVL_L1 = 0
LVL_L2 = 1
LVL_L3 = 2
LVL_LMEM = 3
LVL_RMEM = 4
LEVEL_NAMES = ("L1", "L2", "L3", "LMEM", "RMEM")

_STREAMS_PER_CORE = 4


@dataclass(frozen=True)
class AccessResult:
    """Rich result for one access (built on demand, e.g. for PMU samples)."""

    latency: int
    level: int
    tlb_miss: bool
    home_node: int
    remote: bool

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]


class MemoryHierarchy:
    """Caches + TLBs + NUMA DRAM for one machine."""

    def __init__(
        self,
        topology: Topology,
        latency: LatencyModel,
        *,
        line_bits: int = 6,
        page_bits: int = 12,
        l1_sets: int = 16,
        l1_assoc: int = 4,
        l2_sets: int = 64,
        l2_assoc: int = 8,
        l3_sets: int = 256,
        l3_assoc: int = 8,
        tlb_sets: int = 8,
        tlb_assoc: int = 4,
        contention: ControllerContention | None = None,
        prefetch: bool = True,
        engine: str = "auto",
    ) -> None:
        if page_bits <= line_bits:
            raise ConfigError("pages must be larger than cache lines")
        if engine not in ("auto", "vector", "python"):
            raise ConfigError(
                f"unknown access_run engine {engine!r}; "
                "choose auto, vector or python"
            )
        self.topology = topology
        self.latency = latency
        self.line_bits = line_bits
        self.page_bits = page_bits
        self.prefetch_enabled = prefetch
        self.memmgr = MemoryManager(topology.n_numa_nodes)
        self.contention = contention or ControllerContention(topology.n_numa_nodes)

        n_cores = topology.n_cores
        n_sockets = topology.sockets
        self.l1 = [SetAssocCache(f"L1.c{c}", l1_sets, l1_assoc) for c in range(n_cores)]
        self.l2 = [SetAssocCache(f"L2.c{c}", l2_sets, l2_assoc) for c in range(n_cores)]
        self.l3 = [SetAssocCache(f"L3.s{s}", l3_sets, l3_assoc) for s in range(n_sockets)]
        self.tlb = [TLB(tlb_sets, tlb_assoc) for _ in range(n_cores)]
        # Per-core stream-prefetcher state: expected next miss line per stream.
        self._streams: list[list[int]] = [
            [-1] * _STREAMS_PER_CORE for _ in range(n_cores)
        ]
        self._stream_rr = [0] * n_cores

        # Flattened topology lookups for the hot path.
        self._core_of = [topology.core_of(t) for t in range(topology.n_threads)]
        self._socket_of = [topology.socket_of(t) for t in range(topology.n_threads)]
        self._numa_of = [topology.numa_of(t) for t in range(topology.n_threads)]

        self.level_counts = [0, 0, 0, 0, 0]
        # DRAM accesses by interconnect distance: [same-node, same-socket
        # cross-die, cross-socket].  hop_counts[0] == level_counts[LVL_LMEM]
        # and hop_counts[1] + hop_counts[2] == level_counts[LVL_RMEM];
        # derived metrics price remote DRAM from this observed distribution
        # instead of assuming a fixed 2-hop distance.
        self.hop_counts = [0, 0, 0]
        self.load_count = 0
        self.store_count = 0
        self.prefetch_hits = 0

        # Batched-path engine selection.  "python" is the batched loop
        # alone; "auto" vectorizes runs long enough to amortize the
        # residency scan; "vector" vectorizes every eligible run (the
        # differential tests use it to exercise short segments).  If
        # numpy is unavailable the vector engine degrades to "python".
        self.engine = engine
        self._vector_run = None
        self._vector_min = 0
        if engine != "python":
            try:
                from repro.machine.vector import VECTOR_MIN_RUN, access_run_vector
            except ImportError:  # pragma: no cover - numpy always present in CI
                self.engine = "python"
            else:
                self._vector_run = access_run_vector
                self._vector_min = 2 if engine == "vector" else VECTOR_MIN_RUN

    # -- hot path ---------------------------------------------------------

    def access(
        self, hw_tid: int, vaddr: int, home_node: int, is_store: bool = False
    ) -> tuple[int, int, bool]:
        """Perform one memory access.

        Returns ``(latency_cycles, level, tlb_miss)`` as a plain tuple.
        ``home_node`` is the NUMA placement of the page containing
        ``vaddr`` (resolved by the process's address space at touch time).
        """
        lat = self.latency
        core = self._core_of[hw_tid]
        line = vaddr >> self.line_bits

        if is_store:
            self.store_count += 1
        else:
            self.load_count += 1

        cycles = 0
        if not self.tlb[core].access(vaddr >> self.page_bits):
            cycles += lat.tlb_walk
            tlb_miss = True
        else:
            tlb_miss = False

        if self.l1[core].access(line):
            self.level_counts[LVL_L1] += 1
            return (cycles + lat.l1, LVL_L1, tlb_miss)

        # L1 miss: consult the stream prefetcher before probing deeper.
        prefetched = False
        if self.prefetch_enabled:
            streams = self._streams[core]
            for i in range(_STREAMS_PER_CORE):
                if streams[i] == line:
                    prefetched = True
                    streams[i] = line + 1
                    break
            else:
                # Start/replace a stream at this miss.
                rr = self._stream_rr[core]
                streams[rr] = line + 1
                self._stream_rr[core] = (rr + 1) % _STREAMS_PER_CORE

        # From here on the access missed L1, so a store pays the
        # write-allocate penalty no matter which level services it.
        if is_store:
            cycles += lat.store_extra

        if self.l2[core].access(line):
            self.l1[core].install(line)
            self.level_counts[LVL_L2] += 1
            return (cycles + lat.l2, LVL_L2, tlb_miss)

        socket = self._socket_of[hw_tid]
        if self.l3[socket].access(line):
            self.l1[core].install(line)
            self.l2[core].install(line)
            self.level_counts[LVL_L3] += 1
            return (cycles + lat.l3, LVL_L3, tlb_miss)

        # DRAM access on the page's home node.
        my_node = self._numa_of[hw_tid]
        hops = self.topology.hops(my_node, home_node)
        remote = home_node != my_node
        queue = self.contention.dram_access(home_node, hw_tid)
        self.memmgr.note_dram_access(home_node, remote)
        if prefetched:
            # The prefetcher already brought the line most of the way in:
            # charge near-L3 latency but keep the queueing cost — prefetch
            # hides latency, not bandwidth.
            self.prefetch_hits += 1
            cycles += lat.l3 + queue
        else:
            cycles += lat.dram(hops) + queue
        self.l1[core].install(line)
        self.l2[core].install(line)
        self.l3[socket].install(line)
        level = LVL_RMEM if remote else LVL_LMEM
        self.level_counts[level] += 1
        self.hop_counts[hops] += 1
        return (cycles, level, tlb_miss)

    def access_run(
        self,
        hw_tid: int,
        base_vaddr: int,
        stride: int,
        count: int,
        home_node: int,
        is_store: bool = False,
        record: list | None = None,
    ) -> int:
        """Batched fast path: ``count`` accesses at ``base_vaddr + k*stride``.

        Equivalent — same final machine state, same per-access results —
        to ``count`` sequential :meth:`access` calls with the same
        arguments, but pays the Python dispatch cost once per *run*:
        topology/latency lookups are hoisted out of the loop, the TLB is
        consulted once per page instead of once per access, repeated
        same-line L1 hits short-circuit the cache probe entirely, and the
        hit/level counters accumulate in locals flushed once at the end.

        All addresses in the run must live on the same home NUMA node;
        callers that can't guarantee that (pages may differ) split the run
        at page boundaries — :meth:`repro.sim.runtime.Ctx.load_run` does.
        DRAM accesses still go through the contention model one by one
        (its window accounting is stateful and order-sensitive).

        Returns the total latency in cycles.  When ``record`` is a list,
        one ``(latency, level, tlb_miss)`` tuple is appended per access in
        order, letting callers replay the exact scalar event stream (PMU
        delivery).  Equivalence is enforced by the differential harness in
        ``tests/test_machine_bulk_access.py``.

        Two engines implement the contract: the batched python loop
        (:meth:`_access_run_python`) and the columnar vector engine
        (:mod:`repro.machine.vector`), selected by the ``engine``
        constructor knob.  Both are held to bit-identical results against
        the scalar oracle; the vector engine hands anything it cannot
        prove cold or hot back to the python loop.
        """
        if count <= 0:
            return 0
        if count == 1:
            # A one-access run can't amortize the hoisting prologue below
            # (page-stride callers hit this constantly): take the scalar
            # path, which is definitionally equivalent.
            result = self.access(hw_tid, base_vaddr, home_node, is_store)
            if record is not None:
                record.append(result)
            return result[0]
        if self._vector_run is not None and stride != 0 and count >= self._vector_min:
            return self._vector_run(
                self, hw_tid, base_vaddr, stride, count, home_node, is_store, record
            )
        return self._access_run_python(
            hw_tid, base_vaddr, stride, count, home_node, is_store, record
        )

    def _access_run_python(
        self,
        hw_tid: int,
        base_vaddr: int,
        stride: int,
        count: int,
        home_node: int,
        is_store: bool = False,
        record: list | None = None,
    ) -> int:
        """The batched python engine (and the vector engine's fallback).

        This is the PR-1 fast path: one loop iteration per cache line
        with hoisted lookups and arithmetically short-circuited repeat
        hits.  It handles every input shape; the vector engine delegates
        runs (or run remainders) it cannot prove cold or hot.
        """
        if count <= 0:
            return 0
        if count == 1:
            result = self.access(hw_tid, base_vaddr, home_node, is_store)
            if record is not None:
                record.append(result)
            return result[0]

        lat = self.latency
        core = self._core_of[hw_tid]
        socket = self._socket_of[hw_tid]
        l1 = self.l1[core]
        l2 = self.l2[core]
        l3 = self.l3[socket]
        tlb = self.tlb[core]
        line_bits = self.line_bits
        page_bits = self.page_bits
        lat_l1 = lat.l1
        lat_l2 = lat.l2
        lat_l3 = lat.l3
        tlb_walk = lat.tlb_walk
        store_extra = lat.store_extra if is_store else 0
        my_node = self._numa_of[hw_tid]
        remote = home_node != my_node
        dram_hops = self.topology.hops(my_node, home_node)
        dram_lat = lat.dram(dram_hops)
        dram_level = LVL_RMEM if remote else LVL_LMEM
        dram_access = self.contention.dram_access
        l1_access = l1.access
        l1_install = l1.install
        l2_access = l2.access
        l2_install = l2.install
        l3_access = l3.access
        l3_install = l3.install
        tlb_access = tlb.access
        prefetch_on = self.prefetch_enabled
        streams = self._streams[core]
        rr = self._stream_rr[core]
        rec = record.append if record is not None else None

        if is_store:
            self.store_count += count
        else:
            self.load_count += count

        total = 0
        n1 = n2 = n3 = nd = 0  # accesses served by L1/L2/L3/DRAM
        pf_hits = 0
        tlb_repeats = 0  # TLB lookups skipped (page unchanged since last access)
        l1_repeats = 0  # L1 lookups skipped (line unchanged since last access)
        # The repeat-skip sentinel must not collide with any real page
        # number: page -1 is reachable (negative addresses under negative
        # strides), and an integer sentinel of -1 silently converted the
        # first TLB walk of such a run into a repeat hit.  Pinned by
        # tests/test_machine_bulk_access.py::TestDegenerateStrides.
        cur_page: int | None = None
        vaddr = base_vaddr
        i = 0
        while i < count:
            # Probe the first access touching this cache line in full.
            line = vaddr >> line_bits
            page = vaddr >> page_bits
            if page == cur_page:
                # Page unchanged and nothing else touched this core's TLB
                # mid-run: a guaranteed hit on the scalar path.
                tlb_repeats += 1
                cycles = 0
                tlb_miss = False
            elif tlb_access(page):
                cur_page = page
                cycles = 0
                tlb_miss = False
            else:
                cur_page = page
                cycles = tlb_walk
                tlb_miss = True

            if l1_access(line):
                n1 += 1
                cycles += lat_l1
                level = LVL_L1
            else:
                cycles += store_extra
                prefetched = False
                if prefetch_on:
                    for s in range(_STREAMS_PER_CORE):
                        if streams[s] == line:
                            prefetched = True
                            streams[s] = line + 1
                            break
                    else:
                        streams[rr] = line + 1
                        rr = (rr + 1) % _STREAMS_PER_CORE
                if l2_access(line):
                    l1_install(line)
                    n2 += 1
                    cycles += lat_l2
                    level = LVL_L2
                elif l3_access(line):
                    l1_install(line)
                    l2_install(line)
                    n3 += 1
                    cycles += lat_l3
                    level = LVL_L3
                else:
                    queue = dram_access(home_node, hw_tid)
                    nd += 1
                    if prefetched:
                        pf_hits += 1
                        cycles += lat_l3 + queue
                    else:
                        cycles += dram_lat + queue
                    l1_install(line)
                    l2_install(line)
                    l3_install(line)
                    level = dram_level
            total += cycles
            if rec is not None:
                rec((cycles, level, tlb_miss))
            i += 1
            vaddr += stride

            # Short-circuit every subsequent access that stays on this
            # line: the probe left the line resident and MRU in L1 and
            # its page resident and MRU in the TLB, so each one is
            # exactly a TLB hit + L1 hit on the scalar path with no
            # state change — count them arithmetically instead of
            # looping.
            if stride > 0:
                k = (((line + 1) << line_bits) - vaddr + stride - 1) // stride
            elif stride < 0:
                k = (vaddr - (line << line_bits)) // -stride + 1
                if vaddr < (line << line_bits):
                    k = 0
            else:
                k = count - i
            if k > count - i:
                k = count - i
            if k > 0:
                tlb_repeats += k
                l1_repeats += k
                n1 += k
                total += k * lat_l1
                if rec is not None:
                    record.extend([(lat_l1, LVL_L1, False)] * k)
                i += k
                vaddr += k * stride

        # Flush the locally-accumulated counters in one pass.
        self._stream_rr[core] = rr
        lc = self.level_counts
        lc[LVL_L1] += n1
        lc[LVL_L2] += n2
        lc[LVL_L3] += n3
        if nd:
            lc[dram_level] += nd
            self.hop_counts[dram_hops] += nd
            self.memmgr.note_dram_accesses(home_node, remote, nd)
        if pf_hits:
            self.prefetch_hits += pf_hits
        if tlb_repeats:
            tlb.note_repeat_hits(tlb_repeats)
        if l1_repeats:
            l1.note_repeat_hits(l1_repeats)
        return total

    # -- conveniences -----------------------------------------------------

    def describe(self, hw_tid: int, result: tuple[int, int, bool], home_node: int) -> AccessResult:
        """Expand a hot-path tuple into a rich :class:`AccessResult`."""
        latency, level, tlb_miss = result
        return AccessResult(
            latency=latency,
            level=level,
            tlb_miss=tlb_miss,
            home_node=home_node,
            remote=level == LVL_RMEM,
        )

    def new_window(self) -> None:
        """Rotate the contention window (scheduler calls this per quantum)."""
        self.contention.new_window()

    def total_accesses(self) -> int:
        return self.load_count + self.store_count

    def stats(self) -> MachineStats:
        """One immutable snapshot of the machine's self-instrumentation.

        Snapshots subtract (``after - before`` is the activity in
        between) and add; see :class:`repro.machine.stats.MachineStats`.
        """
        tlb_hits = tlb_misses = 0
        for t in self.tlb:
            tlb_hits += t.hits
            tlb_misses += t.misses
        l1_hits = l1_misses = l2_hits = l2_misses = l3_hits = l3_misses = 0
        for c in self.l1:
            l1_hits += c.hits
            l1_misses += c.misses
        for c in self.l2:
            l2_hits += c.hits
            l2_misses += c.misses
        for c in self.l3:
            l3_hits += c.hits
            l3_misses += c.misses
        return MachineStats(
            level_counts=tuple(self.level_counts),
            hop_counts=tuple(self.hop_counts),
            loads=self.load_count,
            stores=self.store_count,
            prefetch_hits=self.prefetch_hits,
            tlb_hits=tlb_hits,
            tlb_misses=tlb_misses,
            l1_hits=l1_hits,
            l1_misses=l1_misses,
            l2_hits=l2_hits,
            l2_misses=l2_misses,
            l3_hits=l3_hits,
            l3_misses=l3_misses,
            dram_accesses=tuple(self.memmgr.dram_accesses),
            remote_dram_accesses=tuple(self.memmgr.remote_dram_accesses),
            contention_queue_cycles=self.contention.total_queue_cycles,
            contention_windows=self.contention.windows,
        )

    def flush_all(self) -> None:
        """Invalidate all caches and TLBs (used between benchmark phases)."""
        for c in self.l1:
            c.invalidate_all()
        for c in self.l2:
            c.invalidate_all()
        for c in self.l3:
            c.invalidate_all()
        for t in self.tlb:
            t.flush()
        for streams in self._streams:
            for i in range(_STREAMS_PER_CORE):
                streams[i] = -1
        # Reset the stream-replacement cursors too: otherwise post-flush
        # replacement order depends on pre-flush history and benchmark
        # phases separated by flush_all() are not independent.
        for c in range(len(self._stream_rr)):
            self._stream_rr[c] = 0
