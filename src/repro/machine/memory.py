"""Per-NUMA-node memory accounting and page placement bookkeeping.

The virtual→node mapping itself lives in each process's address space
(:mod:`repro.sim.address_space`); this module owns the machine-wide view:
how many pages each controller serves and how many DRAM accesses each
node's controller has absorbed.  That asymmetry (all pages and traffic on
the master's node) is what the case studies visualize and fix.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["MemoryManager"]


class MemoryManager:
    """Machine-wide page and DRAM-traffic accounting per NUMA node."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ConfigError("need at least one NUMA node")
        self.n_nodes = n_nodes
        self.pages_on_node = [0] * n_nodes
        self.dram_accesses = [0] * n_nodes
        self.remote_dram_accesses = [0] * n_nodes  # indexed by *home* node

    def note_page_placed(self, node: int) -> None:
        self.pages_on_node[node] += 1

    def note_page_released(self, node: int) -> None:
        # Releases can't go below zero; a mismatch signals a sim bug.
        if self.pages_on_node[node] <= 0:
            raise ConfigError(f"page release underflow on node {node}")
        self.pages_on_node[node] -= 1

    def note_dram_access(self, home_node: int, remote: bool) -> None:
        self.dram_accesses[home_node] += 1
        if remote:
            self.remote_dram_accesses[home_node] += 1

    def note_dram_accesses(self, home_node: int, remote: bool, n: int) -> None:
        """Bulk form of :meth:`note_dram_access` for the batched fast path."""
        self.dram_accesses[home_node] += n
        if remote:
            self.remote_dram_accesses[home_node] += n

    def total_dram_accesses(self) -> int:
        return sum(self.dram_accesses)

    def total_remote_accesses(self) -> int:
        return sum(self.remote_dram_accesses)

    def imbalance(self) -> float:
        """Max/mean ratio of per-node DRAM traffic (1.0 = perfectly even)."""
        total = self.total_dram_accesses()
        if total == 0:
            return 1.0
        mean = total / self.n_nodes
        return max(self.dram_accesses) / mean

    def reset_traffic(self) -> None:
        self.dram_accesses = [0] * self.n_nodes
        self.remote_dram_accesses = [0] * self.n_nodes
