"""Machine topology: sockets, cores, hardware threads, NUMA domains.

A hardware thread is the unit of execution (what a simulated software
thread pins to).  SMT threads on one core share that core's L1/L2 and
TLB; all cores on a socket share the L3; each NUMA domain owns one
memory controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["HWThread", "Topology"]


@dataclass(frozen=True)
class HWThread:
    """One hardware thread and its position in the machine."""

    hw_tid: int
    core: int
    socket: int
    numa_node: int


class Topology:
    """Regular topology: sockets x cores/socket x SMT threads/core.

    ``numa_per_socket`` covers designs like AMD Magny-Cours where one
    package holds two dies, each with its own memory controller
    (8 NUMA domains on a 4-socket box).
    """

    def __init__(
        self,
        sockets: int,
        cores_per_socket: int,
        smt: int = 1,
        numa_per_socket: int = 1,
    ) -> None:
        if sockets < 1 or cores_per_socket < 1 or smt < 1 or numa_per_socket < 1:
            raise ConfigError("topology dimensions must be >= 1")
        if cores_per_socket % numa_per_socket != 0:
            raise ConfigError(
                "cores_per_socket must be divisible by numa_per_socket"
            )
        self.sockets = sockets
        self.cores_per_socket = cores_per_socket
        self.smt = smt
        self.numa_per_socket = numa_per_socket
        self.n_cores = sockets * cores_per_socket
        self.n_threads = self.n_cores * smt
        self.n_numa_nodes = sockets * numa_per_socket
        self._threads = [self._build_thread(t) for t in range(self.n_threads)]

    def _build_thread(self, hw_tid: int) -> HWThread:
        core = hw_tid // self.smt
        socket = core // self.cores_per_socket
        core_in_socket = core % self.cores_per_socket
        cores_per_numa = self.cores_per_socket // self.numa_per_socket
        numa = socket * self.numa_per_socket + core_in_socket // cores_per_numa
        return HWThread(hw_tid=hw_tid, core=core, socket=socket, numa_node=numa)

    def thread(self, hw_tid: int) -> HWThread:
        return self._threads[hw_tid]

    def core_of(self, hw_tid: int) -> int:
        return self._threads[hw_tid].core

    def socket_of(self, hw_tid: int) -> int:
        return self._threads[hw_tid].socket

    def numa_of(self, hw_tid: int) -> int:
        return self._threads[hw_tid].numa_node

    def socket_of_numa(self, node: int) -> int:
        return node // self.numa_per_socket

    def hops(self, node_a: int, node_b: int) -> int:
        """Interconnect hops between two NUMA domains.

        Same domain: 0.  Same socket, different die: 1 (on-package link).
        Different sockets: 1 hop on a fully connected HT/QPI-style fabric
        (plus the on-package hop if the target die is the socket's second
        die — approximated as still 1; latency difference handled by the
        latency model's per-hop cost being the dominant term).
        """
        if node_a == node_b:
            return 0
        if self.socket_of_numa(node_a) == self.socket_of_numa(node_b):
            return 1
        return 2

    def threads_on_numa(self, node: int) -> list[int]:
        return [t.hw_tid for t in self._threads if t.numa_node == node]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(sockets={self.sockets}, cores/socket={self.cores_per_socket}, "
            f"smt={self.smt}, numa={self.n_numa_nodes}, threads={self.n_threads})"
        )
