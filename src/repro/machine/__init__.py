"""Simulated multi-socket NUMA machine.

This package stands in for the paper's two testbeds (a POWER7 node with
four NUMA domains and 128 hardware threads, and a 48-core AMD
Magny-Cours box with eight NUMA domains).  It provides the memory-system
response — cache/TLB hits and misses, local vs. remote DRAM, bandwidth
contention — that the simulated PMU samples and the data-centric
profiler attributes to variables.
"""

from repro.machine.topology import Topology, HWThread
from repro.machine.latency import LatencyModel
from repro.machine.cache import SetAssocCache
from repro.machine.tlb import TLB
from repro.machine.memory import MemoryManager
from repro.machine.policies import (
    AllocPolicy,
    FirstTouch,
    Interleave,
    Bind,
    PreferredNode,
)
from repro.machine.contention import ControllerContention
from repro.machine.stats import MachineStats
from repro.machine.hierarchy import (
    MemoryHierarchy,
    AccessResult,
    LVL_L1,
    LVL_L2,
    LVL_L3,
    LVL_LMEM,
    LVL_RMEM,
    LEVEL_NAMES,
)
from repro.machine.presets import (
    power7_node,
    amd_magnycours,
    intel_ivybridge,
    tiny_machine,
    MachineSpec,
    Machine,
)

__all__ = [
    "Topology",
    "HWThread",
    "LatencyModel",
    "SetAssocCache",
    "TLB",
    "MemoryManager",
    "AllocPolicy",
    "FirstTouch",
    "Interleave",
    "Bind",
    "PreferredNode",
    "ControllerContention",
    "MachineStats",
    "MemoryHierarchy",
    "AccessResult",
    "LVL_L1",
    "LVL_L2",
    "LVL_L3",
    "LVL_LMEM",
    "LVL_RMEM",
    "LEVEL_NAMES",
    "power7_node",
    "amd_magnycours",
    "intel_ivybridge",
    "tiny_machine",
    "MachineSpec",
    "Machine",
]
