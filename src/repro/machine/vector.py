"""Columnar (vectorized) engine behind ``MemoryHierarchy.access_run``.

The scalar ``access`` loop and the batched python loop pay Python
dispatch per access / per cache probe.  This engine instead decomposes a
strided run into *segments* whose outcome is provable from initial
machine state, and processes each segment as columnar event batches:
line/page indices, page transitions and per-probe latencies are numpy
arrays over the *probes* (first access per distinct line) while the
per-set cache/TLB updates collapse into modular-arithmetic rebuilds.

Why segments are exact
----------------------

Within a fixed-stride run the distinct probed lines form a strictly
monotonic arithmetic progression — no line is probed twice — so installs
performed during the run can never produce a hit later in the same run.
That yields two provable regimes:

- **cold sweep** — no probed line is resident at any level, no probed
  page is in the TLB, and no prefetch stream points into the probed
  range: every probe misses L1/L2/L3 and goes to DRAM, every page
  transition takes a TLB walk, and the prefetcher evolves by a closed
  form (an ascending unit-line sweep forms one stream chain; any other
  shape round-robins replacements).  Evictions caused by the segment's
  own installs only ever remove lines, so later probes stay misses.
- **hot sweep** — every probed line is initially L1-resident and every
  probed page is TLB-resident: all accesses are L1 hits, the only state
  change is LRU promotion, and promotions never evict.

The residency scan finds the longest provable prefix; the first probe
that violates the regime ends the segment, and whatever the engine
cannot prove cold or hot is handed to ``_access_run_python`` — the
retained batched loop — unchanged.  Splitting a run at a probe boundary
is observably identical to processing it whole, because the skipped
repeat accesses are credited exactly as the batched loop credits them.

The scalar ``access`` loop remains the differential oracle: the suites
in ``tests/test_machine_bulk_access.py`` and
``tests/test_machine_vector.py`` hold every engine to bit-identical
counters, latencies, LRU/stream state, and per-access PMU event tuples.
"""

from __future__ import annotations

import numpy as np

__all__ = ["access_run_vector", "VECTOR_MIN_RUN"]

# Below this run length the residency scan costs more than the batched
# python loop saves; ``engine="auto"`` only vectorizes longer runs
# (``engine="vector"`` always tries, which is what the tests use).
VECTOR_MIN_RUN = 256

# Data-source levels (mirrors repro.machine.hierarchy; re-declared to
# keep this module import-light and cycle-free).
_LVL_L1 = 0
_LVL_LMEM = 3
_LVL_RMEM = 4


def _consecutive_prefix(members: list[int]) -> int:
    """Length of the leading 0,1,2,... prefix of a sorted index list."""
    t = 0
    for v in members:
        if v != t:
            break
        t += 1
    return t


def access_run_vector(
    h,
    hw_tid: int,
    base_vaddr: int,
    stride: int,
    count: int,
    home_node: int,
    is_store: bool,
    record: list | None,
) -> int:
    """Vectorized equivalent of ``count`` scalar ``access`` calls.

    Processes provably-cold and provably-hot segments columnar;
    delegates any remainder to ``h._access_run_python``.  Returns the
    total latency in cycles (a Python int — numpy scalars never leak
    into clocks or records).
    """
    lat = h.latency
    core = h._core_of[hw_tid]
    l1 = h.l1[core]
    l2 = h.l2[core]
    l3 = h.l3[h._socket_of[hw_tid]]
    tlb = h.tlb[core]
    line_bits = h.line_bits
    page_bits = h.page_bits
    line_size = 1 << line_bits
    page_size = 1 << page_bits
    lat_l1 = lat.l1
    lat_l3 = lat.l3
    tlb_walk = lat.tlb_walk
    store_extra = lat.store_extra if is_store else 0
    my_node = h._numa_of[hw_tid]
    remote = home_node != my_node
    dram_hops = h.topology.hops(my_node, home_node)
    dram_lat = lat.dram(dram_hops)
    dram_level = _LVL_RMEM if remote else _LVL_LMEM
    prefetch_on = h.prefetch_enabled
    streams = h._streams[core]
    n_streams = len(streams)
    level_counts = h.level_counts

    abs_s = -stride if stride < 0 else stride
    total = 0
    done = 0  # accesses consumed by vector segments
    vaddr = base_vaddr
    left = count

    while left >= 2 and stride != 0:
        # ---- shape analysis: probe (first-access-per-line) columns ------
        l0 = vaddr >> line_bits
        if abs_s < line_size:
            dl = -1 if stride < 0 else 1
            l_last = (vaddr + (left - 1) * stride) >> line_bits
            n = (l0 - l_last if stride < 0 else l_last - l0) + 1
            if n == 1:
                break  # whole remainder on one line: the batched loop is O(1)
            ks = np.arange(n, dtype=np.int64)
            if stride < 0:
                nums = vaddr - ((l0 - ks + 1) << line_bits) + 1
                a = (nums + abs_s - 1) // abs_s
            else:
                nums = ((l0 + ks) << line_bits) - vaddr
                a = (nums + stride - 1) // stride
            a[0] = 0
        elif abs_s % line_size == 0 and (abs_s < page_size or abs_s % page_size == 0):
            dl = stride >> line_bits
            n = left
            a = np.arange(n, dtype=np.int64)
        else:
            break  # line-straddling long stride: non-uniform line deltas

        pages = (vaddr + a * stride) >> page_bits
        trans = np.empty(n, dtype=bool)
        trans[0] = True
        np.not_equal(pages[1:], pages[:-1], out=trans[1:])
        trans_idx = np.flatnonzero(trans)
        m = int(trans_idx.shape[0])
        q0 = int(pages[0])
        dq = int(pages[trans_idx[1]]) - q0 if m > 1 else 1

        # ---- residency scans -------------------------------------------
        mem1 = l1.progression_members(l0, dl, n)
        memt = tlb.progression_members(q0, dq, m)

        if mem1 and mem1[0] == 0 and memt and memt[0] == 0:
            # ---- hot sweep: all-L1-hit prefix --------------------------
            G = _consecutive_prefix(mem1)
            g_page = _consecutive_prefix(memt)
            if g_page < m:
                cap = int(trans_idx[g_page])  # first probe on an absent page
                if cap < G:
                    G = cap
            aG = int(a[G]) if G < n else left
            n_pages = int(np.searchsorted(trans_idx, G))
            l1.bulk_promote_progression(l0, dl, G)
            l1.bulk_credit(hits=aG)
            tlb.bulk_promote_progression(q0, dq, n_pages)
            tlb.bulk_credit(hits=aG)
            level_counts[_LVL_L1] += aG
            total += aG * lat_l1
            if record is not None:
                record.extend([(lat_l1, _LVL_L1, False)] * aG)
            done += aG
            vaddr += aG * stride
            left -= aG
            continue

        # ---- cold sweep: all-DRAM prefix -------------------------------
        F = n
        if mem1:
            F = mem1[0]
        if F:
            mem2 = l2.progression_members(l0, dl, F)
            if mem2:
                F = mem2[0]
        if F:
            mem3 = l3.progression_members(l0, dl, F)
            if mem3:
                F = mem3[0]
        if memt:
            cap = int(trans_idx[memt[0]])
            if cap < F:
                F = cap
        if prefetch_on:
            # A stream pointing into the probed range would interact
            # mid-segment; end the provable prefix just before it.  For
            # an ascending unit-line sweep a stream equal to the *first*
            # line is the chain-start match, which the closed form below
            # handles exactly.
            for v in streams:
                d = v - l0
                if dl == 1:
                    if 1 <= d < F:
                        F = d
                elif d % dl == 0:
                    k = d // dl
                    if 0 <= k < F:
                        F = k
        if F == 0:
            break  # first probe isn't provably cold: batched loop decides

        aF = int(a[F]) if F < n else left
        mF = int(np.searchsorted(trans_idx, F))  # page walks in the segment
        queue = h.contention.dram_access_bulk(home_node, hw_tid, F)
        h.memmgr.note_dram_accesses(home_node, remote, F)
        h.hop_counts[dram_hops] += F

        serve0 = serve_rest = dram_lat
        if prefetch_on:
            if dl == 1:
                j0 = -1
                for j in range(n_streams):
                    if streams[j] == l0:
                        j0 = j
                        break
                if j0 >= 0:
                    # Chain continues an existing stream: every probe is
                    # a prefetch hit and the stream ends one past the
                    # last probed line.
                    h.prefetch_hits += F
                    streams[j0] = l0 + F
                    serve0 = serve_rest = lat_l3
                else:
                    # Probe 0 starts the chain (round-robin replacement);
                    # probes 1..F-1 ride it.
                    h.prefetch_hits += F - 1
                    rr = h._stream_rr[core]
                    streams[rr] = l0 + F
                    h._stream_rr[core] = (rr + 1) % n_streams
                    serve_rest = lat_l3
            else:
                # No probe can match a stream (the scan truncated at any
                # that would): F straight replacements; only the last
                # write per slot survives.
                rr = h._stream_rr[core]
                for i in range(F - n_streams if F > n_streams else 0, F):
                    streams[(rr + i) % n_streams] = l0 + i * dl + 1
                h._stream_rr[core] = (rr + F) % n_streams

        lat_probe = np.full(F, serve_rest + queue + store_extra, dtype=np.int64)
        lat_probe[0] = serve0 + queue + store_extra
        if mF:
            lat_probe[trans_idx[:mF]] += tlb_walk
        total += int(lat_probe.sum()) + (aF - F) * lat_l1

        l1.bulk_credit(hits=aF - F, misses=F)
        l2.bulk_credit(misses=F)
        l3.bulk_credit(misses=F)
        tlb.bulk_credit(hits=aF - mF, misses=mF)
        level_counts[_LVL_L1] += aF - F
        level_counts[dram_level] += F

        l1.bulk_install_progression(l0, dl, F)
        l2.bulk_install_progression(l0, dl, F)
        l3.bulk_install_progression(l0, dl, F)
        tlb.bulk_install_progression(q0, dq, mF)

        if record is not None:
            reps = np.empty(F, dtype=np.int64)
            if F > 1:
                np.subtract(a[1:F], a[: F - 1], out=reps[:-1])
                reps[:-1] -= 1
            reps[-1] = aF - int(a[F - 1]) - 1
            lats = lat_probe.tolist()
            repl = reps.tolist()
            tmiss = trans[:F].tolist()
            l1_tup = (lat_l1, _LVL_L1, False)
            append = record.append
            extend = record.extend
            for k in range(F):
                append((lats[k], dram_level, tmiss[k]))
                r = repl[k]
                if r:
                    extend([l1_tup] * r)

        done += aF
        vaddr += aF * stride
        left -= aF

    if done:
        if is_store:
            h.store_count += done
        else:
            h.load_count += done
    if left > 0:
        total += h._access_run_python(
            hw_tid, vaddr, stride, left, home_node, is_store, record
        )
    return total
