"""repro — a data-centric profiler for parallel programs (SC'13 reproduction).

Reimplementation of Liu & Mellor-Crummey, "A Data-centric Profiler for
Parallel Programs" (SC'13): HPCToolkit-style data-centric profiling —
attributing memory-access costs to *variables* as well as instructions
and full calling contexts — rebuilt on top of a simulated NUMA machine,
program substrate, and PMU (see DESIGN.md for the substitution table).

Typical use::

    from repro import (
        power7_node, SimProcess, DataCentricProfiler, Analyzer, MetricKind,
    )
    from repro.pmu import MarkedEventEngine, PM_MRK_DATA_FROM_RMEM

    machine = power7_node()
    process = SimProcess(machine)
    profiler = DataCentricProfiler(process).attach()
    process.pmu = MarkedEventEngine(PM_MRK_DATA_FROM_RMEM, period=64)
    # ... run an application (see repro.apps or examples/quickstart.py) ...
    exp = Analyzer("run").add(profiler.finalize()).analyze()
    print(exp.top_variables(MetricKind.REMOTE, 5))
"""

from repro.errors import (
    ReproError,
    ConfigError,
    AddressError,
    AllocationError,
    SimulationError,
    ProfileError,
)
from repro.machine import (
    Machine,
    MachineSpec,
    Topology,
    LatencyModel,
    MemoryHierarchy,
    power7_node,
    amd_magnycours,
    intel_ivybridge,
    tiny_machine,
)
from repro.sim import (
    SimProcess,
    SimThread,
    Ctx,
    SimArray,
    LoadModule,
    SourceFile,
    MPIJob,
    omp_chunk,
)
from repro.pmu import (
    IBSEngine,
    MarkedEventEngine,
    EBSEngine,
    PEBSEngine,
    Sample,
    PM_MRK_DATA_FROM_RMEM,
    PM_MRK_DATA_FROM_L3,
)
from repro.core import (
    DataCentricProfiler,
    ProfilerConfig,
    Analyzer,
    ExperimentDB,
    MetricKind,
    StorageClass,
    merge_profiles,
    reduction_tree_merge,
    render_top_down,
    render_bottom_up,
    render_variable_table,
    advise,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigError",
    "AddressError",
    "AllocationError",
    "SimulationError",
    "ProfileError",
    "Machine",
    "MachineSpec",
    "Topology",
    "LatencyModel",
    "MemoryHierarchy",
    "power7_node",
    "amd_magnycours",
    "intel_ivybridge",
    "tiny_machine",
    "SimProcess",
    "SimThread",
    "Ctx",
    "SimArray",
    "LoadModule",
    "SourceFile",
    "MPIJob",
    "omp_chunk",
    "IBSEngine",
    "MarkedEventEngine",
    "EBSEngine",
    "PEBSEngine",
    "Sample",
    "PM_MRK_DATA_FROM_RMEM",
    "PM_MRK_DATA_FROM_L3",
    "DataCentricProfiler",
    "ProfilerConfig",
    "Analyzer",
    "ExperimentDB",
    "MetricKind",
    "StorageClass",
    "merge_profiles",
    "reduction_tree_merge",
    "render_top_down",
    "render_bottom_up",
    "render_variable_table",
    "advise",
    "__version__",
]
