"""Metric vectors attached to CCT nodes.

A sample contributes to several metrics at once: a raw sample count, the
measured latency, a period-scaled event estimate, a per-data-source
histogram, and TLB/store counts.  Different hardware engines emphasize
different columns (IBS -> latency; marked events -> event counts), and
the views choose which column ranks variables — matching how the paper's
case studies read either "% of total latency" (Sweep3D, LULESH) or "% of
remote memory accesses" (AMG, Streamcluster, NW).
"""

from __future__ import annotations

from enum import Enum

from repro.machine.hierarchy import LVL_RMEM
from repro.pmu.sample import Sample

__all__ = ["MetricVector", "MetricKind"]

_N_LEVELS = 5


class MetricKind(str, Enum):
    """Rankable metric columns."""

    SAMPLES = "samples"
    LATENCY = "latency"
    EVENTS = "events"
    REMOTE = "remote"
    TLB_MISS = "tlb_miss"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MetricVector:
    """Additive metrics for one CCT node (exclusive values at leaves)."""

    __slots__ = ("samples", "latency", "events", "levels", "tlb_misses", "stores")

    def __init__(self) -> None:
        self.samples = 0
        self.latency = 0
        self.events = 0        # period-scaled estimate of counted events
        self.levels = [0] * _N_LEVELS
        self.tlb_misses = 0
        self.stores = 0

    def add_sample(self, sample: Sample) -> None:
        self.samples += 1
        self.latency += sample.latency
        self.events += sample.period
        if 0 <= sample.level < _N_LEVELS:
            self.levels[sample.level] += 1
        if sample.tlb_miss:
            self.tlb_misses += 1
        if sample.is_store:
            self.stores += 1

    @property
    def remote(self) -> int:
        return self.levels[LVL_RMEM]

    def get(self, kind: MetricKind) -> int:
        if kind is MetricKind.SAMPLES:
            return self.samples
        if kind is MetricKind.LATENCY:
            return self.latency
        if kind is MetricKind.EVENTS:
            return self.events
        if kind is MetricKind.REMOTE:
            return self.remote
        if kind is MetricKind.TLB_MISS:
            return self.tlb_misses
        raise KeyError(kind)

    def merge(self, other: "MetricVector") -> None:
        self.samples += other.samples
        self.latency += other.latency
        self.events += other.events
        for i in range(_N_LEVELS):
            self.levels[i] += other.levels[i]
        self.tlb_misses += other.tlb_misses
        self.stores += other.stores

    def copy(self) -> "MetricVector":
        out = MetricVector()
        out.merge(self)
        return out

    def is_zero(self) -> bool:
        return (
            self.samples == 0
            and self.latency == 0
            and self.events == 0
            and self.tlb_misses == 0
            and self.stores == 0
            and not any(self.levels)
        )

    def as_dict(self) -> dict:
        return {
            "samples": self.samples,
            "latency": self.latency,
            "events": self.events,
            "levels": list(self.levels),
            "tlb_misses": self.tlb_misses,
            "stores": self.stores,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MetricVector":
        out = cls()
        out.samples = d["samples"]
        out.latency = d["latency"]
        out.events = d["events"]
        out.levels = list(d["levels"])
        out.tlb_misses = d["tlb_misses"]
        out.stores = d["stores"]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricVector(samples={self.samples}, latency={self.latency}, "
            f"events={self.events}, remote={self.remote})"
        )
