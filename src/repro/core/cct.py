"""Calling context trees (CCTs).

The CCT is HPCToolkit's compact profile representation: call paths share
prefixes, and metrics live on nodes.  Data-centric profiling (paper
§4.1.4) partitions each thread's samples across CCTs by storage class
and splices *data* nodes into the tree:

- heap samples:   <allocation call path> -> [heap data accesses] -> <access path>
- static samples: [static variable name] -> <access path>
- unknown/nonmem: <access path> only

Node identity is a structural key (function name + module-relative IP,
variable symbol, marker), deliberately process-independent so CCTs from
different threads, processes, and nodes coalesce by simple recursive
merging — the property the post-mortem reduction tree relies on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.core.metrics import MetricKind, MetricVector
from repro.errors import ProfileError

__all__ = ["CCT", "CCTNode", "PathEntry", "canonical_key_order"]

# A path entry is (key, info): `key` is the structural identity used for
# merging; `info` is display metadata (function/file/line/name).
PathEntry = tuple[tuple, dict | None]

KIND_ROOT = "root"
KIND_FRAME = "frame"
KIND_IP = "ip"
KIND_STATIC_VAR = "static-var"
KIND_HEAP_MARKER = "heap-marker"

HEAP_MARKER_KEY = (KIND_HEAP_MARKER,)
HEAP_MARKER_INFO = {"label": "heap data accesses"}


def canonical_key_order(key: tuple) -> tuple:
    """A total order over structural node keys (mixed str/int tuples).

    Python refuses ``int < str``, so each element is lifted into a
    type-tagged tuple.  Used to sort sibling nodes when serializing in
    canonical form: two semantically equal CCTs built in different merge
    orders then encode to identical bytes.
    """
    return tuple(
        (0, element, "") if isinstance(element, int) else (1, 0, str(element))
        for element in key
    )


class CCTNode:
    """One CCT node: structural key, display info, metrics, children."""

    __slots__ = ("key", "info", "metrics", "children")

    def __init__(self, key: tuple, info: dict | None = None) -> None:
        self.key = key
        self.info = info
        self.metrics = MetricVector()
        self.children: dict[tuple, "CCTNode"] = {}

    @property
    def kind(self) -> str:
        return self.key[0]

    def child(self, key: tuple, info: dict | None = None) -> "CCTNode":
        node = self.children.get(key)
        if node is None:
            node = CCTNode(key, info)
            self.children[key] = node
        elif node.info is None and info is not None:
            node.info = info
        return node

    def label(self) -> str:
        """Human-readable node label for views."""
        info = self.info or {}
        kind = self.key[0]
        if kind == KIND_ROOT:
            return str(self.key[1]) if len(self.key) > 1 else "root"
        if kind == KIND_FRAME:
            return info.get("label") or str(self.key[1])
        if kind == KIND_IP:
            fn, line = self.key[1], self.key[2]
            loc = info.get("location", "")
            suffix = f" [{loc}]" if loc else ""
            return f"{fn}: line {line}{suffix}"
        if kind == KIND_STATIC_VAR:
            return f"static variable {self.key[2]}"
        if kind == KIND_HEAP_MARKER:
            return "heap data accesses"
        return str(self.key)

    # -- aggregation -----------------------------------------------------------

    def inclusive(self) -> MetricVector:
        """Sum of this node's and all descendants' metrics."""
        total = self.metrics.copy()
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            total.merge(node.metrics)
            stack.extend(node.children.values())
        return total

    def inclusive_value(self, kind: MetricKind) -> int:
        total = self.metrics.get(kind)
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            total += node.metrics.get(kind)
            stack.extend(node.children.values())
        return total

    def walk(self) -> Iterator["CCTNode"]:
        """Depth-first pre-order iteration over the subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def find(self, predicate: Callable[["CCTNode"], bool]) -> list["CCTNode"]:
        return [n for n in self.walk() if predicate(n)]

    # -- merge / serialize -------------------------------------------------------

    def merge(self, other: "CCTNode") -> int:
        """Merge ``other``'s subtree into this node; returns nodes visited.

        ``other`` is never mutated, and nothing of ``other`` is aliased
        into ``self`` (children and info dicts are copied), so merge
        targets and sources stay independent afterwards.
        """
        if self.key != other.key:
            raise ProfileError(f"cannot merge nodes with keys {self.key} != {other.key}")
        visited = 1
        self.metrics.merge(other.metrics)
        if self.info is None and other.info is not None:
            self.info = dict(other.info)
        for key, other_child in other.children.items():
            mine = self.children.get(key)
            if mine is None:
                self.children[key] = other_child.clone()
                visited += other_child.node_count()
            else:
                visited += mine.merge(other_child)
        return visited

    def clone(self) -> "CCTNode":
        """Deep copy: no metrics, info, or child structure is shared."""
        out = CCTNode(self.key, dict(self.info) if self.info is not None else None)
        out.metrics = self.metrics.copy()
        out.children = {k: c.clone() for k, c in self.children.items()}
        return out

    def to_dict(self) -> dict:
        return {
            "key": list(self.key),
            "info": self.info,
            "metrics": self.metrics.as_dict(),
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CCTNode":
        node = cls(tuple(d["key"]), d["info"])
        node.metrics = MetricVector.from_dict(d["metrics"])
        for child in d["children"]:
            c = cls.from_dict(child)
            node.children[c.key] = c
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CCTNode({self.label()}, children={len(self.children)})"


class CCT:
    """A rooted calling context tree for one storage class."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.root = CCTNode((KIND_ROOT, name))

    def insert_path(self, path: Sequence[PathEntry]) -> CCTNode:
        """Walk/create nodes along ``path``; return the final node."""
        node = self.root
        for key, info in path:
            node = node.child(key, info)
        return node

    def add_sample_at(self, path: Sequence[PathEntry], sample) -> CCTNode:
        leaf = self.insert_path(path)
        leaf.metrics.add_sample(sample)
        return leaf

    def merge(self, other: "CCT") -> int:
        if self.name != other.name:
            raise ProfileError(f"cannot merge CCT {other.name!r} into {self.name!r}")
        return self.root.merge(other.root)

    def node_count(self) -> int:
        return self.root.node_count()

    def total(self, kind: MetricKind) -> int:
        return self.root.inclusive_value(kind)

    def clone(self) -> "CCT":
        out = CCT(self.name)
        out.root = self.root.clone()
        return out

    def to_dict(self) -> dict:
        return {"name": self.name, "root": self.root.to_dict()}

    @classmethod
    def from_dict(cls, d: dict) -> "CCT":
        cct = cls(d["name"])
        cct.root = CCTNode.from_dict(d["root"])
        return cct

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CCT({self.name}, nodes={self.node_count()})"
