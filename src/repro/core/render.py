"""Text rendering of the data-centric views (the GUI stand-in).

Each renderer returns a string shaped like the paper's hpcviewer panes:
a navigation column (variables, allocation paths, accesses) and a metric
column with inclusive values and percentages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.storage import StorageClass
from repro.core.views import BottomUpView, TopDownView, VariableReport
from repro.util.fmt import format_table, pct

if TYPE_CHECKING:  # pragma: no cover
    from repro.sanitize.report import SanitizerReport
    from repro.staticcheck.analyze import StaticReport
    from repro.staticcheck.reconcile import MetricReconciliation, Reconciliation

__all__ = [
    "render_top_down",
    "render_bottom_up",
    "render_variable_table",
    "render_sanitizer_report",
    "render_static_report",
    "render_hazard_catalogue",
    "render_reconciliation",
    "render_metric_reconciliation",
]


def _variable_block(var: VariableReport, grand_total: int, lines: list[str]) -> None:
    kind = f" ({var.alloc_kind})" if var.alloc_kind else ""
    lines.append(
        f"  {var.name}{kind}  [{var.storage}]  "
        f"{var.value} ({pct(var.value, grand_total)})"
    )
    if var.alloc_location:
        lines.append(f"    allocated at {var.alloc_location}")
    for frame in var.alloc_path:
        lines.append(f"      <- {frame}")
    if var.accesses:
        lines.append("    heap data accesses" if var.storage is StorageClass.HEAP
                     else "    accesses")
        for acc in var.accesses:
            text = f"  | {acc.line_text}" if acc.line_text else ""
            lines.append(
                f"      {acc.label}  {acc.value} ({pct(acc.value, grand_total)})"
                f"{text}"
            )


def render_top_down(view: TopDownView, top_n: int = 10, title: str = "") -> str:
    """Render the top-down data-centric pane."""
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"metric: {view.metric}   total: {view.grand_total}")
    for storage in (StorageClass.HEAP, StorageClass.STATIC,
                    StorageClass.STACK, StorageClass.UNKNOWN):
        value = view.storage_totals.get(storage, 0)
        lines.append(
            f"  {storage.value:<8} {value} ({pct(value, view.grand_total)})"
        )
    lines.append("")
    lines.append(f"top {min(top_n, len(view.variables))} variables:")
    for var in view.top(top_n):
        _variable_block(var, view.grand_total, lines)
    return "\n".join(lines)


def render_bottom_up(view: BottomUpView, top_n: int = 10, title: str = "") -> str:
    """Render the bottom-up (allocation call site) pane."""
    rows = []
    for site in view.top(top_n):
        names = ", ".join(site.names[:4])
        rows.append(
            (
                site.label,
                site.location,
                site.value,
                pct(site.value, view.grand_total),
                site.n_contexts,
                names,
            )
        )
    return format_table(
        ("alloc site", "location", view.metric.value, "share", "contexts", "variables"),
        rows,
        title=title or "bottom-up view: allocation call sites",
    )


def render_variable_table(view: TopDownView, top_n: int = 10, title: str = "") -> str:
    """Compact variable ranking (one row per variable)."""
    rows = []
    for var in view.top(top_n):
        rows.append(
            (
                var.name,
                var.storage.value,
                var.value,
                pct(var.value, view.grand_total),
                f"{100 * var.remote_fraction:.0f}%",
                f"{100 * var.tlb_miss_fraction:.0f}%",
            )
        )
    return format_table(
        ("variable", "class", view.metric.value, "share", "remote", "tlbmiss"),
        rows,
        title=title or "variables ranked by metric",
    )


def render_static_report(
    report: "StaticReport", top_n: int = 10, title: str = ""
) -> str:
    """Render a static-analysis report in the data-centric shape: the
    call-graph summary, the per-variable reaching table, then each
    predicted hazard with its allocation contexts."""
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"static analysis: {report.app}/{report.variant}   "
        f"functions={report.n_functions} edges={report.n_edges} "
        f"reachable={report.n_reachable}"
        + ("   (context enumeration truncated)" if report.truncated else "")
    )
    lines.append("")
    rows = []
    for var in report.variables[:top_n]:
        rows.append(
            (
                var.name,
                var.storage,
                var.nbytes,
                f"{var.share:.1%}",
                var.n_alloc_contexts,
                var.n_access_contexts,
            )
        )
    lines.append(format_table(
        ("variable", "class", "bytes", "share", "alloc ctxs", "access ctxs"),
        rows,
        title="variables by static access share",
    ))
    lines.append("")
    if not report.findings:
        lines.append("no hazards predicted")
        return "\n".join(lines)
    lines.append(f"{len(report.findings)} predicted hazard(s):")
    for finding in report.findings:
        lines.append("")
        lines.append(
            f"  [{finding.code}] {finding.variable} [{finding.storage}] "
            f"share {finding.share:.1%}  at {finding.site}"
        )
        lines.append(f"    {finding.message}")
        if finding.predicted_impact > 0:
            lines.append(
                f"    predicted impact: fixing this saves "
                f"{finding.predicted_impact:.1%} of predicted cycles"
            )
        for ctx in finding.contexts:
            lines.append(f"    alloc context: {ctx}")
    return "\n".join(lines)


def render_hazard_catalogue(min_share: float | None = None) -> str:
    """The H001..H004 catalogue with thresholds from the formula registry.

    Every numeric threshold is resolved through the shared override
    registry under the ``("static",)`` keys — the same constants the
    analyzer, the predictor and the dynamic triage read, so the printed
    catalogue can never drift from what the passes actually apply.
    """
    from repro.metrics.boundness import REGISTRY

    keys = ("static",)

    def const(name: str) -> float:
        return REGISTRY.constant_value(name, keys)

    ms = min_share if min_share is not None else const("min_share")
    lines = [
        "hazard catalogue (thresholds resolved from the formula registry):",
        "",
        "  H001  master first-touch before a multi-node parallel region",
        "        placement-committing store runs on the master thread while",
        "        a team spanning >1 NUMA node accesses the variable with",
        f"        static share >= min_share ({ms:g});",
        "        dynamic confirmation needs remote_dram_fraction >=",
        f"        confirm_remote_fraction ({const('confirm_remote_fraction'):g}); a missed",
        "        variable is one that is remote-dominant dynamically",
        f"        (>= remote_dominant_fraction, {const('remote_dominant_fraction'):g}) without a",
        "        prediction",
        "",
        "  H002  false-sharing-prone layout",
        "        byte-disjoint per-thread store footprints landing in one",
        "        cache line (line geometry from the machine spec; predicate",
        "        shared with the dynamic sanitizer via repro.util.linemath)",
        "",
        "  H003  allocation in a parallel body or loop without a free",
        "        structural: unbounded growth under iteration, no threshold",
        "",
        "  H004  dead allocation",
        "        structural: site unreachable from every entry, or the",
        "        variable is never accessed, touched, or freed",
        "",
        "  triage constants shared with the boundness DAG:",
        f"        memory_bound_fraction = {const('memory_bound_fraction'):g}",
        f"        numa_bound_remote     = {const('numa_bound_remote'):g}",
        f"        tlb_pressure          = {const('tlb_pressure'):g}",
    ]
    return "\n".join(lines)


def render_reconciliation(rec: "Reconciliation", title: str = "") -> str:
    """Render static-vs-dynamic verdicts plus the precision/recall line."""
    lines: list[str] = []
    if title:
        lines.append(title)
    rows = []
    for v in rec.verdicts:
        rows.append(
            (
                v.code,
                v.variable,
                v.label,
                f"{v.remote_fraction:.0%}",
                f"{v.dynamic_share:.1%}",
                v.samples,
                v.detail,
            )
        )
    lines.append(format_table(
        ("code", "variable", "verdict", "remote", "share", "samples", "detail"),
        rows,
        title=f"reconciliation: {rec.app}/{rec.variant}",
    ))
    lines.append(
        f"confirmed={rec.n_confirmed} unconfirmed={rec.n_unconfirmed} "
        f"missed={rec.n_missed}   "
        f"precision={rec.precision:.0%} recall={rec.recall:.0%}"
    )
    for warning in rec.warnings:
        lines.append(f"warning: {warning}")
    return "\n".join(lines)


def render_metric_reconciliation(
    rec: "MetricReconciliation", title: str = ""
) -> str:
    """Render per-variable static-vs-dynamic derived-metric comparison."""
    lines: list[str] = []
    if title:
        lines.append(title)
    rows = []
    for vm in rec.variables:
        for delta in vm.deltas:
            rows.append(
                (
                    vm.variable,
                    delta.metric,
                    f"{delta.static_value:.3f}",
                    f"{delta.dynamic_value:.3f}",
                    f"{delta.rel_error:.1%}",
                )
            )
        rows.append(
            (
                vm.variable,
                "verdict",
                vm.static_verdict,
                vm.dynamic_verdict,
                "agree" if vm.agree else "DISAGREE",
            )
        )
    lines.append(format_table(
        ("variable", "metric", "static", "dynamic", "rel err"),
        rows,
        title=(
            f"metric reconciliation: {rec.app}/{rec.variant} "
            f"(sampling vocabulary: {rec.vocabulary})"
        ),
    ))
    lines.append(
        f"variables compared={len(rec.variables)} "
        f"verdict agreement={rec.n_agree}/{len(rec.variables)}"
    )
    for warning in rec.warnings:
        lines.append(f"warning: {warning}")
    return "\n".join(lines)


def render_sanitizer_report(report: "SanitizerReport", title: str = "") -> str:
    """Render sanitizer findings in the data-centric shape: variable first,
    then its allocation context, then the offending access contexts."""
    lines: list[str] = []
    if title:
        lines.append(title)
    procs = ", ".join(report.process_names) or "<no processes>"
    lines.append(f"sanitized processes: {procs}")
    if report.ok:
        lines.append("no findings")
        return "\n".join(lines)
    kinds = "  ".join(f"{k}={n}" for k, n in sorted(report.kinds().items()))
    lines.append(f"{len(report.findings)} finding(s):  {kinds}")
    for finding in report.findings:
        lines.append("")
        lines.append(f"  {finding.headline()}")
        var = finding.variable
        if var.alloc_location:
            lines.append(f"    allocated at {var.alloc_location}")
        for frame in reversed(var.alloc_path):
            lines.append(f"      <- {frame}")
        if finding.detail:
            lines.append(f"    detail: {finding.detail}")
        for ctx in finding.contexts:
            who = ctx.thread or "<alloc site>"
            lines.append(f"    access: {who}  at {ctx.location}")
            for frame in reversed(ctx.path):
                lines.append(f"      <- {frame}")
    return "\n".join(lines)
