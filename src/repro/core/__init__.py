"""The paper's contribution: scalable data-centric profiling.

Pipeline (paper Figure 3): the online profiler
(:class:`~repro.core.profiler.DataCentricProfiler`) observes PMU samples
and allocator calls, attributing costs on-the-fly to per-thread calling
context trees partitioned by storage class; the post-mortem analyzer
(:mod:`repro.core.merge`, :mod:`repro.core.analyzer`) coalesces profiles
across threads and processes with a reduction tree and resolves symbols;
the presentation layer (:mod:`repro.core.views`,
:mod:`repro.core.render`) produces the top-down and bottom-up
data-centric views shown in the paper's figures.
"""

from repro.core.storage import StorageClass
from repro.core.metrics import MetricVector, MetricKind
from repro.core.cct import CCT, CCTNode
from repro.core.unwind import unwind_keys, UNWIND_PER_FRAME
from repro.core.varmap import HeapDataMap, StaticDataMap, HeapVariable
from repro.core.profiler import DataCentricProfiler, ProfilerConfig
from repro.core.profiledb import ProfileDB, ThreadProfile
from repro.core.merge import merge_profiles, reduction_tree_merge, MergeStats
from repro.core.analyzer import Analyzer, ExperimentDB
from repro.core.views import TopDownView, BottomUpView, VariableReport
from repro.core.render import (
    render_top_down,
    render_bottom_up,
    render_variable_table,
    render_static_report,
    render_reconciliation,
)
from repro.core.guidance import advise, Recommendation
from repro.core.derived import BoundnessReport, derive_from_profile, derive_from_machine
from repro.core.stackmap import StackDataMap, StackVariable
from repro.core.treeview import render_cct, hot_path
from repro.core.baselines import CodeCentricProfiler, TracingProfiler

__all__ = [
    "StorageClass",
    "MetricVector",
    "MetricKind",
    "CCT",
    "CCTNode",
    "unwind_keys",
    "UNWIND_PER_FRAME",
    "HeapDataMap",
    "StaticDataMap",
    "HeapVariable",
    "DataCentricProfiler",
    "ProfilerConfig",
    "ProfileDB",
    "ThreadProfile",
    "merge_profiles",
    "reduction_tree_merge",
    "MergeStats",
    "Analyzer",
    "ExperimentDB",
    "TopDownView",
    "BottomUpView",
    "VariableReport",
    "render_top_down",
    "render_bottom_up",
    "render_variable_table",
    "render_static_report",
    "render_reconciliation",
    "advise",
    "Recommendation",
    "BoundnessReport",
    "derive_from_profile",
    "derive_from_machine",
    "StackDataMap",
    "StackVariable",
    "render_cct",
    "hot_path",
    "CodeCentricProfiler",
    "TracingProfiler",
]
