"""Stack-variable attribution (the paper's §7 future-work extension).

The SC'13 tool treats stack data as *unknown* ("stack variables seldom
become data locality bottlenecks").  Its stated future work is to
associate measurements with stack-allocated variables; this module
implements that: threads register named stack ranges (the moral
equivalent of reading DWARF frame-variable info), and the profiler —
when configured with ``track_stack=True`` — resolves effective addresses
against them into a dedicated ``StorageClass.STACK`` CCT, with the same
dummy-variable-node structure as statics.

Ranges are registered per thread and scoped: leaving the owning frame
(or explicit release) retires the range, so recycled stack addresses are
never misattributed — the same discipline the heap map applies to frees.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.cct import PathEntry
from repro.errors import ProfileError
from repro.util.intervals import IntervalMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.thread import SimThread

__all__ = ["StackVariable", "StackDataMap", "stack_var_entry", "KIND_STACK_VAR"]

KIND_STACK_VAR = "stack-var"


class StackVariable:
    """A named, live stack range in one thread's frame."""

    __slots__ = ("name", "thread_name", "function_name", "addr", "size", "decl_location")

    def __init__(
        self,
        name: str,
        thread_name: str,
        function_name: str,
        addr: int,
        size: int,
        decl_location: str = "",
    ) -> None:
        self.name = name
        self.thread_name = thread_name
        self.function_name = function_name
        self.addr = addr
        self.size = size
        self.decl_location = decl_location

    @property
    def end(self) -> int:
        return self.addr + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StackVariable({self.function_name}::{self.name}, {self.size}B @ {self.addr:#x})"


def stack_var_entry(var: StackVariable) -> PathEntry:
    """The dummy CCT node for a stack variable.

    Identity is (function, name): the same local in the same function
    coalesces across threads and processes, like statics do by symbol.
    """
    key = (KIND_STACK_VAR, var.function_name, var.name)
    info = {
        "label": f"stack {var.function_name}::{var.name}",
        "location": var.decl_location,
    }
    return (key, info)


class StackDataMap:
    """Per-process map of live named stack ranges (all threads)."""

    def __init__(self) -> None:
        self._per_thread: dict[str, IntervalMap] = {}
        self.registered = 0
        self.released = 0

    def register(self, var: StackVariable) -> StackVariable:
        ranges = self._per_thread.get(var.thread_name)
        if ranges is None:
            ranges = IntervalMap()
            self._per_thread[var.thread_name] = ranges
        ranges.add(var.addr, var.end, var)
        self.registered += 1
        return var

    def release(self, thread_name: str, addr: int) -> None:
        ranges = self._per_thread.get(thread_name)
        if ranges is None:
            raise ProfileError(f"no stack ranges registered for thread {thread_name}")
        ranges.remove(addr)
        self.released += 1

    def release_all(self, thread_name: str) -> None:
        """Retire every range of a thread (e.g. at region/frame exit)."""
        ranges = self._per_thread.get(thread_name)
        if ranges is not None:
            self.released += len(ranges)
            ranges.clear()

    def lookup(self, thread: "SimThread", ea: int) -> StackVariable | None:
        """Resolve ``ea`` against the *accessing thread's* stack ranges.

        Stacks are thread-private; an address that happens to fall inside
        another thread's stack slab is not this thread's variable.
        """
        ranges = self._per_thread.get(thread.name)
        if ranges is None:
            return None
        return ranges.lookup(ea)

    @property
    def live(self) -> int:
        return sum(len(r) for r in self._per_thread.values())
