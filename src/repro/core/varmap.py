"""Variable tracking: static, heap, and unknown data (paper §4.1.3).

``StaticDataMap`` mirrors the symbol-table side: when a load module is
loaded its static variables' address ranges become resolvable; unloading
removes them.  ``HeapDataMap`` mirrors the malloc-wrapping side: live
blocks map to their allocation call paths.  Blocks below the tracking
threshold are *registered but anonymous* — their frees must still be
processed (else a recycled address would be attributed to the dead
variable), but no calling context is captured for them and samples
hitting them fall into unknown data, exactly the accuracy/overhead trade
the paper describes.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.core.cct import KIND_STATIC_VAR, PathEntry
from repro.errors import ProfileError
from repro.util.intervals import IntervalMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.loader import LoadModule, StaticVar

__all__ = ["HeapVariable", "HeapDataMap", "StaticDataMap", "static_var_entry"]

_heap_var_ids = itertools.count(1)


class HeapVariable:
    """A live heap block and the allocation context identifying it."""

    __slots__ = ("uid", "addr", "size", "alloc_path", "site_label")

    def __init__(
        self, addr: int, size: int, alloc_path: tuple[PathEntry, ...], site_label: str
    ) -> None:
        self.uid = next(_heap_var_ids)
        self.addr = addr
        self.size = size
        self.alloc_path = alloc_path
        self.site_label = site_label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeapVariable({self.site_label}, {self.size}B @ {self.addr:#x})"


class HeapDataMap:
    """Address-range map of live heap blocks to allocation contexts."""

    def __init__(self) -> None:
        self._ranges = IntervalMap()
        self._anonymous: set[int] = set()  # small blocks: freed but never attributed
        self.tracked = 0
        self.skipped_small = 0

    def track(self, var: HeapVariable) -> None:
        self._ranges.add(var.addr, var.addr + var.size, var)
        self.tracked += 1

    def register_anonymous(self, addr: int) -> None:
        self._anonymous.add(addr)
        self.skipped_small += 1

    def untrack(self, addr: int) -> None:
        """Process a free: remove whichever record covers ``addr``."""
        if addr in self._anonymous:
            self._anonymous.discard(addr)
            return
        hit = self._ranges.lookup_interval(addr)
        if hit is None:
            raise ProfileError(f"free of unrecorded block at {addr:#x}")
        start, _end, _var = hit
        if start != addr:
            raise ProfileError(f"free of interior pointer {addr:#x} (block at {start:#x})")
        self._ranges.remove(start)

    def lookup(self, ea: int) -> HeapVariable | None:
        return self._ranges.lookup(ea)

    @property
    def live_tracked(self) -> int:
        return len(self._ranges)


def static_var_entry(var: "StaticVar") -> PathEntry:
    """The dummy CCT node standing for a static variable (paper §4.1.4)."""
    key = (KIND_STATIC_VAR, var.module.name, var.name)
    location = var.source.location(var.decl_line) if var.source else var.module.name
    info = {"label": f"static {var.name}", "location": location}
    return (key, info)


class StaticDataMap:
    """Resolves effective addresses against loaded modules' symbol tables."""

    def __init__(self) -> None:
        self._modules: list["LoadModule"] = []

    def on_load(self, module: "LoadModule") -> None:
        if module in self._modules:
            raise ProfileError(f"module {module.name} registered twice")
        self._modules.append(module)

    def on_unload(self, module: "LoadModule") -> None:
        if module not in self._modules:
            raise ProfileError(f"module {module.name} not registered")
        self._modules.remove(module)

    def lookup(self, ea: int) -> "StaticVar | None":
        for module in self._modules:
            var = module.static_at(ea)
            if var is not None:
                return var
        return None

    @property
    def n_modules(self) -> int:
        return len(self._modules)

    def n_statics(self) -> int:
        return sum(len(m.statics) for m in self._modules)
