"""Post-mortem analyzer: profiles in, experiment database out (paper §4.2).

``Analyzer`` gathers per-process profile databases, merges them (via the
reduction tree), and produces an :class:`ExperimentDB` — the object the
GUI would load — exposing the queries the case studies rely on: storage
class shares, top variables by metric, a variable's hottest accesses.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.merge import MergeStats, reduction_tree_merge
from repro.core.metrics import MetricKind
from repro.core.profiledb import ProfileDB, ThreadProfile
from repro.core.storage import StorageClass
from repro.core.views import (
    BottomUpView,
    TopDownView,
    VariableReport,
    build_bottom_up,
    build_top_down,
)
from repro.errors import ProfileError

__all__ = ["Analyzer", "ExperimentDB"]


class ExperimentDB:
    """The merged, queryable result of one profiled execution."""

    def __init__(self, merged: ProfileDB, merge_stats: MergeStats | None = None) -> None:
        profiles = list(merged.all_profiles())
        if len(profiles) != 1:
            raise ProfileError("ExperimentDB expects a fully merged ProfileDB")
        self.db = merged
        self.profile: ThreadProfile = profiles[0]
        self.merge_stats = merge_stats
        self._top_down_cache: dict[tuple, TopDownView] = {}

    # -- views -------------------------------------------------------------

    def top_down(self, kind: MetricKind, accesses_per_var: int = 5) -> TopDownView:
        key = (kind, accesses_per_var)
        view = self._top_down_cache.get(key)
        if view is None:
            view = build_top_down(self.profile, kind, accesses_per_var)
            self._top_down_cache[key] = view
        return view

    def bottom_up(self, kind: MetricKind) -> BottomUpView:
        return build_bottom_up(self.profile, kind)

    # -- scalar queries ----------------------------------------------------

    def total(self, kind: MetricKind) -> int:
        return self.top_down(kind).grand_total

    def storage_share(self, storage: StorageClass, kind: MetricKind) -> float:
        return self.top_down(kind).storage_share(storage)

    def top_variables(
        self, kind: MetricKind, n: int = 10, storage: StorageClass | None = None
    ) -> list[VariableReport]:
        variables = self.top_down(kind).variables
        if storage is not None:
            variables = [v for v in variables if v.storage is storage]
        return variables[:n]

    def variable_share(self, name: str, kind: MetricKind) -> float:
        """Combined share of all variables with this name (alloc contexts
        with the same source-level name sum together)."""
        return sum(
            v.share for v in self.top_down(kind).variables if v.name == name
        )

    def variable(self, name: str, kind: MetricKind) -> VariableReport | None:
        """The largest single context for this variable name."""
        candidates = [v for v in self.top_down(kind).variables if v.name == name]
        return candidates[0] if candidates else None

    def size_bytes(self) -> int:
        return self.db.size_bytes()


class Analyzer:
    """Collects per-process profiles and builds the experiment database."""

    def __init__(self, name: str = "job") -> None:
        self.name = name
        self._dbs: list[ProfileDB] = []

    def add(self, db: ProfileDB) -> "Analyzer":
        self._dbs.append(db)
        return self

    def add_all(self, dbs: Iterable[ProfileDB]) -> "Analyzer":
        for db in dbs:
            self.add(db)
        return self

    @property
    def n_profiles(self) -> int:
        return sum(len(db.threads) for db in self._dbs)

    def raw_size_bytes(self) -> int:
        """Total size of the unmerged per-process profiles."""
        return sum(db.size_bytes() for db in self._dbs)

    def analyze(self, arity: int = 2) -> ExperimentDB:
        if not self._dbs:
            raise ProfileError("no profiles to analyze")
        merged, stats = reduction_tree_merge(self._dbs, name=self.name, arity=arity)
        return ExperimentDB(merged, stats)
