"""Call-stack unwinding and the precise-IP leaf correction (§4.1.2).

The simulator's threads expose their frame stacks directly, so the
*mechanics* of unwinding are trivial here; what this module preserves
from the paper is (a) the structural path construction — frame keys that
are process-independent so CCTs merge across threads/processes/nodes —
and (b) the *cost model*: real unwinding pays per frame, which is what
the trampoline optimization (:mod:`repro.core.trampoline`) amortizes for
allocation-heavy codes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.cct import KIND_FRAME, KIND_IP, PathEntry
from repro.errors import ProfileError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess
    from repro.sim.thread import Frame, SimThread

__all__ = [
    "frame_entry",
    "ip_entry",
    "unwind_keys",
    "UNWIND_PER_FRAME",
    "GETCONTEXT_SLOW",
    "GETCONTEXT_FAST",
]

# Cycle costs of the measurement machinery (charged to the monitored
# thread when overhead accounting is on).
UNWIND_PER_FRAME = 40     # binary analysis + return-address lookup per frame
GETCONTEXT_SLOW = 150     # libc getcontext
GETCONTEXT_FAST = 15      # inlined assembly register read (paper strategy 2)


def frame_entry(frame: "Frame") -> PathEntry:
    """Structural path entry for one stack frame.

    Identity is (callee function name, module-relative call-site IP) —
    stable across processes that load the same program image.
    """
    fn = frame.function
    callsite = frame.callsite_ip
    rel_callsite = callsite
    if callsite and fn.module.loaded:
        # Normalize to the module base when the call site lies in the
        # callee's own module (the overwhelmingly common case); calls that
        # cross modules keep a raw IP, which still merges consistently
        # because our processes load identical images in identical order.
        base = fn.module.text_base
        if callsite >= base:
            rel_callsite = callsite - base
    key = (KIND_FRAME, fn.name, rel_callsite)
    info = {"label": fn.name, "location": fn.location()}
    return (key, info)


def ip_entry(process: "SimProcess", ip: int) -> PathEntry:
    """Structural path entry for a leaf instruction pointer."""
    module = process.module_of_ip(ip)
    if module is None:
        raise ProfileError(f"ip {ip:#x} not in any loaded module of {process.name}")
    fn, line, slot = module.resolve_ip(ip)
    key = (KIND_IP, fn.name, line, slot)
    info = {
        "label": f"{fn.name}:{line}",
        "location": fn.source.location(line),
        "line_text": fn.source.line_text(line),
    }
    return (key, info)


def unwind_keys(
    process: "SimProcess", thread: "SimThread", leaf_ip: int | None
) -> list[PathEntry]:
    """Full calling-context path for a sample taken in ``thread``.

    The leaf of the unwound context is *replaced* by the PMU's precise IP
    (when given) — the §4.1.2 correction that avoids skid between the
    monitored instruction and the interrupt.
    """
    path = [frame_entry(f) for f in thread.frames]
    if leaf_ip is not None:
        path.append(ip_entry(process, leaf_ip))
    return path


def unwind_cost(depth: int, fast_context: bool) -> int:
    """Measurement cost in cycles of one full unwind of ``depth`` frames."""
    context = GETCONTEXT_FAST if fast_context else GETCONTEXT_SLOW
    return context + depth * UNWIND_PER_FRAME
