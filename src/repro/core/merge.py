"""Post-mortem profile merging (paper §4.2).

Profiles from different threads and processes coalesce by storage class:
heap variables merge when their allocation call paths match, static
variables when their symbol names match, and access paths merge
recursively underneath — all of which falls out of the CCTs' structural
node keys.

``reduction_tree_merge`` mirrors HPCToolkit's MPI reduction-tree
parallelization: profiles are merged pairwise in ``ceil(log2 n)`` rounds;
the returned :class:`MergeStats` reports both total work (node visits,
linear in profile count) and the critical-path work of the parallel
reduction — the quantities behind the paper's scalability claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.profiledb import ProfileDB, ThreadProfile
from repro.core.storage import StorageClass
from repro.errors import ProfileError

__all__ = [
    "MergeStats",
    "consensus_meta",
    "merge_thread_profiles",
    "merge_profiles",
    "reduction_tree_merge",
]


@dataclass
class MergeStats:
    """Cost accounting for a merge."""

    profiles_in: int = 0
    rounds: int = 0
    pairwise_merges: int = 0
    node_visits: int = 0          # total work across all merges
    critical_path_visits: int = 0  # slowest chain through the reduction tree
    per_round_visits: list[int] = field(default_factory=list)


def merge_thread_profiles(
    target: ThreadProfile, source: ThreadProfile, stats: MergeStats | None = None
) -> ThreadProfile:
    """Merge ``source``'s CCTs into ``target`` (in place; returns target).

    ``source`` is read-only: it is neither mutated nor aliased into
    ``target`` (subtrees are deep-copied on first contact), so the same
    source can safely be merged again — or serialized — afterwards.
    """
    visits = 0
    for storage in source.storage_classes():
        source_cct = source.get_cct(storage)
        visits += target.cct(storage).merge(source_cct)
    if stats is not None:
        stats.node_visits += visits
        stats.pairwise_merges += 1
    return target


def _collapse_db(db: ProfileDB, stats: MergeStats | None = None) -> ThreadProfile:
    """Merge all thread profiles of one DB into a single *fresh* profile.

    The leaf step of the reduction tree.  Always copies — even for a
    single-thread DB — so that later rounds, which merge into their
    group's first element in place, only ever mutate tree-internal
    profiles, never the caller's input databases.
    """
    merged = ThreadProfile(f"{db.process_name}.merged")
    for profile in db.all_profiles():
        merge_thread_profiles(merged, profile, stats)
    return merged


def consensus_meta(dbs: Sequence[ProfileDB]) -> dict[str, str]:
    """Metadata every input agrees on (same key, same value in all DBs).

    Rank-specific keys (rank, seed, elapsed cycles) differ and drop out;
    job-level provenance (app, variant, n_ranks, the machine preset the
    ranks ran on) survives the merge.  Intersection is associative and
    commutative, so any merge schedule yields the same result — the
    byte-identity-across-schedules invariant holds.
    """
    if not dbs:
        return {}
    out = dict(dbs[0].meta)
    for db in dbs[1:]:
        meta = db.meta
        out = {k: v for k, v in out.items() if meta.get(k) == v}
        if not out:
            break
    return out


def merge_profiles(dbs: Sequence[ProfileDB], name: str = "job") -> ProfileDB:
    """Sequentially merge many process DBs into one job-level DB.

    Inputs are never mutated (bit-identical before and after).
    """
    if not dbs:
        raise ProfileError("nothing to merge")
    stats = MergeStats(profiles_in=sum(len(db.threads) for db in dbs))
    merged = ThreadProfile(f"{name}.merged")
    for db in dbs:
        for profile in db.all_profiles():
            merge_thread_profiles(merged, profile, stats)
    out = ProfileDB(name)
    out.add_thread(merged)
    out.meta.update(consensus_meta(dbs))
    return out


def reduction_tree_merge(
    dbs: Sequence[ProfileDB], name: str = "job", arity: int = 2
) -> tuple[ProfileDB, MergeStats]:
    """Merge process DBs with a reduction tree, reporting cost stats.

    Semantically identical to :func:`merge_profiles`; the difference is
    the measured schedule: with ``n`` inputs and fan-in ``arity`` the
    merge finishes in ``ceil(log_arity n)`` rounds, and within a round the
    pairwise merges are independent, so the critical path is the maximum
    (not the sum) of per-round chain costs.

    Caller-supplied databases are never mutated: the leaf collapse deep-
    copies each input, and subsequent rounds merge into those internal
    copies only.  :mod:`repro.parallel.merge` executes this same schedule
    for real on a process pool.
    """
    if not dbs:
        raise ProfileError("nothing to merge")
    if arity < 2:
        raise ProfileError("reduction arity must be >= 2")
    stats = MergeStats(profiles_in=sum(len(db.threads) for db in dbs))

    # Leaf step: collapse each process's threads locally (each process does
    # its own collapse in parallel, so the critical path takes the max).
    leaf_visits = []
    work: list[ThreadProfile] = []
    for db in dbs:
        before = stats.node_visits
        work.append(_collapse_db(db, stats))
        leaf_visits.append(stats.node_visits - before)
    stats.per_round_visits.append(sum(leaf_visits))
    stats.critical_path_visits += max(leaf_visits) if leaf_visits else 0

    while len(work) > 1:
        stats.rounds += 1
        round_total = 0
        round_max = 0
        next_work: list[ThreadProfile] = []
        for i in range(0, len(work), arity):
            group = work[i : i + arity]
            target = group[0]
            before = stats.node_visits
            for source in group[1:]:
                merge_thread_profiles(target, source, stats)
            cost = stats.node_visits - before
            round_total += cost
            if cost > round_max:
                round_max = cost
            next_work.append(target)
        stats.per_round_visits.append(round_total)
        stats.critical_path_visits += round_max
        work = next_work

    merged = work[0]
    merged.thread_name = f"{name}.merged"
    out = ProfileDB(name)
    out.add_thread(merged)
    out.meta.update(consensus_meta(dbs))
    return out, stats
