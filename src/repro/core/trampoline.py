"""Trampoline optimization for allocation tracking (paper §4.1.3).

Unwinding the full call stack at every heap allocation is the dominant
tracking cost for allocation-heavy codes (AMG2006: +150%).  The paper's
third strategy places a marker — a *trampoline* — at the least common
ancestor frame of two temporally adjacent allocations, so each new
allocation only unwinds the call-path suffix above the marked frame and
reuses the cached prefix below it.

Here the cached state is the previous allocation's frame list (by frame
identity) and its already-built path entries; the LCA is found by
scanning for the longest common prefix of *physical frames* (Frame
``serial`` identity, not structural equality — a re-entered function is
a different frame, exactly as the stack marker would see it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.cct import PathEntry
from repro.core.unwind import frame_entry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.thread import SimThread

__all__ = ["TrampolineUnwinder"]


class TrampolineUnwinder:
    """Per-thread cached unwinder for allocation call paths."""

    __slots__ = ("_cached_serials", "_cached_entries", "frames_unwound", "frames_reused")

    def __init__(self) -> None:
        self._cached_serials: list[int] = []
        self._cached_entries: list[PathEntry] = []
        self.frames_unwound = 0
        self.frames_reused = 0

    def unwind(self, thread: "SimThread") -> tuple[list[PathEntry], int]:
        """Return (path entries for the current stack, frames actually unwound).

        The second element is the *cost driver*: frames above the
        trampoline that had to be walked this time.
        """
        frames = thread.frames
        serials = self._cached_serials
        common = 0
        limit = min(len(frames), len(serials))
        while common < limit and frames[common].serial == serials[common]:
            common += 1
        new_entries = [frame_entry(f) for f in frames[common:]]
        entries = self._cached_entries[:common] + new_entries
        unwound = len(frames) - common
        self.frames_unwound += unwound
        self.frames_reused += common
        self._cached_serials = [f.serial for f in frames]
        self._cached_entries = entries
        return entries, unwound

    def invalidate(self) -> None:
        """Drop the cache (e.g. when a thread's stack is reset per region)."""
        self._cached_serials = []
        self._cached_entries = []
