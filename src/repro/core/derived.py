"""Derived metrics: is this execution memory-bound? (paper §5)

Before applying data-centric analysis, the paper "computes derived
metrics to identify whether a program is memory-bound enough for data
locality optimization".  This module implements that triage on top of
either machine-level counters (when you own the run) or a merged profile
(when you only have the measurement data):

- *memory cycle fraction*: sampled access latency relative to total
  sampled cost — the headroom locality optimization could recover;
- *DRAM intensity*: fraction of sampled accesses served by memory;
- *remote intensity*: fraction of DRAM-serviced samples that crossed the
  interconnect (the NUMA-specific headroom);
- *TLB intensity*: page-walk pressure (long-stride/irregular signature).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import ExperimentDB
from repro.core.metrics import MetricKind
from repro.core.storage import StorageClass
from repro.machine.hierarchy import LVL_LMEM, LVL_RMEM
from repro.machine.presets import Machine

__all__ = ["BoundnessReport", "derive_from_profile", "derive_from_machine"]

_MEMORY_BOUND_FRACTION = 0.25
_NUMA_BOUND_REMOTE = 0.4


@dataclass(frozen=True)
class BoundnessReport:
    """Triage verdict for a profiled execution."""

    memory_cycle_fraction: float   # sampled latency / total sampled cycles
    dram_intensity: float          # DRAM-serviced / all memory samples
    remote_intensity: float        # remote / DRAM-serviced samples
    tlb_intensity: float           # TLB-missing / all memory samples
    samples: int

    @property
    def memory_bound(self) -> bool:
        """Worth running data-centric analysis at all (paper's gate)."""
        return self.memory_cycle_fraction >= _MEMORY_BOUND_FRACTION

    @property
    def numa_bound(self) -> bool:
        """Worth examining NUMA events specifically."""
        return self.memory_bound and self.remote_intensity >= _NUMA_BOUND_REMOTE

    def verdict(self) -> str:
        if not self.memory_bound:
            return "compute-bound: data-locality optimization has little headroom"
        if self.numa_bound:
            return "NUMA-bound: examine remote-access events and placement"
        if self.tlb_intensity > 0.2:
            return "latency-bound with TLB pressure: suspect long strides/layout"
        return "memory-bound: examine cache locality and data layout"


def _report(total_latency, compute_cycles, samples, dram, remote, tlb) -> BoundnessReport:
    total_cost = total_latency + compute_cycles
    return BoundnessReport(
        memory_cycle_fraction=(total_latency / total_cost) if total_cost else 0.0,
        dram_intensity=(dram / samples) if samples else 0.0,
        remote_intensity=(remote / dram) if dram else 0.0,
        tlb_intensity=(tlb / samples) if samples else 0.0,
        samples=samples,
    )


def derive_from_profile(exp: ExperimentDB) -> BoundnessReport:
    """Derive boundness from a merged profile alone.

    Non-memory IBS samples stand in for compute cycles (each represents
    ~period instructions); with marked-event sampling no non-memory
    samples exist, and the report degenerates to pure memory character —
    which is fine, because one only configures a NUMA event after the
    initial triage.
    """
    profile = exp.profile
    samples = 0
    latency = 0
    dram = 0
    remote = 0
    tlb = 0
    for storage in (StorageClass.HEAP, StorageClass.STATIC,
                    StorageClass.STACK, StorageClass.UNKNOWN):
        cct = profile.get_cct(storage)
        if cct is None:
            continue
        m = cct.root.inclusive()
        samples += m.samples
        latency += m.latency
        dram += m.levels[LVL_LMEM] + m.levels[LVL_RMEM]
        remote += m.levels[LVL_RMEM]
        tlb += m.tlb_misses
    compute = 0
    nonmem_cct = profile.get_cct(StorageClass.NONMEM)
    if nonmem_cct is not None:
        compute = nonmem_cct.root.inclusive().events  # period-scaled instruction estimate
    return _report(latency, compute, samples, dram, remote, tlb)


def derive_from_machine(machine: Machine, elapsed_cycles: int) -> BoundnessReport:
    """Derive boundness from the machine's exact counters (no sampling).

    Uses the hierarchy's level counts and latency model to estimate
    memory cycles against the elapsed time.
    """
    h = machine.hierarchy
    lat = machine.spec.latency
    counts = h.level_counts
    memory_cycles = (
        counts[0] * lat.l1
        + counts[1] * lat.l2
        + counts[2] * lat.l3
        + counts[3] * lat.local_dram
        + counts[4] * lat.dram(2)
        + h.contention.total_queue_cycles
    )
    accesses = sum(counts)
    dram = counts[LVL_LMEM] + counts[LVL_RMEM]
    remote = counts[LVL_RMEM]
    tlb = sum(t.misses for t in h.tlb)
    compute = max(0, elapsed_cycles - memory_cycles)
    return _report(memory_cycles, compute, accesses, dram, remote, tlb)
