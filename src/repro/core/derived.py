"""Derived metrics: is this execution memory-bound? (paper §5)

Before applying data-centric analysis, the paper "computes derived
metrics to identify whether a program is memory-bound enough for data
locality optimization".  Both entry points below route through the
declarative formula engine in :mod:`repro.metrics.boundness` — one DAG
of metric nodes evaluated over either a merged profile or a live
machine through the adapters in :mod:`repro.metrics.sources`:

- *memory cycle fraction*: sampled access latency relative to total
  sampled cost — the headroom locality optimization could recover;
- *DRAM intensity*: fraction of sampled accesses served by memory;
- *remote intensity*: fraction of DRAM-serviced samples that crossed the
  interconnect (the NUMA-specific headroom);
- *TLB intensity*: page-walk pressure (long-stride/irregular signature).

This module keeps the historical import surface
(``repro.core.derived.BoundnessReport`` etc.); the definitions live in
:mod:`repro.metrics`.
"""

from __future__ import annotations

from repro.core.analyzer import ExperimentDB
from repro.machine.presets import Machine
from repro.metrics.boundness import BoundnessReport, report_from_source
from repro.metrics.sources import MachineSource, ProfileSource

__all__ = ["BoundnessReport", "derive_from_profile", "derive_from_machine"]


def derive_from_profile(exp: ExperimentDB) -> BoundnessReport:
    """Derive boundness from a merged profile alone.

    Non-memory IBS samples stand in for compute cycles (each represents
    ~period instructions); with marked-event sampling no non-memory
    samples exist, and the report degenerates to pure memory character —
    which is fine, because one only configures a NUMA event after the
    initial triage.
    """
    return report_from_source(ProfileSource(exp))


def derive_from_machine(machine: Machine, elapsed_cycles: int) -> BoundnessReport:
    """Derive boundness from the machine's exact counters (no sampling).

    Memory cycles are the modelled level costs over the hierarchy's
    counters — remote DRAM priced by the *observed* per-hop access
    distribution, not a fixed worst-case distance — plus controller
    queueing, judged against the elapsed clock.
    """
    return report_from_source(MachineSource(machine, elapsed_cycles))
