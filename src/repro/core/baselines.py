"""The two baselines the paper argues against.

1. :class:`CodeCentricProfiler` (§2.1, Figure 1's foil): a conventional
   profiler that attributes samples to *instructions and calling
   contexts only*.  It sees the same PMU samples as the data-centric
   profiler but discards the effective address, so costs incurred by
   different variables on the same source line are indistinguishable.

2. :class:`TracingProfiler` (§2.2 and §6.2, the MemProf-style foil): a
   data-centric tool that *records a trace* of every allocation and
   every sample instead of folding them into a compact profile.  Its
   measurement data grows with execution length and thread count —
   the property that makes trace-based tools "problematic to scale to a
   cluster with a large number of nodes" (the paper's terabyte-at-Sequoia
   argument), and that the CCT representation avoids.

Both reuse the same hook interface as the real profiler, so they can be
attached to the same runs for side-by-side comparisons.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.cct import CCT
from repro.core.metrics import MetricKind
from repro.core.unwind import unwind_keys
from repro.util.fmt import pct

if TYPE_CHECKING:  # pragma: no cover
    from repro.pmu.sample import Sample
    from repro.sim.loader import LoadModule
    from repro.sim.process import SimProcess
    from repro.sim.thread import SimThread

__all__ = ["CodeCentricProfiler", "TracingProfiler", "LineCost"]


# --------------------------------------------------------------- code-centric


@dataclass
class LineCost:
    """Aggregate cost of one source location (all variables conflated)."""

    location: str
    label: str
    samples: int
    latency: int
    share: float


class CodeCentricProfiler:
    """Instruction/context attribution only — no variable resolution."""

    def __init__(self, process: "SimProcess") -> None:
        self.process = process
        self.cct = CCT("code")
        self.samples = 0
        self._attached = False

    def attach(self) -> "CodeCentricProfiler":
        if not self._attached:
            self.process.hooks.append(self)
            self._attached = True
        return self

    # Hook interface (allocator events are invisible to a code-centric tool).
    def on_module_load(self, process, module: "LoadModule") -> None: ...
    def on_module_unload(self, process, module: "LoadModule") -> None: ...
    def on_thread_create(self, process, thread: "SimThread") -> None: ...
    def on_alloc(self, process, thread, addr, nbytes, ip, kind, var=None) -> None: ...
    def on_free(self, process, thread, addr) -> None: ...

    def on_sample(self, process: "SimProcess", thread: "SimThread", sample: "Sample") -> None:
        self.samples += 1
        path = unwind_keys(process, thread, sample.precise_ip or None)
        self.cct.add_sample_at(path, sample)

    # -- the code-centric "view": source lines ranked by cost ---------------

    def line_costs(self, kind: MetricKind = MetricKind.LATENCY) -> list[LineCost]:
        total = self.cct.total(kind)
        by_location: dict[str, LineCost] = {}
        for node in self.cct.root.walk():
            if node.key[0] != "ip" or node.metrics.is_zero():
                continue
            info = node.info or {}
            location = info.get("location", node.label())
            cost = by_location.get(location)
            if cost is None:
                cost = LineCost(location, node.label(), 0, 0, 0.0)
                by_location[location] = cost
            cost.samples += node.metrics.samples
            cost.latency += node.metrics.latency
        out = sorted(by_location.values(), key=lambda c: c.latency, reverse=True)
        for cost in out:
            value = cost.latency if kind is MetricKind.LATENCY else cost.samples
            cost.share = value / total if total else 0.0
        return out

    def render(self, kind: MetricKind = MetricKind.LATENCY, top_n: int = 10) -> str:
        lines = [f"code-centric profile [{kind}]"]
        for cost in self.line_costs(kind)[:top_n]:
            lines.append(
                f"  {cost.location:<20} {cost.latency:>8} ({pct(cost.share, 1.0)})"
            )
        return "\n".join(lines)


# --------------------------------------------------------------------- tracing

# On-disk record sizes of a MemProf-style binary trace (bytes).
_ALLOC_RECORD = struct.calcsize("<QQQIq")   # time, addr, size, thread, callsite
_FREE_RECORD = struct.calcsize("<QQI")      # time, addr, thread
_SAMPLE_RECORD = struct.calcsize("<QQQIIB")  # time, ip, ea, thread, latency, flags
_FRAME_RECORD = struct.calcsize("<Q")       # one call-path frame per record


class TracingProfiler:
    """MemProf-style data-centric *tracer*: one record per event.

    Attribution quality matches the real profiler (the trace contains
    everything), but the measurement-data volume is proportional to
    events, not contexts — the scalability property the paper's compact
    CCT profiles are designed to avoid.  Records are counted (and sized
    per the struct layouts above) rather than materialized, so the
    baseline itself doesn't exhaust memory in large runs.
    """

    def __init__(self, process: "SimProcess", record_call_paths: bool = True) -> None:
        self.process = process
        self.record_call_paths = record_call_paths
        self.alloc_records = 0
        self.free_records = 0
        self.sample_records = 0
        self.frame_records = 0
        self._attached = False

    def attach(self) -> "TracingProfiler":
        if not self._attached:
            self.process.hooks.append(self)
            self._attached = True
        return self

    def on_module_load(self, process, module) -> None: ...
    def on_module_unload(self, process, module) -> None: ...
    def on_thread_create(self, process, thread) -> None: ...

    def on_alloc(self, process, thread, addr, nbytes, ip, kind, var=None) -> None:
        self.alloc_records += 1
        if self.record_call_paths:
            self.frame_records += len(thread.frames) + 1

    def on_free(self, process, thread, addr) -> None:
        self.free_records += 1

    def on_sample(self, process, thread, sample) -> None:
        self.sample_records += 1
        if self.record_call_paths:
            self.frame_records += len(thread.frames) + 1

    def trace_bytes(self) -> int:
        """Size the binary trace would occupy."""
        return (
            self.alloc_records * _ALLOC_RECORD
            + self.free_records * _FREE_RECORD
            + self.sample_records * _SAMPLE_RECORD
            + self.frame_records * _FRAME_RECORD
        )

    @property
    def total_records(self) -> int:
        return self.alloc_records + self.free_records + self.sample_records
