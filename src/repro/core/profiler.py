"""The online data-centric call path profiler (paper §4.1).

One :class:`DataCentricProfiler` attaches to one process and observes:

- PMU samples (``on_sample``): unwinds the thread's call stack, corrects
  the leaf to the PMU's precise IP, resolves the effective address
  against the heap and static maps, and files the sample into the
  thread's per-storage-class CCT — prepending the allocation call path
  for heap data and a variable dummy node for static data (§4.1.4);
- allocator calls (``on_alloc``/``on_free``): maintains the heap map,
  with the three §4.1.3 overhead-reduction strategies independently
  switchable (size threshold, fast context capture, trampoline unwinds);
- module loads/unloads: maintains the static map.

When ``charge_overhead`` is on, every measurement action charges its
cycle cost to the monitored thread's clock — this is how the Table 1
runtime overheads and the §4.1.3 ablation are reproduced rather than
asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.cct import (
    CCT,
    HEAP_MARKER_INFO,
    HEAP_MARKER_KEY,
    PathEntry,
)
from repro.core.profiledb import ProfileDB, ThreadProfile
from repro.core.stackmap import StackDataMap, StackVariable, stack_var_entry
from repro.core.storage import StorageClass
from repro.core.trampoline import TrampolineUnwinder
from repro.core.unwind import (
    GETCONTEXT_FAST,
    GETCONTEXT_SLOW,
    UNWIND_PER_FRAME,
    frame_entry,
    ip_entry,
    unwind_keys,
)
from repro.core.varmap import (
    HeapDataMap,
    HeapVariable,
    StaticDataMap,
    static_var_entry,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.pmu.sample import Sample
    from repro.sim.loader import LoadModule
    from repro.sim.process import SimProcess
    from repro.sim.thread import SimThread

__all__ = ["DataCentricProfiler", "ProfilerConfig"]


@dataclass
class ProfilerConfig:
    """Measurement configuration (paper defaults unless noted)."""

    # Strategy 1 (§4.1.3): skip calling-context capture for heap blocks
    # smaller than this; 0 disables the threshold (track everything).
    track_threshold: int = 4096
    # Strategy 2: inline-assembly context capture instead of getcontext.
    fast_context: bool = True
    # Strategy 3: trampoline-based incremental unwinds for allocations.
    use_trampoline: bool = True
    # §4.1.2 leaf correction: attribute to the PMU's precise IP.
    use_precise_ip: bool = True
    # §7 extension: attribute named stack ranges (off in the paper).
    track_stack: bool = False
    # Charge measurement costs to the monitored threads' clocks.
    charge_overhead: bool = True

    # Cycle costs of the measurement machinery.
    sample_handler_cost: int = 250
    alloc_wrap_cost: int = 30
    free_wrap_cost: int = 15
    map_insert_cost: int = 40
    map_lookup_cost: int = 20


@dataclass
class ProfilerStats:
    """Counters describing the measurement activity itself."""

    samples: int = 0
    mem_samples: int = 0
    heap_samples: int = 0
    static_samples: int = 0
    unknown_samples: int = 0
    allocs_seen: int = 0
    allocs_tracked: int = 0
    allocs_skipped_small: int = 0
    frees_seen: int = 0
    stack_samples: int = 0
    overhead_cycles: int = 0
    frames_unwound: int = 0
    frames_reused: int = 0


class DataCentricProfiler:
    """Per-process online profiler; install with ``attach()``."""

    def __init__(self, process: "SimProcess", config: ProfilerConfig | None = None) -> None:
        self.process = process
        self.config = config or ProfilerConfig()
        self.static_map = StaticDataMap()
        self.heap_map = HeapDataMap()
        self.stack_map = StackDataMap()
        self.stats = ProfilerStats()
        self._thread_profiles: dict[str, ThreadProfile] = {}
        self._trampolines: dict[str, TrampolineUnwinder] = {}
        self._attached = False

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> "DataCentricProfiler":
        """Install hooks into the process (idempotent)."""
        if not self._attached:
            self.process.hooks.append(self)
            for module in self.process.modules:
                self.static_map.on_load(module)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.process.hooks.remove(self)
            self._attached = False

    def profile_for(self, thread: "SimThread") -> ThreadProfile:
        profile = self._thread_profiles.get(thread.name)
        if profile is None:
            profile = ThreadProfile(thread.name)
            self._thread_profiles[thread.name] = profile
        return profile

    def finalize(self) -> ProfileDB:
        """Produce this process's (per-thread) profile database."""
        db = ProfileDB(self.process.name)
        for name in sorted(self._thread_profiles):
            db.add_thread(self._thread_profiles[name])
        return db

    # -- overhead charging ----------------------------------------------------

    def _charge(self, thread: "SimThread", cycles: int) -> None:
        self.stats.overhead_cycles += cycles
        if self.config.charge_overhead:
            thread.clock += cycles

    def _context_cost(self) -> int:
        return GETCONTEXT_FAST if self.config.fast_context else GETCONTEXT_SLOW

    # -- hook: modules ----------------------------------------------------------

    def on_module_load(self, process: "SimProcess", module: "LoadModule") -> None:
        self.static_map.on_load(module)

    def on_module_unload(self, process: "SimProcess", module: "LoadModule") -> None:
        self.static_map.on_unload(module)

    def on_thread_create(self, process: "SimProcess", thread: "SimThread") -> None:
        # Thread state is created lazily on first use.
        return

    # -- hook: allocator ----------------------------------------------------------

    def on_alloc(
        self,
        process: "SimProcess",
        thread: "SimThread",
        addr: int,
        nbytes: int,
        callsite_ip: int,
        kind: str,
        var: str | None = None,
    ) -> None:
        cfg = self.config
        self.stats.allocs_seen += 1
        threshold = cfg.track_threshold
        if threshold and nbytes < threshold:
            # Below-threshold block: remember the address so its free is
            # still processed, but capture no calling context (strategy 1).
            self.heap_map.register_anonymous(addr)
            self.stats.allocs_skipped_small += 1
            self._charge(thread, cfg.alloc_wrap_cost)
            return

        self._charge(thread, cfg.alloc_wrap_cost + self._context_cost())
        if cfg.use_trampoline:
            trampoline = self._trampolines.get(thread.name)
            if trampoline is None:
                trampoline = TrampolineUnwinder()
                self._trampolines[thread.name] = trampoline
            frames, unwound = trampoline.unwind(thread)
            self.stats.frames_unwound += unwound
            self.stats.frames_reused += len(frames) - unwound
            self._charge(thread, unwound * UNWIND_PER_FRAME)
        else:
            frames = [frame_entry(f) for f in thread.frames]
            self.stats.frames_unwound += len(frames)
            self._charge(thread, len(frames) * UNWIND_PER_FRAME)

        leaf = ip_entry(process, callsite_ip)
        key, info = leaf
        info = dict(info or {})
        info["alloc_kind"] = kind
        if var is not None:
            # Source-line annotation: the GUI shows the variable assigned
            # at the allocation call site.
            info["var"] = var
        leaf = (key, info)
        alloc_path = tuple(frames) + (leaf,)
        site_label = var or (leaf[1] or {}).get("label", "heap")
        self.heap_map.track(HeapVariable(addr, nbytes, alloc_path, site_label))
        self.stats.allocs_tracked += 1
        self._charge(thread, cfg.map_insert_cost)

    def on_free(self, process: "SimProcess", thread: "SimThread", addr: int) -> None:
        # All frees are wrapped (no context captured), so stale ranges
        # never survive to misattribute recycled addresses.
        self.stats.frees_seen += 1
        self.heap_map.untrack(addr)
        self._charge(thread, self.config.free_wrap_cost)

    def on_stack_alloc(
        self,
        process: "SimProcess",
        thread: "SimThread",
        name: str,
        addr: int,
        nbytes: int,
        fn,
        line: int,
    ) -> None:
        if not self.config.track_stack:
            return
        # Registering a compiler-described local costs one map insert.
        self._charge(thread, self.config.map_insert_cost)
        self.stack_map.register(
            StackVariable(
                name=name,
                thread_name=thread.name,
                function_name=fn.name,
                addr=addr,
                size=nbytes,
                decl_location=fn.source.location(line),
            )
        )

    def on_stack_free(self, process: "SimProcess", thread: "SimThread", addr: int) -> None:
        if not self.config.track_stack:
            return
        self.stack_map.release(thread.name, addr)

    # -- hook: PMU samples -----------------------------------------------------------

    def on_sample(self, process: "SimProcess", thread: "SimThread", sample: "Sample") -> None:
        cfg = self.config
        self.stats.samples += 1
        profile = self.profile_for(thread)
        depth = len(thread.frames)
        self._charge(
            thread,
            cfg.sample_handler_cost + self._context_cost() + depth * UNWIND_PER_FRAME,
        )

        if not sample.is_memory:
            path = unwind_keys(process, thread, sample.precise_ip or None)
            profile.cct(StorageClass.NONMEM).add_sample_at(path, sample)
            return

        self.stats.mem_samples += 1
        leaf_ip = sample.precise_ip if cfg.use_precise_ip else sample.interrupt_ip
        access_path = unwind_keys(process, thread, leaf_ip)
        ea = sample.ea
        assert ea is not None

        self._charge(thread, cfg.map_lookup_cost)
        heap_var = self.heap_map.lookup(ea)
        if heap_var is not None:
            # Prepend the (possibly cross-thread) allocation call path,
            # then the dummy marker, then the access path (§4.1.4).
            path: list[PathEntry] = list(heap_var.alloc_path)
            path.append((HEAP_MARKER_KEY, HEAP_MARKER_INFO))
            path.extend(access_path)
            profile.cct(StorageClass.HEAP).add_sample_at(path, sample)
            self.stats.heap_samples += 1
            return

        static_var = self.static_map.lookup(ea)
        if static_var is not None:
            path = [static_var_entry(static_var)]
            path.extend(access_path)
            profile.cct(StorageClass.STATIC).add_sample_at(path, sample)
            self.stats.static_samples += 1
            return

        if cfg.track_stack:
            stack_var = self.stack_map.lookup(thread, ea)
            if stack_var is not None:
                path = [stack_var_entry(stack_var)]
                path.extend(access_path)
                profile.cct(StorageClass.STACK).add_sample_at(path, sample)
                self.stats.stack_samples += 1
                return

        profile.cct(StorageClass.UNKNOWN).add_sample_at(access_path, sample)
        self.stats.unknown_samples += 1
