"""Optimization guidance (the paper's §7 future-work direction).

Turns an :class:`~repro.core.analyzer.ExperimentDB` into actionable
recommendations by pattern-matching each hot variable's metric profile
against the pathologies of the case studies:

- dominated by remote accesses and allocated with ``calloc`` (master
  zero-touch)  ->  switch to ``malloc`` for parallel first-touch, or use
  libnuma interleaved allocation;
- dominated by remote accesses, allocated with ``malloc`` but serially
  initialized  ->  initialize in parallel or interleave;
- high TLB-miss fraction  ->  long-stride access; transpose the layout
  or interchange loops;
- high local-memory latency with low TLB pressure  ->  capacity/streaming
  problem; consider blocking or fusing passes over the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.analyzer import ExperimentDB
from repro.core.metrics import MetricKind
from repro.core.storage import StorageClass
from repro.core.views import VariableReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.analyze import Finding

__all__ = ["Recommendation", "advise"]


@dataclass
class Recommendation:
    """One piece of advice about one variable."""

    variable: str
    storage: StorageClass
    problem: str          # short pathology tag
    action: str           # suggested fix
    share: float          # variable's share of the ranked metric
    evidence: str         # the numbers that triggered the rule

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.variable} [{self.storage}] {self.share:.1%} of metric: "
            f"{self.problem} -> {self.action} ({self.evidence})"
        )


_REMOTE_DOMINANT = 0.5
_TLB_HOT = 0.2
_MIN_SHARE = 0.03


def _advise_variable(var: VariableReport) -> Recommendation | None:
    # Judge NUMA-boundness among DRAM-serviced samples: cache hits dilute
    # the plain per-sample remote fraction under IBS-style sampling.
    remote = max(var.remote_fraction, var.dram_remote_fraction)
    if remote >= _REMOTE_DOMINANT:
        if var.alloc_kind == "calloc":
            action = (
                "replace calloc with malloc so worker threads commit pages "
                "via first touch, or allocate with numa_alloc_interleaved"
            )
            problem = "NUMA: calloc zero-touch pins pages to the allocating thread's node"
        elif var.storage is StorageClass.HEAP:
            action = (
                "initialize in parallel (first touch) or allocate with "
                "numa_alloc_interleaved to spread pages across nodes"
            )
            problem = "NUMA: pages concentrated on one node, accessed remotely"
        else:
            action = "distribute or replicate the data across NUMA nodes"
            problem = "NUMA: static data homed on one node, accessed remotely"
        return Recommendation(
            variable=var.name,
            storage=var.storage,
            problem=problem,
            action=action,
            share=var.share,
            evidence=f"remote fraction {remote:.0%} of DRAM accesses",
        )
    if var.tlb_miss_fraction >= _TLB_HOT:
        return Recommendation(
            variable=var.name,
            storage=var.storage,
            problem="spatial locality: long-stride or indirect accesses (TLB-hot)",
            action=(
                "transpose the array layout or interchange loops so the "
                "fastest-varying subscript is contiguous in memory"
            ),
            share=var.share,
            evidence=f"TLB-miss fraction {var.tlb_miss_fraction:.0%}",
        )
    return Recommendation(
        variable=var.name,
        storage=var.storage,
        problem="temporal locality: data not reused before eviction",
        action="block/tile the traversal or fuse passes over this data",
        share=var.share,
        evidence=f"remote {var.remote_fraction:.0%}, tlb {var.tlb_miss_fraction:.0%}",
    )


def advise(
    exp: ExperimentDB,
    kind: MetricKind = MetricKind.LATENCY,
    top_n: int = 10,
    min_share: float = _MIN_SHARE,
    static_findings: "Sequence[Finding] | None" = None,
) -> list[Recommendation]:
    """Generate recommendations for the top variables of a profile.

    When ``static_findings`` (from :func:`repro.staticcheck.analyze_model`)
    is given, a recommendation whose variable the static pass also
    flagged cites the prediction in its evidence — measurement and
    structure agreeing is the strongest signal a fix is worth it.
    """
    predicted: dict[str, "Finding"] = {}
    for finding in static_findings or ():
        predicted.setdefault(finding.variable, finding)
    out = []
    for var in exp.top_variables(kind, n=top_n):
        if var.share < min_share:
            continue
        rec = _advise_variable(var)
        if rec is None:
            continue
        hit = predicted.get(var.name)
        if hit is not None:
            rec.evidence += (
                f"; predicted statically ({hit.code} at {hit.site})"
            )
        out.append(rec)
    return out
