"""Optimization guidance (the paper's §7 future-work direction).

Turns an :class:`~repro.core.analyzer.ExperimentDB` into actionable
recommendations by pattern-matching each hot variable's metric profile
against the pathologies of the case studies:

- dominated by remote accesses and allocated with ``calloc`` (master
  zero-touch)  ->  switch to ``malloc`` for parallel first-touch, or use
  libnuma interleaved allocation;
- dominated by remote accesses, allocated with ``malloc`` but serially
  initialized  ->  initialize in parallel or interleave;
- high TLB-miss fraction  ->  long-stride access; transpose the layout
  or interchange loops;
- high local-memory latency with low TLB pressure  ->  capacity/streaming
  problem; consider blocking or fusing passes over the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.analyzer import ExperimentDB
from repro.core.metrics import MetricKind
from repro.core.storage import StorageClass
from repro.core.views import VariableReport
from repro.metrics.boundness import (
    MIN_SHARE,
    REGISTRY,
    REMOTE_DOMINANT_FRACTION,
    TLB_PRESSURE,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.analyze import Finding

__all__ = ["Recommendation", "advise"]


@dataclass
class Recommendation:
    """One piece of advice about one variable."""

    variable: str
    storage: StorageClass
    problem: str          # short pathology tag
    action: str           # suggested fix
    share: float          # variable's share of the ranked metric
    evidence: str         # the numbers that triggered the rule

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.variable} [{self.storage}] {self.share:.1%} of metric: "
            f"{self.problem} -> {self.action} ({self.evidence})"
        )


# Single-sourced from the formula registry's constant definitions in
# repro.metrics.boundness — the same objects the static analyzer and the
# reconciler read, so the passes cannot drift.
_REMOTE_DOMINANT = REMOTE_DOMINANT_FRACTION
_TLB_HOT = TLB_PRESSURE
_MIN_SHARE = MIN_SHARE


def _advise_variable(var: VariableReport) -> Recommendation | None:
    # Judge NUMA-boundness among DRAM-serviced samples: cache hits dilute
    # the plain per-sample remote fraction under IBS-style sampling.
    remote = max(var.remote_fraction, var.dram_remote_fraction)
    if remote >= _REMOTE_DOMINANT:
        if var.alloc_kind == "calloc":
            action = (
                "replace calloc with malloc so worker threads commit pages "
                "via first touch, or allocate with numa_alloc_interleaved"
            )
            problem = "NUMA: calloc zero-touch pins pages to the allocating thread's node"
        elif var.storage is StorageClass.HEAP:
            action = (
                "initialize in parallel (first touch) or allocate with "
                "numa_alloc_interleaved to spread pages across nodes"
            )
            problem = "NUMA: pages concentrated on one node, accessed remotely"
        else:
            action = "distribute or replicate the data across NUMA nodes"
            problem = "NUMA: static data homed on one node, accessed remotely"
        return Recommendation(
            variable=var.name,
            storage=var.storage,
            problem=problem,
            action=action,
            share=var.share,
            evidence=f"remote fraction {remote:.0%} of DRAM accesses",
        )
    if var.tlb_miss_fraction >= _TLB_HOT:
        return Recommendation(
            variable=var.name,
            storage=var.storage,
            problem="spatial locality: long-stride or indirect accesses (TLB-hot)",
            action=(
                "transpose the array layout or interchange loops so the "
                "fastest-varying subscript is contiguous in memory"
            ),
            share=var.share,
            evidence=f"TLB-miss fraction {var.tlb_miss_fraction:.0%}",
        )
    return Recommendation(
        variable=var.name,
        storage=var.storage,
        problem="temporal locality: data not reused before eviction",
        action="block/tile the traversal or fuse passes over this data",
        share=var.share,
        evidence=f"remote {var.remote_fraction:.0%}, tlb {var.tlb_miss_fraction:.0%}",
    )


def advise(
    exp: ExperimentDB,
    kind: MetricKind = MetricKind.LATENCY,
    top_n: int = 10,
    min_share: float | None = None,
    static_findings: "Sequence[Finding] | None" = None,
) -> list[Recommendation]:
    """Generate recommendations for the top variables of a profile.

    When ``static_findings`` (from :func:`repro.staticcheck.analyze_model`)
    is given, a recommendation whose variable the static pass also
    flagged cites the prediction in its evidence — measurement and
    structure agreeing is the strongest signal a fix is worth it; when
    findings carry a ``predicted_impact``
    (:func:`repro.staticcheck.predict.report_with_impacts`),
    recommendations are ranked by expected payoff instead of by share.

    ``min_share=None`` resolves the noise threshold through the formula
    registry with the profile's ``(machine, "profile")`` override keys.
    """
    if min_share is None:
        try:
            machine = str(exp.db.meta.get("machine", "") or "")
        except Exception:
            machine = ""
        keys = (machine, "profile") if machine else ("profile",)
        min_share = REGISTRY.constant_value("min_share", keys)
    predicted: dict[str, "Finding"] = {}
    for finding in static_findings or ():
        seen = predicted.get(finding.variable)
        if seen is None or finding.predicted_impact > seen.predicted_impact:
            predicted[finding.variable] = finding
    out = []
    for var in exp.top_variables(kind, n=top_n):
        if var.share < min_share:
            continue
        rec = _advise_variable(var)
        if rec is None:
            continue
        hit = predicted.get(var.name)
        if hit is not None:
            rec.evidence += (
                f"; predicted statically ({hit.code} at {hit.site})"
            )
            if hit.predicted_impact > 0:
                rec.evidence += (
                    f"; predicted impact {hit.predicted_impact:.0%} of cycles"
                )
        out.append(rec)
    # Rank by predicted payoff when the static pass quantified one;
    # share order (the top_variables order) breaks ties and covers the
    # no-impact case, preserving the pre-impact ranking exactly.
    ranked = sorted(
        enumerate(out),
        key=lambda pair: (
            -(
                predicted[pair[1].variable].predicted_impact
                if pair[1].variable in predicted
                else 0.0
            ),
            pair[0],
        ),
    )
    return [rec for _, rec in ranked]
