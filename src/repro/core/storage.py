"""Storage classes for data-centric attribution (paper §4.1.3).

Every sampled memory access is attributed to exactly one class:

- ``STATIC`` — named variables in a load module's .bss, tracked from the
  symbol table while the module is loaded;
- ``HEAP`` — live malloc-family blocks, identified by their full
  allocation call path;
- ``STACK`` — named thread-stack ranges, when the §7 extension is
  enabled (``ProfilerConfig.track_stack``);
- ``UNKNOWN`` — everything else (anonymous stack data, untracked small
  allocations, brk-style container memory);
- ``NONMEM`` — IBS samples of instructions that do not access memory
  (kept in their own CCT, §4.1.2).
"""

from __future__ import annotations

from enum import Enum

__all__ = ["StorageClass"]


class StorageClass(str, Enum):
    STATIC = "static"
    HEAP = "heap"
    STACK = "stack"
    UNKNOWN = "unknown"
    NONMEM = "nonmem"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
