"""Compact profile databases (paper §2.2 "space overhead").

A :class:`ThreadProfile` holds one thread's per-storage-class CCTs; a
:class:`ProfileDB` holds all thread profiles of one process (or, after
merging, of a whole job).  The binary codec uses varints plus a string
table so profile size stays proportional to *distinct contexts*, not to
execution length — the property that distinguishes compact CCT profiles
from the allocation/access traces of tools like MemProf.

The codec is the boundary profiles cross between worker processes in
the parallel driver (:mod:`repro.parallel`), so decoding is defensive:
every malformed input — truncated buffers, out-of-range string-table
indices, bad tags, unbounded varints — raises :class:`ProfileError`
instead of leaking ``IndexError``/``UnicodeDecodeError`` from the guts
of the parser.

Format version 2 adds a small string-keyed metadata section to the
header (used by the parallel merge to report partial results); version 1
payloads (no metadata) still decode.
"""

from __future__ import annotations

import struct
import sys
from typing import Iterator

from repro.core.cct import CCT, CCTNode, canonical_key_order
from repro.core.metrics import MetricVector
from repro.core.storage import StorageClass
from repro.errors import ProfileError

__all__ = ["ThreadProfile", "ProfileDB"]

_MAGIC = b"RPDB"
_VERSION = 2
_MIN_VERSION = 1
_HEADER_LEN = 6  # magic + u16 version


def _obs_session():
    """The active repro.obs session, if that subsystem is even imported."""
    obs_mod = sys.modules.get("repro.obs")
    return obs_mod.active_session() if obs_mod is not None else None


# -- varint codec --------------------------------------------------------------

# Metric values are non-negative cycle/sample counts; 64 bits of varint
# (10 continuation groups) is the largest value a well-formed encoder
# emits.  The cap turns a corrupt continuation-bit run into a clean
# ProfileError instead of an unbounded shift.
_MAX_UVARINT_SHIFT = 63


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ProfileError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(buf: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise ProfileError("truncated uvarint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > _MAX_UVARINT_SHIFT:
            raise ProfileError("uvarint exceeds 64 bits (corrupt continuation run)")


def _checked_count(buf: bytes, pos: int, what: str) -> tuple[int, int]:
    """Read a count that the remaining buffer could plausibly satisfy.

    Every counted element occupies at least one byte, so a count larger
    than the bytes left is corrupt no matter what follows.
    """
    count, pos = _read_uvarint(buf, pos)
    if count > len(buf) - pos:
        raise ProfileError(f"{what} count {count} exceeds remaining {len(buf) - pos} bytes")
    return count, pos


class _StringTable:
    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self.strings: list[str] = []

    def intern(self, s: str) -> int:
        idx = self._index.get(s)
        if idx is None:
            idx = len(self.strings)
            self._index[s] = idx
            self.strings.append(s)
        return idx


def _string_at(strings: list[str], idx: int) -> str:
    if idx >= len(strings):
        raise ProfileError(
            f"string-table index {idx} out of range (table has {len(strings)})"
        )
    return strings[idx]


# -- node codec ----------------------------------------------------------------

_TAG_INT = 0
_TAG_STR = 1
_TAG_NEG = 2

_N_METRIC_LEVELS = len(MetricVector().levels)
_N_METRIC_FIELDS = 5 + _N_METRIC_LEVELS


def _read_metric_block(buf: bytes, pos: int) -> tuple[list[int], int]:
    """Decode one node's fixed run of metric varints.

    This is the decoder's hot loop (most of a profile is metric varints,
    and most of those fit one byte), so the single-byte case is inlined
    and the whole block costs one function call per node instead of one
    per field.  Semantics match :func:`_read_uvarint` exactly, including
    the truncation and shift-cap errors.
    """
    values = []
    append = values.append
    blen = len(buf)
    for _ in range(_N_METRIC_FIELDS):
        if pos >= blen:
            raise ProfileError("truncated uvarint")
        byte = buf[pos]
        pos += 1
        if byte < 0x80:
            append(byte)
            continue
        result = byte & 0x7F
        shift = 7
        while True:
            if pos >= blen:
                raise ProfileError("truncated uvarint")
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > _MAX_UVARINT_SHIFT:
                raise ProfileError("uvarint exceeds 64 bits (corrupt continuation run)")
        append(result)
    return values, pos


def _encode_node_header(node: CCTNode, out: bytearray, strings: _StringTable) -> None:
    key = node.key
    _write_uvarint(out, len(key))
    for element in key:
        if isinstance(element, str):
            out.append(_TAG_STR)
            _write_uvarint(out, strings.intern(element))
        elif isinstance(element, int):
            if element >= 0:
                out.append(_TAG_INT)
                _write_uvarint(out, element)
            else:
                out.append(_TAG_NEG)
                _write_uvarint(out, -element)
        else:
            raise ProfileError(f"unencodable key element {element!r}")
    info = node.info or {}
    _write_uvarint(out, len(info))
    for k in sorted(info):
        v = info[k]
        if not isinstance(v, str):
            raise ProfileError(f"info values must be str, got {k}={v!r}")
        _write_uvarint(out, strings.intern(k))
        _write_uvarint(out, strings.intern(v))
    m = node.metrics
    for value in (m.samples, m.latency, m.events, m.tlb_misses, m.stores):
        _write_uvarint(out, value)
    for value in m.levels:
        _write_uvarint(out, value)
    _write_uvarint(out, len(node.children))


def _encode_node(
    node: CCTNode, out: bytearray, strings: _StringTable, canonical: bool
) -> None:
    # Iterative pre-order walk: like the decoder, an explicit stack keeps
    # pathologically deep CCTs from hitting the recursion limit.
    stack = [iter((node,))]
    while stack:
        child = next(stack[-1], None)
        if child is None:
            stack.pop()
            continue
        _encode_node_header(child, out, strings)
        children = child.children.values()
        if canonical:
            children = sorted(children, key=lambda c: canonical_key_order(c.key))
        stack.append(iter(children))


def _decode_node_header(
    buf: bytes, pos: int, strings: list[str]
) -> tuple[CCTNode, int, int]:
    """Decode one node's key/info/metrics; returns (node, n_children, pos)."""
    key_len, pos = _checked_count(buf, pos, "key element")
    key_elements = []
    for _ in range(key_len):
        if pos >= len(buf):
            raise ProfileError("truncated key element tag")
        tag = buf[pos]
        pos += 1
        raw, pos = _read_uvarint(buf, pos)
        if tag == _TAG_STR:
            key_elements.append(_string_at(strings, raw))
        elif tag == _TAG_INT:
            key_elements.append(raw)
        elif tag == _TAG_NEG:
            key_elements.append(-raw)
        else:
            raise ProfileError(f"bad key tag {tag}")
    node = CCTNode(tuple(key_elements))
    info_len, pos = _checked_count(buf, pos, "info entry")
    if info_len:
        info = {}
        for _ in range(info_len):
            k, pos = _read_uvarint(buf, pos)
            v, pos = _read_uvarint(buf, pos)
            info[_string_at(strings, k)] = _string_at(strings, v)
        node.info = info
    values, pos = _read_metric_block(buf, pos)
    m = MetricVector()
    m.samples, m.latency, m.events, m.tlb_misses, m.stores = values[:5]
    m.levels = values[5:]
    node.metrics = m
    n_children, pos = _checked_count(buf, pos, "child")
    return node, n_children, pos


def _decode_node(buf: bytes, pos: int, strings: list[str]) -> tuple[CCTNode, int]:
    """Iteratively decode a node subtree.

    An explicit stack (rather than recursion) keeps adversarially deep
    inputs from turning into ``RecursionError`` half-way through a parse.
    """
    root, n_children, pos = _decode_node_header(buf, pos, strings)
    stack: list[tuple[CCTNode, int]] = [(root, n_children)]
    while stack:
        node, remaining = stack[-1]
        if remaining == 0:
            stack.pop()
            if stack:
                parent = stack[-1][0]
                if node.key in parent.children:
                    raise ProfileError(f"duplicate child key {node.key}")
                parent.children[node.key] = node
            continue
        stack[-1] = (node, remaining - 1)
        child, n_kids, pos = _decode_node_header(buf, pos, strings)
        stack.append((child, n_kids))
    return root, pos


# -- profiles -------------------------------------------------------------------


class ThreadProfile:
    """One thread's CCTs, one per storage class (created on demand).

    :meth:`cct` is the *write-path* accessor: it materializes an empty
    CCT on first use so profiler hooks can insert unconditionally.  Read
    paths (views, rendering, analysis, serialization) must use
    :meth:`get_cct`/:meth:`has_cct` so that merely *looking at* a profile
    never changes its ``storage_classes()``, ``node_count()`` or
    serialized size.
    """

    def __init__(self, thread_name: str) -> None:
        self.thread_name = thread_name
        self._ccts: dict[StorageClass, CCT] = {}

    def cct(self, storage: StorageClass) -> CCT:
        tree = self._ccts.get(storage)
        if tree is None:
            tree = CCT(storage.value)
            self._ccts[storage] = tree
        return tree

    def get_cct(self, storage: StorageClass) -> CCT | None:
        """Non-creating accessor: the CCT, or ``None`` if never written."""
        return self._ccts.get(storage)

    def has_cct(self, storage: StorageClass) -> bool:
        return storage in self._ccts

    def storage_classes(self) -> list[StorageClass]:
        return sorted(self._ccts, key=lambda s: s.value)

    def node_count(self) -> int:
        return sum(cct.node_count() for cct in self._ccts.values())

    def clone(self) -> "ThreadProfile":
        out = ThreadProfile(self.thread_name)
        for storage, cct in self._ccts.items():
            out._ccts[storage] = cct.clone()
        return out


class ProfileDB:
    """All thread profiles of a process (or a merged job).

    ``meta`` is a small string->string dictionary serialized with the
    profile; the parallel driver and merge use it to record provenance
    (rank, app) and degradation (a partial merge after worker failures).
    """

    def __init__(self, process_name: str, meta: dict[str, str] | None = None) -> None:
        self.process_name = process_name
        self.threads: dict[str, ThreadProfile] = {}
        self.meta: dict[str, str] = dict(meta) if meta else {}

    def add_thread(self, profile: ThreadProfile) -> None:
        if profile.thread_name in self.threads:
            raise ProfileError(f"duplicate thread profile {profile.thread_name}")
        self.threads[profile.thread_name] = profile

    def all_profiles(self) -> Iterator[ThreadProfile]:
        for name in sorted(self.threads):
            yield self.threads[name]

    def node_count(self) -> int:
        return sum(p.node_count() for p in self.threads.values())

    # -- binary codec -------------------------------------------------------

    def to_bytes(self, canonical: bool = False) -> bytes:
        """Serialize; ``canonical=True`` additionally sorts CCT children.

        Two semantically equal databases (same nodes, metrics, info) may
        serialize differently because child insertion order reflects
        merge order.  Canonical encoding makes the bytes a function of
        content only — the form merge-equivalence tests and the parallel
        merge's byte-identity guarantee compare.
        """
        obs = _obs_session()
        if obs is None:
            return self._to_bytes_impl(canonical)
        start = obs.clock.now_us()
        data = self._to_bytes_impl(canonical)
        obs.trace.complete(
            name="codec:encode", cat="codec", ts_us=start,
            dur_us=obs.clock.now_us() - start, pid=0, tid=3,
            args={"process": self.process_name, "bytes": len(data)},
        )
        obs.metrics.inc(
            "repro_codec_encodes_total", 1,
            help_text="ProfileDB encode operations",
        )
        obs.metrics.inc(
            "repro_codec_encoded_bytes_total", len(data),
            help_text="bytes produced by the profile encoder",
        )
        return data

    def _to_bytes_impl(self, canonical: bool) -> bytes:
        strings = _StringTable()
        body = bytearray()
        _write_uvarint(body, strings.intern(self.process_name))
        _write_uvarint(body, len(self.meta))
        for k in sorted(self.meta):
            v = self.meta[k]
            if not isinstance(v, str):
                raise ProfileError(f"meta values must be str, got {k}={v!r}")
            _write_uvarint(body, strings.intern(k))
            _write_uvarint(body, strings.intern(v))
        _write_uvarint(body, len(self.threads))
        for profile in self.all_profiles():
            _write_uvarint(body, strings.intern(profile.thread_name))
            classes = profile.storage_classes()
            _write_uvarint(body, len(classes))
            for storage in classes:
                _write_uvarint(body, strings.intern(storage.value))
                tree = profile.get_cct(storage)
                assert tree is not None  # storage_classes() only lists present CCTs
                _encode_node(tree.root, body, strings, canonical)
        table = bytearray()
        _write_uvarint(table, len(strings.strings))
        for s in strings.strings:
            raw = s.encode("utf-8")
            _write_uvarint(table, len(raw))
            table.extend(raw)
        return _MAGIC + struct.pack("<H", _VERSION) + bytes(table) + bytes(body)

    def canonical_bytes(self) -> bytes:
        return self.to_bytes(canonical=True)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProfileDB":
        obs = _obs_session()
        if obs is None:
            return cls._from_bytes_impl(data)
        start = obs.clock.now_us()
        db = cls._from_bytes_impl(data)
        obs.trace.complete(
            name="codec:decode", cat="codec", ts_us=start,
            dur_us=obs.clock.now_us() - start, pid=0, tid=3,
            args={"process": db.process_name, "bytes": len(data)},
        )
        obs.metrics.inc(
            "repro_codec_decodes_total", 1,
            help_text="ProfileDB decode operations",
        )
        return db

    @classmethod
    def _from_bytes_impl(cls, data: bytes) -> "ProfileDB":
        if len(data) < _HEADER_LEN:
            raise ProfileError(f"profile shorter than the {_HEADER_LEN}-byte header")
        if data[:4] != _MAGIC:
            raise ProfileError("bad profile magic")
        (version,) = struct.unpack_from("<H", data, 4)
        if not _MIN_VERSION <= version <= _VERSION:
            raise ProfileError(f"unsupported profile version {version}")
        pos = _HEADER_LEN
        n_strings, pos = _checked_count(data, pos, "string-table entry")
        strings: list[str] = []
        for _ in range(n_strings):
            length, pos = _read_uvarint(data, pos)
            end = pos + length
            if end > len(data):
                raise ProfileError("truncated string-table entry")
            try:
                strings.append(data[pos:end].decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise ProfileError(f"string-table entry is not valid UTF-8: {exc}") from exc
            pos = end
        name_idx, pos = _read_uvarint(data, pos)
        db = cls(_string_at(strings, name_idx))
        if version >= 2:
            n_meta, pos = _checked_count(data, pos, "meta entry")
            for _ in range(n_meta):
                k, pos = _read_uvarint(data, pos)
                v, pos = _read_uvarint(data, pos)
                db.meta[_string_at(strings, k)] = _string_at(strings, v)
        n_threads, pos = _checked_count(data, pos, "thread")
        for _ in range(n_threads):
            tname_idx, pos = _read_uvarint(data, pos)
            profile = ThreadProfile(_string_at(strings, tname_idx))
            n_classes, pos = _checked_count(data, pos, "storage class")
            for _ in range(n_classes):
                cls_idx, pos = _read_uvarint(data, pos)
                try:
                    storage = StorageClass(_string_at(strings, cls_idx))
                except ValueError as exc:
                    raise ProfileError(f"unknown storage class: {exc}") from exc
                if storage in profile._ccts:
                    raise ProfileError(f"duplicate storage class {storage.value}")
                root, pos = _decode_node(data, pos, strings)
                tree = CCT(storage.value)
                tree.root = root
                profile._ccts[storage] = tree
            db.add_thread(profile)
        if pos != len(data):
            raise ProfileError(f"{len(data) - pos} trailing bytes after profile body")
        return db

    def size_bytes(self) -> int:
        """Serialized size — the paper's "space overhead" figure."""
        return len(self.to_bytes())
