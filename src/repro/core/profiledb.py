"""Compact profile databases (paper §2.2 "space overhead").

A :class:`ThreadProfile` holds one thread's per-storage-class CCTs; a
:class:`ProfileDB` holds all thread profiles of one process (or, after
merging, of a whole job).  The binary codec uses varints plus a string
table so profile size stays proportional to *distinct contexts*, not to
execution length — the property that distinguishes compact CCT profiles
from the allocation/access traces of tools like MemProf.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.core.cct import CCT, CCTNode
from repro.core.metrics import MetricVector
from repro.core.storage import StorageClass
from repro.errors import ProfileError

__all__ = ["ThreadProfile", "ProfileDB"]

_MAGIC = b"RPDB"
_VERSION = 1


# -- varint codec --------------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ProfileError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(buf: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise ProfileError("truncated uvarint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


class _StringTable:
    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self.strings: list[str] = []

    def intern(self, s: str) -> int:
        idx = self._index.get(s)
        if idx is None:
            idx = len(self.strings)
            self._index[s] = idx
            self.strings.append(s)
        return idx


# -- node codec ----------------------------------------------------------------

_TAG_INT = 0
_TAG_STR = 1
_TAG_NEG = 2


def _encode_node(node: CCTNode, out: bytearray, strings: _StringTable) -> None:
    key = node.key
    _write_uvarint(out, len(key))
    for element in key:
        if isinstance(element, str):
            out.append(_TAG_STR)
            _write_uvarint(out, strings.intern(element))
        elif isinstance(element, int):
            if element >= 0:
                out.append(_TAG_INT)
                _write_uvarint(out, element)
            else:
                out.append(_TAG_NEG)
                _write_uvarint(out, -element)
        else:
            raise ProfileError(f"unencodable key element {element!r}")
    info = node.info or {}
    _write_uvarint(out, len(info))
    for k in sorted(info):
        v = info[k]
        if not isinstance(v, str):
            raise ProfileError(f"info values must be str, got {k}={v!r}")
        _write_uvarint(out, strings.intern(k))
        _write_uvarint(out, strings.intern(v))
    m = node.metrics
    for value in (m.samples, m.latency, m.events, m.tlb_misses, m.stores):
        _write_uvarint(out, value)
    for value in m.levels:
        _write_uvarint(out, value)
    _write_uvarint(out, len(node.children))
    for child in node.children.values():
        _encode_node(child, out, strings)


def _decode_node(buf: bytes, pos: int, strings: list[str]) -> tuple[CCTNode, int]:
    key_len, pos = _read_uvarint(buf, pos)
    key_elements = []
    for _ in range(key_len):
        tag = buf[pos]
        pos += 1
        raw, pos = _read_uvarint(buf, pos)
        if tag == _TAG_STR:
            key_elements.append(strings[raw])
        elif tag == _TAG_INT:
            key_elements.append(raw)
        elif tag == _TAG_NEG:
            key_elements.append(-raw)
        else:
            raise ProfileError(f"bad key tag {tag}")
    node = CCTNode(tuple(key_elements))
    info_len, pos = _read_uvarint(buf, pos)
    if info_len:
        info = {}
        for _ in range(info_len):
            k, pos = _read_uvarint(buf, pos)
            v, pos = _read_uvarint(buf, pos)
            info[strings[k]] = strings[v]
        node.info = info
    m = MetricVector()
    m.samples, pos = _read_uvarint(buf, pos)
    m.latency, pos = _read_uvarint(buf, pos)
    m.events, pos = _read_uvarint(buf, pos)
    m.tlb_misses, pos = _read_uvarint(buf, pos)
    m.stores, pos = _read_uvarint(buf, pos)
    for i in range(len(m.levels)):
        m.levels[i], pos = _read_uvarint(buf, pos)
    node.metrics = m
    n_children, pos = _read_uvarint(buf, pos)
    for _ in range(n_children):
        child, pos = _decode_node(buf, pos, strings)
        node.children[child.key] = child
    return node, pos


# -- profiles -------------------------------------------------------------------


class ThreadProfile:
    """One thread's CCTs, one per storage class (created on demand)."""

    def __init__(self, thread_name: str) -> None:
        self.thread_name = thread_name
        self._ccts: dict[StorageClass, CCT] = {}

    def cct(self, storage: StorageClass) -> CCT:
        tree = self._ccts.get(storage)
        if tree is None:
            tree = CCT(storage.value)
            self._ccts[storage] = tree
        return tree

    def has_cct(self, storage: StorageClass) -> bool:
        return storage in self._ccts

    def storage_classes(self) -> list[StorageClass]:
        return sorted(self._ccts, key=lambda s: s.value)

    def node_count(self) -> int:
        return sum(cct.node_count() for cct in self._ccts.values())

    def clone(self) -> "ThreadProfile":
        out = ThreadProfile(self.thread_name)
        for storage, cct in self._ccts.items():
            out._ccts[storage] = cct.clone()
        return out


class ProfileDB:
    """All thread profiles of a process (or a merged job)."""

    def __init__(self, process_name: str) -> None:
        self.process_name = process_name
        self.threads: dict[str, ThreadProfile] = {}

    def add_thread(self, profile: ThreadProfile) -> None:
        if profile.thread_name in self.threads:
            raise ProfileError(f"duplicate thread profile {profile.thread_name}")
        self.threads[profile.thread_name] = profile

    def all_profiles(self) -> Iterator[ThreadProfile]:
        for name in sorted(self.threads):
            yield self.threads[name]

    def node_count(self) -> int:
        return sum(p.node_count() for p in self.threads.values())

    # -- binary codec -------------------------------------------------------

    def to_bytes(self) -> bytes:
        strings = _StringTable()
        body = bytearray()
        _write_uvarint(body, strings.intern(self.process_name))
        _write_uvarint(body, len(self.threads))
        for profile in self.all_profiles():
            _write_uvarint(body, strings.intern(profile.thread_name))
            classes = profile.storage_classes()
            _write_uvarint(body, len(classes))
            for storage in classes:
                _write_uvarint(body, strings.intern(storage.value))
                _encode_node(profile.cct(storage).root, body, strings)
        table = bytearray()
        _write_uvarint(table, len(strings.strings))
        for s in strings.strings:
            raw = s.encode("utf-8")
            _write_uvarint(table, len(raw))
            table.extend(raw)
        return _MAGIC + struct.pack("<H", _VERSION) + bytes(table) + bytes(body)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProfileDB":
        if data[:4] != _MAGIC:
            raise ProfileError("bad profile magic")
        (version,) = struct.unpack_from("<H", data, 4)
        if version != _VERSION:
            raise ProfileError(f"unsupported profile version {version}")
        pos = 6
        n_strings, pos = _read_uvarint(data, pos)
        strings: list[str] = []
        for _ in range(n_strings):
            length, pos = _read_uvarint(data, pos)
            strings.append(data[pos : pos + length].decode("utf-8"))
            pos += length
        name_idx, pos = _read_uvarint(data, pos)
        db = cls(strings[name_idx])
        n_threads, pos = _read_uvarint(data, pos)
        for _ in range(n_threads):
            tname_idx, pos = _read_uvarint(data, pos)
            profile = ThreadProfile(strings[tname_idx])
            n_classes, pos = _read_uvarint(data, pos)
            for _ in range(n_classes):
                cls_idx, pos = _read_uvarint(data, pos)
                storage = StorageClass(strings[cls_idx])
                root, pos = _decode_node(data, pos, strings)
                tree = CCT(storage.value)
                tree.root = root
                profile._ccts[storage] = tree
            db.add_thread(profile)
        return db

    def size_bytes(self) -> int:
        """Serialized size — the paper's "space overhead" figure."""
        return len(self.to_bytes())
