"""Full calling-context-tree rendering — the GUI's navigation pane.

The variable-centric views (:mod:`repro.core.views`) answer "which data
is expensive"; this module renders the raw CCT so one can *navigate*
contexts the way the paper's hpcviewer screenshots do: every node with
its inclusive metric and share, children sorted hottest-first, cold
subtrees pruned below a share threshold.
"""

from __future__ import annotations

from repro.core.cct import CCT, CCTNode
from repro.core.metrics import MetricKind
from repro.util.fmt import pct

__all__ = ["render_cct", "hot_path"]


def _render_node(
    node: CCTNode,
    total: int,
    kind: MetricKind,
    depth: int,
    max_depth: int,
    min_share: float,
    lines: list[str],
    prefix: str,
) -> None:
    children = [
        (child, child.inclusive_value(kind)) for child in node.children.values()
    ]
    children = [
        (child, value)
        for child, value in children
        if total == 0 or value / total >= min_share
    ]
    children.sort(key=lambda cv: cv[1], reverse=True)
    for index, (child, value) in enumerate(children):
        last = index == len(children) - 1
        branch = "`- " if last else "|- "
        lines.append(
            f"{prefix}{branch}{child.label()}  "
            f"{value} ({pct(value, total)})"
        )
        if depth + 1 < max_depth:
            extension = "   " if last else "|  "
            _render_node(
                child, total, kind, depth + 1, max_depth, min_share,
                lines, prefix + extension,
            )


def render_cct(
    cct: CCT,
    kind: MetricKind = MetricKind.SAMPLES,
    max_depth: int = 8,
    min_share: float = 0.02,
    title: str = "",
) -> str:
    """Render a CCT as an indented tree with inclusive metrics.

    ``min_share`` prunes subtrees below that fraction of the tree total
    (the GUI's collapse-cold-paths affordance); ``max_depth`` bounds the
    indentation.
    """
    total = cct.total(kind)
    lines = [title] if title else []
    lines.append(f"{cct.name}  [{kind}]  total: {total}")
    _render_node(cct.root, total, kind, 0, max_depth, min_share, lines, "")
    return "\n".join(lines)


def hot_path(cct: CCT, kind: MetricKind = MetricKind.SAMPLES) -> list[CCTNode]:
    """The hottest root-to-leaf chain by inclusive metric.

    What an analyst reads first in the top-down pane: follow the largest
    child until the metric stops concentrating.
    """
    path: list[CCTNode] = []
    node = cct.root
    while node.children:
        best = max(node.children.values(), key=lambda c: c.inclusive_value(kind))
        if best.inclusive_value(kind) == 0:
            break
        path.append(best)
        node = best
    return path
