"""Data-centric view models (the paper's GUI panes, as data).

The top-down view ranks variables by an inclusive metric and exposes, for
each variable, the allocation call path and the access call paths with
the highest costs — what Figures 4 and 6-11 display.  The bottom-up view
aggregates heap variables by their allocation *call site* regardless of
the full path that reached it — Figure 5's pane.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cct import (
    CCTNode,
    KIND_FRAME,
    KIND_HEAP_MARKER,
    KIND_IP,
    KIND_STATIC_VAR,
)
from repro.core.stackmap import KIND_STACK_VAR
from repro.core.metrics import MetricKind
from repro.core.profiledb import ThreadProfile
from repro.core.storage import StorageClass
from repro.machine.hierarchy import LVL_RMEM

__all__ = [
    "AccessSite",
    "VariableReport",
    "TopDownView",
    "BottomUpSite",
    "BottomUpView",
    "build_top_down",
    "build_bottom_up",
]


@dataclass
class AccessSite:
    """One access call-path leaf and its cost."""

    label: str
    location: str
    line_text: str
    value: int
    share: float          # of the view's grand total
    remote_fraction: float
    tlb_miss_fraction: float


@dataclass
class VariableReport:
    """One variable (heap allocation context or static symbol)."""

    name: str
    storage: StorageClass
    value: int
    share: float          # of the view's grand total
    alloc_kind: str | None
    alloc_path: list[str] = field(default_factory=list)  # frame labels, root first
    alloc_location: str = ""
    # Structural identity of the allocation call site: the innermost frame
    # (e.g. `hypre_CAlloc` at a specific call-site IP) plus the allocating
    # instruction — what the bottom-up view groups by (Figure 5).
    alloc_site_key: tuple = ()
    accesses: list[AccessSite] = field(default_factory=list)
    remote_fraction: float = 0.0        # remote samples / all samples
    dram_remote_fraction: float = 0.0   # remote samples / DRAM-serviced samples
    tlb_miss_fraction: float = 0.0
    samples: int = 0
    # Raw inclusive counters, so per-variable formula sources
    # (repro.metrics.sources.VariableProfileSource) can feed the
    # boundness DAG without re-walking the CCT.
    levels: tuple[int, ...] = ()        # per-service-level sample counts
    latency: int = 0                    # summed sampled access latency
    tlb_misses: int = 0


@dataclass
class TopDownView:
    """Variables ranked by an inclusive metric, with storage-class totals."""

    metric: MetricKind
    grand_total: int
    storage_totals: dict[StorageClass, int]
    variables: list[VariableReport]

    def storage_share(self, storage: StorageClass) -> float:
        if self.grand_total == 0:
            return 0.0
        return self.storage_totals.get(storage, 0) / self.grand_total

    def top(self, n: int) -> list[VariableReport]:
        return self.variables[:n]

    def find_variable(self, name: str) -> VariableReport | None:
        for var in self.variables:
            if var.name == name:
                return var
        return None


@dataclass
class BottomUpSite:
    """One allocation call site, aggregated over all paths reaching it."""

    label: str
    location: str
    value: int
    share: float
    n_contexts: int       # distinct full allocation paths merged here
    names: list[str] = field(default_factory=list)


@dataclass
class BottomUpView:
    metric: MetricKind
    grand_total: int
    sites: list[BottomUpSite]

    def top(self, n: int) -> list[BottomUpSite]:
        return self.sites[:n]


# -- helpers ----------------------------------------------------------------


def _dram_remote(metrics) -> float:
    """Remote share among DRAM-serviced samples (cache hits excluded)."""
    from repro.machine.hierarchy import LVL_LMEM

    dram = metrics.levels[LVL_LMEM] + metrics.levels[LVL_RMEM]
    return metrics.levels[LVL_RMEM] / dram if dram else 0.0


def _access_sites(
    root: CCTNode, kind: MetricKind, grand_total: int, limit: int
) -> list[AccessSite]:
    sites: list[AccessSite] = []
    for node in root.walk():
        if node.key[0] != KIND_IP or node.metrics.is_zero():
            continue
        m = node.metrics
        value = m.get(kind)
        if value == 0:
            continue
        info = node.info or {}
        samples = max(m.samples, 1)
        sites.append(
            AccessSite(
                label=node.label(),
                location=info.get("location", ""),
                line_text=info.get("line_text", ""),
                value=value,
                share=value / grand_total if grand_total else 0.0,
                remote_fraction=m.levels[LVL_RMEM] / samples,
                tlb_miss_fraction=m.tlb_misses / samples,
            )
        )
    sites.sort(key=lambda s: s.value, reverse=True)
    return sites[:limit]


def _heap_variables(
    profile: ThreadProfile, kind: MetricKind, grand_total: int, accesses_per_var: int
) -> list[VariableReport]:
    reports = []
    heap_cct = profile.get_cct(StorageClass.HEAP)
    if heap_cct is None:
        return reports
    root = heap_cct.root

    # Invariant: ``path`` is the chain of nodes from (but excluding) the
    # root down to and including ``node``.
    def visit(node: CCTNode, path: list[CCTNode]) -> None:
        for child in node.children.values():
            if child.key[0] == KIND_HEAP_MARKER:
                incl = child.inclusive()
                value = incl.get(kind)
                if value == 0:
                    continue
                alloc_leaf = node  # the allocation call-site node
                leaf_info = alloc_leaf.info or {}
                name = leaf_info.get("var") or alloc_leaf.label()
                samples = max(incl.samples, 1)
                # Site identity: innermost frame (the allocator shim and
                # where it was called from) + the allocating instruction.
                parent_frame_key = None
                for ancestor in reversed(path[:-1]):
                    if ancestor.key[0] == KIND_FRAME:
                        parent_frame_key = ancestor.key
                        break
                reports.append(
                    VariableReport(
                        name=name,
                        storage=StorageClass.HEAP,
                        value=value,
                        share=value / grand_total if grand_total else 0.0,
                        alloc_kind=leaf_info.get("alloc_kind"),
                        alloc_path=[n.label() for n in path],
                        alloc_location=leaf_info.get("location", ""),
                        alloc_site_key=(parent_frame_key, alloc_leaf.key),
                        accesses=_access_sites(child, kind, grand_total, accesses_per_var),
                        remote_fraction=incl.levels[LVL_RMEM] / samples,
                        dram_remote_fraction=_dram_remote(incl),
                        tlb_miss_fraction=incl.tlb_misses / samples,
                        samples=incl.samples,
                        levels=tuple(incl.levels),
                        latency=incl.latency,
                        tlb_misses=incl.tlb_misses,
                    )
                )
            else:
                visit(child, path + [child])

    visit(root, [])
    return reports


def _named_variables(
    profile: ThreadProfile,
    storage: StorageClass,
    node_kind: str,
    kind: MetricKind,
    grand_total: int,
    accesses_per_var: int,
) -> list[VariableReport]:
    """Variables represented by a dummy name node under the CCT root
    (statics by symbol, stack locals by function::name)."""
    reports = []
    cct = profile.get_cct(storage)
    if cct is None:
        return reports
    root = cct.root
    for child in root.children.values():
        if child.key[0] != node_kind:
            continue
        incl = child.inclusive()
        value = incl.get(kind)
        if value == 0:
            continue
        info = child.info or {}
        samples = max(incl.samples, 1)
        reports.append(
            VariableReport(
                name=child.key[2],
                storage=storage,
                value=value,
                share=value / grand_total if grand_total else 0.0,
                alloc_kind=None,
                alloc_path=[],
                alloc_location=info.get("location", ""),
                accesses=_access_sites(child, kind, grand_total, accesses_per_var),
                remote_fraction=incl.levels[LVL_RMEM] / samples,
                dram_remote_fraction=_dram_remote(incl),
                tlb_miss_fraction=incl.tlb_misses / samples,
                samples=incl.samples,
                levels=tuple(incl.levels),
                latency=incl.latency,
                tlb_misses=incl.tlb_misses,
            )
        )
    return reports


# -- public builders ------------------------------------------------------------


def build_top_down(
    profile: ThreadProfile,
    kind: MetricKind = MetricKind.SAMPLES,
    accesses_per_var: int = 5,
) -> TopDownView:
    """Build the top-down data-centric view from a merged profile."""
    storage_totals: dict[StorageClass, int] = {}
    for storage in (
        StorageClass.HEAP,
        StorageClass.STATIC,
        StorageClass.STACK,
        StorageClass.UNKNOWN,
    ):
        cct = profile.get_cct(storage)
        storage_totals[storage] = cct.total(kind) if cct is not None else 0
    grand_total = sum(storage_totals.values())

    variables = _heap_variables(profile, kind, grand_total, accesses_per_var)
    variables.extend(
        _named_variables(profile, StorageClass.STATIC, KIND_STATIC_VAR,
                         kind, grand_total, accesses_per_var)
    )
    variables.extend(
        _named_variables(profile, StorageClass.STACK, KIND_STACK_VAR,
                         kind, grand_total, accesses_per_var)
    )
    variables.sort(key=lambda v: v.value, reverse=True)
    return TopDownView(
        metric=kind,
        grand_total=grand_total,
        storage_totals=storage_totals,
        variables=variables,
    )


def build_bottom_up(
    profile: ThreadProfile, kind: MetricKind = MetricKind.SAMPLES
) -> BottomUpView:
    """Aggregate heap variables by allocation call site (Figure 5)."""
    top_down = build_top_down(profile, kind, accesses_per_var=0)
    by_site: dict[tuple, BottomUpSite] = {}
    for var in top_down.variables:
        if var.storage is not StorageClass.HEAP:
            continue
        site_key = var.alloc_site_key or (var.alloc_location,)
        site = by_site.get(site_key)
        if site is None:
            site = BottomUpSite(
                label=var.alloc_path[-1] if var.alloc_path else var.name,
                location=var.alloc_location,
                value=0,
                share=0.0,
                n_contexts=0,
            )
            by_site[site_key] = site
        site.value += var.value
        site.n_contexts += 1
        if var.name not in site.names:
            site.names.append(var.name)
    grand_total = top_down.grand_total
    sites = list(by_site.values())
    for site in sites:
        site.share = site.value / grand_total if grand_total else 0.0
    sites.sort(key=lambda s: s.value, reverse=True)
    return BottomUpView(metric=kind, grand_total=grand_total, sites=sites)
