"""Asyncio ingest/query front end for the continuous-profiling store.

Stdlib-only TCP service speaking a small length-prefixed binary frame:

Request::

    b"RPQ1"  magic
    u8       op          (1=INGEST, 2=QUERY, 3=COMPACT)
    u16      app_len     big-endian
    u32      payload_len big-endian
    app_len  app namespace, UTF-8
    payload  op-specific body

INGEST carries a codec-v2 ``.rpdb`` blob; QUERY a JSON object
``{"view": ..., "metric": ..., "n": ...}``; COMPACT has an empty body.

Response::

    b"RPR1"  magic
    u8       status      (0=ok, 1=rejected/error)
    u32      payload_len big-endian
    payload  JSON object (ok: op result; error: {"error": ...})

Backpressure and durability: handlers validate blobs through the
hardened codec, then block on a **bounded** queue feeding one consumer
task that owns all store writes.  The ack is only sent after the
consumer resolves the request's future post-commit, so a slow disk
backs pressure up through the queue to every connected client, and an
acked blob is on disk.  Corrupt blobs are rejected at the front door
(``ProfileError`` from the codec) without ever touching the store.

Self-instrumentation (``repro.obs``): every request runs under a wall
span on the ``serve`` lane, and the session's registry collects
``repro_serve_*`` counters/gauges/histograms — ingest/reject counts,
queue depth, compaction rounds, query latency — all visible through
the ``metricsz`` query view while the service runs.  Latency comes
from the session's injected clock, so tests drive it deterministically
with :class:`repro.obs.clock.ManualClock`.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import TYPE_CHECKING

from repro.core.profiledb import ProfileDB
from repro.errors import ProfileError, ServeError
from repro.serve.query import QueryEngine
from repro.serve.store import ProfileStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsSession

__all__ = [
    "OP_COMPACT",
    "OP_INGEST",
    "OP_QUERY",
    "ProfileService",
    "ServeClient",
]

REQUEST_MAGIC = b"RPQ1"
RESPONSE_MAGIC = b"RPR1"
_REQ_HEAD = struct.Struct(">4sBHI")
_RESP_HEAD = struct.Struct(">4sBI")

OP_INGEST = 1
OP_QUERY = 2
OP_COMPACT = 3
_OP_NAMES = {OP_INGEST: "ingest", OP_QUERY: "query", OP_COMPACT: "compact"}

STATUS_OK = 0
STATUS_ERROR = 1

# A profile blob at fleet scale is kilobytes; anything near this cap is a
# corrupt length field or an abusive client, not a real profile.
MAX_PAYLOAD = 64 * 1024 * 1024


def _session() -> "ObsSession":
    # Reuse an active observing() scope when the caller opened one (the
    # CLI pipeline does); otherwise the service instruments itself into
    # a private session it exposes for metricsz/export.
    from repro import obs

    return obs.active_session() or obs.ObsSession()


def pack_request(op: int, app: str, payload: bytes) -> bytes:
    app_raw = app.encode("utf-8")
    return _REQ_HEAD.pack(REQUEST_MAGIC, op, len(app_raw), len(payload)) + app_raw + payload


def pack_response(status: int, payload: dict) -> bytes:
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _RESP_HEAD.pack(RESPONSE_MAGIC, status, len(raw)) + raw


async def read_request(
    reader: asyncio.StreamReader,
) -> tuple[int, str, bytes] | None:
    """Read one framed request; ``None`` on clean EOF before a frame."""
    try:
        head = await reader.readexactly(_REQ_HEAD.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServeError("connection closed mid-frame") from exc
    magic, op, app_len, payload_len = _REQ_HEAD.unpack(head)
    if magic != REQUEST_MAGIC:
        raise ServeError(f"bad request magic {magic!r}")
    if payload_len > MAX_PAYLOAD:
        raise ServeError(f"payload of {payload_len} bytes exceeds frame cap")
    try:
        app_raw = await reader.readexactly(app_len)
        payload = await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as exc:
        raise ServeError("connection closed mid-frame") from exc
    try:
        app = app_raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ServeError("app namespace is not valid UTF-8") from exc
    return op, app, payload


async def read_response(reader: asyncio.StreamReader) -> tuple[int, dict]:
    try:
        head = await reader.readexactly(_RESP_HEAD.size)
        magic, status, payload_len = _RESP_HEAD.unpack(head)
        if magic != RESPONSE_MAGIC:
            raise ServeError(f"bad response magic {magic!r}")
        if payload_len > MAX_PAYLOAD:
            raise ServeError(f"response of {payload_len} bytes exceeds frame cap")
        raw = await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as exc:
        raise ServeError("server closed the connection mid-response") from exc
    return status, json.loads(raw.decode("utf-8"))


class ProfileService:
    """The ingest/compaction/query service around one :class:`ProfileStore`.

    ``queue_size`` bounds the in-flight (validated, unacked) ingest
    window — the backpressure knob.  ``compact_every`` > 0 folds an
    app's leaves automatically after that many ingests; 0 leaves
    compaction to explicit COMPACT requests (deterministic for tests).
    """

    def __init__(
        self,
        store: ProfileStore,
        queue_size: int = 64,
        compact_every: int = 0,
        session: "ObsSession | None" = None,
    ) -> None:
        if queue_size < 1:
            raise ServeError("ingest queue needs room for at least one blob")
        self.store = store
        self.queue_size = queue_size
        self.compact_every = compact_every
        self.session = session if session is not None else _session()
        self.engine = QueryEngine(store, session=self.session)
        self._queue: asyncio.Queue | None = None
        self._server: asyncio.base_events.Server | None = None
        self._consumer_task: asyncio.Task | None = None
        self._since_compact: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and serve; returns the bound (host, port)."""
        if self._server is not None:
            raise ServeError("service already started")
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._consumer_task = asyncio.create_task(self._consume())
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._consumer_task is not None:
            self._consumer_task.cancel()
            try:
                await self._consumer_task
            except asyncio.CancelledError:
                pass
            self._consumer_task = None
        self._queue = None

    # -- obs helpers ---------------------------------------------------------

    def _metric(self):
        return self.session.metrics

    def _reject(self, app: str, reason: str) -> None:
        self._metric().inc(
            "repro_serve_rejected_total",
            labels={"app": app or "?", "reason": reason},
            help_text="requests rejected at the front door",
        )

    def _queue_depth(self) -> None:
        depth = self._queue.qsize() if self._queue is not None else 0
        self._metric().set_gauge(
            "repro_serve_queue_depth",
            depth,
            help_text="validated blobs waiting for the store writer",
        )

    # -- store writer --------------------------------------------------------

    async def _consume(self) -> None:
        """Single writer: commits validated blobs, resolves ack futures."""
        assert self._queue is not None
        while True:
            app, blob, future = await self._queue.get()
            self._queue_depth()
            try:
                seq = self._commit(app, blob)
            except Exception as exc:  # resolve the waiter, don't die
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if not future.cancelled():
                    future.set_result(seq)
            finally:
                self._queue.task_done()

    def _commit(self, app: str, blob: bytes) -> int:
        seq = self.store.ingest(app, blob, validated=True)
        if self.compact_every > 0:
            pending = self._since_compact.get(app, 0) + 1
            if pending >= self.compact_every:
                self._since_compact[app] = 0
                self._compact(app)
            else:
                self._since_compact[app] = pending
        return seq

    def _compact(self, app: str) -> dict:
        with self.session.wall_span(
            f"serve.compact.{app}", cat="serve", tid=_serve_tid(), args={"app": app}
        ):
            result = self.store.compact(app)
        self.engine.invalidate(app)
        metric = self._metric()
        if result.changed:
            metric.inc(
                "repro_serve_compactions_total",
                labels={"app": app},
                help_text="compaction rounds that folded new leaves",
            )
            metric.inc(
                "repro_serve_compacted_leaves_total",
                result.leaves_folded,
                labels={"app": app},
                help_text="leaf blobs folded into rollups",
            )
        return {
            "app": app,
            "generation": result.generation,
            "leaves_folded": result.leaves_folded,
            "leaves_total": result.leaves_total,
            "rounds": result.rounds,
            "rollup_bytes": result.rollup_bytes,
            "text": result.summary(),
        }

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ServeError as exc:
                    self._reject("?", "bad-frame")
                    writer.write(pack_response(STATUS_ERROR, {"error": str(exc)}))
                    await writer.drain()
                    break
                if request is None:
                    break
                op, app, payload = request
                status, response = await self._dispatch(op, app, payload)
                writer.write(pack_response(status, response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, op: int, app: str, payload: bytes) -> tuple[int, dict]:
        name = _OP_NAMES.get(op)
        if name is None:
            self._reject(app, "bad-op")
            return STATUS_ERROR, {"error": f"unknown op {op}"}
        clock = self.session.clock
        start = clock.now_us()
        try:
            if op == OP_INGEST:
                result = await self._ingest(app, payload)
            elif op == OP_COMPACT:
                ProfileStore.check_app(app)
                result = self._compact(app)
            else:
                result = self._query(app, payload)
        except (ServeError, ProfileError) as exc:
            self._reject(app, getattr(exc, "reason", "error"))
            return STATUS_ERROR, {"error": str(exc)}
        finally:
            elapsed_s = (clock.now_us() - start) / 1e6
            self._metric().observe(
                "repro_serve_request_seconds",
                elapsed_s,
                labels={"op": name},
                help_text="wall time per request, by op",
            )
            self.session.trace.complete(
                name=f"serve.{name}",
                cat="serve",
                ts_us=start,
                dur_us=clock.now_us() - start,
                pid=_serve_pid(),
                tid=_serve_tid(),
                args={"app": app} if app else None,
            )
        return STATUS_OK, result

    async def _ingest(self, app: str, blob: bytes) -> dict:
        ProfileStore.check_app(app)
        try:
            ProfileDB.from_bytes(blob)  # hardened codec is the gatekeeper
        except ProfileError as exc:
            err = ServeError(f"rejected corrupt blob for {app!r}: {exc}")
            err.reason = "corrupt-blob"  # type: ignore[attr-defined]
            raise err from exc
        assert self._queue is not None, "service not started"
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put((app, blob, future))  # blocks when full
        self._queue_depth()
        seq = await future  # ack only after the writer committed
        metric = self._metric()
        metric.inc(
            "repro_serve_ingest_total",
            labels={"app": app},
            help_text="blobs accepted and committed",
        )
        metric.inc(
            "repro_serve_ingest_bytes_total",
            len(blob),
            labels={"app": app},
            help_text="payload bytes committed to the store",
        )
        return {"app": app, "seq": seq, "bytes": len(blob)}

    def _query(self, app: str, payload: bytes) -> dict:
        try:
            params = json.loads(payload.decode("utf-8")) if payload else {}
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServeError(f"query payload is not valid JSON: {exc}") from exc
        if not isinstance(params, dict):
            raise ServeError("query payload must be a JSON object")
        view = str(params.get("view", "status"))
        metric = str(params.get("metric", "latency"))
        n = int(params.get("n", 10))
        clock = self.session.clock
        start = clock.now_us()
        result = self.engine.query(app, view, metric=metric, n=n)
        self._metric().observe(
            "repro_serve_query_latency_seconds",
            (clock.now_us() - start) / 1e6,
            labels={"view": view},
            help_text="view materialization latency (cache hits included)",
        )
        return result


def _serve_pid() -> int:
    from repro.obs import WALL_PID

    return WALL_PID


def _serve_tid() -> int:
    from repro.obs import WALL_TID_SERVE

    return WALL_TID_SERVE


class ServeClient:
    """Async client for the frame protocol (one connection, many requests)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._reader = self._writer = None

    async def _request(self, op: int, app: str, payload: bytes) -> dict:
        if self._writer is None or self._reader is None:
            raise ServeError("client is not connected")
        self._writer.write(pack_request(op, app, payload))
        await self._writer.drain()
        status, response = await read_response(self._reader)
        if status != STATUS_OK:
            raise ServeError(response.get("error", "request failed"))
        return response

    async def ingest(self, app: str, blob: bytes) -> int:
        """Ship one ``.rpdb`` blob; returns its committed sequence number."""
        response = await self._request(OP_INGEST, app, blob)
        return int(response["seq"])

    async def query(
        self, app: str, view: str, metric: str = "latency", n: int = 10
    ) -> dict:
        params = {"view": view, "metric": metric, "n": n}
        payload = json.dumps(params, sort_keys=True).encode("utf-8")
        return await self._request(OP_QUERY, app, payload)

    async def compact(self, app: str) -> dict:
        return await self._request(OP_COMPACT, app, b"")
