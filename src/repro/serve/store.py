"""Sharded on-disk profile store with incremental rollup compaction.

The continuous-profiling grown-up of the driver's flat ``measurements/``
directory: one namespace per application, leaf blobs spread across
shard directories, and a per-app **rollup** maintained by incremental
hierarchical compaction::

    store/
      <app>/
        MANIFEST.json          # generation + compaction watermark
        rollup.rpdb            # canonical bytes of the compacted merge
        shard-00/000001.rpdb   # leaf blobs, sharded by sequence number
        shard-01/000002.rpdb

Compaction reuses the reduction-tree merge (:func:`repro.core.merge.
reduction_tree_merge`) as its engine: each round folds the existing
rollup plus every leaf past the compaction watermark.  Because pairwise
CCT merging is associative and commutative, consensus metadata is an
intersection, and the rollup is stored in *canonical* byte form, an
incrementally-maintained rollup is byte-identical to one sequential
:func:`repro.core.merge.merge_profiles` over the same leaves — the
invariant :meth:`ProfileStore.verify_rollup` checks and the serve tests
pin across interleaved ingest schedules.

All file writes are atomic (``.tmp`` sibling + ``os.replace``), matching
the ``.rpdb`` convention everywhere else in the repo, so a crash mid-
ingest or mid-compaction never leaves a torn blob or manifest.  Leaf
sequence numbers are recovered from filenames at open, so the manifest
only has to be rewritten when a compaction commits.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.merge import MergeStats, merge_profiles, reduction_tree_merge
from repro.core.profiledb import ProfileDB
from repro.errors import ProfileError, ServeError

__all__ = ["CompactionResult", "LeafRef", "ProfileStore", "StoreStats"]

# Namespaces become directory names; keep them boring and path-safe.
_APP_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")
_LEAF_RE = re.compile(r"^(\d{8})\.rpdb$")

MANIFEST_NAME = "MANIFEST.json"
ROLLUP_NAME = "rollup.rpdb"


def _atomic_write(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


@dataclass(frozen=True)
class LeafRef:
    """One stored leaf blob."""

    seq: int
    path: Path

    @property
    def shard(self) -> str:
        return self.path.parent.name


@dataclass
class CompactionResult:
    """What one compaction round did."""

    app: str
    generation: int
    leaves_folded: int = 0       # new leaves folded this round
    leaves_total: int = 0        # leaves covered by the rollup now
    rounds: int = 0              # reduction-tree rounds this compaction ran
    node_visits: int = 0
    rollup_bytes: int = 0
    merge_stats: MergeStats | None = None

    @property
    def changed(self) -> bool:
        return self.leaves_folded > 0

    def summary(self) -> str:
        if not self.changed:
            return f"{self.app}: nothing to compact (gen {self.generation})"
        return (
            f"{self.app}: folded {self.leaves_folded} leaf blob(s) in "
            f"{self.rounds} round(s) -> gen {self.generation} rollup "
            f"({self.leaves_total} leaves, {self.rollup_bytes} bytes)"
        )


@dataclass
class StoreStats:
    """Per-app store occupancy snapshot."""

    app: str
    leaves: int = 0
    uncompacted: int = 0
    leaf_bytes: int = 0
    generation: int = 0
    rollup_bytes: int = 0
    shards: dict[str, int] = field(default_factory=dict)


class ProfileStore:
    """Sharded ``.rpdb`` store: ingest leaves, compact into rollups.

    One instance owns one store root.  Not safe for concurrent writers
    from multiple processes (the service serializes writes through its
    ingest queue); readers may open the same root read-only at any time
    since every visible file is complete by construction.
    """

    def __init__(self, root: str | Path, shards: int = 4, arity: int = 8) -> None:
        if shards < 1:
            raise ServeError("store needs at least one shard")
        if arity < 2:
            raise ServeError("compaction arity must be >= 2")
        self.root = Path(root)
        self.shards = shards
        self.arity = arity
        self.root.mkdir(parents=True, exist_ok=True)
        # app -> next leaf sequence number, recovered from filenames.
        self._next_seq: dict[str, int] = {}
        for app in self.apps():
            leaves = self.leaves(app)
            self._next_seq[app] = (leaves[-1].seq + 1) if leaves else 1

    # -- namespace helpers ---------------------------------------------------

    @staticmethod
    def check_app(app: str) -> str:
        if not _APP_RE.match(app):
            raise ServeError(
                f"bad app namespace {app!r}: need 1-64 chars of "
                f"[A-Za-z0-9_.-], not starting with a separator"
            )
        return app

    def apps(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and _APP_RE.match(p.name)
        )

    def _app_dir(self, app: str) -> Path:
        return self.root / self.check_app(app)

    def _shard_dir(self, app: str, seq: int) -> Path:
        return self._app_dir(app) / f"shard-{seq % self.shards:02d}"

    # -- manifest ------------------------------------------------------------

    def _manifest(self, app: str) -> dict:
        path = self._app_dir(app) / MANIFEST_NAME
        if not path.is_file():
            return {"generation": 0, "compacted_upto": 0}
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ServeError(f"unreadable manifest for {app!r}: {exc}") from exc
        return {
            "generation": int(data.get("generation", 0)),
            "compacted_upto": int(data.get("compacted_upto", 0)),
        }

    def _write_manifest(self, app: str, manifest: dict) -> None:
        payload = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
        _atomic_write(
            self._app_dir(app) / MANIFEST_NAME, payload.encode("utf-8")
        )

    def generation(self, app: str) -> int:
        return self._manifest(app)["generation"]

    # -- leaves --------------------------------------------------------------

    def leaves(self, app: str) -> list[LeafRef]:
        """All leaf blobs of ``app``, in ingest (sequence) order."""
        app_dir = self._app_dir(app)
        if not app_dir.is_dir():
            return []
        refs = []
        for shard in sorted(app_dir.glob("shard-*")):
            for entry in shard.iterdir():
                match = _LEAF_RE.match(entry.name)
                if match:
                    refs.append(LeafRef(int(match.group(1)), entry))
        refs.sort(key=lambda ref: ref.seq)
        return refs

    def uncompacted(self, app: str) -> list[LeafRef]:
        upto = self._manifest(app)["compacted_upto"]
        return [ref for ref in self.leaves(app) if ref.seq > upto]

    def ingest(self, app: str, blob: bytes, validated: bool = False) -> int:
        """Store one leaf blob; returns its sequence number.

        ``validated=True`` skips the decode check when the caller (the
        ingest service) already ran the blob through the hardened codec.
        """
        self.check_app(app)
        if not validated:
            ProfileDB.from_bytes(blob)  # raises ProfileError on corruption
        seq = self._next_seq.get(app)
        if seq is None:
            leaves = self.leaves(app)
            seq = (leaves[-1].seq + 1) if leaves else 1
        self._next_seq[app] = seq + 1
        _atomic_write(self._shard_dir(app, seq) / f"{seq:08d}.rpdb", blob)
        return seq

    # -- rollup & compaction -------------------------------------------------

    def rollup_path(self, app: str) -> Path:
        return self._app_dir(app) / ROLLUP_NAME

    def rollup_bytes(self, app: str) -> bytes | None:
        path = self.rollup_path(app)
        return path.read_bytes() if path.is_file() else None

    def rollup(self, app: str) -> ProfileDB | None:
        data = self.rollup_bytes(app)
        return ProfileDB.from_bytes(data) if data is not None else None

    def compact(self, app: str) -> CompactionResult:
        """Fold every uncompacted leaf into the app's rollup.

        The reduction-tree engine merges ``[current rollup] + new
        leaves``; merge associativity plus canonical serialization keeps
        the result byte-identical to a from-scratch sequential merge of
        all covered leaves, whatever the ingest/compaction interleaving.
        A round with no new leaves is a no-op (generation unchanged).
        """
        manifest = self._manifest(app)
        fresh = self.uncompacted(app)
        result = CompactionResult(
            app=app,
            generation=manifest["generation"],
            leaves_total=len(self.leaves(app)),
        )
        if not fresh:
            return result

        inputs: list[ProfileDB] = []
        rollup = self.rollup(app)
        if rollup is not None:
            inputs.append(rollup)
        for ref in fresh:
            try:
                inputs.append(ProfileDB.from_bytes(ref.path.read_bytes()))
            except (OSError, ProfileError) as exc:
                # Leaves were validated at ingest; a blob going bad on
                # disk afterwards is a store-integrity failure, not a
                # degradation to paper over silently.
                raise ServeError(
                    f"stored leaf {ref.path} is unreadable: {exc}"
                ) from exc

        merged, stats = reduction_tree_merge(inputs, name=app, arity=self.arity)
        data = merged.canonical_bytes()
        _atomic_write(self.rollup_path(app), data)

        manifest["generation"] += 1
        manifest["compacted_upto"] = fresh[-1].seq
        self._write_manifest(app, manifest)

        result.generation = manifest["generation"]
        result.leaves_folded = len(fresh)
        result.rounds = stats.rounds
        result.node_visits = stats.node_visits
        result.rollup_bytes = len(data)
        result.merge_stats = stats
        return result

    def verify_rollup(self, app: str) -> tuple[bool, int]:
        """Check the incremental rollup against a sequential re-merge.

        Returns ``(byte_identical, n_leaves_covered)``.  The reference is
        :func:`merge_profiles` over every compacted leaf in ingest order
        — the exact one-shot pipeline the service replaces.
        """
        actual = self.rollup_bytes(app)
        if actual is None:
            raise ServeError(f"{app!r} has no rollup to verify (compact first)")
        upto = self._manifest(app)["compacted_upto"]
        covered = [ref for ref in self.leaves(app) if ref.seq <= upto]
        dbs = [ProfileDB.from_bytes(ref.path.read_bytes()) for ref in covered]
        expected = merge_profiles(dbs, name=app).canonical_bytes()
        return expected == actual, len(covered)

    # -- introspection -------------------------------------------------------

    def stats(self, app: str) -> StoreStats:
        leaves = self.leaves(app)
        manifest = self._manifest(app)
        rollup = self.rollup_path(app)
        shards: dict[str, int] = {}
        for ref in leaves:
            shards[ref.shard] = shards.get(ref.shard, 0) + 1
        return StoreStats(
            app=app,
            leaves=len(leaves),
            uncompacted=sum(
                1 for ref in leaves if ref.seq > manifest["compacted_upto"]
            ),
            leaf_bytes=sum(ref.path.stat().st_size for ref in leaves),
            generation=manifest["generation"],
            rollup_bytes=rollup.stat().st_size if rollup.is_file() else 0,
            shards=shards,
        )
