"""Query layer over the profile store: memoized analysis views.

Each query materializes the app's compacted rollup into an
:class:`repro.core.analyzer.ExperimentDB` (the rollup is already a
fully merged profile, so this is a decode, not a re-merge) and renders
one of the analysis views the one-shot ``hpcview view`` pipeline
offers — plus service introspection:

* ``topdown``   — the :mod:`repro.metrics` formula-DAG top-down tree
  (boundness triage over the rollup's sampled counters)
* ``bottomup``  — allocation call-site pane
* ``variables`` — per-variable ranking table
* ``status``    — store occupancy (leaves, shards, generation)
* ``metricsz``  — the service's own ``repro_serve_*`` telemetry,
  rendered as Prometheus text (``/metricsz``-style introspection)

Memoization: both the materialized experiment and every rendered view
are cached keyed on the rollup *generation*.  A compaction bumps the
generation, so the next query misses and stale entries for that app are
evicted — the invalidation rule is exactly "cache lives as long as the
rollup bytes it was computed from".  Hit/miss counts feed the
``repro_serve_query_cache_*`` counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.analyzer import ExperimentDB
from repro.core.metrics import MetricKind
from repro.core.render import render_bottom_up, render_variable_table
from repro.errors import ServeError
from repro.metrics import ProfileSource, evaluate_boundness, render_topdown
from repro.serve.store import ProfileStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsSession

__all__ = ["QueryEngine", "VIEWS"]

VIEWS = ("topdown", "bottomup", "variables", "status", "metricsz")

# Views computed from an app's rollup (and therefore cacheable by
# generation); status/metricsz always reflect the live state instead.
_ROLLUP_VIEWS = ("topdown", "bottomup", "variables")


def _metric_kind(metric: str) -> MetricKind:
    try:
        return MetricKind(metric)
    except ValueError:
        choices = ", ".join(k.value for k in MetricKind)
        raise ServeError(
            f"unknown metric {metric!r} (choose from: {choices})"
        ) from None


class QueryEngine:
    """Serves analysis views over compacted rollups, memoized by generation."""

    def __init__(
        self, store: ProfileStore, session: "ObsSession | None" = None
    ) -> None:
        self.store = store
        self.session = session
        # (app, view, metric, n) -> (generation, payload)
        self._view_cache: dict[tuple[str, str, str, int], tuple[int, dict]] = {}
        # app -> (generation, ExperimentDB)
        self._exp_cache: dict[str, tuple[int, ExperimentDB]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache plumbing ------------------------------------------------------

    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def invalidate(self, app: str) -> int:
        """Drop every cached entry for ``app``; returns how many went."""
        stale = [key for key in self._view_cache if key[0] == app]
        for key in stale:
            del self._view_cache[key]
        dropped = len(stale)
        if app in self._exp_cache:
            del self._exp_cache[app]
            dropped += 1
        return dropped

    def _experiment(self, app: str, generation: int) -> ExperimentDB:
        cached = self._exp_cache.get(app)
        if cached is not None and cached[0] == generation:
            return cached[1]
        rollup = self.store.rollup(app)
        if rollup is None:
            raise ServeError(
                f"app {app!r} has no compacted rollup yet — ingest blobs "
                f"and run a compaction before querying"
            )
        exp = ExperimentDB(rollup)
        self._exp_cache[app] = (generation, exp)
        return exp

    def _count_cache(self, hit: bool, view: str) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if self.session is not None:
            self.session.metrics.inc(
                "repro_serve_query_cache_hits_total" if hit
                else "repro_serve_query_cache_misses_total",
                labels={"view": view},
                help_text=(
                    "memoized view-materialization cache hits" if hit
                    else "memoized view-materialization cache misses"
                ),
            )
            self.session.metrics.set_gauge(
                "repro_serve_query_cache_hit_ratio",
                self.hit_ratio(),
                help_text="query cache hits / total lookups",
            )

    # -- views ---------------------------------------------------------------

    def query(
        self, app: str, view: str, metric: str = "latency", n: int = 10
    ) -> dict:
        """Serve one view; returns a JSON-able payload with rendered text.

        Every payload carries ``view``, ``text`` and ``cached``; rollup
        views add ``app``, ``generation`` and ``metric``.
        """
        if view not in VIEWS:
            raise ServeError(
                f"unknown view {view!r} (choose from: {', '.join(VIEWS)})"
            )
        if view == "status":
            return self._status()
        if view == "metricsz":
            return self._metricsz()

        self.store.check_app(app)
        generation = self.store.generation(app)
        key = (app, view, metric, n)
        cached = self._view_cache.get(key)
        if cached is not None and cached[0] == generation:
            self._count_cache(True, view)
            return dict(cached[1], cached=True)
        if cached is not None:
            # Stale generation: compaction ran since this was rendered.
            self.invalidate(app)
        self._count_cache(False, view)

        exp = self._experiment(app, generation)
        if view == "topdown":
            result = evaluate_boundness(ProfileSource(exp))
            text = render_topdown(
                result, title=f"{app} (rollup gen {generation})"
            )
            detail = {"nodes": result.node_values()}
        elif view == "bottomup":
            kind = _metric_kind(metric)
            bu = exp.bottom_up(kind)
            text = render_bottom_up(
                bu, top_n=n, title=f"{app} bottom-up by {kind} (gen {generation})"
            )
            detail = {
                "sites": [
                    {"label": s.label, "location": s.location, "value": s.value}
                    for s in bu.top(n)
                ]
            }
        else:  # variables
            kind = _metric_kind(metric)
            td = exp.top_down(kind)
            text = render_variable_table(
                td, top_n=n, title=f"{app} variables by {kind} (gen {generation})"
            )
            detail = {
                "variables": [
                    {
                        "name": v.name,
                        "storage": v.storage.value,
                        "value": v.value,
                        "share": v.share,
                    }
                    for v in td.top(n)
                ]
            }

        payload = {
            "view": view,
            "app": app,
            "generation": generation,
            "metric": metric,
            "text": text,
            "cached": False,
            **detail,
        }
        self._view_cache[key] = (generation, payload)
        return dict(payload)

    def _status(self) -> dict:
        apps = {}
        lines = []
        for app in self.store.apps():
            stats = self.store.stats(app)
            apps[app] = {
                "leaves": stats.leaves,
                "uncompacted": stats.uncompacted,
                "leaf_bytes": stats.leaf_bytes,
                "generation": stats.generation,
                "rollup_bytes": stats.rollup_bytes,
                "shards": stats.shards,
            }
            lines.append(
                f"{app}: {stats.leaves} leaves ({stats.uncompacted} "
                f"uncompacted) across {len(stats.shards)} shard(s), "
                f"gen {stats.generation} rollup {stats.rollup_bytes}B"
            )
        text = "\n".join(lines) if lines else "store is empty"
        return {"view": "status", "apps": apps, "text": text, "cached": False}

    def _metricsz(self) -> dict:
        if self.session is None:
            return {
                "view": "metricsz",
                "text": "no telemetry session attached",
                "cached": False,
            }
        return {
            "view": "metricsz",
            "text": self.session.metrics.to_prometheus().rstrip("\n"),
            "cached": False,
        }
