"""Continuous-profiling service (``repro.serve``).

The always-on grown-up of the one-shot ``hpcview run`` pipeline: an
asyncio ingest front end accepting codec-v2 ``.rpdb`` blobs from
concurrent clients (:mod:`repro.serve.service`), a sharded on-disk
store whose per-app rollups are maintained by incremental
reduction-tree compaction (:mod:`repro.serve.store` — byte-identical
to a sequential :func:`repro.core.merge.merge_profiles` of the same
leaves), and a query layer serving the analysis views with
generation-keyed memoization (:mod:`repro.serve.query`).

The whole service is self-instrumented through :mod:`repro.obs`:
ingest/compaction/query spans on the ``serve`` trace lane and
``repro_serve_*`` counters/gauges/histograms, introspectable live via
the ``metricsz`` query view.  CLI entry points: ``hpcview serve`` and
``hpcview query``.
"""

from repro.serve.query import QueryEngine, VIEWS
from repro.serve.service import ProfileService, ServeClient
from repro.serve.store import CompactionResult, LeafRef, ProfileStore, StoreStats

__all__ = [
    "CompactionResult",
    "LeafRef",
    "ProfileService",
    "ProfileStore",
    "QueryEngine",
    "ServeClient",
    "StoreStats",
    "VIEWS",
]
