"""Cache-line / stride conflict arithmetic shared across passes.

One access "run" — ``count`` addresses starting at ``lo`` with a fixed
non-negative ``stride`` — is the native shape of both the simulator's
batched memory API and the static analyzer's per-thread footprints.  Two
different subsystems must answer the same geometric questions about runs:

- the *dynamic* race detector (:mod:`repro.sanitize.race`) decides
  whether two recorded runs touched a common byte (a race candidate) or
  merely a common cache line at distinct offsets (false sharing);
- the *static* layout checker (:mod:`repro.staticcheck`) predicts, from
  ``omp_chunk`` stride math alone, whether distinct threads' footprints
  will land in one cache line (hazard H002).

Keeping the predicate in one module means the two passes cannot drift:
a layout the static pass calls sharing-prone is exactly a layout the
dynamic detector would report given alternating writes.

Functions are duck-typed over any object exposing ``lo``, ``hi``,
``stride`` and ``count`` (``repro.sanitize.race.AccessRecord`` and
:class:`Run` both qualify).  Runs are normalized ascending: ``lo`` is the
lowest touched byte, ``hi`` one past the highest, ``stride >= 0`` and
``stride == 0`` means the single address ``lo``.
"""

from __future__ import annotations

from math import gcd
from typing import Protocol

__all__ = [
    "Run",
    "RunLike",
    "make_run",
    "run_contains",
    "runs_conflict",
    "lines_touched",
    "line_offsets",
    "runs_share_line",
]


class RunLike(Protocol):
    """Anything shaped like a normalized strided run."""

    lo: int
    hi: int
    stride: int
    count: int


class Run:
    """A normalized strided access run (the minimal :class:`RunLike`)."""

    __slots__ = ("lo", "hi", "stride", "count")

    def __init__(self, lo: int, hi: int, stride: int, count: int) -> None:
        self.lo = lo
        self.hi = hi
        self.stride = stride
        self.count = count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Run([{self.lo:#x}, {self.hi:#x}) stride={self.stride} n={self.count})"


def make_run(base: int, count: int, stride: int) -> Run:
    """Normalize ``count`` accesses at ``base + k*stride`` (any-sign stride)."""
    if count <= 1 or stride == 0:
        return Run(base, base + 1, 0, 1)
    if stride > 0:
        return Run(base, base + (count - 1) * stride + 1, stride, count)
    lo = base + (count - 1) * stride
    return Run(lo, base + 1, -stride, count)


def run_contains(rec: RunLike, x: int) -> bool:
    """Does the run's address progression include byte ``x``?"""
    if not (rec.lo <= x < rec.hi):
        return False
    return rec.stride == 0 or (x - rec.lo) % rec.stride == 0


def runs_conflict(a: RunLike, b: RunLike) -> bool:
    """Do the two runs touch a common byte?  Exact for equal/zero strides,
    conservative (gcd divisibility) for mixed strides."""
    if max(a.lo, b.lo) >= min(a.hi, b.hi):
        return False
    if a.stride == 0:
        return run_contains(b, a.lo)
    if b.stride == 0:
        return run_contains(a, b.lo)
    if a.stride == b.stride:
        return (a.lo - b.lo) % a.stride == 0
    return (b.lo - a.lo) % gcd(a.stride, b.stride) == 0


def lines_touched(rec: RunLike, line_bits: int) -> list[int]:
    """Cache-line indices the run touches, in ascending address order.

    Dense (stride below the line size) runs cover every line of their
    span; sparse runs are enumerated address by address.
    """
    if rec.stride == 0:
        return [rec.lo >> line_bits]
    if rec.stride < (1 << line_bits):
        return list(range(rec.lo >> line_bits, ((rec.hi - 1) >> line_bits) + 1))
    seen: dict[int, None] = {}
    addr = rec.lo
    for _ in range(rec.count):
        seen[addr >> line_bits] = None
        addr += rec.stride
    return list(seen)


def line_offsets(rec: RunLike, line_addr: int, line_bits: int) -> list[int]:
    """Sorted distinct in-line byte offsets the run touches within the
    cache line starting at ``line_addr``."""
    line_mask = (1 << line_bits) - 1
    line_hi = line_addr + line_mask + 1
    if rec.stride == 0:
        if line_addr <= rec.lo < line_hi:
            return [rec.lo & line_mask]
        return []
    offsets: dict[int, None] = {}
    # First in-run address >= line_addr, then walk until past the line.
    if rec.lo >= line_addr:
        addr = rec.lo
    else:
        skip = -(-(line_addr - rec.lo) // rec.stride)  # ceil division
        addr = rec.lo + skip * rec.stride
    while addr < min(rec.hi, line_hi):
        offsets[addr & line_mask] = None
        addr += rec.stride
    return sorted(offsets)


def runs_share_line(a: RunLike, b: RunLike, line_bits: int) -> int | None:
    """A cache-line address both runs touch while being byte-disjoint.

    This is the false-sharing shape: two threads' footprints meet in one
    line but never on one byte (a common byte would be a race, a
    different defect).  Returns the base address of the lowest shared
    line, or ``None``.  Exact when both strides fit within a line (dense
    coverage); conservative for sparse runs, matching
    :func:`runs_conflict`'s polarity.
    """
    if runs_conflict(a, b):
        return None
    a_lines = lines_touched(a, line_bits)
    if len(a_lines) > 64:  # dense span: interval intersection suffices
        lo = max(a.lo >> line_bits, b.lo >> line_bits)
        hi = min((a.hi - 1) >> line_bits, (b.hi - 1) >> line_bits)
        if lo <= hi and a.stride < (1 << line_bits) and b.stride < (1 << line_bits):
            return lo << line_bits
        a_lines = lines_touched(a, line_bits)
    b_lines = set(lines_touched(b, line_bits))
    for line in a_lines:
        if line in b_lines:
            return line << line_bits
    return None
