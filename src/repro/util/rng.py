"""Deterministic random-number support.

All stochastic decisions in the simulator (sampling jitter, workload data)
flow through seeded generators so that every test and benchmark run is
reproducible bit-for-bit.
"""

from __future__ import annotations

__all__ = ["DeterministicRNG", "splitmix64", "derive_rank_seed"]

_MASK64 = (1 << 64) - 1


def splitmix64(state: int) -> tuple[int, int]:
    """One step of the splitmix64 generator: returns (new_state, output)."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return state, z


def derive_rank_seed(base_seed: int, rank: int) -> int:
    """Deterministic, well-mixed per-rank seed for multiprocess runs.

    ``base_seed + rank`` would correlate adjacent ranks' low bits; one
    splitmix64 step over the pair decorrelates them while staying a pure
    function of ``(base_seed, rank)`` — so a rank re-run after a worker
    crash reproduces the original execution exactly.
    """
    _, mixed = splitmix64((base_seed ^ ((rank + 1) * 0x9E3779B97F4A7C15)) & _MASK64)
    return mixed


class DeterministicRNG:
    """A tiny, fast, seedable generator (splitmix64 core).

    Deliberately independent of :mod:`random` global state so library code
    never perturbs — or is perturbed by — user seeding.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int = 0) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        self._state, out = splitmix64(self._state)
        return out

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        if hi < lo:
            raise ValueError("empty range")
        span = hi - lo + 1
        return lo + self.next_u64() % span

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def geometric_jitter(self, period: int, frac: float = 0.125) -> int:
        """Sampling period with +/- jitter (PMU-style randomized period).

        Jitters ``period`` uniformly within ``period * (1 +/- frac)`` and
        clamps to at least 1.  Randomized periods avoid lockstep aliasing
        between the sampler and loop structure, the standard PMU trick.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        lo = max(1, int(period * (1.0 - frac)))
        hi = max(lo, int(period * (1.0 + frac)))
        return self.randint(lo, hi)

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randint(0, i)
            seq[i], seq[j] = seq[j], seq[i]

    def fork(self, salt: int) -> "DeterministicRNG":
        """Derive an independent stream (e.g. one per simulated thread)."""
        _, mixed = splitmix64((self._state ^ (salt * 0x9E3779B97F4A7C15)) & _MASK64)
        return DeterministicRNG(mixed)
