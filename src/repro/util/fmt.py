"""Plain-text table/percentage formatting used by views, benches and examples."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["pct", "format_table", "human_bytes"]


def pct(part: float, whole: float, digits: int = 1) -> str:
    """Render ``part/whole`` as a percentage string like ``'22.2%'``.

    A zero denominator renders as ``'0.0%'`` rather than raising — empty
    profiles are legitimate (e.g. a phase with no samples).
    """
    if whole == 0:
        value = 0.0
    else:
        value = 100.0 * part / whole
    return f"{value:.{digits}f}%"


def human_bytes(n: int) -> str:
    """Render a byte count with a binary-unit suffix (``'12.5 MB'``)."""
    size = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if size < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {unit}"
        size /= 1024.0
    raise AssertionError("unreachable")


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Format rows into an aligned monospace table.

    The first column is left-aligned; remaining columns right-aligned,
    which suits "name | metric | metric" layouts used everywhere here.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
