"""Small support utilities shared across the repro package."""

from repro.util.intervals import IntervalMap
from repro.util.rng import DeterministicRNG
from repro.util.fmt import format_table, pct
from repro.util.stats import RunningStats

__all__ = [
    "IntervalMap",
    "DeterministicRNG",
    "format_table",
    "pct",
    "RunningStats",
]
