"""Streaming statistics (Welford) for latency distributions and overheads."""

from __future__ import annotations

import math

__all__ = ["RunningStats"]


class RunningStats:
    """Single-pass mean/variance/min/max accumulator.

    Uses Welford's algorithm so latency distributions over millions of
    simulated accesses never need to be materialized.
    """

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def push(self, x: float) -> None:
        self.count += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to pushing both streams."""
        merged = RunningStats()
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        if merged.count == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.3f}, "
            f"std={self.stddev:.3f}, min={self.minimum}, max={self.maximum})"
        )
