"""Address-range interval map.

The profiler resolves effective addresses against variable address ranges:
static variables from symbol tables and live heap blocks from the
allocation map (paper §4.1.3/§4.1.4).  Both resolutions use this map.

The implementation keeps a sorted list of non-overlapping half-open
intervals ``[start, end)`` and uses binary search, giving ``O(log n)``
lookup on the simulator's hot path and ``O(n)`` worst-case insertion
(amortized fine here: allocations are far rarer than accesses).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Any, Iterator, Optional, Tuple

from repro.errors import AddressError

__all__ = ["IntervalMap"]


class IntervalMap:
    """Map non-overlapping half-open address intervals to payloads."""

    __slots__ = ("_starts", "_ends", "_values")

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._values: list[Any] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Tuple[int, int, Any]]:
        yield from zip(self._starts, self._ends, self._values)

    def add(self, start: int, end: int, value: Any) -> None:
        """Insert ``[start, end) -> value``; reject overlap with existing ranges."""
        if end <= start:
            raise AddressError(f"empty or inverted interval [{start:#x}, {end:#x})")
        i = bisect_right(self._starts, start)
        # The predecessor must end at or before `start`; the successor must
        # begin at or after `end`.
        if i > 0 and self._ends[i - 1] > start:
            raise AddressError(
                f"interval [{start:#x}, {end:#x}) overlaps "
                f"[{self._starts[i - 1]:#x}, {self._ends[i - 1]:#x})"
            )
        if i < len(self._starts) and self._starts[i] < end:
            raise AddressError(
                f"interval [{start:#x}, {end:#x}) overlaps "
                f"[{self._starts[i]:#x}, {self._ends[i]:#x})"
            )
        self._starts.insert(i, start)
        self._ends.insert(i, end)
        self._values.insert(i, value)

    def remove(self, start: int) -> Any:
        """Remove the interval that begins exactly at ``start``; return its value."""
        i = bisect_right(self._starts, start) - 1
        if i < 0 or self._starts[i] != start:
            raise AddressError(f"no interval starts at {start:#x}")
        self._starts.pop(i)
        self._ends.pop(i)
        return_value = self._values.pop(i)
        return return_value

    def lookup(self, addr: int) -> Optional[Any]:
        """Return the payload of the interval containing ``addr``, or None."""
        i = bisect_right(self._starts, addr) - 1
        if i >= 0 and addr < self._ends[i]:
            return self._values[i]
        return None

    def lookup_interval(self, addr: int) -> Optional[Tuple[int, int, Any]]:
        """Like :meth:`lookup` but also returns the interval bounds."""
        i = bisect_right(self._starts, addr) - 1
        if i >= 0 and addr < self._ends[i]:
            return (self._starts[i], self._ends[i], self._values[i])
        return None

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()
        self._values.clear()

    def covered_bytes(self) -> int:
        """Total number of bytes covered by all intervals."""
        return sum(e - s for s, e in zip(self._starts, self._ends))
