"""The per-process sanitizer: hook protocol + access-check fast paths.

One :class:`Sanitizer` attaches to one :class:`repro.sim.SimProcess`.  It
participates in the ordinary ``process.hooks`` observer protocol (like
the profiler) for the rare events — alloc, free, module load, region
begin/end — and additionally exposes ``on_access``/``on_access_run``,
which :class:`repro.sim.runtime.Ctx` calls directly on its memory fast
path when ``process.sanitizer`` is non-None.  When no sanitizer is
installed that fast path costs a single is-None branch per access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.varmap import StaticDataMap
from repro.sanitize.race import RaceDetector
from repro.sanitize.report import (
    KIND_DOUBLE_FREE,
    KIND_FALSE_SHARING,
    KIND_INVALID_FREE,
    KIND_LEAK,
    KIND_OOB_READ,
    KIND_OOB_WRITE,
    KIND_RACE_RW,
    KIND_RACE_WW,
    KIND_UAF,
    KIND_UNINIT_READ,
    AccessContext,
    Finding,
    VariableRef,
)
from repro.sanitize.shadow import S_FREED, S_LIVE, S_REDZONE, ShadowBlock, ShadowHeap

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess
    from repro.sim.thread import SimThread

__all__ = ["SanitizerConfig", "Sanitizer"]


@dataclass(frozen=True)
class SanitizerConfig:
    """Tuning knobs; the defaults suit the bundled apps and defect corpus."""

    redzone: int = 64             # >= cache line, so neighbours never share one
    quarantine_capacity: int = 1 << 20  # freed bytes parked before reuse
    check_uninit: bool = True
    check_leaks: bool = False     # opt-in: long-lived apps never free at exit
    detect_races: bool = True
    false_sharing_min_alternations: int = 4
    max_region_records: int = 500_000
    max_findings_per_kind: int = 64


class Sanitizer:
    """Shadow-memory + race checking for one simulated process."""

    def __init__(self, process: "SimProcess", config: SanitizerConfig) -> None:
        self.process = process
        self.config = config
        self._heap = process.aspace.heap
        self._heap_lo = self._heap.base
        self._heap_hi = self._heap.base + self._heap.capacity
        self._page_size = 1 << process.machine.spec.page_bits
        self._shadow = ShadowHeap(process.machine.spec.page_bits)
        self._statics = StaticDataMap()
        if config.detect_races:
            self._races: RaceDetector | None = RaceDetector(
                line_bits=process.machine.hierarchy.line_bits,
                min_alternations=config.false_sharing_min_alternations,
                max_records=config.max_region_records,
            )
        else:
            self._races = None
        self._in_region = False
        self._findings: dict[tuple, Finding] = {}
        self._kind_counts: dict[str, int] = {}
        self._ip_locations: dict[int, str] = {}
        self._path_cache: dict[tuple, tuple[str, ...]] = {}
        self._finalized = False
        self.stats: dict[str, int] = {"allocs": 0, "frees": 0, "suppressed": 0}

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> "Sanitizer":
        """Attach to the process: hooks, heap redzones/quarantine, fast path."""
        heap = self._heap
        heap.redzone = self.config.redzone
        heap.quarantine_capacity = self.config.quarantine_capacity
        heap.set_evict_hook(self._on_quarantine_evict)
        for module in self.process.modules:
            self._statics.on_load(module)
        self.process.hooks.append(self)
        self.process.sanitizer = self
        return self

    def finalize(self) -> None:
        """End of run: flush the quarantine and report leaks (if enabled)."""
        if self._finalized:
            return
        self._finalized = True
        if self.config.check_leaks:
            for blk in self._shadow.live_blocks():
                ctx = AccessContext(
                    thread="", location=blk.var.alloc_location, path=blk.var.alloc_path
                )
                self._emit(
                    (KIND_LEAK, blk.serial), KIND_LEAK, blk, blk.addr, (ctx,),
                    detail=f"{blk.nbytes}B still live at exit",
                )
        if self._races is not None:
            self.stats["region_epochs"] = self._races.epochs
            self.stats["dropped_race_records"] = self._races.dropped_records

    @property
    def findings(self) -> list[Finding]:
        return list(self._findings.values())

    # -- context helpers ----------------------------------------------------

    def _ip_location(self, ip: int) -> str:
        loc = self._ip_locations.get(ip)
        if loc is None:
            module = self.process.module_of_ip(ip)
            if module is None:
                loc = f"ip {ip:#x}"
            else:
                fn, line, _slot = module.resolve_ip(ip)
                loc = f"{fn.name}:{line} ({fn.source.location(line)})"
            self._ip_locations[ip] = loc
        return loc

    def _path_of(self, thread: "SimThread") -> tuple[str, ...]:
        frames = thread.frames
        if not frames:
            return ()
        key = (thread.name, frames[-1].serial)
        path = self._path_cache.get(key)
        if path is None:
            path = tuple(
                f"{f.function.name} ({f.function.location()})" for f in frames
            )
            self._path_cache[key] = path
        return path

    def _access_context(self, thread: "SimThread", ip: int) -> AccessContext:
        return AccessContext(thread.name, self._ip_location(ip), self._path_of(thread))

    def _variable_for(self, blk: ShadowBlock | None, ea: int) -> tuple[VariableRef, int]:
        if blk is not None:
            return blk.var, ea - blk.addr
        sv = self._statics.lookup(ea)
        if sv is not None:
            location = sv.source.location(sv.decl_line) if sv.source else sv.module.name
            return VariableRef(sv.name, "static", sv.size, location), ea - sv.address
        return VariableRef(f"<unmapped {ea:#x}>", "unknown", 0), 0

    # -- finding emission ----------------------------------------------------

    def _emit(self, key, kind, blk, ea, contexts, detail="") -> None:
        existing = self._findings.get(key)
        if existing is not None:
            existing.count += 1
            return
        if self._kind_counts.get(kind, 0) >= self.config.max_findings_per_kind:
            self.stats["suppressed"] += 1
            return
        var, offset = self._variable_for(blk, ea)
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        self._findings[key] = Finding(
            kind=kind, variable=var, address=ea, offset=offset,
            contexts=tuple(contexts), detail=detail,
        )

    def _report(self, kind, blk, ea, thread, ip, extra_contexts=(), detail="") -> None:
        serial = blk.serial if blk is not None else -1
        contexts = (self._access_context(thread, ip),) + tuple(extra_contexts)
        self._emit((kind, serial, ip), kind, blk, ea, contexts, detail)

    # -- access fast paths (called from Ctx) ---------------------------------

    def on_access(self, thread, vaddr: int, ip: int, is_store: bool) -> None:
        if vaddr < self._heap_lo or vaddr >= self._heap_hi:
            return
        state, blk = self._shadow.classify(vaddr)
        if state == S_LIVE:
            if is_store:
                self._shadow.mark_written(vaddr)
            elif self.config.check_uninit and not self._shadow.is_written(vaddr):
                self._report(
                    KIND_UNINIT_READ, blk, vaddr, thread, ip,
                    detail="load from a page never stored to",
                )
        elif state == S_REDZONE:
            self._report(
                KIND_OOB_WRITE if is_store else KIND_OOB_READ, blk, vaddr, thread, ip,
                detail=f"access {vaddr - blk.addr - blk.nbytes}B past the block"
                if vaddr >= blk.addr else f"access {blk.addr - vaddr}B before the block",
            )
        elif state == S_FREED:
            extra = (blk.free_context,) if blk.free_context is not None else ()
            self._report(KIND_UAF, blk, vaddr, thread, ip, extra_contexts=extra)
        else:  # wild heap address: never allocated (or long recycled)
            self._report(
                KIND_OOB_WRITE if is_store else KIND_OOB_READ, None, vaddr, thread, ip,
                detail="heap address outside any allocation",
            )
        if self._in_region and self._races is not None:
            self._races.record(
                thread.thread_index, thread.name, vaddr, 1, 0, ip, is_store,
                self._path_of(thread),
            )

    def on_access_run(self, thread, base, count, stride, ip, is_store) -> None:
        if stride == 0 or count == 1:
            lo, hi = base, base + 1
        elif stride > 0:
            lo, hi = base, base + (count - 1) * stride + 1
        else:
            lo, hi = base + (count - 1) * stride, base + 1
        if hi <= self._heap_lo or lo >= self._heap_hi:
            return
        blk = self._shadow.block_at(lo)
        if (
            blk is not None
            and blk.state == S_LIVE
            and blk.addr <= lo
            and hi <= blk.addr + blk.nbytes
        ):
            # Whole run inside one live block: validate in O(pages), not O(n).
            if is_store:
                self._shadow.mark_written_range(lo, hi)
            elif self.config.check_uninit:
                bad = self._first_unwritten_of_run(lo, hi, base, count, stride)
                if bad is not None:
                    self._report(
                        KIND_UNINIT_READ, blk, bad, thread, ip,
                        detail="load from a page never stored to",
                    )
            if self._in_region and self._races is not None:
                self._races.record(
                    thread.thread_index, thread.name, base, count, stride, ip,
                    is_store, self._path_of(thread),
                )
            return
        # Slow path: the run leaves a live block (or starts outside one) —
        # classify each access individually so the finding is precise.
        addr = base
        for _ in range(count):
            self.on_access(thread, addr, ip, is_store)
            addr += stride

    def _first_unwritten_of_run(self, lo, hi, base, count, stride) -> int | None:
        if abs(stride) <= self._page_size:
            # Dense run: every page in the span is actually touched.
            return self._shadow.first_unwritten(lo, hi)
        addr = base
        for _ in range(count):
            if not self._shadow.is_written(addr):
                return addr
            addr += stride
        return None

    # -- free validation (called from Ctx.free before hooks) -----------------

    def check_free(self, thread, addr: int, ip: int) -> bool:
        """True when ``addr`` is a valid free target; otherwise report and
        return False (the simulated program continues past the bad free)."""
        if self._heap.size_of(addr) is not None:
            return True
        blk = self._shadow.block_at(addr)
        if blk is not None and blk.state == S_FREED and addr == blk.addr:
            extra = (blk.free_context,) if blk.free_context is not None else ()
            self._report(
                KIND_DOUBLE_FREE, blk, addr, thread, ip, extra_contexts=extra,
                detail="block was already freed",
            )
        else:
            detail = (
                f"interior pointer into {blk.var.name}" if blk is not None
                else "address was never returned by malloc"
            )
            self._report(KIND_INVALID_FREE, blk, addr, thread, ip, detail=detail)
        return False

    # -- hook protocol (observer events) -------------------------------------

    def on_alloc(self, process, thread, addr, nbytes, callsite_ip, kind, var=None) -> None:
        usable = self._heap.size_of(addr)
        rz = self._heap.redzone_of(addr)
        location = self._ip_location(callsite_ip)
        name = var if var else f"heap@{location}"
        ref = VariableRef(
            name=name, storage="heap", size=nbytes,
            alloc_location=location, alloc_path=self._path_of(thread),
        )
        self._shadow.add(
            ShadowBlock(addr, nbytes, addr - rz, addr + usable + rz, ref)
        )
        self.stats["allocs"] += 1

    def on_free(self, process, thread, addr) -> None:
        # Only valid frees reach the hooks (Ctx.free validates first).
        blk = self._shadow.block_at(addr)
        if blk is None:
            return
        blk.state = S_FREED
        path = self._path_of(thread)
        location = path[-1] if path else ""
        blk.free_context = AccessContext(thread.name, location, path)
        self.stats["frees"] += 1
        if self._heap.quarantine_capacity == 0:
            # No quarantine: the allocator reuses this range immediately, so
            # the shadow record must go now (no evict event will come).
            self._shadow.remove_outer(blk.outer_addr)

    def _on_quarantine_evict(self, outer_addr: int, outer_size: int) -> None:
        self._shadow.remove_outer(outer_addr)

    def on_parallel_begin(self, process, n_threads) -> None:
        self._in_region = True

    def on_parallel_end(self, process) -> None:
        self._in_region = False
        if self._races is None:
            return
        conflicts, sharing = self._races.end_region()
        for a, b in conflicts:
            kind = KIND_RACE_WW if (a.is_store and b.is_store) else KIND_RACE_RW
            ea = max(a.lo, b.lo)
            blk = self._shadow.block_at(ea)
            serial = blk.serial if blk is not None else -1
            contexts = (
                AccessContext(a.thread_name, self._ip_location(a.ip), a.path),
                AccessContext(b.thread_name, self._ip_location(b.ip), b.path),
            )
            key = (kind, serial, (min(a.ip, b.ip), max(a.ip, b.ip)))
            self._emit(
                key, kind, blk, ea, contexts,
                detail="concurrent conflicting accesses in one region epoch",
            )
        for inc in sharing:
            rep = inc.records[0]
            blk = self._shadow.block_at(rep.lo)
            serial = blk.serial if blk is not None else -1
            contexts = tuple(
                AccessContext(r.thread_name, self._ip_location(r.ip), r.path)
                for r in inc.records[:2]
            )
            ips = tuple(sorted({r.ip for r in inc.records}))
            key = (KIND_FALSE_SHARING, serial, inc.line_addr, ips)
            offsets = ",".join(str(o) for o in inc.offsets[:8])
            self._emit(
                key, KIND_FALSE_SHARING, blk, inc.line_addr, contexts,
                detail=(
                    f"line {inc.line_addr:#x}: {len(inc.records)} threads write "
                    f"offsets [{offsets}], {inc.alternations} alternations"
                ),
            )

    # -- uninteresting hook events -------------------------------------------

    def on_module_load(self, process, module) -> None:
        self._statics.on_load(module)

    def on_module_unload(self, process, module) -> None:
        self._statics.on_unload(module)

    def on_thread_create(self, process, thread) -> None:
        pass

    def on_sample(self, process, thread, sample) -> None:
        pass
