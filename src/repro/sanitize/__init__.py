"""Data-centric sanitizer & race analysis (``repro.sanitize``).

The subsystem rides the same event stream the profiler uses — allocation
hooks, per-access effective addresses, calling contexts — and turns it
into defect reports instead of cost reports: heap out-of-bounds,
use-after-free, double/invalid free, uninit reads, leaks, data races and
false sharing, each attributed to the variable and full calling contexts
(the paper's attribution shape, applied to correctness).

Activation is a process-construction seam, not an app change::

    from repro.sanitize import sanitizing

    with sanitizing() as session:
        run_app_rank("streamcluster", 0, 2)   # every SimProcess built in
    report = session.report()                 # here is auto-instrumented

:class:`repro.sim.SimProcess` consults ``sys.modules`` for this package
at construction: if it was never imported, no sanitizer code runs at all
and the per-access cost is a single is-None branch in ``Ctx``.  Importing
the package but not entering :func:`sanitizing` is equally inert — the
differential test pins profile output byte-identical in that mode.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.errors import ConfigError
from repro.sanitize.report import (
    ALL_KINDS,
    FAIL_ON_GROUPS,
    AccessContext,
    Finding,
    SanitizerReport,
    VariableRef,
    parse_fail_on,
)
from repro.sanitize.sanitizer import Sanitizer, SanitizerConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = [
    "ALL_KINDS",
    "FAIL_ON_GROUPS",
    "AccessContext",
    "Finding",
    "SanitizeSession",
    "Sanitizer",
    "SanitizerConfig",
    "SanitizerReport",
    "VariableRef",
    "maybe_install",
    "parse_fail_on",
    "sanitizing",
]


class SanitizeSession:
    """Collects the sanitizers attached to every process built in-scope."""

    def __init__(self, config: SanitizerConfig) -> None:
        self.config = config
        self.sanitizers: list[Sanitizer] = []

    def attach(self, process: "SimProcess") -> Sanitizer:
        sanitizer = Sanitizer(process, self.config)
        sanitizer.install()
        self.sanitizers.append(sanitizer)
        return sanitizer

    def report(self) -> SanitizerReport:
        findings: list[Finding] = []
        names: list[str] = []
        stats: dict[str, int] = {}
        for sanitizer in self.sanitizers:
            sanitizer.finalize()
            findings.extend(sanitizer.findings)
            names.append(sanitizer.process.name)
            for key, value in sanitizer.stats.items():
                stats[key] = stats.get(key, 0) + value
        return SanitizerReport(
            findings=findings, process_names=tuple(names), stats=stats
        )


_ACTIVE: SanitizeSession | None = None


@contextmanager
def sanitizing(config: SanitizerConfig | None = None) -> Iterator[SanitizeSession]:
    """Activate sanitization for every :class:`SimProcess` built in scope."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise ConfigError("sanitizing() sessions do not nest")
    session = SanitizeSession(config if config is not None else SanitizerConfig())
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = None


def maybe_install(process: "SimProcess") -> None:
    """Called by ``SimProcess.__init__``; attaches only inside a session."""
    if _ACTIVE is not None:
        _ACTIVE.attach(process)
