"""Shadow state for the simulated heap.

Every allocation carves an *outer* reservation ``[addr-rz, addr+usable+rz)``
out of the free list (see :class:`repro.sim.malloc.HeapAllocator`); the
shadow map tracks the whole outer range so any access landing between the
requested bytes and the neighbouring block is classified precisely:

    outer_addr                addr        addr+nbytes          outer_end
        |<----- redzone ------->|<- live -->|<- slack+redzone ---->|

``nbytes`` is the *requested* size — the 16B-alignment slack past it is
treated as redzone, like ASan's partial-rightmost-granule poisoning.

Initialization is tracked at page granularity: the simulator's apps model
initialization as one committing store per page (``touch_range`` /
``calloc``), so a page that has never seen a store is genuinely
never-initialized memory, and a load from it is an uninit-read.
"""

from __future__ import annotations

import itertools

from repro.sanitize.report import VariableRef
from repro.util.intervals import IntervalMap

__all__ = ["ShadowBlock", "ShadowHeap", "S_LIVE", "S_REDZONE", "S_FREED", "S_WILD"]

S_LIVE = "live"
S_REDZONE = "redzone"
S_FREED = "freed"
S_WILD = "wild"  # heap segment but no block (never-allocated or long recycled)

_serials = itertools.count(1)


class ShadowBlock:
    """Shadow record of one heap block (live or quarantined)."""

    __slots__ = (
        "serial", "addr", "nbytes", "outer_addr", "outer_end",
        "var", "state", "free_context",
    )

    def __init__(
        self,
        addr: int,
        nbytes: int,
        outer_addr: int,
        outer_end: int,
        var: VariableRef,
    ) -> None:
        self.serial = next(_serials)
        self.addr = addr
        self.nbytes = nbytes
        self.outer_addr = outer_addr
        self.outer_end = outer_end
        self.var = var
        self.state = S_LIVE
        self.free_context = None  # AccessContext of the freeing call, once freed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShadowBlock({self.var.name}, {self.nbytes}B @ {self.addr:#x}, {self.state})"


class ShadowHeap:
    """Outer-range interval map of shadow blocks + page init tracking."""

    def __init__(self, page_bits: int) -> None:
        self._blocks = IntervalMap()
        self._page_bits = page_bits
        self.written_pages: set[int] = set()

    def __len__(self) -> int:
        return len(self._blocks)

    def add(self, block: ShadowBlock) -> None:
        self._blocks.add(block.outer_addr, block.outer_end, block)

    def remove_outer(self, outer_addr: int) -> ShadowBlock:
        return self._blocks.remove(outer_addr)

    def block_at(self, ea: int) -> ShadowBlock | None:
        """The block whose *outer* range contains ``ea`` (any state)."""
        return self._blocks.lookup(ea)

    def classify(self, ea: int) -> tuple[str, ShadowBlock | None]:
        """Byte state of ``ea``: live / redzone / freed / wild."""
        block = self._blocks.lookup(ea)
        if block is None:
            return S_WILD, None
        if block.state == S_FREED:
            return S_FREED, block
        if block.addr <= ea < block.addr + block.nbytes:
            return S_LIVE, block
        return S_REDZONE, block

    def live_blocks(self) -> list[ShadowBlock]:
        return [b for _s, _e, b in self._blocks if b.state == S_LIVE]

    # -- page-granularity initialization state ------------------------------

    def mark_written(self, ea: int) -> None:
        self.written_pages.add(ea >> self._page_bits)

    def mark_written_range(self, lo: int, hi: int) -> None:
        """Mark every page overlapping ``[lo, hi)`` as initialized."""
        self.written_pages.update(range(lo >> self._page_bits, ((hi - 1) >> self._page_bits) + 1))

    def is_written(self, ea: int) -> bool:
        return (ea >> self._page_bits) in self.written_pages

    def first_unwritten(self, lo: int, hi: int) -> int | None:
        """First page-start in ``[lo, hi)`` whose page was never stored to."""
        pages = self.written_pages
        bits = self._page_bits
        for page in range(lo >> bits, ((hi - 1) >> bits) + 1):
            if page not in pages:
                return max(lo, page << bits)
        return None
