"""Data-centric sanitizer findings.

A finding carries the paper's attribution shape: the *variable* (with its
full allocation calling context) first, then the offending access
contexts — for races, both threads' full paths.  This is the same
variable -> allocation context -> access context chain the profiler uses
for cost attribution, applied to correctness defects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = [
    "KIND_OOB_READ",
    "KIND_OOB_WRITE",
    "KIND_UAF",
    "KIND_DOUBLE_FREE",
    "KIND_INVALID_FREE",
    "KIND_UNINIT_READ",
    "KIND_LEAK",
    "KIND_RACE_WW",
    "KIND_RACE_RW",
    "KIND_FALSE_SHARING",
    "ALL_KINDS",
    "FAIL_ON_GROUPS",
    "parse_fail_on",
    "VariableRef",
    "AccessContext",
    "Finding",
    "SanitizerReport",
]

KIND_OOB_READ = "oob-read"
KIND_OOB_WRITE = "oob-write"
KIND_UAF = "use-after-free"
KIND_DOUBLE_FREE = "double-free"
KIND_INVALID_FREE = "invalid-free"
KIND_UNINIT_READ = "uninit-read"
KIND_LEAK = "leak"
KIND_RACE_WW = "race-ww"
KIND_RACE_RW = "race-rw"
KIND_FALSE_SHARING = "false-sharing"

ALL_KINDS = (
    KIND_OOB_READ,
    KIND_OOB_WRITE,
    KIND_UAF,
    KIND_DOUBLE_FREE,
    KIND_INVALID_FREE,
    KIND_UNINIT_READ,
    KIND_LEAK,
    KIND_RACE_WW,
    KIND_RACE_RW,
    KIND_FALSE_SHARING,
)

# ``--fail-on`` accepts either exact kinds or these coarse groups.
FAIL_ON_GROUPS: dict[str, tuple[str, ...]] = {
    "oob": (KIND_OOB_READ, KIND_OOB_WRITE),
    "race": (KIND_RACE_WW, KIND_RACE_RW),
    "uaf": (KIND_UAF,),
    "free": (KIND_DOUBLE_FREE, KIND_INVALID_FREE),
    "uninit": (KIND_UNINIT_READ,),
    "leak": (KIND_LEAK,),
    "sharing": (KIND_FALSE_SHARING,),
    "any": ALL_KINDS,
    "all": ALL_KINDS,
}


def parse_fail_on(spec: str) -> frozenset[str]:
    """Expand ``--fail-on race,oob,...`` into a set of finding kinds."""
    kinds: set[str] = set()
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token in FAIL_ON_GROUPS:
            kinds.update(FAIL_ON_GROUPS[token])
        elif token in ALL_KINDS:
            kinds.add(token)
        else:
            choices = ", ".join(list(FAIL_ON_GROUPS) + list(ALL_KINDS))
            raise ConfigError(
                f"unknown --fail-on class {token!r}; choose from: {choices}"
            )
    return frozenset(kinds)


@dataclass(frozen=True)
class VariableRef:
    """The variable a finding is attributed to, with its allocation context."""

    name: str
    storage: str  # "heap" | "static" | "unknown"
    size: int
    alloc_location: str = ""
    alloc_path: tuple[str, ...] = ()


@dataclass(frozen=True)
class AccessContext:
    """One thread's view of an offending access: who, where, and how it got there."""

    thread: str
    location: str
    path: tuple[str, ...] = ()


@dataclass
class Finding:
    """One deduplicated defect report (``count`` repeats collapse into it)."""

    kind: str
    variable: VariableRef
    address: int
    offset: int  # byte offset of `address` from the variable's start
    contexts: tuple[AccessContext, ...]
    detail: str = ""
    count: int = 1

    def headline(self) -> str:
        where = f"{self.variable.name}+{self.offset}" if self.offset else self.variable.name
        times = f" x{self.count}" if self.count > 1 else ""
        return f"{self.kind}: {where} ({self.variable.storage}, {self.variable.size}B){times}"


@dataclass
class SanitizerReport:
    """All findings of one sanitizing session, across its processes."""

    findings: list[Finding] = field(default_factory=list)
    process_names: tuple[str, ...] = ()
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def kinds(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    def by_kind(self, kind: str) -> list[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def matching(self, kinds: frozenset[str]) -> list[Finding]:
        return [f for f in self.findings if f.kind in kinds]
