"""Race and false-sharing detection over parallel-region access history.

Happens-before model: the simulator's only synchronization is the
implicit barrier at the end of each ``Ctx.parallel`` region (workers are
forked at region entry and joined at its barrier; there is no intra-region
locking primitive).  Two accesses are therefore *concurrent* exactly when
they happen in the same region epoch on different OpenMP threads — so the
detector records accesses per epoch and analyzes each epoch at its
closing barrier, where everything before the region happens-before every
worker access, and every worker access happens-before everything after.

Accesses are recorded as strided runs (the simulator's native shape) and
conflicts are decided arithmetically: two runs conflict when their
address progressions share a byte.  For equal strides that is a phase
check; for coprime strides it degrades to a gcd divisibility test, which
is conservative (may flag a pair whose windows interleave without
touching) — acceptable for a defect detector that reports, not aborts.

False sharing is the complementary report: *distinct*-offset writes from
multiple threads to one cache line, alternating often enough to imply
line ping-pong.  Lines already implicated in a race are excluded — that
defect is the race, not the sharing.

The run-geometry arithmetic (conflict, line coverage, in-line offsets)
lives in :mod:`repro.util.linemath`, shared with the static analyzer's
H002 layout check so the dynamic and static passes cannot drift.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from ..util.linemath import line_offsets, lines_touched, make_run, runs_conflict

__all__ = ["AccessRecord", "RaceDetector", "SharingIncident"]


class AccessRecord:
    """One recorded (possibly strided) access run, normalized ascending."""

    __slots__ = ("lo", "hi", "stride", "count", "tid", "thread_name", "ip", "is_store", "path")

    def __init__(self, lo, hi, stride, count, tid, thread_name, ip, is_store, path):
        self.lo = lo
        self.hi = hi  # one past the last touched byte
        self.stride = stride  # 0 => the single address `lo`
        self.count = count
        self.tid = tid
        self.thread_name = thread_name
        self.ip = ip
        self.is_store = is_store
        self.path = path


class SharingIncident:
    """One cache line written by multiple threads at distinct offsets."""

    __slots__ = ("line_addr", "alternations", "offsets", "records")

    def __init__(self, line_addr, alternations, offsets, records):
        self.line_addr = line_addr
        self.alternations = alternations
        self.offsets = offsets  # sorted distinct in-line byte offsets written
        self.records = records  # one representative AccessRecord per thread


class RaceDetector:
    """Per-epoch access log; analysis runs at each region's closing barrier."""

    def __init__(self, line_bits: int, min_alternations: int, max_records: int) -> None:
        self._line_bits = line_bits
        self._min_alternations = min_alternations
        self._max_records = max_records
        self._records: list[AccessRecord] = []
        self.dropped_records = 0
        self.epochs = 0

    def record(self, tid, thread_name, base, count, stride, ip, is_store, path) -> None:
        if len(self._records) >= self._max_records:
            self.dropped_records += 1
            return
        run = make_run(base, count, stride)
        self._records.append(
            AccessRecord(
                run.lo, run.hi, run.stride, run.count,
                tid, thread_name, ip, is_store, path,
            )
        )

    def _lines_of(self, rec: AccessRecord) -> list[int]:
        return lines_touched(rec, self._line_bits)

    def end_region(self) -> tuple[list[tuple[AccessRecord, AccessRecord]], list[SharingIncident]]:
        """Close the epoch: return (conflict pairs, false-sharing incidents)."""
        records = self._records
        self._records = []
        self.epochs += 1
        if not records:
            return [], []

        writes = [r for r in records if r.is_store]
        if not writes:
            return [], []

        # --- conflicting concurrent accesses (races) -----------------------
        writes_sorted = sorted(writes, key=lambda r: r.lo)
        write_starts = [w.lo for w in writes_sorted]
        max_span = max(w.hi - w.lo for w in writes_sorted)
        conflicts: list[tuple[AccessRecord, AccessRecord]] = []
        seen_pairs: set[tuple[int, int]] = set()
        raced_lines: set[int] = set()
        for rec in records:
            i = bisect_left(write_starts, rec.lo - max_span)
            while i < len(writes_sorted) and write_starts[i] < rec.hi:
                w = writes_sorted[i]
                i += 1
                if w is rec or w.tid == rec.tid:
                    continue
                pair = (min(id(w), id(rec)), max(id(w), id(rec)))
                if pair in seen_pairs:
                    continue
                if not runs_conflict(w, rec):
                    continue
                seen_pairs.add(pair)
                conflicts.append((w, rec))
                raced_lines.update(self._lines_of(w))
                raced_lines.update(self._lines_of(rec))
                if len(conflicts) >= 256:
                    break
            if len(conflicts) >= 256:
                break

        # --- false sharing -------------------------------------------------
        # Per-line write sequences in program (record) order; raced lines are
        # excluded so a true race isn't double-reported as sharing.
        bits = self._line_bits
        line_writes: dict[int, list[AccessRecord]] = {}
        for w in writes:
            for line in self._lines_of(w):
                if line not in raced_lines:
                    line_writes.setdefault(line, []).append(w)

        sharing: list[SharingIncident] = []
        for line, recs in line_writes.items():
            tids = {r.tid for r in recs}
            if len(tids) < 2:
                continue
            alternations = 0
            prev_tid = recs[0].tid
            for r in recs[1:]:
                if r.tid != prev_tid:
                    alternations += 1
                    prev_tid = r.tid
            if alternations < self._min_alternations:
                continue
            offsets: list[int] = []
            line_lo = line << bits
            for r in recs:
                for off in line_offsets(r, line_lo, bits):
                    if off not in offsets:
                        insort(offsets, off)
            if len(offsets) < 2:
                # Same-offset writes from two threads would be a race and are
                # handled above; sharing requires distinct offsets.
                continue
            reps: dict[int, AccessRecord] = {}
            for r in recs:
                reps.setdefault(r.tid, r)
            sharing.append(SharingIncident(line_lo, alternations, offsets, list(reps.values())))

        return conflicts, sharing
