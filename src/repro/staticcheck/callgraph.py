"""Static call graph with reachable calling-context enumeration.

The dynamic profiler attributes every sample to a *full calling context*
(root frame down to the access site).  The static analyzer needs the
same coordinate system without running anything: from the declared call
sites and parallel regions it enumerates, per function, every acyclic
path from an entry point — each path is a calling context in exactly
the shape the paper's top-down view uses, so static findings can name
the contexts the dynamic profile will later confirm or refute.

Enumeration is capped (``max_depth``, ``max_contexts`` per function):
deep recursion or combinatorial call structures truncate with a flag
rather than blowing up, mirroring how HPCToolkit bounds its unwinds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.staticcheck.model import StaticModel

__all__ = ["Frame", "Context", "CallGraph", "build_callgraph"]


@dataclass(frozen=True)
class Frame:
    """One context frame: ``fn`` calls the next frame's function at ``line``."""

    fn: str
    line: int

    def __str__(self) -> str:
        return f"{self.fn}:{self.line}"


# A calling context for function F: the chain of (caller, call-line)
# frames root-first; F itself is implied as the path's target.
Context = tuple[Frame, ...]


@dataclass
class CallGraph:
    """Edges + per-function contexts enumerated from the entry points."""

    n_functions: int = 0
    edges: list[tuple[str, int, str, str]] = field(default_factory=list)
    contexts: dict[str, list[Context]] = field(default_factory=dict)
    truncated: bool = False

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    @property
    def n_reachable(self) -> int:
        return sum(1 for ctxs in self.contexts.values() if ctxs)

    def reachable(self, fn: str) -> bool:
        return bool(self.contexts.get(fn))

    def contexts_of(self, fn: str) -> list[Context]:
        return self.contexts.get(fn, [])

    def format_context(self, ctx: Context, target: str) -> str:
        """Render one context the way the top-down view prints paths."""
        frames = [str(frame) for frame in ctx]
        frames.append(target)
        return " > ".join(frames)


def build_callgraph(
    model: StaticModel, max_depth: int = 32, max_contexts: int = 256
) -> CallGraph:
    """Enumerate every acyclic entry-to-function path in the model."""
    graph = CallGraph(n_functions=len(model.functions))
    seen_edges: set[tuple[str, int, str]] = set()
    out_edges: dict[str, list[tuple[str, int]]] = {}
    for site in model.calls:
        key = (site.caller, site.line, site.callee)
        if key in seen_edges:
            continue
        seen_edges.add(key)
        graph.edges.append((site.caller, site.line, site.callee, site.kind))
        out_edges.setdefault(site.caller, []).append((site.callee, site.line))

    contexts: dict[str, list[Context]] = {fn: [] for fn in model.functions}

    def visit(fn: str, path: Context, on_stack: frozenset[str]) -> None:
        bucket = contexts[fn]
        if len(bucket) < max_contexts:
            bucket.append(path)
        else:
            graph.truncated = True
            return
        if len(path) >= max_depth:
            graph.truncated = True
            return
        for callee, line in out_edges.get(fn, []):
            if callee in on_stack:
                graph.truncated = True  # cycle cut: contexts under-approximate
                continue
            visit(callee, path + (Frame(fn, line),), on_stack | {fn})

    for entry in model.entries:
        visit(entry, (), frozenset())

    graph.contexts = contexts
    return graph
