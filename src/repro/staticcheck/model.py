"""Declarative program model for no-execution data-centric analysis.

The dynamic profiler recovers *variable + allocation site + full calling
context* by running the program (§4 of the paper).  The static analyzer
recovers the same shape from declarations alone: each bundled app (and
each defect seed) publishes a :class:`StaticModel` describing what its
simulated binary would show a binary analyzer — function symbols with
source spans, outlined-region symbols (the ``$$OL$$`` convention), call
sites, allocation sites, first-touch sites, access sites with estimated
access weights, and free sites.  Nothing here executes; the analysis in
:mod:`repro.staticcheck.analyze` combines these declarations with the
machine geometry (NUMA-node span, cache-line size) and the
``omp_chunk`` stride math to predict hazards.

Every declared site is validated against the *real* program image: the
``fn``/``line`` pair must fall inside the declared function's source
span (checked via :meth:`repro.sim.program.Function.ip`), so a model
cannot drift from the binary it claims to describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigError
from repro.machine.presets import Machine
from repro.sim.malloc import HEAP_ALIGN
from repro.sim.openmp import omp_chunk, parse_outlined
from repro.sim.process import SimProcess
from repro.sim.program import Function
from repro.util.linemath import Run, make_run

__all__ = [
    "AccessPattern",
    "OmpBlockPattern",
    "PerThreadSlotPattern",
    "OpaquePattern",
    "AllocSite",
    "TouchSite",
    "AccessSite",
    "FreeSite",
    "CallSite",
    "RegionDecl",
    "VarDecl",
    "StaticModel",
]

_ALLOC_KINDS = ("malloc", "calloc", "static", "numa_interleaved")
_POLICIES = ("first_touch", "interleaved")
_EXECUTORS = ("master", "workers")


class AccessPattern:
    """How one access site's footprint decomposes across a thread team.

    Subclasses answer: what strided byte run does thread ``tid`` of an
    ``n_threads`` team touch, relative to the variable's base?  Bases
    are modelled at offset 0 with the documented heap alignment
    (``HEAP_ALIGN`` = 16B, *not* line-aligned), which is what makes the
    H002 line-sharing prediction sound for sub-line footprints.
    """

    def thread_run(self, tid: int, n_threads: int) -> Run:
        raise NotImplementedError

    def span_bytes(self, tid: int, n_threads: int) -> int:
        run = self.thread_run(tid, n_threads)
        return run.hi - run.lo


@dataclass(frozen=True)
class OmpBlockPattern(AccessPattern):
    """Static block scheduling over ``n_iters`` elements of ``elem_bytes``
    — each thread owns one contiguous chunk (the ``omp_chunk`` math)."""

    n_iters: int
    elem_bytes: int

    def thread_run(self, tid: int, n_threads: int) -> Run:
        chunk = omp_chunk(self.n_iters, n_threads, tid)
        if len(chunk) == 0:
            return make_run(chunk.start * self.elem_bytes, 1, 0)
        return make_run(chunk.start * self.elem_bytes, len(chunk), self.elem_bytes)


@dataclass(frozen=True)
class PerThreadSlotPattern(AccessPattern):
    """Each thread hammers its own ``elem_bytes`` slot at index ``tid`` —
    the counter-array layout that invites false sharing."""

    elem_bytes: int

    def thread_run(self, tid: int, n_threads: int) -> Run:
        return make_run(tid * self.elem_bytes, 1, 0)


@dataclass(frozen=True)
class OpaquePattern(AccessPattern):
    """An extracted site whose footprint fits no structured pattern.

    The extractor reports these explicitly (never a silent drop): the
    whole observed footprint ``[lo, hi)`` relative to the variable base
    is attributed to *every* thread.  Identical per-thread runs always
    byte-conflict, so the H002 line-sharing predicate can never flag an
    opaque site — the conservative polarity for an unclassified layout.
    """

    lo: int
    hi: int

    def thread_run(self, tid: int, n_threads: int) -> Run:
        span = max(1, self.hi - self.lo)
        return make_run(self.lo, span, 1)


@dataclass(frozen=True)
class AllocSite:
    """One allocation call site: ``var`` gets memory at ``fn:line``."""

    var: str
    fn: str
    line: int
    nbytes: int
    kind: str  # malloc | calloc | static | numa_interleaved
    in_loop: bool = False


@dataclass(frozen=True)
class TouchSite:
    """An initialization/first-touch site (one store per page)."""

    var: str
    fn: str
    line: int
    by: str  # master | workers


@dataclass(frozen=True)
class AccessSite:
    """A steady-state access site with an estimated access weight.

    ``weight`` is the statically estimated access count at this site
    (derived from the app's loop bounds); shares of the model-wide
    weight drive the same ``min_share`` threshold the dynamic guidance
    pass uses, so static and dynamic rankings are comparable.
    """

    var: str
    fn: str
    line: int
    weight: float
    is_store: bool = False
    pattern: AccessPattern | None = None


@dataclass(frozen=True)
class FreeSite:
    var: str
    fn: str
    line: int


@dataclass(frozen=True)
class CallSite:
    caller: str
    line: int
    callee: str
    kind: str  # call | parallel


@dataclass(frozen=True)
class RegionDecl:
    """An outlined parallel region and the team width it runs with."""

    host: str
    line: int
    outlined: str
    n_threads: int


@dataclass
class VarDecl:
    """Everything declared about one named variable."""

    name: str
    storage: str  # heap | static
    policy: str = "first_touch"
    alloc_sites: list[AllocSite] = field(default_factory=list)
    touch_sites: list[TouchSite] = field(default_factory=list)
    access_sites: list[AccessSite] = field(default_factory=list)
    free_sites: list[FreeSite] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return max((s.nbytes for s in self.alloc_sites), default=0)

    @property
    def total_weight(self) -> float:
        return sum(site.weight for site in self.access_sites)


class StaticModel:
    """A program's static declaration set plus the machine geometry."""

    def __init__(
        self,
        name: str,
        variant: str,
        process: SimProcess,
        machine: Machine,
        default_n_threads: int,
        process_interleaved: bool = False,
    ) -> None:
        self.name = name
        self.variant = variant
        self.machine = machine
        self.default_n_threads = default_n_threads
        # numactl --interleave=all: every page interleaves process-wide,
        # so no first-touch placement hazard can exist.
        self.process_interleaved = process_interleaved
        self.functions: dict[str, Function] = {}
        for module in process.modules:
            for fn in module.functions:
                self.functions[fn.name] = fn
        self.static_nbytes: dict[str, int] = {}
        for module in process.modules:
            for sym in module.statics:
                self.static_nbytes[sym.name] = sym.size
        self.entries: list[str] = []
        self.calls: list[CallSite] = []
        self.regions: dict[str, RegionDecl] = {}
        self.variables: dict[str, VarDecl] = {}
        self.heap_align = HEAP_ALIGN
        # Statically estimated non-memory compute cycles (loop bookkeeping,
        # arithmetic), feeding the prediction's ``nonmem_event_cycles``
        # counter so predicted memory-bound fractions aren't trivially 1.0.
        self.compute_cycles_estimate: float = 0.0

    # -- geometry ----------------------------------------------------------
    @property
    def line_bits(self) -> int:
        return self.machine.spec.line_bits

    @property
    def n_numa_nodes(self) -> int:
        return self.machine.n_numa_nodes

    @property
    def threads_per_node(self) -> int:
        return max(1, self.machine.n_threads // self.machine.n_numa_nodes)

    def region_spans_nodes(self, n_threads: int) -> bool:
        """Does a team of ``n_threads`` necessarily span >1 NUMA node
        under the simulator's linear thread placement?"""
        return self.n_numa_nodes > 1 and n_threads > self.threads_per_node

    # -- declaration helpers ----------------------------------------------
    def _require_fn(self, fn: str, line: int) -> Function:
        try:
            function = self.functions[fn]
        except KeyError:
            raise ConfigError(f"{self.name}: unknown function {fn!r}") from None
        function.ip(line)  # validates the line against the real span
        return function

    def entry(self, fn: str) -> None:
        """Declare a program entry point (``main`` or an MPI rank main)."""
        if fn not in self.functions:
            raise ConfigError(f"{self.name}: unknown entry function {fn!r}")
        if fn not in self.entries:
            self.entries.append(fn)

    def call(self, caller: str, line: int, callee: str) -> None:
        self._require_fn(caller, line)
        if callee not in self.functions:
            raise ConfigError(f"{self.name}: unknown callee {callee!r}")
        self.calls.append(CallSite(caller, line, callee, "call"))

    def parallel_region(
        self, host: str, line: int, outlined: str, n_threads: int | None = None
    ) -> None:
        """Declare a parallel region: ``host`` forks ``outlined`` at ``line``."""
        self._require_fn(host, line)
        parsed = parse_outlined(outlined)
        if parsed is None or parsed[0] != host:
            raise ConfigError(
                f"{self.name}: {outlined!r} is not an outlined region of {host!r}"
            )
        if outlined not in self.functions:
            raise ConfigError(f"{self.name}: unknown outlined function {outlined!r}")
        width = self.default_n_threads if n_threads is None else n_threads
        self.regions[outlined] = RegionDecl(host, line, outlined, width)
        self.calls.append(CallSite(host, line, outlined, "parallel"))

    def _var(self, name: str, storage: str) -> VarDecl:
        var = self.variables.get(name)
        if var is None:
            var = VarDecl(name=name, storage=storage)
            self.variables[name] = var
        elif var.storage != storage:
            raise ConfigError(
                f"{self.name}: variable {name!r} declared both "
                f"{var.storage} and {storage}"
            )
        return var

    def alloc(
        self,
        fn: str,
        line: int,
        var: str,
        nbytes: int,
        kind: str = "malloc",
        policy: str = "first_touch",
        in_loop: bool = False,
    ) -> None:
        if kind not in _ALLOC_KINDS:
            raise ConfigError(f"{self.name}: bad alloc kind {kind!r}")
        if policy not in _POLICIES:
            raise ConfigError(f"{self.name}: bad placement policy {policy!r}")
        if kind == "numa_interleaved":
            policy = "interleaved"
        self._require_fn(fn, line)
        storage = "static" if kind == "static" else "heap"
        if kind == "static" and var in self.static_nbytes:
            nbytes = self.static_nbytes[var]
        decl = self._var(var, storage)
        decl.policy = policy
        decl.alloc_sites.append(AllocSite(var, fn, line, nbytes, kind, in_loop))

    def touch(self, fn: str, line: int, var: str, by: str = "master") -> None:
        if by not in _EXECUTORS:
            raise ConfigError(f"{self.name}: bad touch executor {by!r}")
        self._require_fn(fn, line)
        decl = self._existing(var)
        decl.touch_sites.append(TouchSite(var, fn, line, by))

    def access(
        self,
        fn: str,
        line: int,
        var: str,
        weight: float,
        is_store: bool = False,
        pattern: AccessPattern | None = None,
    ) -> None:
        if weight < 0:
            raise ConfigError(f"{self.name}: negative access weight for {var!r}")
        self._require_fn(fn, line)
        decl = self._existing(var)
        decl.access_sites.append(AccessSite(var, fn, line, weight, is_store, pattern))

    def compute_estimate(self, cycles: float) -> None:
        """Declare the model's estimated non-memory compute cycles."""
        if cycles < 0:
            raise ConfigError(f"{self.name}: negative compute estimate")
        self.compute_cycles_estimate = float(cycles)

    def free(self, fn: str, line: int, var: str) -> None:
        self._require_fn(fn, line)
        decl = self._existing(var)
        decl.free_sites.append(FreeSite(var, fn, line))

    def _existing(self, var: str) -> VarDecl:
        decl = self.variables.get(var)
        if decl is None:
            raise ConfigError(
                f"{self.name}: variable {var!r} used before any alloc() declaration"
            )
        return decl

    # -- queries -----------------------------------------------------------
    def is_worker_fn(self, fn: str) -> bool:
        """Does ``fn`` execute on the worker side of a parallel region?
        (The outlined body, or anything only called from one.)"""
        return parse_outlined(fn) is not None

    def region_of(self, fn: str) -> RegionDecl | None:
        return self.regions.get(fn)

    def iter_variables(self) -> Iterable[VarDecl]:
        return self.variables.values()

    @property
    def total_weight(self) -> float:
        return sum(var.total_weight for var in self.variables.values())
