"""Reconcile static predictions against a merged dynamic profile.

The paper's thesis is that data-centric *measurement* pinpoints the
variables worth fixing; the static pass makes the complementary claim
that some of those variables are predictable without running.  This
module closes the loop: given a :class:`StaticReport` and a merged
``.rpdb``, each H001 prediction is labelled

- ``confirmed``   — the variable shows up in the dynamic profile with a
  remote-access fraction above the confirmation threshold;
- ``unconfirmed`` — the variable was sampled but its remote fraction
  stayed low (the predicted pathology did not materialize);
- ``no-data``     — the profile has no samples for the variable (too
  small, below the tracking threshold, or optimized away).

Dynamic hot spots the static pass said nothing about are reported as
``missed`` — remote-dominant variables with a share above the guidance
threshold and no H001 prediction (e.g. streamcluster's ``point.p``,
whose share sits below the static threshold; a deliberate demonstration
of where structure-only analysis runs out).

H002-H004 findings have no per-variable dynamic counterpart in the
profile (sharing incidents live in the sanitizer, growth/dead-alloc in
the allocator) and are labelled ``not-reconcilable`` rather than
silently dropped.

Precision = confirmed / (confirmed + unconfirmed);
recall    = confirmed / (confirmed + missed).  ``no-data`` predictions
count against neither — absence of samples is not evidence of absence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import ExperimentDB
from repro.core.metrics import MetricKind
from repro.core.storage import StorageClass
from repro.staticcheck.analyze import MIN_SHARE, Finding, StaticReport

__all__ = ["Verdict", "Reconciliation", "reconcile"]

# A prediction confirms when the variable's remote fraction (judged
# among DRAM-serviced samples, as guidance does) clears this bar.  It
# sits well below guidance's 0.5 "dominant" bar: confirmation asks "did
# remote traffic appear where predicted", not "is it the top problem".
_CONFIRM_REMOTE = 0.2
# A dynamic variable is a "miss" when the static pass said nothing and
# the dynamic side shows remote dominance at a guidance-level share.
_MISS_REMOTE = 0.5


@dataclass(frozen=True)
class Verdict:
    """One prediction (or dynamic-only miss) with its dynamic evidence."""

    variable: str
    code: str
    label: str  # confirmed | unconfirmed | no-data | missed | not-reconcilable
    remote_fraction: float
    dynamic_share: float
    samples: int
    detail: str


@dataclass
class Reconciliation:
    """Verdicts plus the precision/recall summary."""

    app: str
    variant: str
    verdicts: list[Verdict] = field(default_factory=list)

    def with_label(self, label: str) -> list[Verdict]:
        return [v for v in self.verdicts if v.label == label]

    @property
    def n_confirmed(self) -> int:
        return len(self.with_label("confirmed"))

    @property
    def n_unconfirmed(self) -> int:
        return len(self.with_label("unconfirmed"))

    @property
    def n_missed(self) -> int:
        return len(self.with_label("missed"))

    @property
    def precision(self) -> float:
        judged = self.n_confirmed + self.n_unconfirmed
        return self.n_confirmed / judged if judged else 1.0

    @property
    def recall(self) -> float:
        known = self.n_confirmed + self.n_missed
        return self.n_confirmed / known if known else 1.0


def _dynamic_remote(exp: ExperimentDB, name: str) -> tuple[float, float, int]:
    """(remote fraction, share, samples) for a variable name, summed over
    its allocation contexts the way ``variable_share`` sums shares."""
    reports = [
        v
        for v in exp.top_down(MetricKind.LATENCY).variables
        if v.name == name
    ]
    if not reports:
        return 0.0, 0.0, 0
    share = sum(v.share for v in reports)
    samples = sum(v.samples for v in reports)
    # Weight remote fraction by samples across contexts.
    if samples:
        remote = (
            sum(max(v.remote_fraction, v.dram_remote_fraction) * v.samples for v in reports)
            / samples
        )
    else:
        remote = max(
            max(v.remote_fraction, v.dram_remote_fraction) for v in reports
        )
    return remote, share, samples


def _judge_h001(exp: ExperimentDB, finding: Finding) -> Verdict:
    remote, share, samples = _dynamic_remote(exp, finding.variable)
    if samples == 0:
        label = "no-data"
        detail = "no dynamic samples attribute to this variable"
    elif remote >= _CONFIRM_REMOTE:
        label = "confirmed"
        detail = (
            f"remote fraction {remote:.0%} over {samples} samples "
            f"(dynamic share {share:.1%})"
        )
    else:
        label = "unconfirmed"
        detail = (
            f"remote fraction only {remote:.0%} over {samples} samples — "
            f"predicted remote traffic did not materialize"
        )
    return Verdict(
        variable=finding.variable,
        code=finding.code,
        label=label,
        remote_fraction=remote,
        dynamic_share=share,
        samples=samples,
        detail=detail,
    )


def reconcile(
    report: StaticReport,
    exp: ExperimentDB,
    min_share: float = MIN_SHARE,
) -> Reconciliation:
    """Label every prediction in ``report`` against the merged profile."""
    result = Reconciliation(app=report.app, variant=report.variant)
    predicted_h001 = set()
    for finding in report.findings:
        if finding.code == "H001":
            predicted_h001.add(finding.variable)
            result.verdicts.append(_judge_h001(exp, finding))
        else:
            result.verdicts.append(
                Verdict(
                    variable=finding.variable,
                    code=finding.code,
                    label="not-reconcilable",
                    remote_fraction=0.0,
                    dynamic_share=0.0,
                    samples=0,
                    detail=(
                        f"{finding.code} has no per-variable counterpart in "
                        f"the profile (check the sanitizer/allocator instead)"
                    ),
                )
            )

    # Dynamic-only hot spots the static pass failed to predict.
    seen_missed: set[str] = set()
    for var in exp.top_down(MetricKind.LATENCY).variables:
        if var.name in predicted_h001 or var.name in seen_missed:
            continue
        if var.storage not in (StorageClass.HEAP, StorageClass.STATIC):
            continue
        remote = max(var.remote_fraction, var.dram_remote_fraction)
        share = exp.variable_share(var.name, MetricKind.LATENCY)
        if remote >= _MISS_REMOTE and share >= min_share:
            seen_missed.add(var.name)
            result.verdicts.append(
                Verdict(
                    variable=var.name,
                    code="H001",
                    label="missed",
                    remote_fraction=remote,
                    dynamic_share=share,
                    samples=var.samples,
                    detail=(
                        f"dynamically remote-dominant ({remote:.0%}, share "
                        f"{share:.1%}) but not predicted statically"
                    ),
                )
            )
    return result
