"""Reconcile static predictions against a merged dynamic profile.

The paper's thesis is that data-centric *measurement* pinpoints the
variables worth fixing; the static pass makes the complementary claim
that some of those variables are predictable without running.  This
module closes the loop twice over:

**Prediction labelling** (:func:`reconcile`) — each H001 prediction is
labelled

- ``confirmed``   — the variable shows up in the dynamic profile with a
  remote-access fraction above the confirmation threshold;
- ``unconfirmed`` — the variable was sampled but its remote fraction
  stayed low (the predicted pathology did not materialize);
- ``no-data``     — the profile has no samples for the variable (too
  small, below the tracking threshold, or optimized away).

Dynamic hot spots the static pass said nothing about are reported as
``missed`` — remote-dominant variables with a share above the guidance
threshold and no H001 prediction (e.g. streamcluster's ``point.p``,
whose share sits below the static threshold; a deliberate demonstration
of where structure-only analysis runs out).

H002-H004 findings have no per-variable dynamic counterpart in the
profile (sharing incidents live in the sanitizer, growth/dead-alloc in
the allocator) and are labelled ``not-reconcilable`` rather than
silently dropped.

Precision = confirmed / (confirmed + unconfirmed);
recall    = confirmed / (confirmed + missed).  ``no-data`` predictions
count against neither — absence of samples is not evidence of absence.

Every judgement is a *formula flag*: ``h001_confirmed``,
``is_remote_dominant`` and ``is_significant`` are nodes of the boundness
DAG (:mod:`repro.metrics.boundness`), evaluated per variable over a
:class:`~repro.metrics.sources.VariableProfileSource` — the identical
nodes the static predictor evaluates over model-predicted counters, with
the same per-architecture constant overrides.

**Metric reconciliation** (:func:`reconcile_metrics`) — beyond labels,
compare the *numbers*: static vs dynamic evaluation of the same derived
metrics, per variable, with per-metric relative error.  Static counters
are conditioned to the profile's sampling vocabulary first (a marked
remote-DRAM event sampler observes only remote accesses; comparing raw
cache-level predictions against it would mismatch by construction).

Profiles whose metadata lacks the ``machine`` stamp (v1 / pre-PR-7
recordings) degrade to default-variant formula constants with a warning
instead of failing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import ExperimentDB
from repro.core.metrics import MetricKind
from repro.core.storage import StorageClass
from repro.core.views import VariableReport
from repro.metrics.boundness import REGISTRY
from repro.metrics.sources import ProfileSource, VariableProfileSource
from repro.staticcheck.analyze import Finding, StaticReport
from repro.staticcheck.model import StaticModel
from repro.staticcheck.predict import (
    ModelPrediction,
    condition_counters,
    model_source,
    predict_model,
    source_vocabulary,
)

__all__ = [
    "Verdict",
    "Reconciliation",
    "reconcile",
    "MetricDelta",
    "VariableMetrics",
    "MetricReconciliation",
    "reconcile_metrics",
]

# The flag nodes a per-variable dynamic source is judged by.
_JUDGE_NODES = (
    "remote_dram_fraction",
    "h001_confirmed",
    "is_remote_dominant",
    "is_significant",
    "is_tlb_hot",
)

# The derived metrics compared numerically, static vs dynamic.
COMPARED_METRICS = (
    "memory_cycle_fraction",
    "dram_intensity",
    "remote_dram_fraction",
    "tlb_intensity",
)

_MISSING_MACHINE_WARNING = (
    "profile meta lacks a 'machine' stamp (v1 / pre-formula-engine "
    "recording); formula constants resolve with default-variant values"
)


@dataclass(frozen=True)
class Verdict:
    """One prediction (or dynamic-only miss) with its dynamic evidence."""

    variable: str
    code: str
    label: str  # confirmed | unconfirmed | no-data | missed | not-reconcilable
    remote_fraction: float
    dynamic_share: float
    samples: int
    detail: str


@dataclass
class Reconciliation:
    """Verdicts plus the precision/recall summary."""

    app: str
    variant: str
    verdicts: list[Verdict] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def with_label(self, label: str) -> list[Verdict]:
        return [v for v in self.verdicts if v.label == label]

    @property
    def n_confirmed(self) -> int:
        return len(self.with_label("confirmed"))

    @property
    def n_unconfirmed(self) -> int:
        return len(self.with_label("unconfirmed"))

    @property
    def n_missed(self) -> int:
        return len(self.with_label("missed"))

    @property
    def precision(self) -> float:
        judged = self.n_confirmed + self.n_unconfirmed
        return self.n_confirmed / judged if judged else 1.0

    @property
    def recall(self) -> float:
        known = self.n_confirmed + self.n_missed
        return self.n_confirmed / known if known else 1.0


def _machine_meta(exp: ExperimentDB) -> tuple[str, list[str]]:
    """The profile's machine stamp, degrading to "" with a warning."""
    try:
        machine = str(exp.db.meta.get("machine", "") or "")
    except Exception:
        machine = ""
    if machine:
        return machine, []
    return "", [_MISSING_MACHINE_WARNING]


def _merged_variables(exp: ExperimentDB) -> dict[str, VariableReport]:
    """Per-variable reports with allocation contexts merged by name."""
    merged: dict[str, VariableReport] = {}
    for var in exp.top_down(MetricKind.LATENCY).variables:
        if var.storage not in (StorageClass.HEAP, StorageClass.STATIC):
            continue
        seen = merged.get(var.name)
        if seen is None:
            merged[var.name] = VariableReport(
                name=var.name,
                storage=var.storage,
                value=var.value,
                share=var.share,
                alloc_kind=var.alloc_kind,
                samples=var.samples,
                levels=tuple(var.levels),
                latency=var.latency,
                tlb_misses=var.tlb_misses,
            )
            continue
        seen.value += var.value
        seen.share += var.share
        seen.samples += var.samples
        levels = list(seen.levels) + [0] * max(
            0, len(var.levels) - len(seen.levels)
        )
        for i, count in enumerate(var.levels):
            levels[i] += count
        seen.levels = tuple(levels)
        seen.latency += var.latency
        seen.tlb_misses += var.tlb_misses
    return merged


def _judge_flags(var: VariableReport, exp: ExperimentDB) -> dict[str, float]:
    """Evaluate the per-variable judgement flags over the formula DAG."""
    source = VariableProfileSource(var, exp)
    result = REGISTRY.evaluate(source, only=_JUDGE_NODES)
    return {name: result[name] for name in _JUDGE_NODES}


def _judge_h001(
    exp: ExperimentDB,
    finding: Finding,
    merged: dict[str, VariableReport],
) -> Verdict:
    var = merged.get(finding.variable)
    if var is None or var.samples == 0:
        return Verdict(
            variable=finding.variable,
            code=finding.code,
            label="no-data",
            remote_fraction=0.0,
            dynamic_share=0.0,
            samples=0,
            detail="no dynamic samples attribute to this variable",
        )
    flags = _judge_flags(var, exp)
    remote = flags["remote_dram_fraction"]
    share = var.share
    if flags["h001_confirmed"]:
        label = "confirmed"
        detail = (
            f"remote fraction {remote:.0%} over {var.samples} samples "
            f"(dynamic share {share:.1%})"
        )
    else:
        label = "unconfirmed"
        detail = (
            f"remote fraction only {remote:.0%} over {var.samples} samples — "
            f"predicted remote traffic did not materialize"
        )
    return Verdict(
        variable=finding.variable,
        code=finding.code,
        label=label,
        remote_fraction=remote,
        dynamic_share=share,
        samples=var.samples,
        detail=detail,
    )


def reconcile(
    report: StaticReport,
    exp: ExperimentDB,
    min_share: float | None = None,
) -> Reconciliation:
    """Label every prediction in ``report`` against the merged profile.

    ``min_share=None`` resolves the noise threshold through the formula
    registry with the profile's ``(machine, "profile")`` override keys.
    """
    machine, warnings = _machine_meta(exp)
    if min_share is None:
        keys = (machine, "profile") if machine else ("profile",)
        min_share = REGISTRY.constant_value("min_share", keys)
    result = Reconciliation(
        app=report.app, variant=report.variant, warnings=warnings
    )
    merged = _merged_variables(exp)
    predicted_h001 = set()
    for finding in report.findings:
        if finding.code == "H001":
            predicted_h001.add(finding.variable)
            result.verdicts.append(_judge_h001(exp, finding, merged))
        else:
            result.verdicts.append(
                Verdict(
                    variable=finding.variable,
                    code=finding.code,
                    label="not-reconcilable",
                    remote_fraction=0.0,
                    dynamic_share=0.0,
                    samples=0,
                    detail=(
                        f"{finding.code} has no per-variable counterpart in "
                        f"the profile (check the sanitizer/allocator instead)"
                    ),
                )
            )

    # Dynamic-only hot spots the static pass failed to predict: judged by
    # the same is_remote_dominant / is_significant flag nodes, so a
    # below-min_share variable is never reported as a miss.
    for name in sorted(merged):
        if name in predicted_h001:
            continue
        var = merged[name]
        if var.samples == 0:
            continue
        flags = _judge_flags(var, exp)
        if not flags["is_remote_dominant"]:
            continue
        if var.share < min_share:
            continue
        result.verdicts.append(
            Verdict(
                variable=name,
                code="H001",
                label="missed",
                remote_fraction=flags["remote_dram_fraction"],
                dynamic_share=var.share,
                samples=var.samples,
                detail=(
                    f"dynamically remote-dominant "
                    f"({flags['remote_dram_fraction']:.0%}, share "
                    f"{var.share:.1%}) but not predicted statically"
                ),
            )
        )
    return result


# ---------------------------------------------------------------------------
# Metric-level reconciliation: same DAG, two sources, relative error
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    """One derived metric, evaluated statically and dynamically."""

    metric: str
    static_value: float
    dynamic_value: float

    @property
    def rel_error(self) -> float:
        if self.dynamic_value == 0:
            return 0.0 if self.static_value == 0 else abs(self.static_value)
        return abs(self.static_value - self.dynamic_value) / abs(
            self.dynamic_value
        )


@dataclass
class VariableMetrics:
    """All compared metrics for one variable, plus the verdict pair."""

    variable: str
    static_share: float
    dynamic_share: float
    static_verdict: str
    dynamic_verdict: str
    deltas: list[MetricDelta] = field(default_factory=list)

    @property
    def agree(self) -> bool:
        return self.static_verdict == self.dynamic_verdict

    @property
    def share_error(self) -> float:
        """Absolute error of the predicted traffic share — the quantity
        behind the paper's Figure-11-style variable ranking."""
        return abs(self.static_share - self.dynamic_share)

    def delta(self, metric: str) -> MetricDelta | None:
        for d in self.deltas:
            if d.metric == metric:
                return d
        return None


@dataclass
class MetricReconciliation:
    """Per-variable metric comparison over the shared formula DAG."""

    app: str
    variant: str
    vocabulary: str  # the profile's sampling vocabulary (all | rmem-only)
    variables: list[VariableMetrics] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def for_variable(self, name: str) -> VariableMetrics | None:
        for vm in self.variables:
            if vm.variable == name:
                return vm
        return None

    @property
    def n_agree(self) -> int:
        return sum(1 for vm in self.variables if vm.agree)

    @property
    def mean_share_error(self) -> float:
        """Mean absolute share error over the compared variables."""
        if not self.variables:
            return 0.0
        return sum(vm.share_error for vm in self.variables) / len(
            self.variables
        )

    def mean_rel_error(self, metric: str) -> float:
        """Mean relative error of one compared metric."""
        deltas = [
            d for vm in self.variables for d in vm.deltas if d.metric == metric
        ]
        if not deltas:
            return 0.0
        return sum(d.rel_error for d in deltas) / len(deltas)


def _verdict_from_flags(result: dict[str, float]) -> str:
    """The per-variable top-level verdict, from the flag nodes."""
    if result["is_remote_dominant"]:
        return "numa"
    if result["is_tlb_hot"]:
        return "tlb"
    return "local"


def reconcile_metrics(
    model: StaticModel,
    exp: ExperimentDB,
    pred: ModelPrediction | None = None,
) -> MetricReconciliation:
    """Compare static vs dynamic evaluations of the boundness DAG.

    For every variable present in both the static model and the dynamic
    profile, evaluate :data:`COMPARED_METRICS` over (a) the static
    prediction's counters, conditioned to the profile's sampling
    vocabulary, and (b) the variable's dynamic counter slice — and
    report per-metric relative error plus top-level verdict agreement.
    """
    if pred is None:
        pred = predict_model(model)
    machine, warnings = _machine_meta(exp)
    vocab = source_vocabulary(ProfileSource(exp))
    out = MetricReconciliation(
        app=model.name,
        variant=model.variant,
        vocabulary=vocab,
        warnings=list(warnings),
    )
    merged = _merged_variables(exp)

    # Conditioned static shares: under an rmem-only vocabulary a
    # variable's observable share is its share of *remote* traffic.
    conditioned = {
        name: condition_counters(vp.counters, vocab)
        for name, vp in pred.variables.items()
    }
    total_static = sum(c["samples"] for c in conditioned.values())

    for name in sorted(pred.variables):
        dyn = merged.get(name)
        if dyn is None or dyn.samples == 0:
            continue
        static_counters = dict(conditioned[name])
        if static_counters["samples"] <= 0:
            continue
        static_share = (
            static_counters["samples"] / total_static if total_static else 0.0
        )
        static_counters["metric_share"] = static_share
        static_src = model_source(pred, static_counters)
        static_result = REGISTRY.evaluate(
            static_src, only=COMPARED_METRICS + _JUDGE_NODES
        )
        dyn_src = VariableProfileSource(dyn, exp)
        dyn_result = REGISTRY.evaluate(
            dyn_src, only=COMPARED_METRICS + _JUDGE_NODES
        )
        out.variables.append(
            VariableMetrics(
                variable=name,
                static_share=static_share,
                dynamic_share=dyn.share,
                static_verdict=_verdict_from_flags(
                    {k: static_result[k] for k in _JUDGE_NODES}
                ),
                dynamic_verdict=_verdict_from_flags(
                    {k: dyn_result[k] for k in _JUDGE_NODES}
                ),
                deltas=[
                    MetricDelta(
                        metric=metric,
                        static_value=static_result[metric],
                        dynamic_value=dyn_result[metric],
                    )
                    for metric in COMPARED_METRICS
                ],
            )
        )
    return out
