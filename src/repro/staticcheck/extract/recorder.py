"""Fact recorder and ``Ctx`` proxy for the extraction interpreter.

The interpreter drives kernel source over a *real* :class:`SimProcess`
(real program image, real heap) but swaps the :class:`repro.sim.runtime.Ctx`
the kernel talks to for :class:`ExtractionCtx`.  The proxy performs the
same address bookkeeping the real runtime would (heap allocation,
``SimArray`` construction) while recording, instead of simulating, every
event the hand-written static models declare: entries, call edges,
parallel regions, allocation / touch / free sites, and access sites with
weights.  Addresses are attributed to variables through the live heap
map plus the module static symbols — the same resolution the dynamic
profiler performs, which is what makes extracted facts land on the same
``(var, fn, line)`` coordinates as the registered models.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any

from repro.staticcheck.extract.values import CallToken, rep_of, tags_of

__all__ = ["AccessAgg", "AllocAgg", "Recorder", "ExtractionCtx", "ThreadProxy"]

_RUN_SAMPLE_CAP = 64
_OFFSET_SAMPLE_CAP = 4096
_DIAG_CAP = 200


@dataclass
class AllocAgg:
    """All allocations observed at one ``(var, fn, line, kind)`` site."""

    var: str
    fn: str
    line: int
    kind: str
    sizes: dict[int, int] = field(default_factory=dict)  # addr -> nbytes
    in_loop: bool = False
    sampled: bool = False  # observed under loop sampling: nbytes inexact

    @property
    def nbytes(self) -> int:
        """Total distinct bytes allocated at the site (sum over addresses)."""
        return sum(self.sizes.values())

    @property
    def inexact(self) -> bool:
        return self.sampled or len(set(self.sizes.values())) > 1


@dataclass
class AccessAgg:
    """All accesses observed at one ``(var, fn, line, is_store)`` site."""

    var: str
    fn: str
    line: int
    is_store: bool
    weight: float = 0.0
    runs: list[tuple[int, int]] = field(default_factory=list)  # (count, stride)
    n_run_events: int = 0
    offsets: set[int] = field(default_factory=set)  # scalar offsets vs var base
    n_scalar_events: int = 0
    lo: int | None = None  # min/max touched offset (vs var base)
    hi: int | None = None
    tid_tagged: bool = False

    def note_extent(self, lo: int, hi: int) -> None:
        self.lo = lo if self.lo is None else min(self.lo, lo)
        self.hi = hi if self.hi is None else max(self.hi, hi)


class Recorder:
    """Accumulates model facts in first-observed order."""

    def __init__(self) -> None:
        self.process: Any = None
        # Ordered fact stores (dict preserves first-seen order).
        self.entries: list[str] = []
        self.calls: dict[tuple[str, int, str, str], None] = {}
        self.regions: dict[str, tuple[str, int, int]] = {}
        self.allocs: dict[tuple[str, str, int, str], AllocAgg] = {}
        self.touches: dict[tuple[str, str, int, str], None] = {}
        self.frees: dict[tuple[str, str, int], None] = {}
        self.accesses: dict[tuple[str, str, int, bool], AccessAgg] = {}
        self.process_interleaved = False
        self.compute_units = 0.0
        # Interpreter-shared state.
        self.frames: list[Any] = []  # repro.sim.program.Function stack
        self.worker_depth = 0
        self.team_stack: list[int] = []
        self.mult = 1.0
        self.sampled_depth = 0
        self.name_hint: str | None = None
        # Attribution state.
        self._heap_starts: list[int] = []
        self._heap_blocks: dict[int, tuple[int, str]] = {}  # start -> (end, var)
        self._var_bases: dict[str, int] = {}  # var -> lowest base seen
        self._ip_cache: dict[int, tuple[str, int]] = {}
        # Diagnostics.
        self.diagnostics: list[str] = []
        self.unattributed_weight = 0.0
        self._warned_ips: set[int] = set()

    # -- plumbing ----------------------------------------------------------
    def bind(self, process: Any) -> None:
        self.process = process

    @property
    def current_fn(self) -> Any:
        if not self.frames:
            raise RuntimeError("extraction event outside any function frame")
        return self.frames[-1]

    @property
    def team_size(self) -> int:
        return self.team_stack[-1] if self.team_stack else 1

    def diag(self, message: str) -> None:
        if len(self.diagnostics) < _DIAG_CAP:
            self.diagnostics.append(message)

    # -- address attribution ----------------------------------------------
    def register_heap(self, addr: int, nbytes: int, var: str) -> None:
        idx = bisect.bisect_left(self._heap_starts, addr)
        self._heap_starts.insert(idx, addr)
        self._heap_blocks[addr] = (addr + nbytes, var)
        base = self._var_bases.get(var)
        if base is None or addr < base:
            self._var_bases[var] = addr

    def unregister_heap(self, addr: int) -> str | None:
        block = self._heap_blocks.pop(addr, None)
        if block is None:
            return None
        idx = bisect.bisect_left(self._heap_starts, addr)
        if idx < len(self._heap_starts) and self._heap_starts[idx] == addr:
            del self._heap_starts[idx]
        return block[1]

    def register_static(self, name: str, address: int) -> None:
        base = self._var_bases.get(name)
        if base is None or address < base:
            self._var_bases[name] = address

    def resolve_addr(self, addr: int) -> str | None:
        idx = bisect.bisect_right(self._heap_starts, addr) - 1
        if idx >= 0:
            start = self._heap_starts[idx]
            end, var = self._heap_blocks[start]
            if addr < end:
                return var
        if self.process is not None:
            for module in self.process.modules:
                sym = module.static_at(addr)
                if sym is not None:
                    self.register_static(sym.name, sym.address)
                    return sym.name
        return None

    def var_base(self, var: str) -> int:
        return self._var_bases.get(var, 0)

    def resolve_ip(self, ip: int) -> tuple[str, int] | None:
        cached = self._ip_cache.get(ip)
        if cached is not None:
            return cached
        for module in self.process.modules:
            if module.contains_ip(ip):
                fn, line, _slot = module.resolve_ip(ip)
                self._ip_cache[ip] = (fn.name, line)
                return fn.name, line
        return None

    # -- fact recording ----------------------------------------------------
    def record_entry(self, fn_name: str) -> None:
        if fn_name not in self.entries:
            self.entries.append(fn_name)

    def record_call(self, caller: str, line: int, callee: str, kind: str) -> None:
        self.calls.setdefault((caller, int(line), callee, kind), None)

    def record_region(self, outlined: str, host: str, line: int, n: int) -> None:
        prior = self.regions.get(outlined)
        decl = (host, int(line), int(n))
        if prior is None:
            self.regions[outlined] = decl
        elif prior != decl:
            self.diag(
                f"region {outlined} redeclared with {decl} (keeping {prior})"
            )

    def record_alloc(
        self, var: str, fn: str, line: int, nbytes: int, kind: str, addr: int
    ) -> AllocAgg:
        key = (var, fn, int(line), kind)
        agg = self.allocs.get(key)
        if agg is None:
            agg = AllocAgg(var, fn, int(line), kind)
            self.allocs[key] = agg
        agg.sizes[addr] = int(nbytes)
        if self.sampled_depth > 0:
            agg.in_loop = True
            agg.sampled = True
        return agg

    def record_touch(self, addr: int, line: int) -> None:
        var = self.resolve_addr(addr)
        if var is None:
            self.diag(f"touch_range at line {line} hit unattributed address")
            return
        by = "workers" if self.worker_depth > 0 else "master"
        self.touches.setdefault((var, self.current_fn.name, int(line), by), None)

    def record_free(self, addr: int, line: int) -> str | None:
        var = self.unregister_heap(addr)
        if var is None:
            self.diag(f"free at line {line} of unattributed address {addr:#x}")
            return None
        self.frees.setdefault((var, self.current_fn.name, int(line)), None)
        return var

    def record_access(
        self,
        ip: Any,
        vaddr: Any,
        is_store: bool,
        count: int = 1,
        stride: int = 0,
    ) -> None:
        ip_rep = int(rep_of(ip))
        addr = int(rep_of(vaddr))
        weight = count * self.mult
        var = self.resolve_addr(addr)
        if var is None:
            self.unattributed_weight += weight
            if ip_rep not in self._warned_ips:
                self._warned_ips.add(ip_rep)
                site = self.resolve_ip(ip_rep)
                where = f"{site[0]}:{site[1]}" if site else f"ip={ip_rep:#x}"
                self.diag(f"unattributed access at {where} (stack or raw address)")
            return
        site = self.resolve_ip(ip_rep)
        if site is None:
            self.diag(f"access with ip outside every module: {ip_rep:#x}")
            return
        fn, line = site
        key = (var, fn, line, is_store)
        agg = self.accesses.get(key)
        if agg is None:
            agg = AccessAgg(var, fn, line, is_store)
            self.accesses[key] = agg
        agg.weight += weight
        base = self.var_base(var)
        off = addr - base
        if count > 1 and stride != 0:
            agg.n_run_events += 1
            if len(agg.runs) < _RUN_SAMPLE_CAP:
                agg.runs.append((count, int(rep_of(stride))))
            span = (count - 1) * abs(int(rep_of(stride)))
            lo = min(off, off + (count - 1) * int(rep_of(stride)))
            agg.note_extent(lo, lo + span + abs(int(rep_of(stride))))
        else:
            agg.n_scalar_events += 1
            if len(agg.offsets) < _OFFSET_SAMPLE_CAP:
                agg.offsets.add(off)
            agg.note_extent(off, off + 1)
        if "tid" in tags_of(vaddr):
            agg.tid_tagged = True

    def record_compute(self, n: Any) -> None:
        self.compute_units += float(rep_of(n)) * self.mult


class ThreadProxy:
    """Stands in for ``process.omp_thread(...)`` / ``ctx.thread``."""

    def __init__(self, recorder: Recorder, real_thread: Any) -> None:
        self._rec = recorder
        self._real = real_thread

    @property
    def current_function(self) -> Any:
        return self._rec.current_fn

    def stack_alloc(self, nbytes: Any) -> int:
        return self._real.stack_alloc(int(rep_of(nbytes)))

    def stack_release(self, nbytes: Any) -> None:
        self._real.stack_release(int(rep_of(nbytes)))

    def __getattr__(self, name: str) -> Any:
        return getattr(self._real, name)


class ExtractionCtx:
    """The recording double of :class:`repro.sim.runtime.Ctx`.

    Address-producing calls (``malloc``, ``alloc_array``, ``static_array``)
    return *real* heap/image addresses so all downstream pointer math in
    the kernel stays concrete; event-producing calls record facts instead
    of simulating memory.  Control-flow calls (``call_sync``, ``parallel``)
    delegate back into the interpreter, which is attached after
    construction as ``_interp``.
    """

    def __init__(self, recorder: Recorder, process: Any, thread: Any) -> None:
        self._rec = recorder
        self.process = process
        self.thread = ThreadProxy(recorder, thread)
        self._interp: Any = None  # set by the interpreter

    # -- frame management --------------------------------------------------
    def enter(self, fn: Any) -> None:
        rec = self._rec
        if not rec.frames:
            rec.record_entry(fn.name)
        rec.frames.append(fn)

    def leave(self) -> None:
        self._rec.frames.pop()

    # -- instruction pointers ----------------------------------------------
    def ip(self, line: Any, slot: int = 0) -> int:
        return self._rec.current_fn.ip(int(rep_of(line)), int(rep_of(slot)))

    # -- memory events -----------------------------------------------------
    def load_ip(self, vaddr: Any, ip: Any) -> None:
        self._rec.record_access(ip, vaddr, is_store=False)

    def store_ip(self, vaddr: Any, ip: Any) -> None:
        self._rec.record_access(ip, vaddr, is_store=True)

    def load(self, vaddr: Any, line: Any, slot: int = 0) -> None:
        self.load_ip(vaddr, self.ip(line, slot))

    def store(self, vaddr: Any, line: Any, slot: int = 0) -> None:
        self.store_ip(vaddr, self.ip(line, slot))

    def load_run(self, base: Any, count: Any, stride: Any, ip: Any) -> None:
        self._rec.record_access(
            ip, base, is_store=False,
            count=int(rep_of(count)), stride=int(rep_of(stride)),
        )

    def store_run(self, base: Any, count: Any, stride: Any, ip: Any) -> None:
        self._rec.record_access(
            ip, base, is_store=True,
            count=int(rep_of(count)), stride=int(rep_of(stride)),
        )

    # Older stride-spelling aliases kept for API parity with Ctx.
    load_stride = load_run
    store_stride = store_run

    def compute(self, n: Any = 1) -> None:
        self._rec.record_compute(n)

    def comm(self, nbytes: Any) -> None:
        pass

    # -- allocation --------------------------------------------------------
    def _alloc(
        self, nbytes: int, line: int, kind: str, var: str | None
    ) -> int:
        rec = self._rec
        addr = self.process.aspace.heap.malloc(nbytes)
        name = var or rec.name_hint
        if name is None:
            name = f"anon@{rec.current_fn.name}:{line}"
            rec.diag(f"unnamed {kind} at {rec.current_fn.name}:{line}")
        rec.register_heap(addr, nbytes, name)
        rec.record_alloc(name, rec.current_fn.name, line, nbytes, kind, addr)
        return addr

    def malloc(
        self, nbytes: Any, line: Any, kind: str = "malloc", var: str | None = None
    ) -> int:
        return self._alloc(int(rep_of(nbytes)), int(rep_of(line)), kind, var)

    def calloc(self, nbytes: Any, line: Any, var: str | None = None) -> int:
        # calloc's zero-fill commits first-touch placement at the alloc
        # site itself; the hand models record no separate touch site.
        return self._alloc(int(rep_of(nbytes)), int(rep_of(line)), "calloc", var)

    def free(self, addr: Any, line: Any) -> None:
        a = int(rep_of(addr))
        var = self._rec.record_free(a, int(rep_of(line)))
        if var is not None:
            self.process.aspace.heap.free(a)

    def alloc_array(
        self,
        name: str,
        shape: tuple,
        line: Any,
        elem: int = 8,
        order: str = "C",
        kind: str = "malloc",
    ) -> Any:
        from repro.sim.arrays import SimArray

        shape = tuple(int(rep_of(s)) for s in shape)
        nbytes = 1
        for s in shape:
            nbytes *= s
        nbytes *= elem
        if kind == "calloc":
            base = self.calloc(nbytes, line, var=name)
        else:
            base = self.malloc(nbytes, line, kind=kind, var=name)
        return SimArray(name, base, shape, elem=elem, order=order)

    def static_array(
        self, var: Any, shape: tuple, elem: int = 8, order: str = "C"
    ) -> Any:
        from repro.sim.arrays import SimArray

        rec = self._rec
        rec.register_static(var.name, var.address)
        agg = rec.record_alloc(
            var.name, rec.current_fn.name, var.decl_line, var.size,
            "static", var.address,
        )
        agg.sampled = False  # image-resolved size is always exact
        shape = tuple(int(rep_of(s)) for s in shape)
        return SimArray(var.name, var.address, shape, elem=elem, order=order)

    def touch_range(self, start: Any, nbytes: Any, line: Any) -> None:
        self._rec.record_touch(int(rep_of(start)), int(rep_of(line)))

    def declare_stack_var(self, name: str, nbytes: Any) -> int:
        return self.thread.stack_alloc(nbytes)

    def release_stack_var(self, nbytes: Any) -> None:
        self.thread.stack_release(nbytes)

    # -- control flow ------------------------------------------------------
    def call(self, fn: Any, line: Any, gen: Any) -> CallToken:
        return CallToken(fn, int(rep_of(line)), gen)

    def call_sync(self, fn: Any, line: Any, body: Any, *args: Any) -> Any:
        rec = self._rec
        rec.record_call(rec.current_fn.name, int(rep_of(line)), fn.name, "call")
        rec.frames.append(fn)
        try:
            return self._interp.call_value(body, (self,) + args)
        finally:
            rec.frames.pop()

    def parallel(
        self, outlined_fn: Any, worker: Any, n_threads: Any, line: Any
    ) -> None:
        rec = self._rec
        n = int(rep_of(n_threads))
        host = rec.current_fn.name
        rec.record_region(outlined_fn.name, host, int(rep_of(line)), n)
        rec.record_call(host, int(rep_of(line)), outlined_fn.name, "parallel")
        self._interp.run_worker(self, outlined_fn, worker, n)
