"""AST-driven static-model extraction (the anti-drift pass).

``extract_model`` recovers, from kernel source alone, the same
declaration set the hand-written ``static_model()`` builders publish —
entries, call edges, parallel regions, allocation / touch / access /
free sites — by interpreting the kernel over a real program image with
a recording ``Ctx``.  ``diff_models`` structurally compares an
extracted model against the registered one, which is the CI drift gate
behind ``hpcview staticcheck --extract --diff-model``.
"""

from repro.staticcheck.extract.builder import (
    ExtractionResult,
    classify_pattern,
    extract_model,
)
from repro.staticcheck.extract.diff import ModelDiff, diff_models
from repro.staticcheck.extract.interp import ExtractionError

__all__ = [
    "ExtractionResult",
    "ExtractionError",
    "ModelDiff",
    "classify_pattern",
    "diff_models",
    "extract_model",
]
