"""Bounded abstract interpreter over kernel-function AST.

The pass executes an app's ``run()`` / ``_rank_main()`` the way the
simulator would, with three systematic substitutions:

* the :class:`repro.sim.runtime.Ctx` the kernel drives is the recording
  proxy (:mod:`repro.staticcheck.extract.recorder`);
* a parallel region's worker is interpreted **once**, with ``tid`` bound
  to a tagged :class:`Unknown` and the iteration weight multiplied by
  the team size — ``omp_chunk``/tid-filter results become
  :class:`FilteredSeq` populations whose ``1/team`` fraction cancels the
  team multiplier, so per-site weights sum over the whole team exactly;
* loops longer than :data:`UNROLL_LIMIT` are stratum-sampled at
  :data:`SAMPLE_K` points with a stride coprime to both the trip count
  and every modulus ≤ 12 (their lcm is 27720), so ``i % m`` gates up to
  ``m = 12`` keep their exact hit fraction under sampling.

Everything else is *real*: module-level helpers, ``SimArray`` address
math, the heap, the program image.  Functions reached through
``parallel``/``call_sync``/``call`` boundaries are lifted to closures
(AST + captured cells) and interpreted; functions called directly run
natively, with :class:`Unknown`'s arithmetic operators carrying symbolic
provenance straight through real helper code.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import operator
import textwrap
import types
from math import gcd
from typing import Any

from repro.staticcheck.extract.recorder import ExtractionCtx, Recorder
from repro.staticcheck.extract.values import (
    CallToken,
    Closure,
    Env,
    FilteredSeq,
    LazyBody,
    OneOf,
    Unknown,
    is_generator_def,
    rep_of,
    tags_of,
)

__all__ = ["ExtractionError", "Interp", "UNROLL_LIMIT", "SAMPLE_K"]

UNROLL_LIMIT = 128
SAMPLE_K = 96
_MAX_DEPTH = 64
_STMT_BUDGET = 5_000_000
# lcm(1..12): strides coprime to this preserve every small-modulus gate.
_GATE_LCM = 27720


class ExtractionError(Exception):
    """The interpreter met source it cannot soundly model."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
    ast.LShift: operator.lshift,
    ast.RShift: operator.rshift,
    ast.BitAnd: operator.and_,
    ast.BitOr: operator.or_,
    ast.BitXor: operator.xor,
}

_CMPOPS = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.Is: operator.is_,
    ast.IsNot: operator.is_not,
}


def _sample_plan(n: int) -> tuple[list[int], float]:
    """Stratified sample indices for an ``n``-trip loop, plus the weight
    scale that makes the sampled sum unbiased (``n / K``)."""
    k = SAMPLE_K
    stride = max(1, -(-n // k))
    while gcd(stride, n) != 1 or gcd(stride, _GATE_LCM) != 1:
        stride += 1
    return [(i * stride) % n for i in range(k)], n / k


class Interp:
    """One extraction pass over one app module's kernel."""

    def __init__(self, recorder: Recorder, intercepts: dict[int, Any]) -> None:
        self.rec = recorder
        self.intercepts = intercepts
        self.depth = 0
        self.stmts = 0
        self._lift_cache: dict[Any, Closure] = {}
        self._sampled_sites: set[int] = set()
        self._unknown_cond_sites: set[int] = set()

    # ------------------------------------------------------------------
    # function lifting and calling
    # ------------------------------------------------------------------
    def lift(self, fn: types.FunctionType) -> Closure:
        """Turn a real Python function into an interpretable closure."""
        cached = self._lift_cache.get(fn.__code__)
        if cached is not None:
            return cached
        try:
            source = textwrap.dedent(inspect.getsource(fn))
            node = ast.parse(source).body[0]
        except (OSError, TypeError, SyntaxError) as exc:
            raise ExtractionError(
                f"cannot lift {fn.__qualname__} to AST: {exc}"
            ) from exc
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            raise ExtractionError(f"{fn.__qualname__}: not a function def")
        cells: dict[str, Any] = {}
        if fn.__closure__:
            for name, cell in zip(fn.__code__.co_freevars, fn.__closure__):
                try:
                    cells[name] = cell.cell_contents
                except ValueError:
                    pass
        env = Env(cells, parent=Env(fn.__globals__))
        closure = Closure(
            node, env, fn.__name__, is_generator_def(node),
            defaults=tuple(fn.__defaults__ or ()),
            kw_defaults=dict(fn.__kwdefaults__ or {}),
        )
        self._lift_cache[fn.__code__] = closure
        return closure

    def call_value(self, fn: Any, args: tuple, kwargs: dict | None = None) -> Any:
        """Call a kernel-side callable, interpreting it when possible."""
        kwargs = kwargs or {}
        if isinstance(fn, Closure):
            return self.call_closure(fn, args, kwargs)
        if isinstance(fn, types.FunctionType):
            return self.call_closure(self.lift(fn), args, kwargs)
        if callable(fn):
            return fn(*args, **kwargs)
        raise ExtractionError(f"cannot call non-callable {fn!r}")

    def call_closure(self, clo: Closure, args: tuple, kwargs: dict) -> Any:
        if clo.is_generator:
            return LazyBody(clo, args, kwargs)
        return self._exec_closure(clo, args, kwargs)

    def _bind_params(self, clo: Closure, args: tuple, kwargs: dict) -> Env:
        node_args = clo.node.args
        env = Env(parent=clo.env)
        names = [a.arg for a in node_args.args]
        n_named = len(names)
        for i, name in enumerate(names):
            if i < len(args):
                env.assign(name, args[i])
            elif name in kwargs:
                env.assign(name, kwargs.pop(name))
            else:
                d_idx = i - (n_named - len(clo.defaults))
                if 0 <= d_idx < len(clo.defaults):
                    env.assign(name, clo.defaults[d_idx])
                else:
                    raise ExtractionError(
                        f"{clo.name}: missing argument {name!r}"
                    )
        if node_args.vararg is not None:
            env.assign(node_args.vararg.arg, tuple(args[n_named:]))
        elif len(args) > n_named:
            raise ExtractionError(f"{clo.name}: too many arguments")
        for a in node_args.kwonlyargs:
            if a.arg in kwargs:
                env.assign(a.arg, kwargs.pop(a.arg))
            elif a.arg in clo.kw_defaults:
                env.assign(a.arg, clo.kw_defaults[a.arg])
            else:
                raise ExtractionError(f"{clo.name}: missing kwonly {a.arg!r}")
        if node_args.kwarg is not None:
            env.assign(node_args.kwarg.arg, dict(kwargs))
        elif kwargs:
            raise ExtractionError(
                f"{clo.name}: unexpected kwargs {sorted(kwargs)}"
            )
        return env

    def _exec_closure(self, clo: Closure, args: tuple, kwargs: dict) -> Any:
        if self.depth >= _MAX_DEPTH:
            raise ExtractionError(f"interpretation depth cap at {clo.name}")
        env = self._bind_params(clo, args, dict(kwargs))
        self.depth += 1
        try:
            if isinstance(clo.node, ast.Lambda):
                return self.eval(clo.node.body, env)
            self.exec_body(clo.node.body, env)
        except _Return as ret:
            return ret.value
        finally:
            self.depth -= 1
        return None

    def consume(self, value: Any) -> None:
        """Drive a deferred body: generator closures and call tokens."""
        if isinstance(value, LazyBody):
            clo = value.closure
            env = self._bind_params(clo, value.args, dict(value.kwargs))
            self.depth += 1
            try:
                self.exec_body(clo.node.body, env)
            except _Return:
                pass
            finally:
                self.depth -= 1
        elif isinstance(value, CallToken):
            rec = self.rec
            rec.record_call(
                rec.current_fn.name, value.line, value.fn.name, "call"
            )
            rec.frames.append(value.fn)
            try:
                self.consume(value.gen)
            finally:
                rec.frames.pop()
        elif isinstance(value, types.GeneratorType):
            for _ in value:
                pass

    def run_worker(
        self, proxy: ExtractionCtx, outlined_fn: Any, worker: Any, n: int
    ) -> None:
        """Interpret a region's worker once, weighted by the team size."""
        rec = self.rec
        rec.frames.append(outlined_fn)
        rec.worker_depth += 1
        rec.team_stack.append(max(1, n))
        old_mult = rec.mult
        rec.mult = old_mult * max(1, n)
        tid = Unknown(0, frozenset({"tid"}))
        try:
            self.consume(self.call_value(worker, (proxy, tid)))
        finally:
            rec.mult = old_mult
            rec.team_stack.pop()
            rec.worker_depth -= 1
            rec.frames.pop()

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def exec_body(self, body: list[ast.stmt], env: Env) -> None:
        for stmt in body:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, node: ast.stmt, env: Env) -> None:
        self.stmts += 1
        if self.stmts > _STMT_BUDGET:
            raise ExtractionError("statement budget exhausted")
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is None:
            raise ExtractionError(
                f"unsupported statement {type(node).__name__} "
                f"at line {node.lineno}"
            )
        method(node, env)

    def _stmt_Expr(self, node: ast.Expr, env: Env) -> None:
        value = self.eval(node.value, env)
        if isinstance(value, (LazyBody, CallToken, types.GeneratorType)):
            self.consume(value)

    def _stmt_Pass(self, node: ast.Pass, env: Env) -> None:
        pass

    def _stmt_Assert(self, node: ast.Assert, env: Env) -> None:
        pass

    def _stmt_Return(self, node: ast.Return, env: Env) -> None:
        value = self.eval(node.value, env) if node.value is not None else None
        raise _Return(value)

    def _stmt_Break(self, node: ast.Break, env: Env) -> None:
        raise _Break

    def _stmt_Continue(self, node: ast.Continue, env: Env) -> None:
        raise _Continue

    def _stmt_Raise(self, node: ast.Raise, env: Env) -> None:
        exc = self.eval(node.exc, env) if node.exc is not None else None
        raise ExtractionError(f"kernel raised: {exc!r}")

    def _stmt_FunctionDef(self, node: ast.FunctionDef, env: Env) -> None:
        if node.decorator_list:
            raise ExtractionError(f"decorators unsupported: {node.name}")
        env.assign(node.name, self._make_closure(node, env, node.name))

    def _stmt_Assign(self, node: ast.Assign, env: Env) -> None:
        hint = None
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            hint = node.targets[0].id
        value = self._eval_with_hint(node.value, env, hint)
        for target in node.targets:
            self.bind_target(target, value, env)

    def _stmt_AnnAssign(self, node: ast.AnnAssign, env: Env) -> None:
        if node.value is None:
            return
        hint = node.target.id if isinstance(node.target, ast.Name) else None
        value = self._eval_with_hint(node.value, env, hint)
        self.bind_target(node.target, value, env)

    def _stmt_AugAssign(self, node: ast.AugAssign, env: Env) -> None:
        op = _BINOPS[type(node.op)]
        current = self.eval(node.target, env)
        value = op(current, self.eval(node.value, env))
        self.bind_target(node.target, value, env)

    def _stmt_If(self, node: ast.If, env: Env) -> None:
        cond = self.eval(node.test, env)
        if isinstance(cond, Unknown):
            self._note_unknown_cond(node.lineno)
            old = self.rec.mult
            if node.orelse:
                # Both arms are possible: weight each at half.
                self.rec.mult = old * 0.5
                try:
                    self.exec_body(node.body, env)
                    self.exec_body(node.orelse, env)
                finally:
                    self.rec.mult = old
            else:
                self.exec_body(node.body, env)
            return
        if cond:
            self.exec_body(node.body, env)
        elif node.orelse:
            self.exec_body(node.orelse, env)

    def _stmt_For(self, node: ast.For, env: Env) -> None:
        items, weight, sampled = self._loop_items(
            self.eval(node.iter, env), node.lineno
        )
        rec = self.rec
        if sampled:
            rec.sampled_depth += 1
        try:
            broke = False
            for item in items:
                self.bind_target(node.target, item, env)
                old = rec.mult
                rec.mult = old * weight
                try:
                    self.exec_body(node.body, env)
                except _Continue:
                    pass
                except _Break:
                    rec.mult = old
                    broke = True
                    break
                rec.mult = old
        finally:
            if sampled:
                rec.sampled_depth -= 1
        if node.orelse and not broke:
            self.exec_body(node.orelse, env)

    def _stmt_While(self, node: ast.While, env: Env) -> None:
        count = 0
        while True:
            cond = self.eval(node.test, env)
            if isinstance(cond, Unknown):
                self._note_unknown_cond(node.lineno)
                break
            if not cond:
                break
            count += 1
            if count > 100_000:
                raise ExtractionError(
                    f"while loop at line {node.lineno} exceeded 100000 trips"
                )
            try:
                self.exec_body(node.body, env)
            except _Continue:
                continue
            except _Break:
                return
        if node.orelse:
            self.exec_body(node.orelse, env)

    def _stmt_With(self, node: ast.With, env: Env) -> None:
        managers = []
        try:
            for item in node.items:
                cm = self.eval(item.context_expr, env)
                entered = cm.__enter__()
                managers.append(cm)
                if item.optional_vars is not None:
                    self.bind_target(item.optional_vars, entered, env)
            self.exec_body(node.body, env)
        finally:
            for cm in reversed(managers):
                cm.__exit__(None, None, None)

    # ------------------------------------------------------------------
    # assignment targets
    # ------------------------------------------------------------------
    def bind_target(self, target: ast.expr, value: Any, env: Env) -> None:
        if isinstance(target, ast.Name):
            env.assign(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            values = list(value)
            if len(values) != len(target.elts):
                raise ExtractionError(
                    f"unpack arity mismatch at line {target.lineno}"
                )
            for sub, val in zip(target.elts, values):
                self.bind_target(sub, val, env)
        elif isinstance(target, ast.Subscript):
            owner = self.eval(target.value, env)
            index = self._eval_index(target.slice, env)
            owner[index] = value
        elif isinstance(target, ast.Attribute):
            setattr(self.eval(target.value, env), target.attr, value)
        else:
            raise ExtractionError(
                f"unsupported assignment target {type(target).__name__}"
            )

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _eval_with_hint(self, node: ast.expr, env: Env, hint: str | None) -> Any:
        if hint is None:
            return self.eval(node, env)
        rec = self.rec
        prior = rec.name_hint
        rec.name_hint = hint
        try:
            return self.eval(node, env)
        finally:
            rec.name_hint = prior

    def eval(self, node: ast.expr, env: Env) -> Any:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise ExtractionError(
                f"unsupported expression {type(node).__name__} "
                f"at line {getattr(node, 'lineno', '?')}"
            )
        return method(node, env)

    def _eval_Constant(self, node: ast.Constant, env: Env) -> Any:
        return node.value

    def _eval_Name(self, node: ast.Name, env: Env) -> Any:
        found, value = env.lookup(node.id)
        if found:
            return value
        try:
            return getattr(builtins, node.id)
        except AttributeError:
            raise ExtractionError(f"unresolved name {node.id!r}") from None

    def _eval_Attribute(self, node: ast.Attribute, env: Env) -> Any:
        owner = self.eval(node.value, env)
        if isinstance(owner, OneOf):
            return owner.getattr_common(node.attr)
        if isinstance(owner, Unknown):
            return Unknown(getattr(owner.rep, node.attr), owner.tags)
        return getattr(owner, node.attr)

    def _eval_index(self, node: ast.expr, env: Env) -> Any:
        if isinstance(node, ast.Slice):
            def part(sub: ast.expr | None) -> Any:
                return None if sub is None else rep_of(self.eval(sub, env))

            return slice(part(node.lower), part(node.upper), part(node.step))
        return self.eval(node, env)

    def _eval_Subscript(self, node: ast.Subscript, env: Env) -> Any:
        owner = self.eval(node.value, env)
        index = self._eval_index(node.slice, env)
        if isinstance(owner, FilteredSeq):
            return FilteredSeq(owner.items[index], owner.fraction) \
                if isinstance(index, slice) else owner.items[rep_of(index)]
        if isinstance(index, Unknown):
            if isinstance(owner, (list, tuple)) and owner:
                return OneOf(list(owner), index.tags)
            if isinstance(owner, dict):
                return owner[index]  # tag-hashed Unknown keys
            return Unknown(owner[rep_of(index)], index.tags)
        return owner[index]

    def _eval_BinOp(self, node: ast.BinOp, env: Env) -> Any:
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise ExtractionError(f"unsupported operator {type(node.op).__name__}")
        return op(self.eval(node.left, env), self.eval(node.right, env))

    def _eval_UnaryOp(self, node: ast.UnaryOp, env: Env) -> Any:
        value = self.eval(node.operand, env)
        if isinstance(node.op, ast.Not):
            if isinstance(value, Unknown):
                return Unknown(not value.rep, value.tags)
            return not value
        if isinstance(node.op, ast.USub):
            return -value
        if isinstance(node.op, ast.UAdd):
            return +value
        if isinstance(node.op, ast.Invert):
            return ~rep_of(value)
        raise ExtractionError("unsupported unary operator")

    def _eval_BoolOp(self, node: ast.BoolOp, env: Env) -> Any:
        is_and = isinstance(node.op, ast.And)
        unknown_tags: frozenset[str] | None = None
        rep = is_and
        last: Any = None
        for sub in node.values:
            value = self.eval(sub, env)
            last = value
            if isinstance(value, Unknown):
                unknown_tags = (unknown_tags or frozenset()) | value.tags
                rep = (rep and value.rep) if is_and else (rep or value.rep)
                continue
            if unknown_tags is None:
                if is_and and not value:
                    return value
                if not is_and and value:
                    return value
            rep = (rep and value) if is_and else (rep or value)
        if unknown_tags is not None:
            return Unknown(bool(rep), unknown_tags)
        return last

    def _eval_Compare(self, node: ast.Compare, env: Env) -> Any:
        left = self.eval(node.left, env)
        for op_node, comp in zip(node.ops, node.comparators):
            right = self.eval(comp, env)
            if isinstance(left, Unknown) or isinstance(right, Unknown):
                rep = self._cmp(op_node, rep_of(left), rep_of(right))
                return Unknown(bool(rep), tags_of(left) | tags_of(right))
            if not self._cmp(op_node, left, right):
                return False
            left = right
        return True

    @staticmethod
    def _cmp(op_node: ast.cmpop, left: Any, right: Any) -> Any:
        if isinstance(op_node, ast.In):
            return left in right
        if isinstance(op_node, ast.NotIn):
            return left not in right
        return _CMPOPS[type(op_node)](left, right)

    def _eval_IfExp(self, node: ast.IfExp, env: Env) -> Any:
        cond = self.eval(node.test, env)
        if isinstance(cond, Unknown):
            self._note_unknown_cond(node.lineno)
            return self.eval(node.body if cond.rep else node.orelse, env)
        return self.eval(node.body if cond else node.orelse, env)

    def _eval_Tuple(self, node: ast.Tuple, env: Env) -> tuple:
        return tuple(self._eval_elts(node.elts, env))

    def _eval_List(self, node: ast.List, env: Env) -> list:
        return self._eval_elts(node.elts, env)

    def _eval_Set(self, node: ast.Set, env: Env) -> set:
        return set(self._eval_elts(node.elts, env))

    def _eval_elts(self, elts: list[ast.expr], env: Env) -> list:
        out: list[Any] = []
        for elt in elts:
            if isinstance(elt, ast.Starred):
                out.extend(self.eval(elt.value, env))
            else:
                out.append(self.eval(elt, env))
        return out

    def _eval_Dict(self, node: ast.Dict, env: Env) -> dict:
        out: dict[Any, Any] = {}
        for key, value in zip(node.keys, node.values):
            if key is None:
                out.update(self.eval(value, env))
            else:
                out[self.eval(key, env)] = self.eval(value, env)
        return out

    def _eval_JoinedStr(self, node: ast.JoinedStr, env: Env) -> str:
        parts: list[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append(self._eval_FormattedValue(piece, env))
        return "".join(parts)

    def _eval_FormattedValue(self, node: ast.FormattedValue, env: Env) -> str:
        value = rep_of(self.eval(node.value, env))
        if node.conversion == ord("r"):
            value = repr(value)
        elif node.conversion == ord("s"):
            value = str(value)
        elif node.conversion == ord("a"):
            value = ascii(value)
        spec = self.eval(node.format_spec, env) if node.format_spec else ""
        return format(value, spec)

    def _make_closure(
        self, node: ast.FunctionDef | ast.Lambda, env: Env, name: str
    ) -> Closure:
        defaults = tuple(self.eval(d, env) for d in node.args.defaults)
        kw_defaults = {
            arg.arg: self.eval(default, env)
            for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults)
            if default is not None
        }
        return Closure(
            node, env, name, is_generator_def(node),
            defaults=defaults, kw_defaults=kw_defaults,
        )

    def _eval_Lambda(self, node: ast.Lambda, env: Env) -> Closure:
        return self._make_closure(node, env, "<lambda>")

    def _eval_Yield(self, node: ast.Yield, env: Env) -> None:
        if node.value is not None:
            self.eval(node.value, env)
        return None

    def _eval_YieldFrom(self, node: ast.YieldFrom, env: Env) -> None:
        self.consume(self.eval(node.value, env))
        return None

    def _eval_ListComp(self, node: ast.ListComp, env: Env) -> Any:
        return self._eval_comp(node, env)

    def _eval_GeneratorExp(self, node: ast.GeneratorExp, env: Env) -> Any:
        return self._eval_comp(node, env)

    def _eval_SetComp(self, node: ast.SetComp, env: Env) -> Any:
        result = self._eval_comp(node, env)
        return set(result) if isinstance(result, list) else result

    def _eval_comp(self, node: Any, env: Env) -> Any:
        if len(node.generators) != 1:
            raise ExtractionError("nested comprehensions unsupported")
        gen = node.generators[0]
        items, weight, sampled = self._loop_items(
            self.eval(gen.iter, env), node.lineno
        )
        comp_env = Env(parent=env)
        out: list[Any] = []
        cond_fraction = 1.0
        if sampled:
            self.rec.sampled_depth += 1
        try:
            for item in items:
                self.bind_target(gen.target, item, comp_env)
                include = True
                for test in gen.ifs:
                    cond = self.eval(test, comp_env)
                    if isinstance(cond, Unknown):
                        # A tid-gated membership test partitions the
                        # population across the team: keep the item at
                        # its team-fraction weight.
                        self._note_unknown_cond(test.lineno)
                        frac = (
                            1.0 / self.rec.team_size
                            if "tid" in cond.tags else 0.5
                        )
                        cond_fraction = min(cond_fraction, frac)
                    elif not cond:
                        include = False
                        break
                if include:
                    out.append(self.eval(node.elt, comp_env))
        finally:
            if sampled:
                self.rec.sampled_depth -= 1
        fraction = weight * cond_fraction
        if fraction != 1:
            return FilteredSeq(out, fraction)
        return out

    # ------------------------------------------------------------------
    # loops
    # ------------------------------------------------------------------
    def _loop_items(
        self, iterable: Any, lineno: int
    ) -> tuple[list[Any], float, bool]:
        """Concretize a loop's iteration space: (items, per-iter weight
        multiplier, was-sampled)."""
        fraction = 1.0
        if isinstance(iterable, OneOf):
            iterable = iterable.flatten()
        if isinstance(iterable, FilteredSeq):
            fraction = iterable.fraction
            items = list(iterable.items)
        elif isinstance(iterable, Unknown):
            self.rec.diag(f"iterating Unknown at line {lineno} (representative)")
            items = list(iterable.rep)
        else:
            items = list(iterable)
        n = len(items)
        if n <= UNROLL_LIMIT:
            return items, fraction, False
        indices, scale = _sample_plan(n)
        if lineno not in self._sampled_sites:
            self._sampled_sites.add(lineno)
            self.rec.diag(
                f"sampled loop at line {lineno}: {n} trips -> {SAMPLE_K} "
                f"(weight x{scale:.3g})"
            )
        return [items[i] for i in indices], fraction * scale, True

    def _note_unknown_cond(self, lineno: int) -> None:
        if lineno not in self._unknown_cond_sites:
            self._unknown_cond_sites.add(lineno)
            self.rec.diag(f"unresolved condition at line {lineno}")

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _eval_Call(self, node: ast.Call, env: Env) -> Any:
        rec = self.rec
        hinted = False
        if isinstance(node.func, ast.Attribute):
            owner = self.eval(node.func.value, env)
            attr = node.func.attr
            if attr == "append" and isinstance(node.func.value, ast.Name):
                # ``small_tables.append(ctx.malloc(...))``: the owner's
                # name is the allocation's variable name.
                rec.name_hint = node.func.value.id
                hinted = True
            if isinstance(owner, OneOf):
                func_obj = owner.getattr_common(attr)
            elif isinstance(owner, Unknown):
                func_obj = Unknown(getattr(owner.rep, attr), owner.tags)
            elif owner is rec.process and attr == "run_serial":
                func_obj = self._consume_call
            else:
                func_obj = getattr(owner, attr)
        else:
            func_obj = self.eval(node.func, env)
        args: list[Any] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                args.extend(self.eval(arg.value, env))
            else:
                args.append(self.eval(arg, env))
        kwargs: dict[str, Any] = {}
        for kw in node.keywords:
            if kw.arg is None:
                kwargs.update(self.eval(kw.value, env))
            else:
                kwargs[kw.arg] = self.eval(kw.value, env)
        if hinted:
            rec.name_hint = None
        return self.apply(func_obj, tuple(args), kwargs, node)

    def _consume_call(self, gen: Any) -> None:
        self.consume(gen)

    def apply(
        self, func_obj: Any, args: tuple, kwargs: dict, node: ast.Call
    ) -> Any:
        handler = self.intercepts.get(id(func_obj))
        if handler is not None:
            return handler(self, args, kwargs)
        if isinstance(func_obj, Closure):
            return self.call_closure(func_obj, args, kwargs)
        if isinstance(func_obj, Unknown):
            reps = tuple(rep_of(a) for a in args)
            tags = func_obj.tags
            for a in args:
                tags |= tags_of(a)
            return Unknown(func_obj.rep(*reps, **kwargs), tags)
        if func_obj is enumerate and args:
            seq = args[0]
            if isinstance(seq, OneOf):
                items = [
                    pair for cand in seq.candidates for pair in enumerate(cand)
                ]
                return FilteredSeq(items, 1.0 / len(seq.candidates))
            if isinstance(seq, FilteredSeq):
                return FilteredSeq(list(enumerate(seq.items)), seq.fraction)
        if func_obj is len and args and isinstance(args[0], (OneOf, FilteredSeq)):
            return len(args[0])
        if not callable(func_obj):
            raise ExtractionError(f"not callable at line {node.lineno}")
        try:
            return func_obj(*args, **kwargs)
        except ExtractionError:
            raise
        except Exception as exc:
            name = getattr(func_obj, "__qualname__", repr(func_obj))
            raise ExtractionError(
                f"native call {name} failed at line {node.lineno}: {exc!r}"
            ) from exc
