"""Value domain for the bounded abstract interpreter.

The extractor executes kernel source over *mostly concrete* values: the
allocator, the program image, and all address arithmetic are real (the
same objects ``run()`` would build), so variable attribution can resolve
addresses against real heap ranges exactly like the dynamic profiler.
Abstraction enters in exactly four places:

* :class:`Unknown` — a value the pass cannot pin down (a worker's
  ``tid``, arithmetic over one).  Every ``Unknown`` carries a concrete
  *representative* so downstream arithmetic stays evaluable, plus
  provenance ``tags`` (``"tid"``) so tid-dependent addressing is
  recognizable for pattern classification.  Arithmetic operators
  propagate symbolically (representative math, union of tags), which
  lets *real* helper code (``SimArray.addr``) consume Unknowns
  transparently.  Hashing and ``==`` compare by tags so a per-team
  cache keyed by ``tid`` (AMG's ``worker_ws``) hits across region
  interpretations instead of re-allocating.
* :class:`OneOf` — a value known to be one of a concrete candidate set
  (``chunks[tid]``).  Uniform queries (``len`` when all candidates
  agree) stay concrete; iteration flattens to the whole population.
* :class:`FilteredSeq` — a sequence whose membership depends on an
  unknown (a thread's ``omp_chunk`` slice, a comprehension filtered on
  ``tid``).  The interpreter iterates the *whole underlying population*
  and scales each iteration's weight by ``fraction`` — summing over the
  team instead of guessing one thread's share.
* :class:`Closure` / :class:`LazyBody` / :class:`CallToken` — the
  control-flow values: interpreted functions, un-consumed generator
  bodies, and ``Ctx.call`` tokens whose call edge is recorded when the
  token is finally driven (``yield from`` / ``run_serial``).
"""

from __future__ import annotations

import ast
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "Unknown",
    "OneOf",
    "FilteredSeq",
    "Closure",
    "LazyBody",
    "CallToken",
    "Env",
    "rep_of",
    "tags_of",
    "is_generator_def",
]


def rep_of(value: Any) -> Any:
    """The concrete representative of a (possibly symbolic) value."""
    if isinstance(value, Unknown):
        return value.rep
    if isinstance(value, OneOf):
        return value.candidates[0]
    return value


def tags_of(value: Any) -> frozenset[str]:
    if isinstance(value, (Unknown, OneOf)):
        return value.tags
    return frozenset()


def _arith(op: Callable[[Any, Any], Any], swap: bool = False):
    def method(self: "Unknown", other: Any) -> "Unknown":
        a, b = rep_of(other), self.rep
        if not swap:
            a, b = b, a
        try:
            rep = op(a, b)
        except Exception:
            return NotImplemented
        return Unknown(rep, self.tags | tags_of(other))

    return method


def _compare(op: Callable[[Any, Any], Any]):
    def method(self: "Unknown", other: Any) -> bool:
        # Real helper code (bounds checks in SimArray.addr) needs a plain
        # bool; representative semantics keep it on the concrete path.
        return bool(op(self.rep, rep_of(other)))

    return method


class Unknown:
    """A symbolic value with a concrete representative and provenance tags."""

    __slots__ = ("rep", "tags")

    def __init__(self, rep: Any = 0, tags: frozenset[str] = frozenset()) -> None:
        self.rep = rep
        self.tags = frozenset(tags)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = ",".join(sorted(self.tags))
        return f"Unknown(rep={self.rep!r}{', ' + tag if tag else ''})"

    # Tag-keyed identity: two Unknowns with the same provenance are "the
    # same unknown" (every worker's tid is one symbol), which makes real
    # dicts keyed by tid behave as a per-team cache.
    def __hash__(self) -> int:
        return hash(("Unknown", self.tags))

    def __eq__(self, other: Any) -> Any:
        if isinstance(other, Unknown):
            return self.tags == other.tags
        return NotImplemented

    def __bool__(self) -> bool:
        return bool(self.rep)

    __add__ = _arith(operator.add)
    __radd__ = _arith(operator.add, swap=True)
    __sub__ = _arith(operator.sub)
    __rsub__ = _arith(operator.sub, swap=True)
    __mul__ = _arith(operator.mul)
    __rmul__ = _arith(operator.mul, swap=True)
    __floordiv__ = _arith(operator.floordiv)
    __rfloordiv__ = _arith(operator.floordiv, swap=True)
    __truediv__ = _arith(operator.truediv)
    __rtruediv__ = _arith(operator.truediv, swap=True)
    __mod__ = _arith(operator.mod)
    __rmod__ = _arith(operator.mod, swap=True)
    __and__ = _arith(operator.and_)
    __rand__ = _arith(operator.and_, swap=True)
    __or__ = _arith(operator.or_)
    __ror__ = _arith(operator.or_, swap=True)
    __lshift__ = _arith(operator.lshift)
    __rshift__ = _arith(operator.rshift)

    __lt__ = _compare(operator.lt)
    __le__ = _compare(operator.le)
    __gt__ = _compare(operator.gt)
    __ge__ = _compare(operator.ge)

    def __neg__(self) -> "Unknown":
        return Unknown(-self.rep, self.tags)

    def __index__(self) -> int:
        return int(self.rep)


class OneOf:
    """A value known to be exactly one of a concrete candidate list."""

    __slots__ = ("candidates", "tags")

    def __init__(self, candidates: list, tags: frozenset[str] = frozenset()) -> None:
        if not candidates:
            raise ValueError("OneOf needs at least one candidate")
        self.candidates = list(candidates)
        self.tags = frozenset(tags)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OneOf({len(self.candidates)} candidates)"

    def __len__(self) -> Any:
        lens = {len(c) for c in self.candidates}
        if len(lens) == 1:
            return lens.pop()
        return Unknown(len(self.candidates[0]), self.tags)

    def __bool__(self) -> bool:
        return bool(self.candidates[0])

    def getattr_common(self, name: str) -> Any:
        values = [getattr(c, name) for c in self.candidates]
        head = values[0]
        if all(v == head for v in values[1:]):
            return head
        return Unknown(head, self.tags)

    def flatten(self) -> "FilteredSeq":
        """The union population, each member weighted ``1/candidates``."""
        items: list = []
        for cand in self.candidates:
            items.extend(cand)
        return FilteredSeq(items, 1.0 / len(self.candidates))


@dataclass
class FilteredSeq:
    """A sequence known only as ``population x fraction``.

    ``items`` is the full candidate population; each item is understood
    to be present with probability ``fraction`` (e.g. the ``1/team``
    share of a thread's chunk).  Iterating one of these multiplies the
    interpreter's weight by ``fraction`` per item, which makes a
    team-wide loop sum to the whole population exactly.
    """

    items: list[Any]
    fraction: float

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class Closure:
    """An interpreted function value: AST node + defining environment."""

    node: ast.FunctionDef | ast.Lambda
    env: "Env"
    name: str = "<lambda>"
    is_generator: bool = False
    defaults: tuple[Any, ...] = ()
    kw_defaults: dict[str, Any] = field(default_factory=dict)


@dataclass
class LazyBody:
    """A called generator closure whose body has not been driven yet."""

    closure: Closure
    args: tuple[Any, ...]
    kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass
class CallToken:
    """A pending ``Ctx.call`` — edge + frame recorded at consumption."""

    fn: Any  # repro.sim.program.Function
    line: int
    gen: Any  # LazyBody | CallToken | None


class Env:
    """A lexical environment: one dict per function frame, chained.

    Name assignment writes the innermost frame (Python's default
    scoping for the closure-heavy kernels here: inner functions only
    *mutate* outer objects — ``arrays[name] = ...`` — and never rebind
    outer names, so cell/nonlocal emulation is unnecessary).
    """

    __slots__ = ("values", "parent")

    def __init__(self, values: dict[str, Any] | None = None,
                 parent: "Env | None" = None) -> None:
        self.values: dict[str, Any] = values if values is not None else {}
        self.parent = parent

    def lookup(self, name: str) -> tuple[bool, Any]:
        env: Env | None = self
        while env is not None:
            if name in env.values:
                return True, env.values[name]
            env = env.parent
        return False, None

    def assign(self, name: str, value: Any) -> None:
        self.values[name] = value


def is_generator_def(node: ast.FunctionDef | ast.Lambda) -> bool:
    """Does this def contain a yield of its own (not in a nested def)?"""
    if isinstance(node, ast.Lambda):
        return False
    body: Iterable[ast.stmt] = node.body

    class _Finder(ast.NodeVisitor):
        found = False

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            pass  # do not descend into nested defs

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

        def visit_Yield(self, node: ast.Yield) -> None:
            self.found = True

        def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
            self.found = True

    finder = _Finder()
    for stmt in body:
        finder.visit(stmt)
    return finder.found
