"""Structural drift diff between a registered and an extracted model.

The diff compares exactly the facts a kernel edit can invalidate —
entries, call edges, regions (host/line/team), per-variable storage and
placement policy, allocation sites (fn/line/kind/in-loop, and byte-exact
sizes where extraction observed them exactly), touch sites with their
executor, access-site coordinates, free sites, and the process-wide
interleave flag.  It deliberately ignores what extraction cannot pin
byte-for-byte or what the hand models never declared: access weights,
classified patterns, and the compute estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.staticcheck.model import StaticModel

__all__ = ["ModelDiff", "diff_models"]


@dataclass
class ModelDiff:
    """All structural divergences between two models of one app/variant."""

    app: str
    variant: str
    differences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.differences

    def render(self) -> str:
        head = f"{self.app}/{self.variant}: "
        if self.ok:
            return head + "models agree"
        lines = [head + f"{len(self.differences)} divergence(s)"]
        lines.extend(f"  - {d}" for d in self.differences)
        return "\n".join(lines)


def _diff_sets(
    label: str, registered: set, extracted: set, out: list[str]
) -> None:
    missing = registered - extracted
    extra = extracted - registered
    if missing:
        out.append(f"{label} missing from extraction: {sorted(missing)}")
    if extra:
        out.append(f"{label} extra in extraction: {sorted(extra)}")


def _fmt_sites(sites: Iterable[tuple]) -> list[tuple]:
    return sorted(sites)


def diff_models(
    registered: StaticModel,
    extracted: StaticModel,
    inexact_sizes: frozenset[tuple[str, str, int]] = frozenset(),
) -> ModelDiff:
    """Structurally compare the two models of one app/variant."""
    out: list[str] = []
    _diff_sets("entries", set(registered.entries), set(extracted.entries), out)
    _diff_sets(
        "call edges",
        {(c.caller, c.line, c.callee, c.kind) for c in registered.calls},
        {(c.caller, c.line, c.callee, c.kind) for c in extracted.calls},
        out,
    )
    _diff_sets(
        "regions",
        {(r.outlined, r.host, r.line, r.n_threads)
         for r in registered.regions.values()},
        {(r.outlined, r.host, r.line, r.n_threads)
         for r in extracted.regions.values()},
        out,
    )
    if registered.process_interleaved != extracted.process_interleaved:
        out.append(
            "process_interleaved: registered="
            f"{registered.process_interleaved} "
            f"extracted={extracted.process_interleaved}"
        )
    reg_vars = set(registered.variables)
    ext_vars = set(extracted.variables)
    _diff_sets("variables", reg_vars, ext_vars, out)
    for name in sorted(reg_vars & ext_vars):
        reg = registered.variables[name]
        ext = extracted.variables[name]
        if reg.storage != ext.storage:
            out.append(
                f"{name}: storage registered={reg.storage} "
                f"extracted={ext.storage}"
            )
        if reg.policy != ext.policy:
            out.append(
                f"{name}: policy registered={reg.policy} extracted={ext.policy}"
            )
        _diff_sets(
            f"{name}: alloc sites",
            {(s.fn, s.line, s.kind, s.in_loop) for s in reg.alloc_sites},
            {(s.fn, s.line, s.kind, s.in_loop) for s in ext.alloc_sites},
            out,
        )
        reg_sizes = {(s.fn, s.line): s.nbytes for s in reg.alloc_sites}
        ext_sizes = {(s.fn, s.line): s.nbytes for s in ext.alloc_sites}
        for key in sorted(reg_sizes.keys() & ext_sizes.keys()):
            if (name, key[0], key[1]) in inexact_sizes:
                continue
            if reg_sizes[key] != ext_sizes[key]:
                out.append(
                    f"{name}: nbytes at {key[0]}:{key[1]} "
                    f"registered={reg_sizes[key]} extracted={ext_sizes[key]}"
                )
        _diff_sets(
            f"{name}: touch sites",
            {(s.fn, s.line, s.by) for s in reg.touch_sites},
            {(s.fn, s.line, s.by) for s in ext.touch_sites},
            out,
        )
        _diff_sets(
            f"{name}: access sites",
            {(s.fn, s.line, s.is_store) for s in reg.access_sites},
            {(s.fn, s.line, s.is_store) for s in ext.access_sites},
            out,
        )
        _diff_sets(
            f"{name}: free sites",
            {(s.fn, s.line) for s in reg.free_sites},
            {(s.fn, s.line) for s in ext.free_sites},
            out,
        )
    return ModelDiff(registered.name, registered.variant, out)
