"""Drive one extraction pass and emit a real :class:`StaticModel`.

``extract_model(app)`` imports the app module (or takes a module object
directly, which is what the drift-sensitivity tests use), builds the
variant's config with profiling off, interprets the kernel entry
(``_rank_main`` for the MPI-style apps, ``run`` otherwise) under the
recording proxy, and converts the recorded facts into a
:class:`StaticModel` whose sites carry classified access patterns.
"""

from __future__ import annotations

import importlib
import types
from dataclasses import dataclass, field, replace
from math import gcd
from typing import Any

from repro.errors import ConfigError
from repro.sim.arrays import SimArray
from repro.sim.process import SimProcess
from repro.staticcheck.extract.interp import ExtractionError, Interp
from repro.staticcheck.extract.recorder import AccessAgg, ExtractionCtx, Recorder
from repro.staticcheck.extract.values import FilteredSeq, rep_of, tags_of
from repro.staticcheck.model import (
    AccessPattern,
    OmpBlockPattern,
    OpaquePattern,
    PerThreadSlotPattern,
    StaticModel,
)
from repro.staticcheck.registry import _APP_MODULES

__all__ = ["ExtractionResult", "extract_model", "classify_pattern"]


@dataclass
class ExtractionResult:
    """An extracted model plus everything the drift diff must know."""

    app: str
    variant: str
    model: StaticModel
    # Alloc sites whose total nbytes is not exact (loop-sampled or
    # varying per-call sizes); the drift diff skips size comparison there.
    inexact_sizes: frozenset[tuple[str, str, int]]
    patterns: dict[tuple[str, str, int, bool], AccessPattern] = field(
        default_factory=dict
    )
    diagnostics: list[str] = field(default_factory=list)
    unattributed_weight: float = 0.0


def classify_pattern(agg: AccessAgg) -> AccessPattern:
    """Classify one site's footprint; opaque is explicit, never a drop.

    - Pure batched runs with one stride -> :class:`OmpBlockPattern` over
      the site's whole observed span.
    - Pure scalar, tid-tagged, single-slot -> :class:`PerThreadSlotPattern`.
    - Anything else -> :class:`OpaquePattern` over the observed extent,
      whose identical per-thread runs keep H002 conservatively silent.
    """
    lo = agg.lo if agg.lo is not None else 0
    hi = agg.hi if agg.hi is not None else lo + 1
    if agg.n_run_events and not agg.n_scalar_events:
        strides = {abs(s) for _, s in agg.runs if s}
        if len(strides) == 1:
            stride = strides.pop()
            span = max(stride, hi - lo)
            return OmpBlockPattern(
                n_iters=max(1, span // stride), elem_bytes=stride
            )
    if (
        agg.n_scalar_events
        and not agg.n_run_events
        and agg.tid_tagged
        and len(agg.offsets) == 1
    ):
        elem = gcd(next(iter(agg.offsets)), 64) or 8
        return PerThreadSlotPattern(elem_bytes=elem)
    return OpaquePattern(lo=lo, hi=hi)


# ----------------------------------------------------------------------
# interception table
# ----------------------------------------------------------------------
def _h_ctx(interp: Interp, args: tuple, kwargs: dict) -> ExtractionCtx:
    process = args[0] if args else kwargs["process"]
    thread = args[1] if len(args) > 1 else kwargs.get("thread", process.master)
    interp.rec.bind(process)
    proxy = ExtractionCtx(interp.rec, process, thread)
    proxy._interp = interp
    return proxy


def _h_omp_chunk(interp: Interp, args: tuple, kwargs: dict) -> Any:
    from repro.sim.openmp import omp_chunk

    vals = list(args)
    for name in ("n_iters", "n_threads", "tid")[len(vals):]:
        vals.append(kwargs[name])
    n_iters, n_threads, tid = vals[:3]
    if tags_of(tid) or tags_of(n_iters) or tags_of(n_threads):
        n = int(rep_of(n_iters))
        team = max(1, int(rep_of(n_threads)))
        return FilteredSeq(list(range(n)), 1.0 / team)
    return omp_chunk(n_iters, n_threads, tid)


def _bind_numa_args(args: tuple, kwargs: dict) -> dict[str, Any]:
    names = ("ctx", "name", "shape", "line", "elem", "order", "kind", "nodes")
    bound: dict[str, Any] = {
        "elem": 8, "order": "C", "kind": "malloc", "nodes": None,
    }
    for name, value in zip(names, args):
        bound[name] = value
    bound.update(kwargs)
    return bound


def _h_numa_alloc_interleaved(interp: Interp, args: tuple, kwargs: dict) -> Any:
    b = _bind_numa_args(args, kwargs)
    proxy: ExtractionCtx = b["ctx"]
    shape = tuple(int(rep_of(s)) for s in b["shape"])
    nbytes = b["elem"]
    for s in shape:
        nbytes *= s
    addr = proxy._alloc(
        nbytes, int(rep_of(b["line"])), "numa_interleaved", b["name"]
    )
    return SimArray(b["name"], addr, shape, elem=b["elem"], order=b["order"])


def _h_numa_alloc_onnode(interp: Interp, args: tuple, kwargs: dict) -> Any:
    interp.rec.diag("numa_alloc_onnode treated as plain malloc placement")
    b = _bind_numa_args(args, kwargs)
    proxy: ExtractionCtx = b["ctx"]
    shape = tuple(int(rep_of(s)) for s in b["shape"])
    nbytes = b["elem"]
    for s in shape:
        nbytes *= s
    addr = proxy._alloc(nbytes, int(rep_of(b["line"])), "malloc", b["name"])
    return SimArray(b["name"], addr, shape, elem=b["elem"], order=b["order"])


def _h_numactl_interleave_all(interp: Interp, args: tuple, kwargs: dict) -> None:
    interp.rec.process_interleaved = True


def build_intercepts() -> dict[int, Any]:
    from repro.numa.libnuma import numa_alloc_interleaved, numa_alloc_onnode
    from repro.numa.numactl import numactl_interleave_all
    from repro.sim.openmp import omp_chunk
    from repro.sim.runtime import Ctx

    return {
        id(Ctx): _h_ctx,
        id(omp_chunk): _h_omp_chunk,
        id(numa_alloc_interleaved): _h_numa_alloc_interleaved,
        id(numa_alloc_onnode): _h_numa_alloc_onnode,
        id(numactl_interleave_all): _h_numactl_interleave_all,
    }


# ----------------------------------------------------------------------
# driving
# ----------------------------------------------------------------------
def _resolve_module(app: str | types.ModuleType) -> tuple[str, types.ModuleType]:
    if isinstance(app, types.ModuleType):
        name = getattr(app, "APP_NAME", app.__name__.rsplit(".", 1)[-1])
        return name, app
    path = _APP_MODULES.get(app)
    if path is None:
        raise ConfigError(f"unknown app {app!r} (no registered module)")
    return app, importlib.import_module(path)


def extract_model(
    app: str | types.ModuleType,
    variant: str = "original",
    preset: str = "smoke",
) -> ExtractionResult:
    """Interpret one app variant's kernel and return the extracted model."""
    name, module = _resolve_module(app)
    cfg = replace(module.rank_config(preset, variant), profile=False)
    rec = Recorder()
    interp = Interp(rec, build_intercepts())
    try:
        if hasattr(module, "_rank_main"):
            machine = cfg.machine_factory()
            process = SimProcess(machine, name=name)
            rec.bind(process)
            interp.call_value(
                module._rank_main, (cfg, process, 0, getattr(cfg, "n_ranks", 1))
            )
        else:
            interp.call_value(module.run, (cfg,))
    except ExtractionError as exc:
        raise ExtractionError(f"{name}/{variant}: {exc}") from exc
    if rec.process is None:
        raise ExtractionError(f"{name}/{variant}: kernel never built a Ctx")
    return _emit(rec, name, variant, cfg)


def _emit(rec: Recorder, app: str, variant: str, cfg: Any) -> ExtractionResult:
    process = rec.process
    model = StaticModel(
        app,
        variant,
        process,
        process.machine,
        getattr(cfg, "n_threads", 1),
        process_interleaved=rec.process_interleaved,
    )
    for fn_name in rec.entries:
        model.entry(fn_name)
    for outlined, (host, line, n_threads) in rec.regions.items():
        model.parallel_region(host, line, outlined, n_threads)
    for caller, line, callee, kind in rec.calls:
        if kind == "call":
            model.call(caller, line, callee)
    inexact: set[tuple[str, str, int]] = set()
    for agg in rec.allocs.values():
        model.alloc(
            agg.fn, agg.line, agg.var, agg.nbytes,
            kind=agg.kind, in_loop=agg.in_loop,
        )
        if agg.inexact:
            inexact.add((agg.var, agg.fn, agg.line))
    for var, fn, line, by in rec.touches:
        model.touch(fn, line, var, by=by)
    patterns: dict[tuple[str, str, int, bool], AccessPattern] = {}
    for agg in rec.accesses.values():
        pattern = classify_pattern(agg)
        patterns[(agg.var, agg.fn, agg.line, agg.is_store)] = pattern
        model.access(
            agg.fn, agg.line, agg.var, agg.weight,
            is_store=agg.is_store, pattern=pattern,
        )
    for var, fn, line in rec.frees:
        model.free(fn, line, var)
    model.compute_estimate(rec.compute_units)
    return ExtractionResult(
        app=app,
        variant=variant,
        model=model,
        inexact_sizes=frozenset(inexact),
        patterns=patterns,
        diagnostics=list(rec.diagnostics),
        unattributed_weight=rec.unattributed_weight,
    )
