"""Hazard analysis: predict data-centric pathologies without running.

The hazard catalogue (see DESIGN.md "Static analysis"):

H001 — master-thread first-touch before a wide parallel region.  A
  heap/static variable placed by first touch, whose placement-committing
  store runs on the master thread, and which a parallel region spanning
  more than one NUMA node then accesses with a non-trivial share of the
  model's access weight.  This is the paper's §5 NUMA pathology shape
  (nw, streamcluster, LULESH, AMG2006) predicted from structure alone.

H002 — false-sharing-prone layout.  A store site whose per-thread
  footprints (from the ``omp_chunk``/slot stride math) are byte-disjoint
  yet land in one cache line, with each thread's whole footprint inside
  a line — the counter-array ping-pong shape.  Chunk-*boundary* line
  sharing of large block ranges is deliberately not flagged: each thread
  there owns many lines and only the seam is shared, which the dynamic
  sanitizer likewise reports only under heavy alternation.  The line
  geometry reuses :mod:`repro.util.linemath`, the same predicate the
  dynamic detector runs, so the passes cannot drift.

H003 — allocation inside a parallel body or loop with no matching free
  (unbounded growth under iteration).

H004 — dead allocation: the allocation site is unreachable from every
  entry point, or the variable is never accessed, touched, or freed.

Each finding names the variable, the triggering site, and the full
calling contexts of its allocation — the paper's variable + alloc-site
+ context shape — so the reconciliation pass can line findings up
against dynamic per-variable metrics one-to-one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.boundness import MIN_SHARE, REGISTRY
from repro.staticcheck.callgraph import CallGraph, build_callgraph
from repro.staticcheck.model import (
    AccessSite,
    AllocSite,
    RegionDecl,
    StaticModel,
    VarDecl,
)
from repro.util.linemath import runs_share_line

__all__ = ["Finding", "VarSummary", "StaticReport", "analyze_model", "MIN_SHARE"]

# MIN_SHARE is defined ONCE, in repro.metrics.boundness (and mirrored as
# the registry constant "min_share" so per-preset overrides apply); it is
# re-exported here for compatibility, and repro.core.guidance imports the
# same object — the two passes cannot drift.

_MAX_CONTEXTS_PER_FINDING = 4


@dataclass(frozen=True)
class Finding:
    """One predicted hazard, in the data-centric coordinate system."""

    code: str  # H001..H004
    variable: str
    storage: str  # heap | static
    fn: str
    line: int
    share: float  # of the model's total access weight
    message: str
    contexts: tuple[str, ...]  # formatted alloc contexts (capped)
    # Fraction of predicted total cycles a virtual fix would save
    # (repro.staticcheck.predict.report_with_impacts); 0 when the hazard
    # class has no counter-level fix model or nothing was saved.
    predicted_impact: float = 0.0

    @property
    def site(self) -> str:
        return f"{self.fn}:{self.line}"


@dataclass(frozen=True)
class VarSummary:
    """Per-variable reaching summary (pinned by the golden tests)."""

    name: str
    storage: str
    nbytes: int
    share: float
    n_alloc_contexts: int
    n_access_contexts: int


@dataclass
class StaticReport:
    """The full result of one static analysis pass."""

    app: str
    variant: str
    n_functions: int
    n_edges: int
    n_reachable: int
    truncated: bool
    variables: list[VarSummary] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    def findings_with_code(self, code: str) -> list[Finding]:
        return [f for f in self.findings if f.code == code]

    def finding_for(self, variable: str, code: str | None = None) -> Finding | None:
        for f in self.findings:
            if f.variable == variable and (code is None or f.code == code):
                return f
        return None

    @property
    def codes(self) -> list[str]:
        return sorted({f.code for f in self.findings})


def _alloc_contexts(
    graph: CallGraph, sites: list[AllocSite]
) -> tuple[int, tuple[str, ...]]:
    """Count and format the calling contexts reaching the alloc sites."""
    count = 0
    formatted: list[str] = []
    for site in sites:
        ctxs = graph.contexts_of(site.fn)
        count += len(ctxs)
        for ctx in ctxs:
            if len(formatted) < _MAX_CONTEXTS_PER_FINDING:
                formatted.append(
                    graph.format_context(ctx, f"{site.fn}:{site.line}")
                )
    return count, tuple(formatted)


def _regions_reaching(model: StaticModel, graph: CallGraph, fn: str) -> list[RegionDecl]:
    """Regions through whose outlined bodies some context reaches ``fn``.

    This is the interprocedural half of the reaching analysis: an access
    in a helper (streamcluster's ``dist``) is a parallel access when
    every call path to it passes through an outlined region, even though
    the helper itself is an ordinary function.
    """
    found: dict[str, RegionDecl] = {}
    direct = model.region_of(fn)
    if direct is not None:
        found[direct.outlined] = direct
    for ctx in graph.contexts_of(fn):
        for frame in ctx:
            region = model.region_of(frame.fn)
            if region is not None:
                found[region.outlined] = region
    return list(found.values())


def _runs_serial(model: StaticModel, graph: CallGraph, fn: str) -> bool:
    """Is there a region-free path from an entry to ``fn`` (so the master
    thread executes it at least once)?"""
    if model.region_of(fn) is not None or model.is_worker_fn(fn):
        return False
    ctxs = graph.contexts_of(fn)
    if not ctxs:
        # Unreachable code: fall back to the symbol-level classification.
        return True
    for ctx in ctxs:
        if all(model.region_of(frame.fn) is None for frame in ctx):
            return True
    return False


def _site_executor(
    model: StaticModel, graph: CallGraph, fn: str, by: str | None = None
) -> str:
    """Who runs a site: the region side ("workers") or the serial side."""
    if by is not None:
        return by
    return "master" if _runs_serial(model, graph, fn) else "workers"


def _first_touch_executor(
    model: StaticModel, graph: CallGraph, var: VarDecl
) -> str | None:
    """Which side commits first-touch placement, in declaration order.

    calloc zero-fills at the allocation site, so the allocating side
    commits placement immediately; otherwise the earliest declared
    touch or access site wins (declaration order is program order).
    """
    events: list[tuple[str, str]] = []  # (executor, kind)
    for alloc in var.alloc_sites:
        if alloc.kind == "calloc":
            events.append((_site_executor(model, graph, alloc.fn), "alloc"))
    for touch in var.touch_sites:
        events.append((_site_executor(model, graph, touch.fn, touch.by), "touch"))
    if not events:
        for acc in var.access_sites:
            events.append((_site_executor(model, graph, acc.fn), "access"))
            break
    return events[0][0] if events else None


def _first_master_site(
    model: StaticModel, graph: CallGraph, var: VarDecl
) -> tuple[str, int] | None:
    """The site whose master-side store commits placement (for H001)."""
    for alloc in var.alloc_sites:
        if alloc.kind == "calloc" and _site_executor(model, graph, alloc.fn) == "master":
            return alloc.fn, alloc.line
    for touch in var.touch_sites:
        if _site_executor(model, graph, touch.fn, touch.by) == "master":
            return touch.fn, touch.line
    return None


def _wide_parallel_accesses(
    model: StaticModel, graph: CallGraph, var: VarDecl
) -> list[AccessSite]:
    """Access sites reached through regions whose teams span >1 node."""
    out: list[AccessSite] = []
    for site in var.access_sites:
        for region in _regions_reaching(model, graph, site.fn):
            if model.region_spans_nodes(region.n_threads):
                out.append(site)
                break
    return out


def _check_h001(
    model: StaticModel,
    graph: CallGraph,
    var: VarDecl,
    share: float,
    min_share: float = MIN_SHARE,
) -> Finding | None:
    if model.process_interleaved or var.policy != "first_touch":
        return None
    if not var.alloc_sites:
        return None
    if share < min_share:
        return None
    if _first_touch_executor(model, graph, var) != "master":
        return None
    wide = _wide_parallel_accesses(model, graph, var)
    if not wide:
        return None
    master_site = _first_master_site(model, graph, var)
    if master_site is None:
        return None
    fn, line = master_site
    region_lines: set[int] = set()
    for s in wide:
        for region in _regions_reaching(model, graph, s.fn):
            if model.region_spans_nodes(region.n_threads):
                region_lines.add(region.line)
    regions = sorted(region_lines)
    _, contexts = _alloc_contexts(graph, var.alloc_sites)
    n_nodes = model.n_numa_nodes
    return Finding(
        code="H001",
        variable=var.name,
        storage=var.storage,
        fn=fn,
        line=line,
        share=share,
        message=(
            f"master-thread first touch at {fn}:{line} pins all pages of "
            f"{var.name} ({var.nbytes}B) to one of {n_nodes} NUMA nodes; "
            f"parallel region(s) at line(s) {regions} span multiple nodes "
            f"and will fetch it remotely"
        ),
        contexts=contexts,
    )


def _check_h002(
    model: StaticModel, graph: CallGraph, var: VarDecl, share: float
) -> Finding | None:
    line_size = 1 << model.line_bits
    for site in var.access_sites:
        if not site.is_store or site.pattern is None:
            continue
        regions = _regions_reaching(model, graph, site.fn)
        if not regions:
            continue
        n_threads = max(region.n_threads for region in regions)
        if n_threads < 2:
            continue
        for tid in range(min(n_threads - 1, 8)):
            a = site.pattern.thread_run(tid, n_threads)
            b = site.pattern.thread_run(tid + 1, n_threads)
            # The whole-footprint-in-line rule: flag only when each
            # thread's entire footprint fits in one line (slot ping-pong);
            # mere chunk-boundary seams of large block ranges are not a
            # layout defect and stay unflagged.
            if (a.hi - a.lo) > line_size or (b.hi - b.lo) > line_size:
                continue
            shared = runs_share_line(a, b, model.line_bits)
            if shared is None:
                continue
            _, contexts = _alloc_contexts(graph, var.alloc_sites)
            return Finding(
                code="H002",
                variable=var.name,
                storage=var.storage,
                fn=site.fn,
                line=site.line,
                share=share,
                message=(
                    f"threads {tid} and {tid + 1} store disjoint bytes of "
                    f"{var.name} in one {line_size}B cache line "
                    f"(store at {site.fn}:{site.line}); the line will "
                    f"ping-pong between their caches"
                ),
                contexts=contexts,
            )
    return None


def _check_h003(
    model: StaticModel, graph: CallGraph, var: VarDecl, share: float
) -> Finding | None:
    if var.storage != "heap" or var.free_sites:
        return None
    for alloc in var.alloc_sites:
        if alloc.in_loop or model.is_worker_fn(alloc.fn):
            where = (
                "inside a parallel region body"
                if model.is_worker_fn(alloc.fn)
                else "inside a loop"
            )
            _, contexts = _alloc_contexts(graph, var.alloc_sites)
            return Finding(
                code="H003",
                variable=var.name,
                storage=var.storage,
                fn=alloc.fn,
                line=alloc.line,
                share=share,
                message=(
                    f"{var.name} is allocated {where} at {alloc.fn}:{alloc.line} "
                    f"with no matching free — repeated entry grows the heap "
                    f"without bound"
                ),
                contexts=contexts,
            )
    return None


def _check_h004(
    model: StaticModel, graph: CallGraph, var: VarDecl, share: float
) -> Finding | None:
    for alloc in var.alloc_sites:
        if not graph.reachable(alloc.fn):
            return Finding(
                code="H004",
                variable=var.name,
                storage=var.storage,
                fn=alloc.fn,
                line=alloc.line,
                share=share,
                message=(
                    f"allocation site {alloc.fn}:{alloc.line} for {var.name} "
                    f"is unreachable from every entry point"
                ),
                contexts=(),
            )
    if not var.access_sites and not var.touch_sites and not var.free_sites:
        alloc = var.alloc_sites[0]
        _, contexts = _alloc_contexts(graph, var.alloc_sites)
        return Finding(
            code="H004",
            variable=var.name,
            storage=var.storage,
            fn=alloc.fn,
            line=alloc.line,
            share=share,
            message=(
                f"{var.name} is allocated at {alloc.fn}:{alloc.line} but never "
                f"accessed, touched, or freed"
            ),
            contexts=contexts,
        )
    return None


def analyze_model(
    model: StaticModel, min_share: float | None = None
) -> StaticReport:
    """Run the whole hazard catalogue over one static model.

    ``min_share=None`` resolves the threshold through the formula
    registry with this model's ``(preset, "static")`` override keys, so
    a per-architecture ``min_share`` override changes static triage the
    same way it changes the dynamic passes.
    """
    if min_share is None:
        min_share = REGISTRY.constant_value(
            "min_share", (model.machine.spec.name, "static")
        )
    graph = build_callgraph(model)
    total_weight = model.total_weight
    report = StaticReport(
        app=model.name,
        variant=model.variant,
        n_functions=graph.n_functions,
        n_edges=graph.n_edges,
        n_reachable=graph.n_reachable,
        truncated=graph.truncated,
    )

    for var in model.iter_variables():
        share = var.total_weight / total_weight if total_weight else 0.0
        n_alloc, _ = _alloc_contexts(graph, var.alloc_sites)
        n_access = sum(
            len(graph.contexts_of(s.fn)) for s in var.access_sites
        ) + sum(len(graph.contexts_of(s.fn)) for s in var.touch_sites)
        report.variables.append(
            VarSummary(
                name=var.name,
                storage=var.storage,
                nbytes=var.nbytes,
                share=share,
                n_alloc_contexts=n_alloc,
                n_access_contexts=n_access,
            )
        )
        for check in (_check_h002, _check_h003, _check_h004):
            finding = check(model, graph, var, share)
            if finding is not None:
                report.findings.append(finding)
        h001 = _check_h001(model, graph, var, share, min_share)
        if h001 is not None:
            report.findings.append(h001)

    report.variables.sort(key=lambda v: (-v.share, v.name))
    report.findings.sort(key=lambda f: (f.code, -f.share, f.variable))
    return report
