"""Static counter prediction: machine counters from a model, no execution.

The analyzer in :mod:`repro.staticcheck.analyze` predicts *hazards*; this
module predicts *numbers* — the same counter vocabulary the dynamic
profiler feeds the boundness formula DAG (:mod:`repro.metrics.boundness`),
estimated closed-form from a :class:`StaticModel` plus the machine
geometry.  Stride math from the access patterns (``OmpBlockPattern`` /
``PerThreadSlotPattern``) drives per-thread footprints; the preset's
cache capacities decide the residence level; the placement policy plus
the linear thread layout decide the local/remote DRAM split and the
per-hop distribution.  The result is a :class:`StaticSource` per
variable (and one for the whole model) with override keys
``(preset, "static")``, so per-architecture latency constants and triage
thresholds resolve identically to the dynamic adapters — one metric DAG,
two evaluation modes.

Predictor assumptions (see DESIGN.md "Static prediction on the formula
engine"):

* one contiguous per-thread footprint per access site (the pattern's
  ``thread_run``, or an even ``nbytes / team`` split when no pattern is
  declared);
* whole-line cold misses once, then steady-state hits at the smallest
  cache level whose capacity holds the per-thread footprint, with
  repeated sweeps (``weight / elements``) re-fetching from DRAM only
  when the footprint exceeds the last-level cache;
* first-touch placement commits on the declared executor — master
  stores pin every page to the master's node, worker stores pin each
  thread's chunk locally; interleaved policies spread pages uniformly;
* cross-site reuse — access sites of the same variable whose footprints
  overlap sweep the same lines, so only the first site (declaration
  order) pays the cold DRAM fetch; later sites in the group find the
  lines at the smallest cache level whose capacity covers the group's
  per-thread reuse distance.  Without this term co-sweeping sites (nw's
  ``input_itemsets`` load + store, streamcluster's two ``point.p``
  regions) double-count cold misses;
* line-sharing store sites (the H002 shape) serve their steady-state
  stores at L3 cost — the coherence ping-pong — tracked separately so
  the virtual "pad the line" fix can move them back.

The virtual-fix evaluation (:func:`report_with_impacts`) re-evaluates
``total_cycles`` with a hazard repaired — H001: the variable's remote
DRAM re-homed local; H002: its ping-pong stores restored to L1 — and
reports the relative saving as the finding's predicted impact, which
``hpcview advise`` uses to rank recommendations by payoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from math import ceil

from repro.machine.presets import MachineSpec
from repro.machine.topology import Topology
from repro.metrics.boundness import REGISTRY, evaluate_boundness
from repro.metrics.formula import EvalResult
from repro.metrics.sources import StaticSource
from repro.staticcheck.analyze import (
    Finding,
    StaticReport,
    _first_touch_executor,
    _regions_reaching,
)
from repro.staticcheck.callgraph import CallGraph, build_callgraph
from repro.staticcheck.model import AccessSite, StaticModel, VarDecl
from repro.util.linemath import runs_share_line

__all__ = [
    "VarPrediction",
    "ModelPrediction",
    "predict_model",
    "model_source",
    "variable_source",
    "condition_counters",
    "source_vocabulary",
    "report_with_impacts",
    "STATIC_KIND",
]

# The source-kind override key static predictions evaluate under.
STATIC_KIND = "static"

# Assumed element size when an access site declares no pattern.
_DEFAULT_ELEM_BYTES = 8

# Counter names every prediction carries (zero-filled when unobserved).
_COUNTER_NAMES = (
    "samples",
    "l1_samples",
    "l2_samples",
    "l3_samples",
    "lmem_samples",
    "rmem_samples",
    "hop1_samples",
    "hop2_samples",
    "tlb_miss_samples",
)


def _zero_counters() -> dict[str, float]:
    return {name: 0.0 for name in _COUNTER_NAMES}


def _merge_into(acc: dict[str, float], extra: dict[str, float]) -> None:
    for name, value in extra.items():
        acc[name] = acc.get(name, 0.0) + value


@dataclass
class VarPrediction:
    """Predicted counters for one variable, plus fix bookkeeping."""

    name: str
    storage: str
    share: float                       # of the model's total access weight
    counters: dict[str, float] = field(default_factory=_zero_counters)
    # Steady-state stores elevated to L3 by line ping-pong (H002); the
    # "pad the line" virtual fix moves exactly these back to L1.
    sharing_l3: float = 0.0

    def fixed_h001(self) -> dict[str, float]:
        """Counters with the variable's pages re-homed locally."""
        fixed = dict(self.counters)
        fixed["lmem_samples"] = fixed["lmem_samples"] + fixed["rmem_samples"]
        fixed["rmem_samples"] = 0.0
        fixed["hop1_samples"] = 0.0
        fixed["hop2_samples"] = 0.0
        return fixed

    def fixed_h002(self) -> dict[str, float]:
        """Counters with the ping-pong line padded apart."""
        fixed = dict(self.counters)
        moved = min(self.sharing_l3, fixed["l3_samples"])
        fixed["l3_samples"] = fixed["l3_samples"] - moved
        fixed["l1_samples"] = fixed["l1_samples"] + moved
        return fixed


@dataclass
class ModelPrediction:
    """Predicted counters for a whole static model."""

    app: str
    variant: str
    spec: MachineSpec
    variables: dict[str, VarPrediction] = field(default_factory=dict)
    compute_cycles: float = 0.0
    # Cross-site reuse bookkeeping: variable -> {site index -> cache
    # level ("l1"|"l2"|"l3") serving that site's would-be cold misses}.
    reuse: dict[str, dict[int, str]] = field(default_factory=dict)

    @property
    def override_keys(self) -> tuple[str, str]:
        return (self.spec.name, STATIC_KIND)

    def totals(self) -> dict[str, float]:
        acc = _zero_counters()
        for var in self.variables.values():
            _merge_into(acc, var.counters)
        acc["nonmem_event_cycles"] = self.compute_cycles
        return acc


# ---------------------------------------------------------------------------
# Geometry helpers
# ---------------------------------------------------------------------------


def _cache_capacities(spec: MachineSpec) -> tuple[int, int, int]:
    line = 1 << spec.line_bits
    return (
        spec.l1_sets * spec.l1_assoc * line,
        spec.l2_sets * spec.l2_assoc * line,
        spec.l3_sets * spec.l3_assoc * line,
    )


def _team_width(model: StaticModel, graph: CallGraph, site: AccessSite) -> int:
    """The widest team reaching a site; 1 when only serial paths do."""
    widths = [
        region.n_threads
        for region in _regions_reaching(model, graph, site.fn)
    ]
    return max(widths) if widths else 1


def _thread_footprints(
    site: AccessSite, var: VarDecl, team: int
) -> list[int]:
    if site.pattern is not None:
        return [site.pattern.span_bytes(tid, team) for tid in range(team)]
    if var.nbytes <= 0:
        return [0] * team
    split = ceil(var.nbytes / team)
    return [split] * team


def _elem_bytes(site: AccessSite) -> int:
    return int(getattr(site.pattern, "elem_bytes", 0)) or _DEFAULT_ELEM_BYTES


def _is_sharing_store(
    model: StaticModel, site: AccessSite, team: int
) -> bool:
    """The H002 predicate: adjacent sub-line footprints in one line."""
    if not site.is_store or site.pattern is None or team < 2:
        return False
    line_size = 1 << model.line_bits
    for tid in range(min(team - 1, 8)):
        a = site.pattern.thread_run(tid, team)
        b = site.pattern.thread_run(tid + 1, team)
        if (a.hi - a.lo) > line_size or (b.hi - b.lo) > line_size:
            continue
        if runs_share_line(a, b, model.line_bits) is not None:
            return True
    return False


def _dram_split(
    model: StaticModel,
    graph: CallGraph,
    var: VarDecl,
    site: AccessSite,
    team: int,
    dram_total: float,
    footprints: list[int],
) -> dict[str, float]:
    """Split DRAM accesses into local/remote and per-hop counts.

    Thread ``tid`` of the team pins to hardware thread ``tid`` (the
    simulator's linear placement); its share of the site's DRAM traffic
    is proportional to its footprint.  The target node comes from the
    placement policy.
    """
    out = {
        "lmem_samples": 0.0,
        "rmem_samples": 0.0,
        "hop1_samples": 0.0,
        "hop2_samples": 0.0,
    }
    if dram_total <= 0:
        return out
    topo: Topology = model.machine.topology
    n_nodes = topo.n_numa_nodes
    total_fp = sum(footprints)
    weights = (
        [fp / total_fp for fp in footprints]
        if total_fp
        else [1.0 / team] * team
    )

    interleaved = model.process_interleaved or var.policy == "interleaved"
    executor = _first_touch_executor(model, graph, var)
    for tid in range(team):
        w = dram_total * weights[tid]
        if w <= 0:
            continue
        here = topo.numa_of(tid % topo.n_threads)
        if interleaved:
            # Pages spread uniformly: 1/n of accesses land locally, the
            # rest split across the other nodes by hop distance.
            out["lmem_samples"] += w / n_nodes
            remote = w * (n_nodes - 1) / n_nodes
            out["rmem_samples"] += remote
            others = [n for n in range(n_nodes) if n != here]
            for node in others:
                hop_share = remote / len(others)
                if topo.hops(here, node) == 1:
                    out["hop1_samples"] += hop_share
                else:
                    out["hop2_samples"] += hop_share
        elif executor == "master":
            home = topo.numa_of(0)
            if here == home:
                out["lmem_samples"] += w
            else:
                out["rmem_samples"] += w
                if topo.hops(here, home) == 1:
                    out["hop1_samples"] += w
                else:
                    out["hop2_samples"] += w
        else:
            # Worker first touch: each thread homed its own chunk.
            out["lmem_samples"] += w
    return out


# ---------------------------------------------------------------------------
# Cross-site reuse: overlapping footprints share their cold misses
# ---------------------------------------------------------------------------


def _site_interval(
    var: VarDecl, site: AccessSite, team: int
) -> tuple[float, float]:
    """The byte interval a site's whole team sweeps.

    Pattern-less sites cover the whole variable; pattern-bearing sites
    report the union of their per-thread runs.  (Patterns measure
    offsets in their own space — extraction's ``OpaquePattern`` carries
    absolute addresses — but grouping only ever compares sites of the
    *same* variable, where the spaces coincide or the mismatch merely
    forfeits the optimization, never invents overlap across variables.)
    """
    if site.pattern is None:
        return (0.0, float(max(var.nbytes, 0)))
    runs = [site.pattern.thread_run(tid, team) for tid in range(team)]
    return (float(min(r.lo for r in runs)), float(max(r.hi for r in runs)))


def _working_sets(
    model: StaticModel, graph: CallGraph
) -> tuple[dict[str, int], int]:
    """Per-function and whole-model per-thread working sets.

    ``fn_ws[fn]`` sums the largest per-thread footprint of every access
    site (any variable) in ``fn`` — the bytes one thread streams through
    per sweep of that function, which is the first-order reuse distance
    between two sites of the same loop nest.  The total across all
    functions is the distance between sites in different functions (the
    whole working set cycles between visits).
    """
    fn_ws: dict[str, int] = {}
    for var in model.iter_variables():
        for site in var.access_sites:
            team = _team_width(model, graph, site)
            footprints = _thread_footprints(site, var, team)
            fp = max(footprints) if footprints else 0
            fn_ws[site.fn] = fn_ws.get(site.fn, 0) + fp
    return fn_ws, sum(fn_ws.values())


def _reuse_levels(
    model: StaticModel,
    graph: CallGraph,
    var: VarDecl,
    fn_ws: dict[str, int],
    total_ws: int,
) -> dict[int, str]:
    """Which of a variable's access sites get their cold misses served
    from cache, and at which level.

    Worker-team sites (team >= 2) are grouped by overlapping team
    footprint (transitively, in declaration order); serial sites never
    participate — a serial setup sweep is separated from the parallel
    phases by whole streamed arrays, not a loop body.  Within a group
    the first site keeps the cold DRAM charge; every later site
    re-touches lines the group already pulled, separated by at most the
    per-thread reuse distance: the enclosing function's working set when
    the group sits in one function, the whole model's when it spans
    several.  The smallest cache level whose capacity covers that
    distance serves those would-be cold misses; if even L3 cannot, the
    lines were evicted and the cold charge stays at DRAM.
    """
    sites = list(var.access_sites)
    if len(sites) < 2:
        return {}
    l1_cap, l2_cap, l3_cap = _cache_capacities(model.machine.spec)
    intervals: dict[int, tuple[float, float]] = {}
    for idx, site in enumerate(sites):
        team = _team_width(model, graph, site)
        if team < 2:
            continue
        intervals[idx] = _site_interval(var, site, team)
    groups: list[list[int]] = []
    bounds: list[tuple[float, float]] = []
    for idx in sorted(intervals):
        lo, hi = intervals[idx]
        if hi <= lo:
            continue
        for g, (glo, ghi) in enumerate(bounds):
            if lo < ghi and glo < hi:
                groups[g].append(idx)
                bounds[g] = (min(glo, lo), max(ghi, hi))
                break
        else:
            groups.append([idx])
            bounds.append((lo, hi))
    out: dict[int, str] = {}
    for group in groups:
        if len(group) < 2:
            continue
        fns = {sites[i].fn for i in group}
        distance = (
            fn_ws.get(next(iter(fns)), 0) if len(fns) == 1 else total_ws
        )
        if distance <= 0 or distance > l3_cap:
            continue
        if distance <= l1_cap:
            level = "l1"
        elif distance <= l2_cap:
            level = "l2"
        else:
            level = "l3"
        for idx in group[1:]:
            out[idx] = level
    return out


# ---------------------------------------------------------------------------
# Per-site counter prediction
# ---------------------------------------------------------------------------


def _site_counters(
    model: StaticModel,
    graph: CallGraph,
    var: VarDecl,
    site: AccessSite,
    reuse_level: str | None = None,
) -> tuple[dict[str, float], float]:
    """Predict one access site's counters; returns (counters, sharing_l3)."""
    spec = model.machine.spec
    counters = _zero_counters()
    accesses = float(site.weight)
    counters["samples"] = accesses
    if accesses <= 0:
        return counters, 0.0

    team = _team_width(model, graph, site)
    footprints = _thread_footprints(site, var, team)
    line_size = 1 << spec.line_bits
    page_size = 1 << spec.page_bits
    elem = _elem_bytes(site)

    lines_total = sum(ceil(fp / line_size) for fp in footprints if fp > 0)
    pages_total = sum(ceil(fp / page_size) for fp in footprints if fp > 0)
    elems_total = sum(max(1, fp // elem) for fp in footprints if fp > 0)
    fp_max = max(footprints) if footprints else 0

    if lines_total == 0:
        # Degenerate footprint: everything stays in registers/L1.
        counters["l1_samples"] = accesses
        return counters, 0.0

    l1_cap, l2_cap, l3_cap = _cache_capacities(spec)
    passes = max(1, round(accesses / elems_total)) if elems_total else 1

    cold = float(min(accesses, lines_total))
    remaining = accesses - cold
    steady_line_touches = min(remaining, float((passes - 1) * lines_total))

    if reuse_level is None:
        dram_total = cold
    else:
        # Cross-site reuse: an earlier co-sweeping site of the same
        # group already pulled these lines, and the group's reuse
        # distance fits `reuse_level` — the would-be cold misses are
        # served there instead of DRAM.
        dram_total = 0.0
        counters[reuse_level + "_samples"] += cold
    l1_hits = remaining
    if fp_max > l3_cap:
        # DRAM-resident sweeps: every pass re-fetches each line.
        dram_total += steady_line_touches
        l1_hits = remaining - steady_line_touches
    elif fp_max > l2_cap:
        counters["l3_samples"] += steady_line_touches
        l1_hits = remaining - steady_line_touches
    elif fp_max > l1_cap:
        counters["l2_samples"] += steady_line_touches
        l1_hits = remaining - steady_line_touches

    sharing_l3 = 0.0
    if _is_sharing_store(model, site, team):
        # Line ping-pong: steady stores cost an L3-ish coherence trip.
        sharing_l3 = l1_hits
        counters["l3_samples"] += l1_hits
        l1_hits = 0.0
    counters["l1_samples"] += l1_hits

    _merge_into(
        counters,
        _dram_split(model, graph, var, site, team, dram_total, footprints),
    )

    tlb_cap_pages = spec.tlb_sets * spec.tlb_assoc
    pages_max = max(
        (ceil(fp / page_size) for fp in footprints if fp > 0), default=0
    )
    tlb = float(pages_total)
    if pages_max > tlb_cap_pages:
        tlb = float(passes * pages_total)
    counters["tlb_miss_samples"] = min(accesses, tlb)
    return counters, sharing_l3


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def predict_model(
    model: StaticModel, *, cross_site_reuse: bool = True
) -> ModelPrediction:
    """Predict the full counter set for every variable of ``model``.

    ``cross_site_reuse=False`` disables the shared-cold-miss term and
    charges every access site its own cold DRAM sweep — the pre-reuse
    behaviour, kept for A/B comparison in the reconciliation budgets.
    """
    graph = build_callgraph(model)
    spec = model.machine.spec
    total_weight = model.total_weight
    pred = ModelPrediction(
        app=model.name,
        variant=model.variant,
        spec=spec,
        compute_cycles=float(model.compute_cycles_estimate),
    )
    fn_ws, total_ws = (
        _working_sets(model, graph) if cross_site_reuse else ({}, 0)
    )
    for var in model.iter_variables():
        share = var.total_weight / total_weight if total_weight else 0.0
        vp = VarPrediction(name=var.name, storage=var.storage, share=share)
        reuse = (
            _reuse_levels(model, graph, var, fn_ws, total_ws)
            if cross_site_reuse
            else {}
        )
        if reuse:
            pred.reuse[var.name] = dict(reuse)
        for idx, site in enumerate(var.access_sites):
            counters, sharing = _site_counters(
                model, graph, var, site, reuse_level=reuse.get(idx)
            )
            _merge_into(vp.counters, counters)
            vp.sharing_l3 += sharing
        pred.variables[var.name] = vp
    return pred


def model_source(
    pred: ModelPrediction, counters: dict[str, float] | None = None
) -> StaticSource:
    """Whole-model counter source with ``(preset, "static")`` keys."""
    return StaticSource(
        counters if counters is not None else pred.totals(),
        kind=STATIC_KIND,
        override_keys=pred.override_keys,
        description=f"static prediction of {pred.app}/{pred.variant} "
        f"on {pred.spec.name}",
    )


def variable_source(pred: ModelPrediction, name: str) -> StaticSource:
    """One variable's counter source (includes its ``metric_share``)."""
    vp = pred.variables[name]
    counters = dict(vp.counters)
    counters["metric_share"] = vp.share
    return StaticSource(
        counters,
        kind=STATIC_KIND,
        override_keys=pred.override_keys,
        description=f"static prediction of {pred.app}:{name} "
        f"on {pred.spec.name}",
    )


def condition_counters(
    counters: dict[str, float], vocabulary: str
) -> dict[str, float]:
    """Restrict predicted counters to a sampler's event vocabulary.

    Marked-event profiles (``PM_MRK_DATA_FROM_RMEM``) observe *only*
    remote-DRAM accesses; comparing raw static predictions against such
    a profile would mismatch every cache-level metric by construction.
    ``vocabulary="rmem-only"`` keeps the remote counters and drops the
    rest, scaling TLB walks by the remote share — the same conditioning
    the sampler's physics applies.  ``"all"`` is the identity.
    """
    if vocabulary == "all":
        return dict(counters)
    if vocabulary != "rmem-only":
        raise ValueError(f"unknown sampling vocabulary {vocabulary!r}")
    out = dict(counters)
    samples = counters.get("samples", 0.0)
    rmem = counters.get("rmem_samples", 0.0)
    remote_share = rmem / samples if samples else 0.0
    out["samples"] = rmem
    out["l1_samples"] = 0.0
    out["l2_samples"] = 0.0
    out["l3_samples"] = 0.0
    out["lmem_samples"] = 0.0
    out["tlb_miss_samples"] = counters.get("tlb_miss_samples", 0.0) * remote_share
    return out


def source_vocabulary(source: StaticSource) -> str:
    """Infer a profile source's sampling vocabulary from its counters.

    A marked-event (remote-DRAM-only) profile has remote samples but no
    cache or local-DRAM samples at all; everything else counts as a
    full-vocabulary sampler.
    """
    cache_or_local = sum(
        source.counter(name)
        for name in ("l1_samples", "l2_samples", "l3_samples", "lmem_samples")
        if source.has(name)
    )
    rmem = source.counter("rmem_samples") if source.has("rmem_samples") else 0.0
    if rmem > 0 and cache_or_local == 0:
        return "rmem-only"
    return "all"


def _total_cycles(pred: ModelPrediction, counters: dict[str, float]) -> float:
    src = model_source(pred, counters)
    result = REGISTRY.evaluate(src, only=("total_cycles",))
    return result["total_cycles"]


def report_with_impacts(
    model: StaticModel, report: StaticReport
) -> StaticReport:
    """Attach a predicted relative impact to each H001/H002 finding.

    Each impact re-evaluates the whole-model ``total_cycles`` node with
    that one hazard virtually fixed (pages re-homed / line padded) and
    reports the fractional saving.  Findings whose fix saves nothing
    (and hazard classes without a counter-level fix model, H003/H004)
    keep impact 0.
    """
    pred = predict_model(model)
    base_counters = pred.totals()
    base = _total_cycles(pred, base_counters)
    if base <= 0:
        return report
    fixed_findings: list[Finding] = []
    for finding in report.findings:
        vp = pred.variables.get(finding.variable)
        impact = 0.0
        if vp is not None and finding.code in ("H001", "H002"):
            fixed_var = (
                vp.fixed_h001() if finding.code == "H001" else vp.fixed_h002()
            )
            fixed_total = dict(base_counters)
            for name in _COUNTER_NAMES:
                fixed_total[name] = (
                    fixed_total.get(name, 0.0)
                    - vp.counters.get(name, 0.0)
                    + fixed_var.get(name, 0.0)
                )
            fixed = _total_cycles(pred, fixed_total)
            impact = max(0.0, (base - fixed) / base)
        fixed_findings.append(replace(finding, predicted_impact=impact))
    out = StaticReport(
        app=report.app,
        variant=report.variant,
        n_functions=report.n_functions,
        n_edges=report.n_edges,
        n_reachable=report.n_reachable,
        truncated=report.truncated,
        variables=list(report.variables),
        findings=fixed_findings,
    )
    return out


def predicted_boundness(pred: ModelPrediction) -> EvalResult:
    """Evaluate the whole boundness DAG over the model prediction."""
    return evaluate_boundness(model_source(pred))
