"""App registry for static models (mirrors ``repro.parallel.registry``).

Each bundled app module publishes ``static_model(variant, preset)``
next to its runner, so the declarations live beside the code they
describe; this registry resolves app names lazily to avoid importing
every app at CLI startup.
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable

from repro.errors import ConfigError
from repro.staticcheck.model import StaticModel

__all__ = [
    "STATIC_APPS",
    "app_variants",
    "build_static_model",
    "register_static_app",
]

_APP_MODULES: dict[str, str] = {
    "nw": "repro.apps.nw",
    "streamcluster": "repro.apps.streamcluster",
    "lulesh": "repro.apps.lulesh",
    "amg2006": "repro.apps.amg2006",
    "sweep3d": "repro.apps.sweep3d",
}

_CUSTOM: dict[str, Callable[[str, str], StaticModel]] = {}

STATIC_APPS = tuple(sorted(_APP_MODULES))


def register_static_app(
    name: str, builder: Callable[[str, str], StaticModel]
) -> None:
    """Register an out-of-tree static model builder (tests use this)."""
    _CUSTOM[name] = builder


def app_variants(app: str) -> tuple[str, ...]:
    """The ``VARIANTS`` tuple a bundled app module publishes."""
    module_name = _APP_MODULES.get(app)
    if module_name is None:
        known = ", ".join(sorted(set(_APP_MODULES) | set(_CUSTOM)))
        raise ConfigError(f"unknown app {app!r} (known: {known})")
    return tuple(import_module(module_name).VARIANTS)


def build_static_model(
    app: str, variant: str = "original", preset: str = "smoke"
) -> StaticModel:
    """Build the static model for a bundled (or registered) app."""
    if app in _CUSTOM:
        return _CUSTOM[app](variant, preset)
    module_name = _APP_MODULES.get(app)
    if module_name is None:
        known = ", ".join(sorted(set(_APP_MODULES) | set(_CUSTOM)))
        raise ConfigError(f"unknown app {app!r} (known: {known})")
    module = import_module(module_name)
    builder = getattr(module, "static_model", None)
    if builder is None:
        raise ConfigError(f"{module_name} does not publish static_model()")
    model = builder(variant=variant, preset=preset)
    if not isinstance(model, StaticModel):
        raise ConfigError(f"{module_name}.static_model returned {type(model)!r}")
    return model
