"""Static data-centric analysis: predict hazards without executing.

The dynamic side of the paper (profiler, sanitizer) measures what a run
did; this package analyzes what a program's *structure* guarantees it
will do — call graph and calling contexts from function/outlined-region
symbols, allocation-site reaching per variable, and per-thread access
footprints from the ``omp_chunk`` stride math — then predicts the NUMA
and layout hazards the case studies measured (H001-H004) and reconciles
those predictions against a merged dynamic profile.

Entry points:

- :func:`build_static_model` — resolve a bundled app's declarations;
- :func:`analyze_model` — run the hazard catalogue over a model;
- :func:`predict_model` — predict machine counters from the model and
  evaluate them on the same formula DAG the profiler reports;
- :func:`reconcile` — label predictions against an ``ExperimentDB``;
- :func:`reconcile_metrics` — compare static vs dynamic evaluations of
  the same derived metrics, per variable, with relative error;
- :func:`extract_model` — recover a model from kernel source by AST
  interpretation (``repro.staticcheck.extract``), and
  :func:`diff_models` — the structural drift gate against the
  registered declarations.
"""

from repro.staticcheck.analyze import (
    MIN_SHARE,
    Finding,
    StaticReport,
    VarSummary,
    analyze_model,
)
from repro.staticcheck.callgraph import CallGraph, Context, Frame, build_callgraph
from repro.staticcheck.model import (
    AccessPattern,
    OmpBlockPattern,
    PerThreadSlotPattern,
    StaticModel,
)
from repro.staticcheck.predict import (
    ModelPrediction,
    VarPrediction,
    model_source,
    predict_model,
    report_with_impacts,
    variable_source,
)
from repro.staticcheck.reconcile import (
    MetricDelta,
    MetricReconciliation,
    Reconciliation,
    VariableMetrics,
    Verdict,
    reconcile,
    reconcile_metrics,
)
from repro.staticcheck.extract import (
    ExtractionError,
    ExtractionResult,
    ModelDiff,
    diff_models,
    extract_model,
)
from repro.staticcheck.registry import (
    STATIC_APPS,
    app_variants,
    build_static_model,
    register_static_app,
)

__all__ = [
    "MIN_SHARE",
    "Finding",
    "StaticReport",
    "VarSummary",
    "analyze_model",
    "CallGraph",
    "Context",
    "Frame",
    "build_callgraph",
    "AccessPattern",
    "OmpBlockPattern",
    "PerThreadSlotPattern",
    "StaticModel",
    "Reconciliation",
    "Verdict",
    "reconcile",
    "ModelPrediction",
    "VarPrediction",
    "predict_model",
    "model_source",
    "variable_source",
    "report_with_impacts",
    "MetricDelta",
    "MetricReconciliation",
    "VariableMetrics",
    "reconcile_metrics",
    "ExtractionError",
    "ExtractionResult",
    "ModelDiff",
    "diff_models",
    "extract_model",
    "STATIC_APPS",
    "app_variants",
    "build_static_model",
    "register_static_app",
]
