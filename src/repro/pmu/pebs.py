"""Intel-style precise event-based sampling (PEBS).

The paper's §7 notes that after the reported experiments HPCToolkit was
extended to Intel Ivy Bridge (PEBS) and Itanium (EAR).  Both mechanisms
deliver a *precise* record like IBS does; PEBS additionally filters by
a latency threshold ("load latency" events: only loads slower than N
cycles are eligible).  This engine models that: it samples memory loads
whose measured latency meets the threshold, with precise IP and EA.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.pmu.sample import Sample
from repro.util.rng import DeterministicRNG

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess
    from repro.sim.thread import SimThread

__all__ = ["PEBSEngine"]


class PEBSEngine:
    """Precise load-latency sampling with a minimum-latency filter."""

    def __init__(
        self,
        period: int = 256,
        latency_threshold: int = 32,
        seed: int = 0x9EB5,
        jitter: float = 0.45,
        sample_stores: bool = False,
    ) -> None:
        if period < 1:
            raise ConfigError("PEBS period must be >= 1")
        if latency_threshold < 0:
            raise ConfigError("latency threshold must be >= 0")
        self.period = period
        self.latency_threshold = latency_threshold
        self.jitter = jitter
        self.sample_stores = sample_stores
        self.rng = DeterministicRNG(seed)
        self.samples_taken = 0
        self.events_counted = 0

    def _reset_countdown(self, thread: "SimThread") -> None:
        thread.pmu_countdown = self.rng.geometric_jitter(self.period, self.jitter)

    def note_mem(
        self,
        process: "SimProcess",
        thread: "SimThread",
        ip: int,
        ea: int,
        latency: int,
        level: int,
        tlb_miss: bool,
        is_store: bool,
    ) -> None:
        if is_store and not self.sample_stores:
            return
        if latency < self.latency_threshold:
            return
        self.events_counted += 1
        if thread.pmu_countdown <= 0:
            self._reset_countdown(thread)
        thread.pmu_countdown -= 1
        if thread.pmu_countdown > 0:
            return
        self._reset_countdown(thread)
        self.samples_taken += 1
        sample = Sample(
            event=f"MEM_TRANS_RETIRED.LOAD_LATENCY_GT_{self.latency_threshold}",
            precise_ip=ip,
            interrupt_ip=ip,   # PEBS records are precise
            ea=ea,
            latency=latency,
            level=level,
            tlb_miss=tlb_miss,
            is_store=is_store,
            period=self.period,
        )
        for hook in process.hooks:
            hook.on_sample(process, thread, sample)

    def note_compute(self, process: "SimProcess", thread: "SimThread", n: int) -> None:
        # Load-latency events never fire on non-memory instructions.
        return
