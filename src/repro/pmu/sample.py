"""PMU sample records.

One :class:`Sample` carries everything the paper's §3 lists as required
for data-centric measurement: a precise instruction pointer, an effective
data address, and a cost (latency and/or the event the sample counted).
``interrupt_ip`` may differ from ``precise_ip`` when the engine models
skid (EBS); the profiler's leaf correction picks the precise one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.hierarchy import LEVEL_NAMES

__all__ = ["Sample"]


@dataclass(frozen=True)
class Sample:
    """One PMU sample (a monitored instruction's retirement record)."""

    event: str           # event/engine that produced the sample
    precise_ip: int      # IP recorded by the monitoring hardware (SIAR-style)
    interrupt_ip: int    # IP at interrupt delivery (equals precise_ip unless skid)
    ea: int | None       # effective address (SDAR-style); None for non-memory ops
    latency: int         # measured access latency in cycles (0 for non-memory)
    level: int           # data source (LVL_* code); -1 for non-memory
    tlb_miss: bool
    is_store: bool
    period: int          # sampling period: each sample represents ~period events

    @property
    def is_memory(self) -> bool:
        return self.ea is not None

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level] if 0 <= self.level < len(LEVEL_NAMES) else "NONE"
