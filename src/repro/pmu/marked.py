"""POWER-style marked-event sampling (SIAR/SDAR).

The PMU counts occurrences of one marked event (e.g.
``PM_MRK_DATA_FROM_RMEM`` — data sourced from remote memory).  When the
count reaches the configured threshold, an interrupt fires and the
sampled instruction's address (SIAR) and effective data address (SDAR)
are available — always precise.  Non-matching accesses and non-memory
instructions do not advance the counter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.pmu.events import EVENT_PREDICATES
from repro.pmu.sample import Sample
from repro.util.rng import DeterministicRNG

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess
    from repro.sim.thread import SimThread

__all__ = ["MarkedEventEngine"]


class MarkedEventEngine:
    """Marked-event sampling for one event with a count threshold."""

    def __init__(self, event: str, period: int = 64, seed: int = 0x5EED, jitter: float = 0.45) -> None:
        predicate = EVENT_PREDICATES.get(event)
        if predicate is None:
            raise ConfigError(
                f"unknown marked event {event!r}; known: {sorted(EVENT_PREDICATES)}"
            )
        if period < 1:
            raise ConfigError("marked-event period must be >= 1")
        self.event = event
        self.period = period
        self.jitter = jitter
        self._predicate = predicate
        self.rng = DeterministicRNG(seed)
        self.samples_taken = 0
        self.events_counted = 0

    def _reset_countdown(self, thread: "SimThread") -> None:
        thread.pmu_countdown = self.rng.geometric_jitter(self.period, self.jitter)

    def note_mem(
        self,
        process: "SimProcess",
        thread: "SimThread",
        ip: int,
        ea: int,
        latency: int,
        level: int,
        tlb_miss: bool,
        is_store: bool,
    ) -> None:
        if not self._predicate(level, latency, tlb_miss):
            return
        self.events_counted += 1
        if thread.pmu_countdown <= 0:
            self._reset_countdown(thread)
        thread.pmu_countdown -= 1
        if thread.pmu_countdown > 0:
            return
        self._reset_countdown(thread)
        self.samples_taken += 1
        sample = Sample(
            event=self.event,
            precise_ip=ip,       # SIAR
            interrupt_ip=ip,
            ea=ea,               # SDAR
            latency=latency,
            level=level,
            tlb_miss=tlb_miss,
            is_store=is_store,
            period=self.period,
        )
        for hook in process.hooks:
            hook.on_sample(process, thread, sample)

    def note_compute(self, process: "SimProcess", thread: "SimThread", n: int) -> None:
        # Marked data-source events never fire on non-memory instructions.
        return
