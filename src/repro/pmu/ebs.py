"""Event-based sampling with IP skid.

On out-of-order processors, a plain EBS interrupt lands several
instructions *after* the instruction that caused the event — the "skid"
of §4.1.2.  This engine models that: when the countdown expires at
instruction X, the sample's *precise* fields (SIAR/SDAR analogues) still
describe X, but the *interrupt IP* is the IP of a later instruction
(``skid`` retired ops downstream).  A profiler that unwinds naively from
the signal context attributes the cost to the wrong instruction; the
paper's leaf correction replaces the interrupt IP with the precise IP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.pmu.sample import Sample
from repro.util.rng import DeterministicRNG

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess
    from repro.sim.thread import SimThread

__all__ = ["EBSEngine"]


class _Pending:
    """A sample waiting out its skid before the interrupt is delivered."""

    __slots__ = ("ip", "ea", "latency", "level", "tlb_miss", "is_store", "remaining")

    def __init__(self, ip, ea, latency, level, tlb_miss, is_store, remaining) -> None:
        self.ip = ip
        self.ea = ea
        self.latency = latency
        self.level = level
        self.tlb_miss = tlb_miss
        self.is_store = is_store
        self.remaining = remaining


class EBSEngine:
    """Event-based sampling of memory ops with modelled interrupt skid."""

    def __init__(
        self,
        period: int = 512,
        skid: int = 6,
        seed: int = 0xEB5,
        jitter: float = 0.125,
    ) -> None:
        if period < 1:
            raise ConfigError("EBS period must be >= 1")
        if skid < 0:
            raise ConfigError("skid must be >= 0")
        self.period = period
        self.skid = skid
        self.jitter = jitter
        self.rng = DeterministicRNG(seed)
        self.samples_taken = 0

    def _reset_countdown(self, thread: "SimThread") -> None:
        thread.pmu_countdown = self.rng.geometric_jitter(self.period, self.jitter)

    def note_mem(
        self,
        process: "SimProcess",
        thread: "SimThread",
        ip: int,
        ea: int,
        latency: int,
        level: int,
        tlb_miss: bool,
        is_store: bool,
    ) -> None:
        pending: _Pending | None = thread.pmu_pending
        if pending is not None:
            pending.remaining -= 1
            if pending.remaining <= 0:
                thread.pmu_pending = None
                self._deliver(process, thread, pending, interrupt_ip=ip)
            return
        if thread.pmu_countdown <= 0:
            self._reset_countdown(thread)
        thread.pmu_countdown -= 1
        if thread.pmu_countdown > 0:
            return
        self._reset_countdown(thread)
        if self.skid == 0:
            self._deliver(
                process,
                thread,
                _Pending(ip, ea, latency, level, tlb_miss, is_store, 0),
                interrupt_ip=ip,
            )
        else:
            thread.pmu_pending = _Pending(
                ip, ea, latency, level, tlb_miss, is_store, self.skid
            )

    def note_compute(self, process: "SimProcess", thread: "SimThread", n: int) -> None:
        # Compute ops retire too: they advance a pending skid but (in this
        # memory-event engine) do not advance the event counter.
        pending: _Pending | None = thread.pmu_pending
        if pending is not None:
            pending.remaining -= n
            if pending.remaining <= 0:
                thread.pmu_pending = None
                frames = thread.frames
                here = (
                    frames[-1].function.ip(frames[-1].function.start_line)
                    if frames
                    else pending.ip
                )
                self._deliver(process, thread, pending, interrupt_ip=here)

    def _deliver(
        self,
        process: "SimProcess",
        thread: "SimThread",
        pending: _Pending,
        interrupt_ip: int,
    ) -> None:
        self.samples_taken += 1
        sample = Sample(
            event="EBS",
            precise_ip=pending.ip,
            interrupt_ip=interrupt_ip,
            ea=pending.ea,
            latency=pending.latency,
            level=pending.level,
            tlb_miss=pending.tlb_miss,
            is_store=pending.is_store,
            period=self.period,
        )
        for hook in process.hooks:
            hook.on_sample(process, thread, sample)
