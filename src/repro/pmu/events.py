"""Event vocabulary: marked-event names and their data-source predicates.

The POWER marked events used in the paper's Table 1 select accesses by
where the data came from; a predicate maps our simulated access result
``(level, latency, tlb_miss)`` to "does this access count for event E".
"""

from __future__ import annotations

from typing import Callable

from repro.machine.hierarchy import LVL_L2, LVL_L3, LVL_LMEM, LVL_RMEM

__all__ = [
    "IBS_EVENT",
    "PM_MRK_DATA_FROM_RMEM",
    "PM_MRK_DATA_FROM_LMEM",
    "PM_MRK_DATA_FROM_L3",
    "PM_MRK_DATA_FROM_L2",
    "PM_MRK_DTLB_MISS",
    "EVENT_PREDICATES",
]

IBS_EVENT = "AMD_IBS"

PM_MRK_DATA_FROM_RMEM = "PM_MRK_DATA_FROM_RMEM"
PM_MRK_DATA_FROM_LMEM = "PM_MRK_DATA_FROM_LMEM"
PM_MRK_DATA_FROM_L3 = "PM_MRK_DATA_FROM_L3"
PM_MRK_DATA_FROM_L2 = "PM_MRK_DATA_FROM_L2"
PM_MRK_DTLB_MISS = "PM_MRK_DTLB_MISS"

# event name -> predicate(level, latency, tlb_miss)
EVENT_PREDICATES: dict[str, Callable[[int, int, bool], bool]] = {
    PM_MRK_DATA_FROM_RMEM: lambda lvl, lat, tlb: lvl == LVL_RMEM,
    PM_MRK_DATA_FROM_LMEM: lambda lvl, lat, tlb: lvl == LVL_LMEM,
    PM_MRK_DATA_FROM_L3: lambda lvl, lat, tlb: lvl == LVL_L3,
    PM_MRK_DATA_FROM_L2: lambda lvl, lat, tlb: lvl == LVL_L2,
    PM_MRK_DTLB_MISS: lambda lvl, lat, tlb: tlb,
}
