"""AMD-style instruction-based sampling (IBS).

The engine decrements a per-thread countdown on every retired
instruction.  When it reaches zero, the *current* instruction is the
monitored one: if it is a memory operation, the sample carries the
precise IP, effective address, measured latency, and data source; if
not, a non-memory sample is delivered (HPCToolkit keeps a separate CCT
for those, §4.1.2).  Periods are jittered to avoid lockstep aliasing
with loop structure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.pmu.events import IBS_EVENT
from repro.pmu.sample import Sample
from repro.util.rng import DeterministicRNG

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess
    from repro.sim.thread import SimThread

__all__ = ["IBSEngine"]


class IBSEngine:
    """Instruction-based sampling with a jittered period."""

    def __init__(self, period: int = 512, seed: int = 0x1B5, jitter: float = 0.45) -> None:
        if period < 1:
            raise ConfigError("IBS period must be >= 1")
        self.period = period
        self.jitter = jitter
        self.rng = DeterministicRNG(seed)
        self.samples_taken = 0
        self.mem_samples = 0

    def _reset_countdown(self, thread: "SimThread") -> None:
        thread.pmu_countdown = self.rng.geometric_jitter(self.period, self.jitter)

    def _armed_countdown(self, thread: "SimThread") -> int:
        if thread.pmu_countdown <= 0:
            self._reset_countdown(thread)
        return thread.pmu_countdown

    def note_mem(
        self,
        process: "SimProcess",
        thread: "SimThread",
        ip: int,
        ea: int,
        latency: int,
        level: int,
        tlb_miss: bool,
        is_store: bool,
    ) -> None:
        countdown = self._armed_countdown(thread) - 1
        if countdown > 0:
            thread.pmu_countdown = countdown
            return
        self._reset_countdown(thread)
        self.samples_taken += 1
        self.mem_samples += 1
        sample = Sample(
            event=IBS_EVENT,
            precise_ip=ip,
            interrupt_ip=ip,
            ea=ea,
            latency=latency,
            level=level,
            tlb_miss=tlb_miss,
            is_store=is_store,
            period=self.period,
        )
        for hook in process.hooks:
            hook.on_sample(process, thread, sample)

    def note_compute(self, process: "SimProcess", thread: "SimThread", n: int) -> None:
        # A block of n instructions may straddle several sampling periods;
        # fire one sample per period crossed and carry the remainder, so a
        # large compute block neither swallows the countdown (starving the
        # interleaved memory ops) nor under-reports non-memory samples.
        remaining = n
        countdown = self._armed_countdown(thread)
        while remaining >= countdown:
            remaining -= countdown
            self._deliver_nonmem(process, thread)
            countdown = thread.pmu_countdown
        thread.pmu_countdown = countdown - remaining

    def _deliver_nonmem(self, process: "SimProcess", thread: "SimThread") -> None:
        self._reset_countdown(thread)
        self.samples_taken += 1
        # Non-memory instruction sampled: no EA, no latency; the profiler
        # files it in the "no memory access" CCT.
        frames = thread.frames
        ip = frames[-1].function.ip(frames[-1].function.start_line) if frames else 0
        sample = Sample(
            event=IBS_EVENT,
            precise_ip=ip,
            interrupt_ip=ip,
            ea=None,
            latency=0,
            level=-1,
            tlb_miss=False,
            is_store=False,
            period=self.period,
        )
        for hook in process.hooks:
            hook.on_sample(process, thread, sample)
