"""Simulated performance-monitoring units.

Three engines mirror the hardware mechanisms of paper §3:

- :class:`~repro.pmu.ibs.IBSEngine` — AMD instruction-based sampling:
  every N-th instruction is monitored; memory instructions yield precise
  IP + effective address + latency + data source.
- :class:`~repro.pmu.marked.MarkedEventEngine` — POWER marked events
  (SIAR/SDAR): an event counter (e.g. ``PM_MRK_DATA_FROM_RMEM``) triggers
  a sample when it reaches a threshold.
- :class:`~repro.pmu.ebs.EBSEngine` — plain event-based sampling with
  *IP skid*, to demonstrate why the precise-IP correction of §4.1.2 is
  needed on out-of-order processors.
"""

from repro.pmu.sample import Sample
from repro.pmu.events import (
    EVENT_PREDICATES,
    IBS_EVENT,
    PM_MRK_DATA_FROM_RMEM,
    PM_MRK_DATA_FROM_LMEM,
    PM_MRK_DATA_FROM_L3,
    PM_MRK_DATA_FROM_L2,
)
from repro.pmu.ibs import IBSEngine
from repro.pmu.marked import MarkedEventEngine
from repro.pmu.ebs import EBSEngine
from repro.pmu.pebs import PEBSEngine

__all__ = [
    "Sample",
    "EVENT_PREDICATES",
    "IBS_EVENT",
    "PM_MRK_DATA_FROM_RMEM",
    "PM_MRK_DATA_FROM_LMEM",
    "PM_MRK_DATA_FROM_L3",
    "PM_MRK_DATA_FROM_L2",
    "IBSEngine",
    "MarkedEventEngine",
    "EBSEngine",
    "PEBSEngine",
]
