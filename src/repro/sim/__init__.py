"""Program-execution substrate.

Simulated "programs" are Python generator kernels written against the
:class:`~repro.sim.runtime.Ctx` API: they declare functions with source
lines, call each other (building real call stacks), allocate static and
heap data, and issue loads/stores that flow through the simulated memory
hierarchy.  The profiler observes this world exactly the way HPCToolkit
observes a native process: PMU samples, malloc/free wrappers, and load
module symbol tables.
"""

from repro.sim.source import SourceFile
from repro.sim.program import Function
from repro.sim.loader import LoadModule, StaticVar
from repro.sim.address_space import AddressSpace
from repro.sim.malloc import HeapAllocator
from repro.sim.arrays import SimArray
from repro.sim.thread import SimThread, Frame
from repro.sim.process import SimProcess
from repro.sim.runtime import Ctx
from repro.sim.openmp import omp_chunk, omp_chunks, outlined_name, parse_outlined
from repro.sim.mpi import MPIJob, RankResult

__all__ = [
    "SourceFile",
    "Function",
    "LoadModule",
    "StaticVar",
    "AddressSpace",
    "HeapAllocator",
    "SimArray",
    "SimThread",
    "Frame",
    "SimProcess",
    "Ctx",
    "omp_chunk",
    "omp_chunks",
    "outlined_name",
    "parse_outlined",
    "MPIJob",
    "RankResult",
]
