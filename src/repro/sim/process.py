"""A simulated process: address space, load modules, threads, phases.

One :class:`SimProcess` corresponds to one MPI rank (or the single
process of a pure-OpenMP run).  It owns the master thread, a persistent
OpenMP worker pool (workers keep their identity across parallel regions,
like a real runtime's thread pool), the loaded modules, and the list of
attached measurement hooks (the profiler).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Generator

from repro.errors import ConfigError, SimulationError
from repro.machine.presets import Machine
from repro.sim.address_space import AddressSpace
from repro.sim.loader import LoadModule
from repro.sim.scheduler import drive
from repro.sim.thread import SimThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.stats import MachineStats
    from repro.sim.program import Function
    from repro.sim.runtime import Ctx

__all__ = ["SimProcess"]


class SimProcess:
    """One simulated process pinned to a contiguous block of HW threads."""

    def __init__(
        self,
        machine: Machine,
        pid: int = 0,
        name: str | None = None,
        pin_base: int = 0,
        heap_capacity: int = 1 << 32,
    ) -> None:
        if pin_base < 0 or pin_base >= machine.n_threads:
            raise ConfigError(f"pin_base {pin_base} outside machine")
        self.machine = machine
        self.pid = pid
        self.name = name or f"rank{pid}"
        self.pin_base = pin_base
        self.aspace = AddressSpace(
            asid=pid,
            memmgr=machine.hierarchy.memmgr,
            page_bits=machine.spec.page_bits,
            heap_capacity=heap_capacity,
        )
        self.modules: list[LoadModule] = []
        self.hooks: list = []  # profiler-style observers
        self.pmu = None  # PMU engine shared by all threads of this process
        self.sanitizer = None  # set by repro.sanitize when a session is active
        self.obs = None  # set by repro.obs when a session is active
        self.sampler = None  # set by repro.sim.sampling when a session is active

        topo = machine.topology
        self.master = SimThread(
            name=f"{self.name}.main",
            hw_tid=pin_base,
            numa_node=topo.numa_of(pin_base),
            thread_index=0,
            stack_base=self.aspace.stack_base(0),
        )
        self._omp_pool: dict[int, SimThread] = {}
        self.phase_cycles: dict[str, int] = {}
        self.phase_stats: dict[str, "MachineStats"] = {}
        self._phase: str | None = None
        self.quantum = 2

        # Sanitizer activation seam: only consulted when repro.sanitize has
        # actually been imported, so runs that never touch the subsystem pay
        # one dict lookup per process — and zero per access.
        san_mod = sys.modules.get("repro.sanitize")
        if san_mod is not None:
            san_mod.maybe_install(self)
        # Observability uses the same seam; agents are read-only observers,
        # so attaching one never perturbs profiles.
        obs_mod = sys.modules.get("repro.obs")
        if obs_mod is not None:
            obs_mod.maybe_attach(self)
        # Sampled simulation rides the same seam: only processes created
        # while a repro.sim.sampling session is active get a sampler.
        samp_mod = sys.modules.get("repro.sim.sampling")
        if samp_mod is not None:
            samp_mod.maybe_attach(self)

    # -- modules ------------------------------------------------------------

    def load_module(self, module: LoadModule) -> LoadModule:
        text = self.aspace.reserve_text(max(module.text_size, 0x1000))
        static = self.aspace.reserve_static(max(module.static_size, 0x1000))
        module.place(text, static)
        self.modules.append(module)
        for hook in self.hooks:
            hook.on_module_load(self, module)
        return module

    def unload_module(self, module: LoadModule) -> None:
        if module not in self.modules:
            raise SimulationError(f"{module.name} is not loaded in {self.name}")
        for hook in self.hooks:
            hook.on_module_unload(self, module)
        self.modules.remove(module)
        module.unplace()

    def module_of_ip(self, ip: int) -> LoadModule | None:
        for module in self.modules:
            if module.contains_ip(ip):
                return module
        return None

    # -- threads -----------------------------------------------------------

    def omp_thread(self, omp_tid: int) -> SimThread:
        """Worker ``omp_tid`` of the persistent OpenMP pool (created lazily)."""
        thread = self._omp_pool.get(omp_tid)
        if thread is None:
            hw = self.pin_base + omp_tid
            if hw >= self.machine.n_threads:
                raise ConfigError(
                    f"omp thread {omp_tid} exceeds machine HW threads "
                    f"(pin_base={self.pin_base})"
                )
            topo = self.machine.topology
            thread = SimThread(
                name=f"{self.name}.omp{omp_tid}",
                hw_tid=hw,
                numa_node=topo.numa_of(hw),
                thread_index=omp_tid + 1,
                stack_base=self.aspace.stack_base(omp_tid + 1),
            )
            self._omp_pool[omp_tid] = thread
            for hook in self.hooks:
                hook.on_thread_create(self, thread)
        return thread

    def all_threads(self) -> list[SimThread]:
        return [self.master] + [self._omp_pool[k] for k in sorted(self._omp_pool)]

    # -- phases & time -------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Bucket elapsed cycles into a named phase (AMG's init/setup/solve).

        Elapsed time is the master thread's clock: serial work advances it
        directly and parallel regions bump it by the slowest worker's
        delta, so a phase's cost is just the master-clock delta across it.
        Machine self-instrumentation deltas (:class:`MachineStats`) are
        bucketed the same way into ``phase_stats``.
        """
        outer = self._phase
        self._phase = name
        self.phase_cycles.setdefault(name, 0)
        hierarchy = self.machine.hierarchy
        start = self.master.clock
        start_stats = hierarchy.stats()
        try:
            yield
        finally:
            self.phase_cycles[name] += self.master.clock - start
            delta = hierarchy.stats() - start_stats
            prev = self.phase_stats.get(name)
            self.phase_stats[name] = delta if prev is None else prev + delta
            self._phase = outer
            if self.obs is not None:
                self.obs.on_phase(self, name, start, self.master.clock)

    @property
    def elapsed_cycles(self) -> int:
        return self.master.clock

    def elapsed_seconds(self) -> float:
        return self.machine.cycles_to_seconds(self.elapsed_cycles)

    def phase_seconds(self) -> dict[str, float]:
        return {
            k: self.machine.cycles_to_seconds(v) for k, v in self.phase_cycles.items()
        }

    def phase_access_rates(self) -> dict[str, float]:
        """Simulated memory accesses per elapsed cycle, per phase.

        Self-instrumentation: phases whose rate collapses relative to
        their siblings are the latency-bound ones (the machine spent its
        cycles waiting, not issuing).
        """
        rates: dict[str, float] = {}
        for name, stats in self.phase_stats.items():
            cycles = self.phase_cycles.get(name, 0)
            rates[name] = stats.accesses / cycles if cycles else 0.0
        return rates

    # -- execution -----------------------------------------------------------

    def run_serial(self, gen: Generator) -> None:
        """Drive a single (master-thread) generator to completion."""
        drive([gen], self.machine.hierarchy, quantum=self.quantum)

    def run_parallel(
        self,
        master_ctx: "Ctx",
        outlined_fn: "Function",
        worker_factory: Callable[["Ctx", int], Generator],
        n_threads: int,
        line: int,
    ) -> None:
        """Execute one OpenMP-style parallel region.

        ``worker_factory(ctx, omp_tid)`` builds each worker's generator.
        Workers' call stacks are rooted at the outlined function whose
        call site is the master's current (function, line) — so profile
        views show `...$$OL$$...` frames called from the region's source
        location, as HPCToolkit does.
        """
        from repro.sim.runtime import Ctx  # local import to avoid a cycle

        if n_threads < 1:
            raise ConfigError("parallel region needs >= 1 thread")
        for hook in self.hooks:
            handler = getattr(hook, "on_parallel_begin", None)
            if handler is not None:
                handler(self, n_threads)
        callsite_ip = master_ctx.thread.current_function.ip(line)
        workers = []
        gens = []
        starts = []
        for omp_tid in range(n_threads):
            thread = self.omp_thread(omp_tid)
            thread.frames.clear()
            thread.push_frame(outlined_fn, callsite_ip)
            ctx = Ctx(self, thread)
            workers.append(thread)
            starts.append(thread.clock)
            gens.append(worker_factory(ctx, omp_tid))
        drive(gens, self.machine.hierarchy, quantum=self.quantum)
        deltas = [t.clock - s for t, s in zip(workers, starts)]
        region_cycles = max(deltas)
        # The master waits at the implicit barrier for the slowest worker;
        # elapsed/phase accounting reads the master clock, so this is the
        # only bookkeeping the region needs.
        self.master.clock += region_cycles
        for thread in workers:
            thread.frames.clear()
        # The implicit barrier above is the happens-before edge the race
        # detector relies on: everything after this point is ordered after
        # every access inside the region.
        for hook in self.hooks:
            handler = getattr(hook, "on_parallel_end", None)
            if handler is not None:
                handler(self)
