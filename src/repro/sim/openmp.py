"""OpenMP-flavoured helpers: worksharing and outlined-function naming.

Parallel regions themselves are executed by
:meth:`repro.sim.runtime.Ctx.parallel`; this module provides the loop
scheduling helpers and the compiler-style naming convention for outlined
functions (the ``...$$OL$$...`` suffix the paper's figures show).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sim.loader import LoadModule
from repro.sim.program import Function
from repro.sim.source import SourceFile

__all__ = [
    "omp_chunk",
    "omp_chunks",
    "outlined_name",
    "parse_outlined",
    "declare_outlined",
]


def omp_chunk(n_iters: int, n_threads: int, tid: int) -> range:
    """Static (block) scheduling: the iteration range of thread ``tid``."""
    if n_threads < 1 or not (0 <= tid < n_threads):
        raise ConfigError(f"bad omp thread id {tid}/{n_threads}")
    base = n_iters // n_threads
    extra = n_iters % n_threads
    start = tid * base + min(tid, extra)
    length = base + (1 if tid < extra else 0)
    return range(start, start + length)


def omp_chunks(n_iters: int, n_threads: int) -> list[range]:
    """All threads' static chunks; they tile [0, n_iters) exactly."""
    return [omp_chunk(n_iters, n_threads, t) for t in range(n_threads)]


def outlined_name(host_function: str, region_index: int = 0) -> str:
    """GNU-style outlined-function name for a parallel region."""
    return f"{host_function}$$OL$${region_index}"


def parse_outlined(name: str) -> tuple[str, int] | None:
    """Inverse of :func:`outlined_name`: ``(host, region_index)`` or ``None``.

    Static passes use this to recover the host->outlined call edge from
    symbol names alone, the way HPCToolkit's binary analysis recognizes
    compiler-outlined regions in stripped binaries.  Nested regions parse
    to their innermost host (``a$$OL$$0$$OL$$1`` -> (``a$$OL$$0``, 1)).
    """
    host, sep, index = name.rpartition("$$OL$$")
    if not sep or not index.isdigit():
        return None
    return host, int(index)


def declare_outlined(
    module: LoadModule,
    host: Function,
    region_line: int,
    n_lines: int,
    region_index: int = 0,
    source: SourceFile | None = None,
) -> Function:
    """Register the outlined function for a region in ``host`` at ``region_line``."""
    return module.add_function(
        outlined_name(host.name, region_index),
        source or host.source,
        region_line,
        n_lines,
    )
