"""Multi-dimensional array views over simulated memory.

A :class:`SimArray` is a shape + strides + base address — no element
storage.  It supports C (row-major) and Fortran (column-major) layouts so
the Sweep3D/LULESH case studies can express their layout pathologies and
the transposed fixes literally ("interchange the dimensions of Flux").
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["SimArray"]


def _strides_for(shape: tuple[int, ...], elem: int, order: str) -> tuple[int, ...]:
    if order == "C":
        strides = [0] * len(shape)
        acc = elem
        for i in range(len(shape) - 1, -1, -1):
            strides[i] = acc
            acc *= shape[i]
        return tuple(strides)
    if order == "F":
        strides = [0] * len(shape)
        acc = elem
        for i in range(len(shape)):
            strides[i] = acc
            acc *= shape[i]
        return tuple(strides)
    raise ConfigError(f"order must be 'C' or 'F', got {order!r}")


class SimArray:
    """An N-d array view: ``addr(i, j, ...)`` yields element addresses."""

    __slots__ = ("name", "base", "shape", "elem", "order", "strides", "nbytes")

    def __init__(
        self,
        name: str,
        base: int,
        shape: tuple[int, ...] | list[int],
        elem: int = 8,
        order: str = "C",
    ) -> None:
        shape = tuple(int(s) for s in shape)
        if not shape or any(s < 1 for s in shape):
            raise ConfigError(f"array {name}: bad shape {shape}")
        if elem < 1:
            raise ConfigError(f"array {name}: bad element size {elem}")
        self.name = name
        self.base = base
        self.shape = shape
        self.elem = elem
        self.order = order
        self.strides = _strides_for(shape, elem, order)
        n = 1
        for s in shape:
            n *= s
        self.nbytes = n * elem

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    @property
    def size(self) -> int:
        return self.nbytes // self.elem

    def addr(self, *index: int) -> int:
        """Element address; bounds-checked (catch kernel bugs early)."""
        if len(index) != len(self.shape):
            raise ConfigError(
                f"array {self.name}: {len(index)} indices for {len(self.shape)}-d array"
            )
        a = self.base
        for i, s, bound in zip(index, self.strides, self.shape):
            if not (0 <= i < bound):
                raise ConfigError(
                    f"array {self.name}: index {index} out of bounds {self.shape}"
                )
            a += i * s
        return a

    def addr_unchecked(self, *index: int) -> int:
        """Hot-path variant of :meth:`addr` without bounds checks."""
        a = self.base
        strides = self.strides
        for k in range(len(index)):
            a += index[k] * strides[k]
        return a

    def flat_addr(self, i: int) -> int:
        """Address of the i-th element in *memory* order (0 <= i < size)."""
        return self.base + i * self.elem

    def flat_run(self, start: int = 0, count: int | None = None) -> tuple[int, int, int]:
        """``(base, count, stride)`` covering elements ``[start, start+count)``
        in memory order — splat into the bulk accessors::

            ctx.load_run(*a.flat_run(0, n), ip)
        """
        if count is None:
            count = self.size - start
        if start < 0 or count < 0 or start + count > self.size:
            raise ConfigError(
                f"array {self.name}: flat run [{start}, {start + count}) "
                f"out of bounds [0, {self.size})"
            )
        return (self.base + start * self.elem, count, self.elem)

    def axis_run(self, axis: int, *index: int) -> tuple[int, int, int]:
        """``(base, count, stride)`` walking ``axis`` from ``index`` to the
        end of that dimension, all other indices held fixed — the inner
        loop of a stencil/BLAS-1 sweep as one bulk run.
        """
        if not (0 <= axis < len(self.shape)):
            raise ConfigError(f"array {self.name}: no axis {axis} in shape {self.shape}")
        return (
            self.addr(*index),
            self.shape[axis] - index[axis],
            self.strides[axis],
        )

    def transposed_view(self, perm: tuple[int, ...], name: str | None = None) -> "SimArray":
        """A view with permuted *logical* dimensions over the same memory.

        This models a data-layout transformation: the new view's
        ``addr(i0, i1, ...)`` applies the permuted strides, i.e. the array
        was "re-declared" with the permuted shape at the same base.
        """
        if sorted(perm) != list(range(len(self.shape))):
            raise ConfigError(f"bad permutation {perm} for {len(self.shape)}-d array")
        new = SimArray.__new__(SimArray)
        new.name = name or f"{self.name}^T"
        new.base = self.base
        new.elem = self.elem
        new.order = self.order
        new.shape = tuple(self.shape[p] for p in perm)
        new.strides = _strides_for(new.shape, new.elem, new.order)
        new.nbytes = self.nbytes
        return new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimArray({self.name}, shape={self.shape}, elem={self.elem}, "
            f"order={self.order}, base={self.base:#x})"
        )
