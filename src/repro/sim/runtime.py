"""The kernel-facing runtime API.

Application kernels (the :mod:`repro.apps` benchmarks) are written
against :class:`Ctx`: they declare call frames, allocate memory, and
issue loads/stores.  Every memory operation flows through the machine's
memory hierarchy and — when a PMU engine is attached — may trigger a
sample delivered to the profiler hooks, exactly mirroring the paper's
measurement path (PMU interrupt -> profiler signal handler).

Hot-path discipline: ``load_ip``/``store_ip`` take a *precomputed*
instruction pointer so inner loops pay one dict lookup (page table), a
few list operations (caches) and an integer add (clock) per access.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Iterable

from repro.errors import AllocationError, SimulationError
from repro.sim.arrays import SimArray
from repro.sim.process import SimProcess
from repro.sim.thread import SimThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.loader import StaticVar
    from repro.sim.program import Function

__all__ = ["Ctx", "CALL_COST", "RET_COST", "MALLOC_COST", "FREE_COST"]

CALL_COST = 2        # cycles charged per simulated call
RET_COST = 1
MALLOC_COST = 80     # libc allocator bookkeeping cost
FREE_COST = 40
CALLOC_LINE_COST = 1  # streaming-zero cost per cache line beyond the page touch
COMM_LATENCY = 2000   # MPI message latency in cycles
COMM_CYCLES_PER_BYTE = 0.05


class Ctx:
    """Execution context of one simulated thread."""

    __slots__ = (
        "process", "thread", "_aspace", "_hier", "_compute_cycle",
        "_page_bits", "_san", "_sampler",
    )

    def __init__(self, process: SimProcess, thread: SimThread) -> None:
        self.process = process
        self.thread = thread
        self._aspace = process.aspace
        self._hier = process.machine.hierarchy
        self._compute_cycle = process.machine.spec.latency.compute_cycle
        self._page_bits = process.machine.spec.page_bits
        # Sanitizer fast path: captured once at context creation so the
        # disabled case costs one is-None branch per access (repro.sanitize
        # never imported -> process.sanitizer is always None).
        self._san = process.sanitizer
        # Run sampler, same pattern (repro.sim.sampling session active at
        # process creation -> sampled simulation; otherwise always None).
        self._sampler = process.sampler

    # -- call-stack management ------------------------------------------------

    def enter(self, fn: "Function") -> None:
        """Push a root frame (thread start function / main)."""
        self.thread.push_frame(fn, 0)

    def leave(self) -> None:
        self.thread.pop_frame()

    def call(self, fn: "Function", line: int, gen: Generator) -> Generator:
        """Call a child kernel: ``yield from ctx.call(FN, line, kernel(ctx))``."""
        thread = self.thread
        callsite_ip = thread.current_function.ip(line)
        frame = thread.push_frame(fn, callsite_ip)
        thread.clock += CALL_COST
        result = yield from gen
        thread.pop_frame(frame)
        thread.clock += RET_COST
        return result

    def call_sync(self, fn: "Function", line: int, body: Callable, *args):
        """Call a non-yielding child function (e.g. an allocator shim)."""
        thread = self.thread
        callsite_ip = thread.current_function.ip(line)
        frame = thread.push_frame(fn, callsite_ip)
        thread.clock += CALL_COST
        try:
            return body(self, *args)
        finally:
            thread.pop_frame(frame)
            thread.clock += RET_COST

    def ip(self, line: int, slot: int = 0) -> int:
        """Precompute an instruction pointer in the current function."""
        return self.thread.current_function.ip(line, slot)

    # -- memory accesses (hot path) ---------------------------------------------

    def load_ip(self, vaddr: int, ip: int) -> int:
        """One load at a precomputed IP; returns its latency in cycles."""
        thread = self.thread
        san = self._san
        if san is not None:
            san.on_access(thread, vaddr, ip, False)
        home = self._aspace.home_of(vaddr, thread.numa_node)
        lat, lvl, tlbm = self._hier.access(thread.hw_tid, vaddr, home, False)
        thread.clock += lat
        thread.inst_count += 1
        thread.mem_count += 1
        sampler = self._sampler
        if sampler is not None:
            sampler.note_scalar()
        pmu = self.process.pmu
        if pmu is not None:
            pmu.note_mem(self.process, thread, ip, vaddr, lat, lvl, tlbm, False)
        return lat

    def store_ip(self, vaddr: int, ip: int) -> int:
        """One store at a precomputed IP; returns its latency in cycles."""
        thread = self.thread
        san = self._san
        if san is not None:
            san.on_access(thread, vaddr, ip, True)
        home = self._aspace.home_of(vaddr, thread.numa_node)
        lat, lvl, tlbm = self._hier.access(thread.hw_tid, vaddr, home, True)
        thread.clock += lat
        thread.inst_count += 1
        thread.mem_count += 1
        sampler = self._sampler
        if sampler is not None:
            sampler.note_scalar()
        pmu = self.process.pmu
        if pmu is not None:
            pmu.note_mem(self.process, thread, ip, vaddr, lat, lvl, tlbm, True)
        return lat

    def load(self, vaddr: int, line: int, slot: int = 0) -> int:
        return self.load_ip(vaddr, self.thread.current_function.ip(line, slot))

    def store(self, vaddr: int, line: int, slot: int = 0) -> int:
        return self.store_ip(vaddr, self.thread.current_function.ip(line, slot))

    def load_run(self, base: int, count: int, stride: int, ip: int) -> int:
        """``count`` loads at ``base + k*stride`` via the batched fast path.

        Equivalent to ``count`` scalar :meth:`load_ip` calls — same level
        counts, latencies, contention charges and PMU sample stream
        (enforced by ``tests/test_machine_bulk_access.py``) — but pays
        the per-access Python overhead once per *page* instead of once
        per access.  Returns the run's total latency in cycles.
        """
        return self._access_run(base, count, stride, ip, False)

    def store_run(self, base: int, count: int, stride: int, ip: int) -> int:
        """Batched form of ``count`` scalar :meth:`store_ip` calls."""
        return self._access_run(base, count, stride, ip, True)

    def _access_run(self, base: int, count: int, stride: int, ip: int, is_store: bool) -> int:
        if count <= 0:
            return 0
        san = self._san
        if san is not None:
            san.on_access_run(self.thread, base, count, stride, ip, is_store)
        thread = self.thread
        sampler = self._sampler
        if sampler is not None and not sampler.observe_run(count):
            # Sampled-out run: charge the estimated clock cost, touch no
            # machine state, deliver no PMU samples.  The sanitizer above
            # still saw the run — its analysis stays exact.
            est = sampler.estimate_skipped(count)
            thread.clock += est
            thread.inst_count += count
            thread.mem_count += count
            return est
        node = thread.numa_node
        hw_tid = thread.hw_tid
        home_of = self._aspace.home_of
        access_run = self._hier.access_run
        page_bits = self._page_bits
        pmu = self.process.pmu
        # With a PMU attached we must replay per-access results in order
        # (sample pacing is stateful); without one, bulk totals suffice.
        record: list | None = [] if pmu is not None else None

        total = 0
        if stride == 0:
            # Degenerate run: one page, one home.
            total = access_run(hw_tid, base, 0, count, home_of(base, node), is_store, record)
        else:
            # Split the run at page boundaries: each page may have a
            # different home node (first-touch/interleave placement), and
            # home_of itself commits first-touch, so it must be consulted
            # in access order — once per page, not once per access.
            # Consecutive page chunks with the *same* home are merged back
            # into one access_run call (home_of does not depend on access
            # effects, so consulting it a chunk early is unobservable):
            # long same-home runs are what the vector engine feeds on.
            cur = base
            remaining = count
            run_start = base
            run_count = 0
            run_home = 0
            while remaining > 0:
                if stride > 0:
                    boundary = ((cur >> page_bits) + 1) << page_bits
                    n = (boundary - cur + stride - 1) // stride
                else:
                    page_start = cur >> page_bits << page_bits
                    n = (cur - page_start) // -stride + 1
                if n > remaining:
                    n = remaining
                home = home_of(cur, node)
                if run_count and home == run_home:
                    run_count += n
                else:
                    if run_count:
                        total += access_run(
                            hw_tid, run_start, stride, run_count, run_home,
                            is_store, record,
                        )
                    run_start = cur
                    run_count = n
                    run_home = home
                cur += n * stride
                remaining -= n
            if run_count:
                total += access_run(
                    hw_tid, run_start, stride, run_count, run_home, is_store, record
                )

        if sampler is not None:
            sampler.note_simulated(count, total)
        if record is None:
            thread.clock += total
            thread.inst_count += count
            thread.mem_count += count
        else:
            note_mem = pmu.note_mem
            process = self.process
            vaddr = base
            for lat, lvl, tlbm in record:
                thread.clock += lat
                thread.inst_count += 1
                thread.mem_count += 1
                note_mem(process, thread, ip, vaddr, lat, lvl, tlbm, is_store)
                vaddr += stride
        return total

    def load_stride(self, base: int, count: int, stride: int, ip: int) -> None:
        """``count`` loads at ``base + k*stride`` (no scheduler yields inside)."""
        self._access_run(base, count, stride, ip, False)

    def store_stride(self, base: int, count: int, stride: int, ip: int) -> None:
        self._access_run(base, count, stride, ip, True)

    def compute(self, n: int = 1) -> None:
        """Advance the clock by ``n`` abstract ALU operations."""
        thread = self.thread
        thread.clock += n * self._compute_cycle
        thread.inst_count += n
        pmu = self.process.pmu
        if pmu is not None:
            pmu.note_compute(self.process, thread, n)

    # -- allocation ---------------------------------------------------------------

    def malloc(
        self, nbytes: int, line: int, kind: str = "malloc", var: str | None = None
    ) -> int:
        """Allocate heap memory at the current call site (profiler-wrapped).

        ``var`` is a source-level name hint: it models what the paper's
        GUI recovers by displaying the allocation call site's source line
        (e.g. ``S_diag_j = hypre_CTAlloc(...)``).
        """
        thread = self.thread
        addr = self._aspace.heap.malloc(nbytes)
        thread.clock += MALLOC_COST
        callsite_ip = thread.current_function.ip(line)
        for hook in self.process.hooks:
            hook.on_alloc(self.process, thread, addr, nbytes, callsite_ip, kind, var)
        return addr

    def calloc(self, nbytes: int, line: int, var: str | None = None) -> int:
        """malloc + zero-fill.

        Zeroing is performed *by the calling thread*: one store per page
        (this is what commits first-touch placement) plus a streaming cost
        for the remaining lines of each page.  That single behaviour is the
        root of the master-thread NUMA pathologies in the case studies.
        """
        addr = self.malloc(nbytes, line, kind="calloc", var=var)
        page_size = 1 << self._page_bits
        lines_per_page = page_size >> self._hier.line_bits
        first_page = addr & ~(page_size - 1)
        end = addr + nbytes
        n_pages = (end - first_page + page_size - 1) >> self._page_bits
        self.touch_range(addr, nbytes, line)
        # Streaming-zero cost for the rest of each page, in one bulk add
        # (the scalar interleaving of these pure clock advances with the
        # page-touch stores is unobservable — nothing reads the clock
        # between them).
        self.thread.clock += n_pages * (lines_per_page - 1) * CALLOC_LINE_COST
        return addr

    def free(self, addr: int, line: int) -> None:
        thread = self.thread
        san = self._san
        if san is not None and not san.check_free(
            thread, addr, thread.current_function.ip(line)
        ):
            # Double/invalid free: recorded as a finding; the simulated
            # program keeps running (glibc would abort, but aborting would
            # hide every later defect in the same run).  Hooks must NOT
            # fire — the tracked block, if any, is still live.
            thread.clock += FREE_COST
            return
        # Validate liveness BEFORE notifying hooks: a double/invalid free
        # must raise without untracking the still-live variable from the
        # profiler's heap map (hooks are observers, not validators).
        heap = self._aspace.heap
        if heap.size_of(addr) is None:
            raise AllocationError(f"free of non-live address {addr:#x}")
        for hook in self.process.hooks:
            hook.on_free(self.process, thread, addr)
        heap.free(addr)
        thread.clock += FREE_COST

    def alloc_array(
        self,
        name: str,
        shape: Iterable[int],
        line: int,
        elem: int = 8,
        order: str = "C",
        kind: str = "malloc",
    ) -> SimArray:
        """Allocate a heap array (malloc or calloc) and wrap it as a view."""
        shape = tuple(shape)
        nbytes = elem * self._numel(shape)
        if kind == "calloc":
            base = self.calloc(nbytes, line, var=name)
        elif kind == "malloc":
            base = self.malloc(nbytes, line, var=name)
        else:
            raise SimulationError(f"unknown allocation kind {kind!r}")
        return SimArray(name, base, shape, elem=elem, order=order)

    @staticmethod
    def _numel(shape: tuple[int, ...]) -> int:
        n = 1
        for s in shape:
            n *= s
        return n

    def static_array(
        self,
        var: "StaticVar",
        shape: Iterable[int],
        elem: int = 8,
        order: str = "C",
    ) -> SimArray:
        """View a static (.bss) variable as an array."""
        shape = tuple(shape)
        nbytes = elem * self._numel(shape)
        if nbytes > var.size:
            raise SimulationError(
                f"static {var.name}: view of {nbytes}B exceeds symbol size {var.size}B"
            )
        return SimArray(var.name, var.address, shape, elem=elem, order=order)

    def touch_range(self, start: int, nbytes: int, line: int) -> None:
        """Store to one address per page in [start, start+nbytes).

        The parallel-initialization idiom: each thread touching its own
        chunk places those pages locally under first-touch.
        """
        if nbytes <= 0:
            return
        page_size = 1 << self._page_bits
        ip = self.thread.current_function.ip(line)
        end = start + nbytes
        # Scalar order: one store at `start`, then one per page boundary
        # inside the range — expressed as a page-stride run so large
        # ranges take the batched path.
        self.store_ip(start, ip)
        boundary = (start & ~(page_size - 1)) + page_size
        if boundary < end:
            n = (end - boundary + page_size - 1) >> self._page_bits
            self.store_run(boundary, n, page_size, ip)

    def declare_stack_var(self, name: str, nbytes: int, line: int) -> int:
        """Reserve a named stack range in the current frame.

        Models a compiler-described local (what DWARF variable records
        would give a real tool); profilers with stack tracking enabled
        attribute accesses to it (the paper's §7 extension).
        """
        thread = self.thread
        addr = thread.stack_alloc(nbytes)
        fn = thread.current_function
        for hook in self.process.hooks:
            handler = getattr(hook, "on_stack_alloc", None)
            if handler is not None:
                handler(self.process, thread, name, addr, nbytes, fn, line)
        return addr

    def release_stack_var(self, addr: int) -> None:
        """Retire a named stack range (frame exit)."""
        for hook in self.process.hooks:
            handler = getattr(hook, "on_stack_free", None)
            if handler is not None:
                handler(self.process, self.thread, addr)

    # -- OpenMP / MPI -----------------------------------------------------------

    def parallel(
        self,
        outlined_fn: "Function",
        worker_factory: Callable[["Ctx", int], Generator],
        n_threads: int,
        line: int,
    ) -> None:
        """Run an OpenMP-style parallel region (blocks until the barrier)."""
        self.process.run_parallel(self, outlined_fn, worker_factory, n_threads, line)

    def comm(self, nbytes: int) -> None:
        """Charge the cost of sending/receiving an MPI message."""
        self.thread.clock += COMM_LATENCY + int(nbytes * COMM_CYCLES_PER_BYTE)
