"""Simulated libc heap: a first-fit free-list allocator.

The profiler wraps this allocator's malloc/calloc/realloc/free exactly as
HPCToolkit wraps libc's (§4.1.3 "Heap-allocated data").  A real free list
(with coalescing and address reuse) matters for fidelity: address reuse
after free is what forces the profiler to track *all* frees even when it
skips tracking small allocations — otherwise stale map entries would
attribute costs to the wrong variable.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from repro.errors import AllocationError

__all__ = ["HeapAllocator"]

_ALIGN = 16


class HeapAllocator:
    """First-fit allocator over ``[base, base+capacity)`` with coalescing."""

    def __init__(self, base: int, capacity: int) -> None:
        if capacity <= 0:
            raise AllocationError("heap capacity must be positive")
        self.base = base
        self.capacity = capacity
        # Free list: sorted list of [start, size] entries, non-adjacent
        # (adjacent entries are always coalesced).
        self._free: list[list[int]] = [[base, capacity]]
        self._live: dict[int, int] = {}  # addr -> size
        self.alloc_count = 0
        self.free_count = 0
        self.peak_bytes = 0
        self.live_bytes = 0

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` (rounded to 16B); returns the block address."""
        if nbytes <= 0:
            raise AllocationError(f"malloc of non-positive size {nbytes}")
        size = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        for i, entry in enumerate(self._free):
            if entry[1] >= size:
                addr = entry[0]
                if entry[1] == size:
                    self._free.pop(i)
                else:
                    entry[0] += size
                    entry[1] -= size
                self._live[addr] = size
                self.alloc_count += 1
                self.live_bytes += size
                if self.live_bytes > self.peak_bytes:
                    self.peak_bytes = self.live_bytes
                return addr
        raise AllocationError(
            f"out of simulated heap: requested {size}B, "
            f"live {self.live_bytes}B of {self.capacity}B"
        )

    def free(self, addr: int) -> int:
        """Release the block at ``addr``; returns its size."""
        size = self._live.pop(addr, None)
        if size is None:
            raise AllocationError(f"free of non-live address {addr:#x}")
        self.free_count += 1
        self.live_bytes -= size
        self._insert_free(addr, size)
        return size

    def realloc(self, addr: int, nbytes: int) -> int:
        """Realloc: free old, then allocate new (returns new address).

        Contents are not modelled (the simulator tracks addresses, not
        bytes), so freeing before allocating is safe and lets a block
        grow in place when its own space plus an adjacent hole is big
        enough — matching libc, where realloc of the last block extends
        it rather than inflating peak heap.  Callers that care about the
        copy's memory traffic issue it explicitly.
        """
        if addr:
            self.free(addr)
        return self.malloc(nbytes)

    def size_of(self, addr: int) -> int | None:
        """Size of the live block starting at ``addr`` (None if not live)."""
        return self._live.get(addr)

    def live_blocks(self) -> dict[int, int]:
        return dict(self._live)

    def _insert_free(self, addr: int, size: int) -> None:
        starts = [e[0] for e in self._free]
        i = bisect_left(starts, addr)
        # Guard against overlap corruption.
        if i > 0 and self._free[i - 1][0] + self._free[i - 1][1] > addr:
            raise AllocationError(f"free-list overlap at {addr:#x}")
        if i < len(self._free) and addr + size > self._free[i][0]:
            raise AllocationError(f"free-list overlap at {addr:#x}")
        # Coalesce with successor, then predecessor.
        merged_next = i < len(self._free) and addr + size == self._free[i][0]
        merged_prev = i > 0 and self._free[i - 1][0] + self._free[i - 1][1] == addr
        if merged_prev and merged_next:
            self._free[i - 1][1] += size + self._free[i][1]
            self._free.pop(i)
        elif merged_prev:
            self._free[i - 1][1] += size
        elif merged_next:
            self._free[i][0] = addr
            self._free[i][1] += size
        else:
            self._free.insert(i, [addr, size])

    def check_invariants(self) -> None:
        """Validate free-list ordering/coalescing and accounting (for tests)."""
        prev_end = None
        free_bytes = 0
        for start, size in self._free:
            if size <= 0:
                raise AllocationError("zero-size free entry")
            if prev_end is not None and start < prev_end:
                raise AllocationError("free list out of order / overlapping")
            if prev_end is not None and start == prev_end:
                raise AllocationError("uncoalesced adjacent free entries")
            prev_end = start + size
            free_bytes += size
        if free_bytes + self.live_bytes != self.capacity:
            raise AllocationError(
                f"accounting mismatch: free={free_bytes} live={self.live_bytes} "
                f"cap={self.capacity}"
            )
