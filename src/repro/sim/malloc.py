"""Simulated libc heap: a first-fit free-list allocator.

The profiler wraps this allocator's malloc/calloc/realloc/free exactly as
HPCToolkit wraps libc's (§4.1.3 "Heap-allocated data").  A real free list
(with coalescing and address reuse) matters for fidelity: address reuse
after free is what forces the profiler to track *all* frees even when it
skips tracking small allocations — otherwise stale map entries would
attribute costs to the wrong variable.

Sanitizer support (``repro.sanitize``): when ``redzone`` is nonzero every
block is placed ``redzone`` bytes inside a larger reservation, so the
bytes on either side of the usable range belong to no other block and an
out-of-bounds access is unambiguous.  When ``quarantine_capacity`` is
nonzero, freed blocks are parked in a FIFO quarantine instead of being
returned to the free list immediately, so address reuse cannot mask a
stale pointer.  Both default to off and leave the allocator's observable
behaviour bit-identical to the plain configuration.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Callable

from repro.errors import AllocationError

__all__ = ["HeapAllocator", "HEAP_ALIGN"]

_ALIGN = 16

# Public introspection alias: static layout analysis (repro.staticcheck
# hazard H002) must assume heap bases are only 16B-aligned — NOT
# line-aligned — when predicting which thread footprints share a line.
HEAP_ALIGN = _ALIGN


class HeapAllocator:
    """First-fit allocator over ``[base, base+capacity)`` with coalescing."""

    ALIGN = _ALIGN

    def __init__(self, base: int, capacity: int) -> None:
        if capacity <= 0:
            raise AllocationError("heap capacity must be positive")
        self.base = base
        self.capacity = capacity
        # Free list: sorted list of [start, size] entries, non-adjacent
        # (adjacent entries are always coalesced).
        self._free: list[list[int]] = [[base, capacity]]
        self._live: dict[int, int] = {}  # addr -> usable (aligned) size
        self.alloc_count = 0
        self.free_count = 0
        self.peak_bytes = 0
        self.live_bytes = 0  # includes redzones of live blocks
        # Sanitizer knobs (off by default; see module docstring).
        self.redzone = 0
        self.quarantine_capacity = 0
        self.quarantine_bytes = 0
        self._quarantine: deque[tuple[int, int]] = deque()  # (outer_addr, outer_size)
        self._rz: dict[int, int] = {}  # addr -> redzone this block was carved with
        self._evict_hook: Callable[[int, int], None] | None = None

    def set_evict_hook(self, hook: Callable[[int, int], None] | None) -> None:
        """Observer called with ``(outer_addr, outer_size)`` when a block
        leaves the quarantine and becomes reusable again."""
        self._evict_hook = hook

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` (rounded to 16B); returns the block address."""
        if nbytes <= 0:
            raise AllocationError(f"malloc of non-positive size {nbytes}")
        rz = self.redzone
        size = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        outer = size + 2 * rz
        outer_addr = self._find_fit(outer)
        if outer_addr is None and self._quarantine:
            # Recycle quarantined blocks rather than failing: stale-pointer
            # masking is a lesser evil than a spurious OOM.
            self._drain_quarantine(0)
            outer_addr = self._find_fit(outer)
        if outer_addr is None:
            raise AllocationError(
                f"out of simulated heap: requested {outer}B, "
                f"live {self.live_bytes}B of {self.capacity}B"
            )
        addr = outer_addr + rz
        self._live[addr] = size
        if rz:
            self._rz[addr] = rz
        self.alloc_count += 1
        self.live_bytes += outer
        if self.live_bytes > self.peak_bytes:
            self.peak_bytes = self.live_bytes
        return addr

    def _find_fit(self, outer: int) -> int | None:
        """First-fit scan; carves ``outer`` bytes and returns their start."""
        for i, entry in enumerate(self._free):
            if entry[1] >= outer:
                addr = entry[0]
                if entry[1] == outer:
                    self._free.pop(i)
                else:
                    entry[0] += outer
                    entry[1] -= outer
                return addr
        return None

    def free(self, addr: int) -> int:
        """Release the block at ``addr``; returns its usable size."""
        size = self._live.pop(addr, None)
        if size is None:
            raise AllocationError(f"free of non-live address {addr:#x}")
        rz = self._rz.pop(addr, 0)
        outer_addr = addr - rz
        outer = size + 2 * rz
        self.free_count += 1
        self.live_bytes -= outer
        if self.quarantine_capacity > 0:
            self._quarantine.append((outer_addr, outer))
            self.quarantine_bytes += outer
            self._drain_quarantine(self.quarantine_capacity)
        else:
            self._insert_free(outer_addr, outer)
        return size

    def _drain_quarantine(self, limit: int) -> None:
        """Evict oldest quarantined blocks until at most ``limit`` bytes remain."""
        while self.quarantine_bytes > limit and self._quarantine:
            outer_addr, outer = self._quarantine.popleft()
            self.quarantine_bytes -= outer
            self._insert_free(outer_addr, outer)
            if self._evict_hook is not None:
                self._evict_hook(outer_addr, outer)

    def flush_quarantine(self) -> None:
        """Return every quarantined block to the free list (teardown path)."""
        self._drain_quarantine(0)

    def realloc(self, addr: int, nbytes: int) -> int:
        """Realloc: free old, then allocate new (returns new address).

        Contents are not modelled (the simulator tracks addresses, not
        bytes), so freeing before allocating is safe and lets a block
        grow in place when its own space plus an adjacent hole is big
        enough — matching libc, where realloc of the last block extends
        it rather than inflating peak heap.  Callers that care about the
        copy's memory traffic issue it explicitly.

        ``realloc(addr, 0)`` follows the classic C semantics the rest of
        this wrapper models: it frees ``addr`` (when non-null) and
        returns the null address 0.
        """
        if nbytes == 0:
            if addr:
                self.free(addr)
            return 0
        if addr:
            self.free(addr)
        return self.malloc(nbytes)

    def size_of(self, addr: int) -> int | None:
        """Size of the live block starting at ``addr`` (None if not live)."""
        return self._live.get(addr)

    def redzone_of(self, addr: int) -> int:
        """Redzone width the live block at ``addr`` was carved with."""
        return self._rz.get(addr, 0)

    def live_blocks(self) -> dict[int, int]:
        return dict(self._live)

    def _insert_free(self, addr: int, size: int) -> None:
        starts = [e[0] for e in self._free]
        i = bisect_left(starts, addr)
        # Guard against overlap corruption.
        if i > 0 and self._free[i - 1][0] + self._free[i - 1][1] > addr:
            raise AllocationError(f"free-list overlap at {addr:#x}")
        if i < len(self._free) and addr + size > self._free[i][0]:
            raise AllocationError(f"free-list overlap at {addr:#x}")
        # Coalesce with successor, then predecessor.
        merged_next = i < len(self._free) and addr + size == self._free[i][0]
        merged_prev = i > 0 and self._free[i - 1][0] + self._free[i - 1][1] == addr
        if merged_prev and merged_next:
            self._free[i - 1][1] += size + self._free[i][1]
            self._free.pop(i)
        elif merged_prev:
            self._free[i - 1][1] += size
        elif merged_next:
            self._free[i][0] = addr
            self._free[i][1] += size
        else:
            self._free.insert(i, [addr, size])

    def check_invariants(self) -> None:
        """Validate free-list ordering/coalescing and accounting (for tests)."""
        prev_end = None
        free_bytes = 0
        for start, size in self._free:
            if size <= 0:
                raise AllocationError("zero-size free entry")
            if prev_end is not None and start < prev_end:
                raise AllocationError("free list out of order / overlapping")
            if prev_end is not None and start == prev_end:
                raise AllocationError("uncoalesced adjacent free entries")
            prev_end = start + size
            free_bytes += size
        live_outer = sum(
            size + 2 * self._rz.get(addr, 0) for addr, size in self._live.items()
        )
        if live_outer != self.live_bytes:
            raise AllocationError(
                f"live accounting mismatch: tracked {self.live_bytes} "
                f"computed {live_outer}"
            )
        quarantined = sum(outer for _addr, outer in self._quarantine)
        if quarantined != self.quarantine_bytes:
            raise AllocationError(
                f"quarantine accounting mismatch: tracked {self.quarantine_bytes} "
                f"computed {quarantined}"
            )
        if free_bytes + self.live_bytes + self.quarantine_bytes != self.capacity:
            raise AllocationError(
                f"accounting mismatch: free={free_bytes} live={self.live_bytes} "
                f"quarantine={self.quarantine_bytes} cap={self.capacity}"
            )
        if not set(self._rz) <= set(self._live):
            raise AllocationError("redzone record for a non-live block")
