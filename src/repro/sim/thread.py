"""Simulated threads: call stacks and cycle clocks.

A :class:`SimThread` is pinned to one hardware thread.  Its call stack is
the ground truth the unwinder (:mod:`repro.core.unwind`) walks at each
sample, and its ``clock`` accumulates both application cycles and — when
a profiler is attached with overhead accounting on — measurement cycles,
which is how Table 1's runtime overheads are reproduced.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.program import Function

__all__ = ["Frame", "SimThread"]

_frame_serial = itertools.count(1)


class Frame:
    """One procedure frame: the callee and the call-site IP in the caller.

    ``serial`` gives each pushed frame a distinct identity so the
    trampoline optimization can recognize "the same physical frame" when
    computing the least-common-ancestor of two unwinds (§4.1.3).
    """

    __slots__ = ("function", "callsite_ip", "serial")

    def __init__(self, function: "Function", callsite_ip: int) -> None:
        self.function = function
        self.callsite_ip = callsite_ip
        self.serial = next(_frame_serial)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame({self.function.name}, callsite={self.callsite_ip:#x})"


class SimThread:
    """One software thread pinned to a hardware thread."""

    def __init__(
        self,
        name: str,
        hw_tid: int,
        numa_node: int,
        thread_index: int,
        stack_base: int = 0,
    ) -> None:
        self.name = name
        self.hw_tid = hw_tid
        self.numa_node = numa_node
        self.thread_index = thread_index
        self.frames: list[Frame] = []
        self.clock = 0
        self.inst_count = 0
        self.mem_count = 0
        self._stack_cursor = stack_base
        # PMU per-thread sampling state (owned by the attached PMU engine).
        self.pmu_countdown = 0
        self.pmu_pending = None

    # -- call stack ------------------------------------------------------

    def push_frame(self, function: "Function", callsite_ip: int) -> Frame:
        frame = Frame(function, callsite_ip)
        self.frames.append(frame)
        return frame

    def pop_frame(self, expected: Frame | None = None) -> Frame:
        if not self.frames:
            raise SimulationError(f"thread {self.name}: pop from empty call stack")
        frame = self.frames.pop()
        if expected is not None and frame is not expected:
            raise SimulationError(
                f"thread {self.name}: unbalanced call stack "
                f"(popped {frame}, expected {expected})"
            )
        return frame

    @property
    def current_function(self) -> "Function":
        if not self.frames:
            raise SimulationError(f"thread {self.name}: no active function")
        return self.frames[-1].function

    @property
    def depth(self) -> int:
        return len(self.frames)

    # -- thread-private stack data ----------------------------------------

    def stack_alloc(self, nbytes: int, align: int = 16) -> int:
        """Reserve thread-stack space (attributed as *unknown data*)."""
        addr = (self._stack_cursor + align - 1) // align * align
        self._stack_cursor = addr + nbytes
        return addr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimThread({self.name}, hw={self.hw_tid}, node={self.numa_node}, "
            f"depth={self.depth}, clock={self.clock})"
        )
