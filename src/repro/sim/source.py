"""Source-code model: files and line references.

The post-mortem analyzer maps profile nodes back to source lines
(paper §4.2).  Simulated programs register their "source files" here so
views can display `file.c:175`-style locations and code snippets.
"""

from __future__ import annotations

__all__ = ["SourceFile"]


class SourceFile:
    """A named source file with optional line text for view rendering."""

    def __init__(self, path: str, lines: dict[int, str] | None = None) -> None:
        self.path = path
        self._lines: dict[int, str] = dict(lines or {})

    def set_line(self, line: int, text: str) -> None:
        self._lines[line] = text

    def line_text(self, line: int) -> str:
        return self._lines.get(line, "")

    def location(self, line: int) -> str:
        return f"{self.path}:{line}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceFile({self.path!r}, {len(self._lines)} annotated lines)"
