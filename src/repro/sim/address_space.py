"""Per-process virtual address space: segments and page placement.

Each process owns a disjoint slab of the (simulated) virtual address
space, carved into text / static / heap / stack segments.  The page table
here records each touched page's home NUMA node; placement is decided at
first touch by the effective policy — the process default (settable by
the ``numactl`` wrapper) unless an allocation-range override (the
``libnuma`` API) covers the page.
"""

from __future__ import annotations

from repro.errors import AddressError, ConfigError
from repro.machine.memory import MemoryManager
from repro.machine.policies import AllocPolicy, FirstTouch
from repro.sim.malloc import HeapAllocator
from repro.util.intervals import IntervalMap

__all__ = ["AddressSpace"]

_SLAB_BITS = 40
_TEXT_OFFSET = 0x0040_0000
_STATIC_OFFSET = 0x1000_0000
_HEAP_OFFSET = 0x10_0000_0000
_STACK_OFFSET = 0x80_0000_0000
_STACK_SIZE_PER_THREAD = 1 << 20


class AddressSpace:
    """Virtual address space of one simulated process."""

    def __init__(
        self,
        asid: int,
        memmgr: MemoryManager,
        page_bits: int = 12,
        heap_capacity: int = 1 << 32,
        default_policy: AllocPolicy | None = None,
    ) -> None:
        if asid < 0:
            raise ConfigError("asid must be >= 0")
        self.asid = asid
        self.base = (asid + 1) << _SLAB_BITS
        self.page_bits = page_bits
        self.memmgr = memmgr
        self.default_policy: AllocPolicy = default_policy or FirstTouch()
        self.heap = HeapAllocator(self.base + _HEAP_OFFSET, heap_capacity)
        self._text_cursor = self.base + _TEXT_OFFSET
        self._static_cursor = self.base + _STATIC_OFFSET
        self._stack_base = self.base + _STACK_OFFSET
        self._page_home: dict[int, int] = {}
        self._policy_overrides = IntervalMap()

    # -- segment carving ----------------------------------------------------

    def reserve_text(self, size: int) -> int:
        addr = self._text_cursor
        self._text_cursor += (size + 0xFFF) & ~0xFFF
        return addr

    def reserve_static(self, size: int) -> int:
        addr = self._static_cursor
        self._static_cursor += (size + 0xFFF) & ~0xFFF
        return addr

    def stack_base(self, thread_index: int) -> int:
        """Top-of-stack address for a thread's private stack area."""
        return self._stack_base + thread_index * _STACK_SIZE_PER_THREAD

    # -- NUMA policy ----------------------------------------------------------

    def set_default_policy(self, policy: AllocPolicy) -> None:
        self.default_policy = policy

    def set_range_policy(self, start: int, end: int, policy: AllocPolicy) -> None:
        """libnuma-style per-range override; wins over the process default."""
        self._policy_overrides.add(start, end, policy)

    def clear_range_policy(self, start: int) -> None:
        self._policy_overrides.remove(start)

    def policy_for(self, vaddr: int) -> AllocPolicy:
        override = self._policy_overrides.lookup(vaddr)
        return override if override is not None else self.default_policy

    # -- page table (hot path) -------------------------------------------------

    def home_of(self, vaddr: int, toucher_node: int) -> int:
        """Home NUMA node of the page containing ``vaddr``.

        First touch commits the page under the effective policy.
        """
        vpage = vaddr >> self.page_bits
        home = self._page_home.get(vpage, -1)
        if home >= 0:
            return home
        policy = self._policy_overrides.lookup(vaddr)
        if policy is None:
            policy = self.default_policy
        node = policy.place(toucher_node, vpage)
        self._page_home[vpage] = node
        self.memmgr.note_page_placed(node)
        return node

    def page_home_if_touched(self, vaddr: int) -> int | None:
        """Non-committing lookup (for tests/inspection)."""
        return self._page_home.get(vaddr >> self.page_bits)

    def touched_pages(self) -> int:
        return len(self._page_home)

    def pages_by_node(self, n_nodes: int) -> list[int]:
        counts = [0] * n_nodes
        for node in self._page_home.values():
            counts[node] += 1
        return counts

    def migrate_range(self, start: int, end: int, node: int) -> int:
        """Move already-touched pages in [start, end) to ``node``.

        Models ``numa_move_pages``/next-touch migration; returns the number
        of pages moved.  Placement accounting is updated; cache contents
        are left alone (migration moves DRAM pages, not cache lines).
        """
        if end <= start:
            raise AddressError("empty migration range")
        moved = 0
        first = start >> self.page_bits
        last = (end - 1) >> self.page_bits
        for vpage in range(first, last + 1):
            old = self._page_home.get(vpage)
            if old is not None and old != node:
                self.memmgr.note_page_released(old)
                self.memmgr.note_page_placed(node)
                self._page_home[vpage] = node
                moved += 1
        return moved
