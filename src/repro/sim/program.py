"""Program text model: functions with synthetic instruction addresses.

Each :class:`Function` occupies a contiguous range in its load module's
text segment.  A source line maps to up to ``SLOTS_PER_LINE`` instruction
addresses ("slots") so that, as in the paper's Figure 1, multiple memory
accesses on one source line are distinguishable — that per-access
resolution is what lets data-centric profiling decompose a line's latency
by variable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.loader import LoadModule
    from repro.sim.source import SourceFile

__all__ = ["Function", "SLOTS_PER_LINE", "BYTES_PER_SLOT"]

SLOTS_PER_LINE = 16
BYTES_PER_SLOT = 4


class Function:
    """A simulated function: name, source span, and a text address range."""

    __slots__ = (
        "name",
        "module",
        "source",
        "start_line",
        "n_lines",
        "text_base",
        "text_size",
    )

    def __init__(
        self,
        name: str,
        module: "LoadModule",
        source: "SourceFile",
        start_line: int,
        n_lines: int,
    ) -> None:
        if n_lines < 1 or start_line < 1:
            raise ConfigError(f"function {name}: bad source span")
        self.name = name
        self.module = module
        self.source = source
        self.start_line = start_line
        self.n_lines = n_lines
        self.text_base = 0  # assigned by LoadModule.add_function
        self.text_size = n_lines * SLOTS_PER_LINE * BYTES_PER_SLOT

    @property
    def end_line(self) -> int:
        return self.start_line + self.n_lines - 1

    @property
    def is_outlined(self) -> bool:
        """Is this a compiler-outlined parallel-region body (``$$OL$$``)?"""
        from repro.sim.openmp import parse_outlined

        return parse_outlined(self.name) is not None

    @property
    def outline_host(self) -> str | None:
        """Host function name if this is an outlined region, else ``None``."""
        from repro.sim.openmp import parse_outlined

        parsed = parse_outlined(self.name)
        return parsed[0] if parsed else None

    def ip(self, line: int, slot: int = 0) -> int:
        """Synthetic instruction address for (line, slot) within this function."""
        if not (self.start_line <= line <= self.end_line):
            raise ConfigError(
                f"{self.name}: line {line} outside [{self.start_line}, {self.end_line}]"
            )
        if not (0 <= slot < SLOTS_PER_LINE):
            raise ConfigError(f"{self.name}: slot {slot} out of range")
        offset = ((line - self.start_line) * SLOTS_PER_LINE + slot) * BYTES_PER_SLOT
        return self.text_base + offset

    def line_slot_of(self, ip: int) -> tuple[int, int]:
        """Inverse of :meth:`ip` — used by the post-mortem line mapper."""
        offset = ip - self.text_base
        if not (0 <= offset < self.text_size):
            raise ConfigError(f"ip {ip:#x} not inside function {self.name}")
        slot_index = offset // BYTES_PER_SLOT
        return (
            self.start_line + slot_index // SLOTS_PER_LINE,
            slot_index % SLOTS_PER_LINE,
        )

    def location(self, line: int | None = None) -> str:
        return self.source.location(line if line is not None else self.start_line)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Function({self.name}@{self.source.path}:{self.start_line})"
