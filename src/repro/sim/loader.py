"""Load modules: text segments, symbol tables, and static (.bss) data.

Mirrors §4.1.3 "Static data": each static variable has a named symbol
table entry giving its address range within the module; the profiler
reads these ranges when the module is loaded and drops them when it is
unloaded.  Both the executable and dynamically loaded libraries are load
modules, and — like HPCToolkit and unlike Memphis/MemProf — static
variables are tracked per-variable, not per-module.
"""

from __future__ import annotations

from repro.errors import AddressError, ConfigError
from repro.sim.program import Function
from repro.sim.source import SourceFile
from repro.util.intervals import IntervalMap

__all__ = ["LoadModule", "StaticVar"]


class StaticVar:
    """A static variable: symbol name + address range inside a module."""

    __slots__ = ("name", "module", "size", "address", "decl_line", "source")

    def __init__(
        self,
        name: str,
        module: "LoadModule",
        size: int,
        address: int,
        source: SourceFile | None = None,
        decl_line: int = 0,
    ) -> None:
        self.name = name
        self.module = module
        self.size = size
        self.address = address
        self.source = source
        self.decl_line = decl_line

    @property
    def end(self) -> int:
        return self.address + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticVar({self.name}, {self.size}B @ {self.address:#x})"


class LoadModule:
    """An executable or shared library mapped into a process.

    Layout within the module's slab: text segment first, then the static
    data (.bss) segment.  Addresses are assigned by the owning process
    when the module is loaded (``place``).
    """

    def __init__(self, name: str, is_executable: bool = False) -> None:
        self.name = name
        self.is_executable = is_executable
        self.loaded = False
        self.text_base = 0
        self.static_base = 0
        self._text_cursor = 0
        self._static_cursor = 0
        self.functions: list[Function] = []
        self.statics: list[StaticVar] = []
        self._fn_ranges = IntervalMap()
        self._static_ranges = IntervalMap()

    # -- build phase (before load) ----------------------------------------

    def add_function(
        self, name: str, source: SourceFile, start_line: int, n_lines: int
    ) -> Function:
        if self.loaded:
            raise ConfigError(f"{self.name}: cannot add functions after load")
        fn = Function(name, self, source, start_line, n_lines)
        fn.text_base = self._text_cursor  # relative until placed
        self._text_cursor += fn.text_size
        self.functions.append(fn)
        return fn

    def add_static(
        self,
        name: str,
        size: int,
        source: SourceFile | None = None,
        decl_line: int = 0,
        align: int = 64,
    ) -> StaticVar:
        if self.loaded:
            raise ConfigError(f"{self.name}: cannot add statics after load")
        if size < 1:
            raise ConfigError(f"static {name}: size must be >= 1")
        cursor = (self._static_cursor + align - 1) // align * align
        var = StaticVar(name, self, size, cursor, source, decl_line)
        self._static_cursor = cursor + size
        self.statics.append(var)
        return var

    # -- load / unload ------------------------------------------------------

    @property
    def text_size(self) -> int:
        return self._text_cursor

    @property
    def static_size(self) -> int:
        return self._static_cursor

    def place(self, text_base: int, static_base: int) -> None:
        """Assign absolute addresses (called by the process loader)."""
        if self.loaded:
            raise ConfigError(f"{self.name}: already loaded")
        self.text_base = text_base
        self.static_base = static_base
        for fn in self.functions:
            fn.text_base += text_base
            self._fn_ranges.add(fn.text_base, fn.text_base + fn.text_size, fn)
        for var in self.statics:
            var.address += static_base
            self._static_ranges.add(var.address, var.end, var)
        self.loaded = True

    def unplace(self) -> None:
        """Undo :meth:`place` (module unload)."""
        if not self.loaded:
            raise ConfigError(f"{self.name}: not loaded")
        for fn in self.functions:
            fn.text_base -= self.text_base
        for var in self.statics:
            var.address -= self.static_base
        self._fn_ranges.clear()
        self._static_ranges.clear()
        self.loaded = False

    # -- lookups -------------------------------------------------------------

    def resolve_ip(self, ip: int) -> tuple[Function, int, int]:
        """Map an instruction address to (function, line, slot)."""
        fn = self._fn_ranges.lookup(ip)
        if fn is None:
            raise AddressError(f"{self.name}: ip {ip:#x} not in any function")
        line, slot = fn.line_slot_of(ip)
        return fn, line, slot

    def static_at(self, addr: int) -> StaticVar | None:
        """Find the static variable containing ``addr``, if any."""
        return self._static_ranges.lookup(addr)

    def contains_ip(self, ip: int) -> bool:
        return self._fn_ranges.lookup(ip) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "exe" if self.is_executable else "lib"
        return f"LoadModule({self.name} [{kind}], fns={len(self.functions)}, statics={len(self.statics)})"
