"""Simulated MPI jobs: many ranks, each its own process/address space.

Ranks are executed one after another (their NUMA behaviour is intra-rank
— the paper notes pure-MPI codes have no NUMA problem precisely because
each rank is co-located with its data), but each rank gets a *real*
process: its own address space, allocator, threads, and profile.  Ranks
that share a node share that node's :class:`~repro.machine.presets.Machine`;
ranks on different nodes get separate machines, mirroring the paper's
4-node POWER7 runs with one MPI process per node.

Job wall time is the max over ranks, as for a real bulk-synchronous job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigError
from repro.machine.presets import Machine
from repro.sim.process import SimProcess

__all__ = ["MPIJob", "RankResult", "JobResult"]


@dataclass
class RankResult:
    """Outcome of one rank's execution."""

    rank: int
    process: SimProcess
    elapsed_cycles: int
    phase_cycles: dict[str, int]
    attachment: Any = None  # e.g. the rank's profiler


@dataclass
class JobResult:
    """Outcome of the whole job."""

    ranks: list[RankResult] = field(default_factory=list)
    machines: dict[int, Machine] = field(default_factory=dict)

    @property
    def elapsed_cycles(self) -> int:
        return max((r.elapsed_cycles for r in self.ranks), default=0)

    def elapsed_seconds(self) -> float:
        if not self.machines:
            return 0.0
        machine = next(iter(self.machines.values()))
        return machine.cycles_to_seconds(self.elapsed_cycles)

    def phase_cycles(self) -> dict[str, int]:
        """Per-phase job time: max across ranks (bulk-synchronous phases)."""
        merged: dict[str, int] = {}
        for r in self.ranks:
            for name, cycles in r.phase_cycles.items():
                merged[name] = max(merged.get(name, 0), cycles)
        return merged

    def phase_seconds(self) -> dict[str, float]:
        machine = next(iter(self.machines.values()))
        return {k: machine.cycles_to_seconds(v) for k, v in self.phase_cycles().items()}

    def attachments(self) -> list[Any]:
        return [r.attachment for r in self.ranks if r.attachment is not None]


class MPIJob:
    """Launch configuration for a simulated MPI(+OpenMP) job."""

    def __init__(
        self,
        machine_factory: Callable[[], Machine],
        n_ranks: int,
        ranks_per_node: int = 1,
        threads_per_rank: int = 1,
    ) -> None:
        if n_ranks < 1 or ranks_per_node < 1 or threads_per_rank < 1:
            raise ConfigError("n_ranks, ranks_per_node, threads_per_rank must be >= 1")
        self.machine_factory = machine_factory
        self.n_ranks = n_ranks
        self.ranks_per_node = ranks_per_node
        self.threads_per_rank = threads_per_rank

    def node_of(self, rank: int) -> int:
        """Which simulated node hosts this rank."""
        return rank // self.ranks_per_node

    def run_one(
        self,
        rank: int,
        rank_main: Callable[[SimProcess, int, int], None],
        attach: Callable[[SimProcess], Any] | None = None,
        machine: Machine | None = None,
    ) -> RankResult:
        """Execute a single rank on ``machine`` (fresh node if omitted).

        The unit of work the multiprocess driver (:mod:`repro.parallel`)
        ships to a worker OS process: one rank, one simulated process,
        one profile.  Pass ``machine`` to co-locate several ranks on a
        shared node, as :meth:`run` does.
        """
        if not 0 <= rank < self.n_ranks:
            raise ConfigError(f"rank {rank} outside job of {self.n_ranks} ranks")
        if machine is None:
            machine = self.machine_factory()
        pin_base = (rank % self.ranks_per_node) * self.threads_per_rank
        if pin_base + self.threads_per_rank > machine.n_threads:
            raise ConfigError(
                f"rank {rank}: pinning {self.threads_per_rank} threads at "
                f"{pin_base} exceeds the node's {machine.n_threads} HW threads"
            )
        process = SimProcess(machine, pid=rank, pin_base=pin_base)
        attachment = attach(process) if attach is not None else None
        rank_main(process, rank, self.n_ranks)
        if process.obs is not None:
            process.obs.on_rank_complete(process)
        return RankResult(
            rank=rank,
            process=process,
            elapsed_cycles=process.elapsed_cycles,
            phase_cycles=dict(process.phase_cycles),
            attachment=attachment,
        )

    def run(
        self,
        rank_main: Callable[[SimProcess, int, int], None],
        attach: Callable[[SimProcess], Any] | None = None,
    ) -> JobResult:
        """Execute ``rank_main(process, rank, n_ranks)`` for every rank.

        ``attach`` (if given) is called on each process before it runs —
        the hook point for installing a profiler — and its return value is
        kept in the rank's :class:`RankResult`.
        """
        result = JobResult()
        for rank in range(self.n_ranks):
            node = self.node_of(rank)
            machine = result.machines.get(node)
            if machine is None:
                machine = self.machine_factory()
                result.machines[node] = machine
            result.ranks.append(self.run_one(rank, rank_main, attach, machine))
        return result
