"""Opt-in sampled simulation: simulate a subset of access runs.

Full-fidelity simulation pays the memory-hierarchy model on every access
run.  For throughput studies that is often unnecessary: a deterministic
subset of the *long* runs, plus every short run, predicts level counts,
latencies and per-variable attributions to within a few percent — the
"Memory Access Vectors" result this mode reproduces, with an explicit
fidelity report (:mod:`repro.parallel.fidelity`) instead of blind trust.

Model
-----

``Ctx`` consults the process's :class:`RunSampler` before each batched
access run:

- runs shorter than ``min_run`` accesses are always simulated (they are
  cheap, numerous, and carry most of the *distinct-context* information
  the profiler attributes);
- longer ("eligible") runs are simulated with probability ``rate`` by a
  seeded :class:`~repro.util.rng.DeterministicRNG` draw — same seed,
  same run order, same decisions, bit-for-bit;
- a skipped run advances the thread clock by ``count`` times the EWMA
  cycles-per-access of the runs actually simulated so far (the first
  eligible run is always simulated to prime the estimate), delivers no
  PMU samples, and touches no machine state.

Estimator and error model
-------------------------

Skipped accesses never reach the hierarchy, so raw event counts (level
counts, profile sample counts, latency sums) are *undercounts* by
roughly the sampled fraction.  The extrapolation :meth:`RunSampler.scale`
— issued accesses over simulated accesses — multiplies any count-like
metric back to full-run magnitude; it is exact when skipped runs behave
like simulated ones on average (the EWMA clock estimate makes the same
assumption).  Share-type metrics (per-variable fractions) need no
scaling at all: both numerator and denominator shrink together.  The
residual error is therefore concentrated in (a) heterogeneity between
skipped and simulated runs and (b) warmup distortion — which is exactly
what the fidelity report measures, per metric and per variable, by
running an app preset both ways.

Activation mirrors ``repro.sanitize``: this module is consulted through
``sys.modules`` only if something imported it, so runs that never enable
sampling pay nothing.  Use::

    from repro.sim.sampling import sampling

    with sampling(rate=0.25, seed=7):
        db = run_app_rank("nw", 0, 1)

Worker processes forked while a session is active inherit it (the
parallel driver's default start method), each deriving its own stream
from the session seed and its pid.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.errors import ConfigError
from repro.util.rng import DeterministicRNG, derive_rank_seed

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = [
    "SamplingConfig",
    "RunSampler",
    "sampling",
    "activate",
    "deactivate",
    "active_config",
    "maybe_attach",
]

_EWMA_ALPHA = 0.25  # weight of the newest cycles-per-access observation


@dataclass(frozen=True)
class SamplingConfig:
    """Parameters of one sampled-simulation session."""

    rate: float = 0.25
    min_run: int = 64
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise ConfigError(f"sampling rate must be in (0, 1], got {self.rate}")
        if self.min_run < 1:
            raise ConfigError("min_run must be >= 1")


class RunSampler:
    """Per-process run-sampling state (decisions, clock estimate, tallies)."""

    __slots__ = (
        "config",
        "_rng",
        "_cpa",
        "issued_runs",
        "issued_accesses",
        "scalar_accesses",
        "eligible_runs",
        "eligible_accesses",
        "skipped_runs",
        "skipped_accesses",
        "estimated_cycles",
        "simulated_cycles",
    )

    def __init__(self, config: SamplingConfig, seed: int) -> None:
        self.config = config
        self._rng = DeterministicRNG(seed)
        self._cpa: float | None = None  # EWMA cycles per simulated access
        self.issued_runs = 0
        self.issued_accesses = 0
        self.scalar_accesses = 0
        self.eligible_runs = 0
        self.eligible_accesses = 0
        self.skipped_runs = 0
        self.skipped_accesses = 0
        self.estimated_cycles = 0
        self.simulated_cycles = 0

    # -- hot path ---------------------------------------------------------

    def note_scalar(self) -> None:
        """Account one scalar (non-run) access — always simulated.

        Scalar accesses count toward the issued/simulated totals so that
        :meth:`scale` extrapolates only the *run* undercount — a profile
        mixing per-access gathers with strided runs would otherwise have
        its fully-simulated scalar portion inflated too.  They stay out
        of the run EWMA: a skipped run's clock estimate should reflect
        runs, whose locality differs from data-dependent scalar traffic.
        """
        self.issued_accesses += 1
        self.scalar_accesses += 1

    def observe_run(self, count: int) -> bool:
        """Account one issued run; return whether to simulate it."""
        self.issued_runs += 1
        self.issued_accesses += count
        if count < self.config.min_run:
            return True
        self.eligible_runs += 1
        self.eligible_accesses += count
        if self._cpa is None:
            # Always simulate the first eligible run: it primes the
            # clock estimate for everything skipped after it.
            return True
        return self._rng.random() < self.config.rate

    def note_simulated(self, count: int, cycles: int) -> None:
        """Fold a simulated run into the cycles-per-access estimate."""
        if count <= 0:
            return
        self.simulated_cycles += cycles
        obs = cycles / count
        cpa = self._cpa
        self._cpa = obs if cpa is None else cpa + _EWMA_ALPHA * (obs - cpa)

    def estimate_skipped(self, count: int) -> int:
        """Clock advance charged for a run that is not simulated."""
        self.skipped_runs += 1
        self.skipped_accesses += count
        est = int(count * (self._cpa or 0.0))
        self.estimated_cycles += est
        return est

    # -- reporting --------------------------------------------------------

    @property
    def simulated_accesses(self) -> int:
        return self.issued_accesses - self.skipped_accesses

    def scale(self) -> float:
        """Extrapolation factor for count-type metrics (>= 1.0)."""
        simulated = self.simulated_accesses
        if simulated <= 0:
            return 1.0
        return self.issued_accesses / simulated

    def to_meta(self) -> dict[str, str]:
        """Provenance stamped into a rank's profile DB metadata."""
        return {
            "sampling_rate": repr(self.config.rate),
            "sampling_min_run": str(self.config.min_run),
            "sampling_seed": str(self.config.seed),
            "sampling_issued_runs": str(self.issued_runs),
            "sampling_issued_accesses": str(self.issued_accesses),
            "sampling_scalar_accesses": str(self.scalar_accesses),
            "sampling_skipped_runs": str(self.skipped_runs),
            "sampling_skipped_accesses": str(self.skipped_accesses),
            "sampling_estimated_cycles": str(self.estimated_cycles),
            "sampling_scale": repr(self.scale()),
        }


# -- session management (mirrors repro.sanitize's activation seam) ---------

_active: SamplingConfig | None = None


def activate(config: SamplingConfig) -> None:
    """Enable sampling for every :class:`SimProcess` created after this."""
    global _active
    _active = config


def deactivate() -> None:
    global _active
    _active = None


def active_config() -> SamplingConfig | None:
    return _active


@contextmanager
def sampling(
    rate: float = 0.25, min_run: int = 64, seed: int = 0x5EED
) -> Iterator[SamplingConfig]:
    """Scoped sampled-simulation session."""
    global _active
    config = SamplingConfig(rate=rate, min_run=min_run, seed=seed)
    previous = _active
    activate(config)
    try:
        yield config
    finally:
        _active = previous


def maybe_attach(process: "SimProcess") -> None:
    """Install a sampler on ``process`` if a session is active.

    Called from ``SimProcess.__init__`` through the ``sys.modules`` seam;
    each process derives an independent deterministic stream from the
    session seed and its pid, so multiprocess ranks sample reproducibly
    and independently.
    """
    if _active is not None:
        process.sampler = RunSampler(_active, derive_rank_seed(_active.seed, process.pid))
