"""Round-robin interleaved execution of kernel generators.

Simulated threads are Python generators that yield control periodically
(app kernels yield about once per inner-loop chunk).  The scheduler
resumes each live generator ``quantum`` times per round and rotates the
memory-controller contention window after every full round, which is what
makes concurrent DRAM traffic from many threads contend at a shared
controller.
"""

from __future__ import annotations

from typing import Generator, Iterable

from repro.machine.hierarchy import MemoryHierarchy

__all__ = ["drive"]

DEFAULT_QUANTUM = 2


def drive(
    gens: Iterable[Generator],
    hierarchy: MemoryHierarchy,
    quantum: int = DEFAULT_QUANTUM,
) -> None:
    """Run all generators to completion, interleaved round-robin."""
    alive = [g for g in gens]
    while alive:
        survivors = []
        for gen in alive:
            try:
                for _ in range(quantum):
                    next(gen)
            except StopIteration:
                continue
            survivors.append(gen)
        alive = survivors
        hierarchy.new_window()
