"""Multiprocess profiling driver and parallel reduction-tree merge.

:mod:`repro.core.merge` *models* the paper's §4.2 MPI reduction tree
(it reports critical-path node visits but runs in one process).  This
package executes the same schedule for real:

- :mod:`repro.parallel.registry` — the apps the driver can run, by name;
- :mod:`repro.parallel.driver` — one worker OS process per simulated MPI
  rank, deterministic per-rank seeding, atomic ``.rpdb`` output files,
  crash/timeout detection with bounded retry;
- :mod:`repro.parallel.merge` — the reduction-tree merge dispatched
  round by round onto a process pool, profiles crossing process
  boundaries as codec bytes, with graceful degradation to a partial
  merge when inputs are corrupt or workers die.
"""

from repro.parallel.driver import DriverReport, RankOutcome, profile_ranks
from repro.parallel.merge import (
    ParallelMergeReport,
    merge_rpdb_files,
    parallel_reduction_merge,
)
from repro.parallel.registry import APPS, rank_runner, register_app, run_app_rank

__all__ = [
    "APPS",
    "DriverReport",
    "ParallelMergeReport",
    "RankOutcome",
    "merge_rpdb_files",
    "parallel_reduction_merge",
    "profile_ranks",
    "rank_runner",
    "register_app",
    "run_app_rank",
]
