"""Fidelity report for sampled simulation: sampled vs full divergence.

Sampled simulation (:mod:`repro.sim.sampling`) trades exactness for
throughput; this module measures what the trade actually cost for a
given app preset.  It runs one rank twice — full-fidelity, then under a
sampling session — and compares:

- **per-metric totals**: each :class:`~repro.core.metrics.MetricKind`
  total from the sampled run, multiplied by the sampler's extrapolation
  scale, against the full run's total (relative error);
- **per-variable attributions**: each top variable's *share* of samples
  and latency, sampled vs full (absolute delta — shares are
  self-normalizing and take no scaling);
- **elapsed cycles**: the EWMA clock estimate's end-to-end accuracy.

The report is the contract behind the documented error bound: CI runs it
over every bundled app preset (``hpcview fidelity``) and fails when any
divergence exceeds the threshold, so the bound in DESIGN.md stays an
enforced property rather than a hope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import Analyzer, ExperimentDB
from repro.core.metrics import MetricKind
from repro.core.profiledb import ProfileDB
from repro.parallel.registry import run_app_rank
from repro.sim.sampling import sampling

__all__ = [
    "MetricFidelity",
    "VariableFidelity",
    "FidelityReport",
    "measure_fidelity",
    "render_fidelity",
]


@dataclass(frozen=True)
class MetricFidelity:
    """One metric's sampled-vs-full comparison."""

    metric: str
    full: int
    sampled_raw: int
    sampled_scaled: float
    rel_err: float


@dataclass(frozen=True)
class VariableFidelity:
    """One variable's share comparison under one metric."""

    variable: str
    metric: str
    full_share: float
    sampled_share: float
    delta: float


@dataclass
class FidelityReport:
    """Divergence of a sampled run from its full-fidelity twin."""

    app: str
    preset: str
    variant: str
    rate: float
    min_run: int
    seed: int
    scale: float
    skipped_accesses: int
    issued_accesses: int
    elapsed_full: int
    elapsed_sampled: int
    metrics: list[MetricFidelity] = field(default_factory=list)
    variables: list[VariableFidelity] = field(default_factory=list)

    @property
    def elapsed_rel_err(self) -> float:
        return _rel_err(self.elapsed_sampled, self.elapsed_full)

    @property
    def max_metric_rel_err(self) -> float:
        errs = [m.rel_err for m in self.metrics]
        errs.append(self.elapsed_rel_err)
        return max(errs)

    @property
    def max_share_delta(self) -> float:
        return max((v.delta for v in self.variables), default=0.0)

    def within(self, max_metric_rel_err: float, max_share_delta: float) -> bool:
        """Is every divergence inside the documented bound?"""
        return (
            self.max_metric_rel_err <= max_metric_rel_err
            and self.max_share_delta <= max_share_delta
        )


def _rel_err(estimate: float, truth: float) -> float:
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / truth


def _analyze(name: str, db: ProfileDB) -> ExperimentDB:
    return Analyzer(name).add(db).analyze()


# Share comparisons use the attribution-bearing metrics: sample counts
# drive every GUI view, latency weights them.  REMOTE/TLB_MISS totals are
# still compared (they are in the per-metric table) but their per-variable
# shares are ratios of two small counts and would dominate the delta with
# pure sampling noise.
_SHARE_KINDS = (MetricKind.SAMPLES, MetricKind.LATENCY)


def measure_fidelity(
    app: str,
    preset: str = "smoke",
    variant: str = "original",
    rate: float = 0.25,
    min_run: int = 64,
    seed: int = 0x5EED,
    top_n: int = 8,
) -> FidelityReport:
    """Run ``app`` full and sampled, and quantify the divergence.

    Both runs use rank 0 of a 1-rank job with the same preset/variant, so
    the only difference between them is the sampling session.
    """
    full_db = run_app_rank(app, 0, 1, variant=variant, preset=preset)
    with sampling(rate=rate, min_run=min_run, seed=seed):
        sampled_db = run_app_rank(app, 0, 1, variant=variant, preset=preset)

    full = _analyze(f"{app}-full", full_db)
    samp = _analyze(f"{app}-sampled", sampled_db)
    scale = float(sampled_db.meta.get("sampling_scale", "1.0"))

    report = FidelityReport(
        app=app,
        preset=preset,
        variant=variant,
        rate=rate,
        min_run=min_run,
        seed=seed,
        scale=scale,
        skipped_accesses=int(sampled_db.meta.get("sampling_skipped_accesses", "0")),
        issued_accesses=int(sampled_db.meta.get("sampling_issued_accesses", "0")),
        elapsed_full=int(full_db.meta.get("elapsed_cycles", "0")),
        elapsed_sampled=int(sampled_db.meta.get("elapsed_cycles", "0")),
    )

    for kind in MetricKind:
        full_total = full.total(kind)
        raw = samp.total(kind)
        scaled = raw * scale
        report.metrics.append(
            MetricFidelity(
                metric=kind.value,
                full=full_total,
                sampled_raw=raw,
                sampled_scaled=scaled,
                rel_err=_rel_err(scaled, full_total),
            )
        )

    for kind in _SHARE_KINDS:
        names: list[str] = []
        for exp in (full, samp):
            for var in exp.top_variables(kind, top_n):
                if var.name not in names:
                    names.append(var.name)
        for name in names:
            full_share = full.variable_share(name, kind)
            samp_share = samp.variable_share(name, kind)
            report.variables.append(
                VariableFidelity(
                    variable=name,
                    metric=kind.value,
                    full_share=full_share,
                    sampled_share=samp_share,
                    delta=abs(samp_share - full_share),
                )
            )
    return report


def render_fidelity(report: FidelityReport) -> str:
    """Human-readable fidelity report (what ``hpcview fidelity`` prints)."""
    lines = [
        f"fidelity report: {report.app} (preset={report.preset}, "
        f"variant={report.variant})",
        f"  sampling: rate={report.rate} min_run={report.min_run} "
        f"seed={report.seed:#x}",
        f"  accesses: issued={report.issued_accesses} "
        f"skipped={report.skipped_accesses} scale={report.scale:.4f}",
        f"  elapsed cycles: full={report.elapsed_full} "
        f"sampled={report.elapsed_sampled} "
        f"rel_err={report.elapsed_rel_err:.4f}",
        "",
        f"  {'metric':<10} {'full':>14} {'sampled*scale':>16} {'rel_err':>9}",
    ]
    for m in report.metrics:
        lines.append(
            f"  {m.metric:<10} {m.full:>14} {m.sampled_scaled:>16.1f} "
            f"{m.rel_err:>9.4f}"
        )
    lines.append("")
    lines.append(
        f"  {'variable':<28} {'metric':<8} {'full':>8} {'sampled':>8} {'delta':>8}"
    )
    for v in report.variables:
        lines.append(
            f"  {v.variable:<28} {v.metric:<8} {v.full_share:>8.4f} "
            f"{v.sampled_share:>8.4f} {v.delta:>8.4f}"
        )
    lines.append("")
    lines.append(
        f"  max metric rel_err={report.max_metric_rel_err:.4f} "
        f"max share delta={report.max_share_delta:.4f}"
    )
    return "\n".join(lines)
