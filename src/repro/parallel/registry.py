"""Named rank-runners the multiprocess driver can execute.

Every entry maps an app name to a callable with the uniform signature

    runner(rank, n_ranks, variant, preset) -> ProfileDB

App modules are imported lazily so that ``import repro.parallel`` stays
cheap and a broken app cannot take the whole driver down at import time.
Tests (and downstream users) can add runners with :func:`register_app`;
registrations made before the driver forks its workers are inherited by
them (the default ``fork`` start method), which is how the test suite
injects crashing/hanging workers.
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable, Protocol

from repro.core.profiledb import ProfileDB
from repro.errors import ConfigError

__all__ = ["APPS", "RankRunner", "rank_runner", "register_app", "run_app_rank"]


class RankRunner(Protocol):
    def __call__(
        self, rank: int, n_ranks: int, variant: str = ..., preset: str = ...
    ) -> ProfileDB: ...


# app name -> module with a run_rank(rank, n_ranks, variant, preset) function
_APP_MODULES = {
    "amg2006": "repro.apps.amg2006",
    "lulesh": "repro.apps.lulesh",
    "nw": "repro.apps.nw",
    "streamcluster": "repro.apps.streamcluster",
    "sweep3d": "repro.apps.sweep3d",
}

# Extra runners registered at runtime (tests, downstream users).
_EXTRA: dict[str, RankRunner] = {}

APPS: tuple[str, ...] = tuple(sorted(_APP_MODULES))


def register_app(name: str, runner: RankRunner) -> None:
    """Expose a custom rank-runner to the driver under ``name``."""
    _EXTRA[name] = runner


def rank_runner(app: str) -> RankRunner:
    runner = _EXTRA.get(app)
    if runner is not None:
        return runner
    module_name = _APP_MODULES.get(app)
    if module_name is None:
        known = ", ".join(sorted((*_APP_MODULES, *_EXTRA)))
        raise ConfigError(f"unknown app {app!r}; known apps: {known}")
    return import_module(module_name).run_rank


def run_app_rank(
    app: str, rank: int, n_ranks: int, variant: str = "original",
    preset: str = "smoke",
) -> ProfileDB:
    """Run one rank of ``app`` in this process and return its profile."""
    return rank_runner(app)(rank, n_ranks, variant=variant, preset=preset)
