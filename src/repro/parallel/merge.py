"""Reduction-tree profile merge executed for real on a process pool.

:func:`repro.core.merge.reduction_tree_merge` *models* the paper's §4.2
parallel reduction (it computes the schedule and its critical-path cost
inside one process).  :func:`parallel_reduction_merge` executes the same
schedule with actual parallelism: each round's pairwise merges are
dispatched concurrently onto a :class:`~concurrent.futures.ProcessPoolExecutor`,
and profiles cross process boundaries as binary-codec bytes (the compact
``.rpdb`` wire format, so IPC cost stays proportional to profile size,
not Python object graphs).

To keep IPC minimal the leaf collapse (round 0) is fused into each
round-1 task: a worker receives up to ``arity`` raw rank blobs, decodes
and collapses them locally, chain-merges the group, and ships back one
intermediate blob.  Per-step node-visit counts ride along so the parent
reconstructs a :class:`~repro.core.merge.MergeStats` with the same shape
(``per_round_visits``, ``critical_path_visits``) as the modelled merge.

Degradation semantics: corrupt input blobs are dropped (never crash a
round); crashed pool workers are retried on a fresh pool a bounded
number of times, then the affected groups are merged in the parent; a
group that fails even there is dropped.  Any drop marks the output DB's
``meta`` with ``partial=true`` plus the dropped labels — a clean run
leaves ``meta`` empty so its canonical bytes match the sequential
:func:`~repro.core.merge.merge_profiles` result exactly.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from pathlib import Path
from typing import Sequence

from repro.core.merge import (
    MergeStats,
    _collapse_db,
    consensus_meta,
    merge_thread_profiles,
)
from repro.core.profiledb import ProfileDB
from repro.errors import ConfigError, ProfileError

__all__ = ["ParallelMergeReport", "merge_rpdb_files", "parallel_reduction_merge"]


@dataclass
class ParallelMergeReport:
    """How the parallel merge actually executed (vs. the modelled schedule)."""

    n_inputs: int
    jobs: int
    arity: int
    rounds: int = 0
    tasks_dispatched: int = 0      # tasks run on the pool
    pool_restarts: int = 0         # times the pool died and was rebuilt
    parent_fallbacks: int = 0      # tasks that ended up running in-parent
    dropped: list[tuple[str, str]] = field(default_factory=list)  # (label, why)
    elapsed_seconds: float = 0.0

    @property
    def partial(self) -> bool:
        return bool(self.dropped)

    def summary(self) -> str:
        status = "ok" if not self.partial else (
            f"PARTIAL ({len(self.dropped)} input(s) dropped)"
        )
        return (
            f"merged {self.n_inputs} profile(s) in {self.rounds} round(s) "
            f"({self.tasks_dispatched} pool task(s), {self.jobs} worker(s), "
            f"arity {self.arity}) in {self.elapsed_seconds:.2f}s — {status}"
        )


# ---------------------------------------------------------------------------
# Worker side


def _merge_group(
    blobs: Sequence[bytes], labels: Sequence[str], collapse: bool
) -> tuple[bytes | None, list[int], int, int, int, list[tuple[str, str]]]:
    """Merge one group of serialized profiles inside a pool worker.

    Returns ``(out_blob, leaf_visits, merge_visits, pairwise_merges,
    profiles_in, dropped)``.  ``leaf_visits`` has one entry per
    successfully decoded input when ``collapse`` is true (the round-0
    cost the parent folds into the critical path); ``merge_visits`` is
    the within-group chain-merge cost (this round's contribution).
    """
    stats = MergeStats()
    dropped: list[tuple[str, str]] = []
    work = []  # collapsed/decoded ThreadProfiles, group order preserved
    decoded: list[ProfileDB] = []  # for consensus-meta propagation
    leaf_visits: list[int] = []
    profiles_in = 0
    for blob, label in zip(blobs, labels):
        try:
            db = ProfileDB.from_bytes(blob)
        except ProfileError as exc:
            dropped.append((label, str(exc)))
            continue
        decoded.append(db)
        profiles_in += len(db.threads)
        if collapse:
            before = stats.node_visits
            work.append(_collapse_db(db, stats))
            leaf_visits.append(stats.node_visits - before)
        else:
            # Intermediate DBs carry exactly one already-collapsed profile;
            # decoding gave us a private copy we may merge into freely.
            work.extend(db.all_profiles())
    if not work:
        return None, leaf_visits, 0, stats.pairwise_merges, profiles_in, dropped

    before = stats.node_visits
    target = work[0]
    for source in work[1:]:
        merge_thread_profiles(target, source, stats)
    merge_visits = stats.node_visits - before

    out = ProfileDB("merge-intermediate")
    out.add_thread(target)
    # Same consensus-meta rule as the in-process merge: intersection is
    # schedule-independent, preserving byte-identity across schedules.
    out.meta.update(consensus_meta(decoded))
    return (
        out.to_bytes(),
        leaf_visits,
        merge_visits,
        stats.pairwise_merges,
        profiles_in,
        dropped,
    )


# ---------------------------------------------------------------------------
# Parent side


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _obs_session():
    """The active repro.obs session, if that subsystem is even imported."""
    obs_mod = sys.modules.get("repro.obs")
    return obs_mod.active_session() if obs_mod is not None else None


class _PoolRunner:
    """Process pool with crash detection, bounded retry, and in-parent
    fallback — a dead worker degrades throughput, never correctness."""

    def __init__(self, ctx, jobs: int, retries: int, timeout: float,
                 report: ParallelMergeReport):
        self._ctx = ctx
        self._jobs = jobs
        self._retries = retries
        self._timeout = timeout
        self._report = report
        self._executor: ProcessPoolExecutor | None = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._jobs, mp_context=self._ctx
            )
        return self._executor

    def _kill_pool(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        # Best effort: stop feeding work, then make sure no worker (e.g.
        # one stuck past the round deadline) outlives us.
        executor.shutdown(wait=False, cancel_futures=True)
        for process in getattr(executor, "_processes", {}).values():
            if process.is_alive():
                process.terminate()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def run_round(self, tasks: list[tuple]) -> list[tuple | None]:
        """Run one round's tasks concurrently; every slot gets a result
        or None (only when even the in-parent fallback failed)."""
        results: list[tuple | None] = [None] * len(tasks)
        remaining = sorted(range(len(tasks)))
        for attempt in range(self._retries + 1):
            if not remaining:
                return results
            if attempt:
                self._report.pool_restarts += 1
            try:
                pool = self._pool()
                futures = {
                    i: pool.submit(_merge_group, *tasks[i]) for i in remaining
                }
            except (OSError, RuntimeError):
                self._kill_pool()
                continue
            self._report.tasks_dispatched += len(futures)
            deadline = time.monotonic() + self._timeout
            broken = False
            still_remaining = []
            for i, future in futures.items():
                if broken:
                    still_remaining.append(i)
                    continue
                try:
                    results[i] = future.result(
                        timeout=max(0.0, deadline - time.monotonic())
                    )
                except (BrokenProcessPool, FuturesTimeout, OSError):
                    # Pool died under us or a worker wedged: rebuild and
                    # retry everything still unfinished.
                    still_remaining.append(i)
                    broken = True
                except Exception:
                    still_remaining.append(i)
            if broken:
                self._kill_pool()
            remaining = still_remaining
        for i in remaining:
            self._report.parent_fallbacks += 1
            try:
                results[i] = _merge_group(*tasks[i])
            except Exception:
                results[i] = None
        return results


def _grouped(items: list, arity: int) -> list[list]:
    return [items[i : i + arity] for i in range(0, len(items), arity)]


def _mark_partial(db: ProfileDB, dropped: list[tuple[str, str]]) -> None:
    if not dropped:
        return
    db.meta["partial"] = "true"
    db.meta["dropped_count"] = str(len(dropped))
    db.meta["dropped"] = ";".join(label for label, _ in dropped)


def parallel_reduction_merge(
    blobs: Sequence[bytes],
    name: str = "job",
    *,
    labels: Sequence[str] | None = None,
    arity: int = 2,
    jobs: int | None = None,
    retries: int = 1,
    round_timeout: float = 300.0,
    start_method: str | None = None,
) -> tuple[ProfileDB, MergeStats, ParallelMergeReport]:
    """Merge serialized ProfileDBs with a real process-pool reduction tree.

    Executes exactly the schedule :func:`reduction_tree_merge` models: a
    fused leaf-collapse+round-1 task per input group, then one task per
    multi-member group per round.  On a clean run the output's canonical
    bytes equal the sequential merge's and the returned
    :class:`MergeStats` matches the modelled one; degraded runs (corrupt
    blobs, dead workers) produce a partial merge flagged in ``db.meta``
    and itemized in the report.
    """
    if not blobs:
        raise ProfileError("nothing to merge")
    if arity < 2:
        raise ProfileError("reduction arity must be >= 2")
    if labels is None:
        labels = [f"input[{i}]" for i in range(len(blobs))]
    elif len(labels) != len(blobs):
        raise ConfigError("labels must match blobs one-to-one")
    if jobs is None:
        jobs = min(len(blobs), _available_cpus())
    if jobs < 1:
        raise ConfigError("jobs must be >= 1")
    if start_method is None:
        start_method = "fork" if "fork" in get_all_start_methods() else "spawn"

    obs = _obs_session()
    obs_t0 = obs.clock.now_us() if obs is not None else 0.0
    t0 = time.monotonic()
    stats = MergeStats()
    report = ParallelMergeReport(n_inputs=len(blobs), jobs=jobs, arity=arity)
    runner = _PoolRunner(
        get_context(start_method), jobs, retries, round_timeout, report
    )

    def timed_round(label: str, tasks: list[tuple]) -> list[tuple | None]:
        if obs is None:
            return runner.run_round(tasks)
        start = obs.clock.now_us()
        try:
            return runner.run_round(tasks)
        finally:
            obs.trace.complete(
                name=label, cat="merge", ts_us=start,
                dur_us=obs.clock.now_us() - start,
                pid=0, tid=2, args={"tasks": len(tasks)},
            )

    try:
        # Round 0+1 fused: collapse each input's threads and chain-merge
        # the group, one pool task per group of `arity` raw inputs.
        groups = _grouped(list(zip(blobs, labels)), arity)
        tasks = [
            ([blob for blob, _ in group], [label for _, label in group], True)
            for group in groups
        ]
        results = timed_round(f"merge-round1[{len(tasks)}]", tasks)

        leaf_all: list[int] = []
        round_visits: list[int] = []
        work: list[tuple[bytes, str]] = []  # (intermediate blob, label)
        for group_i, (task, result) in enumerate(zip(tasks, results)):
            if result is None:
                for label in task[1]:
                    report.dropped.append((label, "merge worker group failed"))
                continue
            blob, leaf_visits, merge_visits, pairwise, profiles_in, dropped = result
            report.dropped.extend(dropped)
            leaf_all.extend(leaf_visits)
            stats.pairwise_merges += pairwise
            stats.profiles_in += profiles_in
            round_visits.append(merge_visits)
            if blob is not None:
                work.append((blob, f"round1:group{group_i}"))

        stats.node_visits = sum(leaf_all) + sum(round_visits)
        stats.per_round_visits.append(sum(leaf_all))
        stats.critical_path_visits += max(leaf_all, default=0)
        if len(blobs) > 1:
            stats.rounds += 1
            stats.per_round_visits.append(sum(round_visits))
            stats.critical_path_visits += max(round_visits, default=0)

        # Subsequent rounds: pairwise-merge the intermediates.  Singleton
        # groups ride forward without a task (cost 0), like the model.
        round_i = 1
        while len(work) > 1:
            round_i += 1
            groups = _grouped(work, arity)
            multi = [g for g in groups if len(g) > 1]
            tasks = [
                ([blob for blob, _ in group], [label for _, label in group], False)
                for group in multi
            ]
            results = timed_round(f"merge-round{round_i}[{len(tasks)}]", tasks)

            round_visits = [0] * len(groups)
            next_work: list[tuple[bytes, str]] = []
            result_iter = iter(results)
            for group_i, group in enumerate(groups):
                if len(group) == 1:
                    next_work.append(group[0])
                    continue
                result = next(result_iter)
                if result is None:
                    for _, label in group:
                        report.dropped.append((label, "merge worker group failed"))
                    continue
                blob, _leaf, merge_visits, pairwise, _n, dropped = result
                report.dropped.extend(dropped)
                stats.pairwise_merges += pairwise
                round_visits[group_i] = merge_visits
                if blob is not None:
                    next_work.append((blob, f"round{round_i}:group{group_i}"))
            stats.rounds += 1
            stats.node_visits += sum(round_visits)
            stats.per_round_visits.append(sum(round_visits))
            stats.critical_path_visits += max(round_visits, default=0)
            work = next_work
    finally:
        runner.close()

    if not work:
        raise ProfileError(
            "nothing to merge: every input was dropped "
            f"({len(report.dropped)} failure(s))"
        )

    final_db = ProfileDB.from_bytes(work[0][0])
    (merged,) = final_db.all_profiles()
    merged.thread_name = f"{name}.merged"
    out = ProfileDB(name)
    out.add_thread(merged)
    out.meta.update(final_db.meta)  # consensus meta from the reduction
    _mark_partial(out, report.dropped)
    report.rounds = stats.rounds
    report.elapsed_seconds = time.monotonic() - t0
    if obs is not None:
        obs.trace.complete(
            name=f"parallel_reduction_merge:{name}",
            cat="merge",
            ts_us=obs_t0,
            dur_us=obs.clock.now_us() - obs_t0,
            pid=0,
            tid=2,
            args={"inputs": len(blobs), "arity": arity, "jobs": jobs},
        )
        metrics = obs.metrics
        labels_m = {"job": name}
        for metric, value, help_text in (
            ("repro_merge_inputs", report.n_inputs, "profiles fed to the merge"),
            ("repro_merge_fanin", arity, "reduction-tree arity"),
            ("repro_merge_rounds", report.rounds, "reduction rounds executed"),
            ("repro_merge_tasks", report.tasks_dispatched,
             "tasks dispatched to the pool"),
            ("repro_merge_pool_restarts", report.pool_restarts,
             "pool rebuilds after worker death"),
            ("repro_merge_parent_fallbacks", report.parent_fallbacks,
             "tasks that ran in the parent"),
            ("repro_merge_dropped", len(report.dropped),
             "inputs dropped from the merge"),
            ("repro_merge_seconds", report.elapsed_seconds,
             "wall time of the whole merge"),
        ):
            metrics.set_gauge(metric, value, labels_m, help_text=help_text)
    return out, stats, report


def merge_rpdb_files(
    paths: Sequence[str | Path],
    name: str = "job",
    **kwargs,
) -> tuple[ProfileDB, MergeStats, ParallelMergeReport]:
    """Merge on-disk ``.rpdb`` files (a measurement directory's ranks).

    Unreadable files are dropped up front and reported exactly like
    corrupt blobs, so a partially-failed profiling run still merges.
    """
    blobs: list[bytes] = []
    labels: list[str] = []
    unreadable: list[tuple[str, str]] = []
    for path in paths:
        try:
            blobs.append(Path(path).read_bytes())
            labels.append(str(path))
        except OSError as exc:
            unreadable.append((str(path), f"unreadable: {exc}"))
    if not blobs:
        raise ProfileError(
            f"nothing to merge: none of the {len(paths)} file(s) were readable"
        )
    db, stats, report = parallel_reduction_merge(
        blobs, name, labels=labels, **kwargs
    )
    if unreadable:
        report.dropped = unreadable + report.dropped
        db.meta.clear()
        _mark_partial(db, report.dropped)
    return db, stats, report
