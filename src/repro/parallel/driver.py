"""Multiprocess profiling driver: one worker OS process per MPI rank.

``profile_ranks`` runs every simulated rank of an app in its own worker
process (at most ``jobs`` concurrently), each worker serializing its
:class:`~repro.core.profiledb.ProfileDB` with the binary codec into
``<out_root>/<app>/<rank>.rpdb``.  Per-rank RNG seeding is deterministic
(:func:`repro.util.rng.derive_rank_seed` inside each app's ``run_rank``),
so a retried or re-run rank produces byte-identical output.

Failure handling: workers that crash or exceed ``timeout`` are detected
by the parent, retried a bounded number of times, and then reported as
failed ranks — the driver never hangs and never raises for a subset of
bad ranks; callers see the degradation in :class:`DriverReport` and the
downstream merge records it as a partial merge.

Output files are written atomically (``.tmp`` + ``os.replace``) so a
killed worker can never leave a torn ``.rpdb`` behind; a failing worker
leaves a ``<rank>.err`` file with its traceback instead.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.parallel.registry import run_app_rank

__all__ = ["DriverReport", "RankOutcome", "profile_ranks", "rank_path"]

_POLL_SECONDS = 0.02


def _obs_session():
    """The active repro.obs session, if that subsystem is even imported."""
    obs_mod = sys.modules.get("repro.obs")
    return obs_mod.active_session() if obs_mod is not None else None


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def rank_path(out_root: str | Path, app: str, rank: int) -> Path:
    """Measurement-directory layout: ``<out_root>/<app>/<rank>.rpdb``."""
    return Path(out_root) / app / f"{rank:04d}.rpdb"


@dataclass
class RankOutcome:
    """What happened to one rank across all its attempts.

    Recorded for every rank — including ranks whose every attempt
    failed — so duration/retry accounting never has to be scraped out
    of ``.err`` files.  ``elapsed_seconds`` spans first launch to final
    settle (queue wait between retries included); ``attempt_seconds``
    holds each individual attempt's wall-clock duration.
    """

    rank: int
    path: str | None          # final .rpdb path, None if the rank failed
    attempts: int
    elapsed_seconds: float
    error: str | None = None  # last failure reason, None on success
    attempt_seconds: list[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.path is not None

    @property
    def retries(self) -> int:
        return max(self.attempts - 1, 0)


@dataclass
class DriverReport:
    """Summary of one ``profile_ranks`` invocation."""

    app: str
    variant: str
    preset: str
    n_ranks: int
    jobs: int
    out_dir: str
    outcomes: list[RankOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failed_ranks(self) -> list[int]:
        return [o.rank for o in self.outcomes if not o.ok]

    @property
    def paths(self) -> list[Path]:
        return [Path(o.path) for o in self.outcomes if o.path is not None]

    def summary(self) -> str:
        n_ok = sum(1 for o in self.outcomes if o.ok)
        status = "ok" if self.ok else f"PARTIAL (failed ranks: {self.failed_ranks})"
        return (
            f"{self.app}: {n_ok}/{self.n_ranks} ranks profiled in "
            f"{self.elapsed_seconds:.2f}s with {self.jobs} worker(s) — {status}"
        )


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write via a same-directory .tmp file + rename: readers never see
    a torn file, and a worker killed mid-write leaves only the .tmp."""
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def _rank_worker(
    app: str, rank: int, n_ranks: int, variant: str, preset: str, out_path: str
) -> None:
    """Worker-process entry point: profile one rank and persist it."""
    path = Path(out_path)
    err_path = path.with_suffix(".err")
    try:
        db = run_app_rank(app, rank, n_ranks, variant=variant, preset=preset)
        _atomic_write(path, db.to_bytes())
        err_path.unlink(missing_ok=True)
    except BaseException:
        try:
            _atomic_write(err_path, traceback.format_exc().encode())
        finally:
            os._exit(1)


@dataclass
class _Attempt:
    rank: int
    tries: int
    process: mp.process.BaseProcess
    deadline: float
    started: float
    obs_start_us: float = 0.0  # session-clock launch time when tracing


def _read_error(out_path: Path, default: str) -> str:
    err_path = out_path.with_suffix(".err")
    try:
        return err_path.read_text().strip() or default
    except OSError:
        return default


def profile_ranks(
    app: str,
    n_ranks: int,
    out_root: str | Path = "measurements",
    *,
    variant: str = "original",
    preset: str = "smoke",
    jobs: int | None = None,
    timeout: float = 300.0,
    retries: int = 1,
    start_method: str | None = None,
) -> DriverReport:
    """Profile ``n_ranks`` ranks of ``app``, each in its own process.

    Returns a :class:`DriverReport`; never raises for individual rank
    failures (crash, timeout, bad output) — those are retried up to
    ``retries`` times and then recorded as failed outcomes.
    """
    if n_ranks < 1:
        raise ConfigError("n_ranks must be >= 1")
    if timeout <= 0:
        raise ConfigError("timeout must be positive")
    if retries < 0:
        raise ConfigError("retries must be >= 0")
    if jobs is None:
        jobs = min(n_ranks, _available_cpus())
    if jobs < 1:
        raise ConfigError("jobs must be >= 1")
    jobs = min(jobs, n_ranks)

    # fork (where available) inherits runtime register_app() entries and
    # skips re-importing the world per rank; spawn is the portable fallback.
    if start_method is None:
        start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(start_method)

    out_dir = Path(out_root) / app
    out_dir.mkdir(parents=True, exist_ok=True)

    obs = _obs_session()
    obs_t0 = obs.clock.now_us() if obs is not None else 0.0
    t0 = time.monotonic()
    pending: list[tuple[int, int]] = [(rank, 1) for rank in range(n_ranks)]
    pending.reverse()  # pop() from the tail -> ranks launch in order
    running: list[_Attempt] = []
    outcomes: dict[int, RankOutcome] = {}
    rank_started: dict[int, float] = {}
    attempt_seconds: dict[int, list[float]] = {}

    def launch(rank: int, tries: int) -> None:
        out_path = rank_path(out_root, app, rank)
        out_path.unlink(missing_ok=True)
        process = ctx.Process(
            target=_rank_worker,
            args=(app, rank, n_ranks, variant, preset, str(out_path)),
            name=f"{app}-rank{rank}",
            daemon=True,
        )
        process.start()
        now = time.monotonic()
        rank_started.setdefault(rank, now)
        obs_start = obs.clock.now_us() if obs is not None else 0.0
        running.append(
            _Attempt(rank, tries, process, now + timeout, now, obs_start)
        )

    def settle(attempt: _Attempt, error: str | None) -> None:
        """Record a finished attempt: success, retry, or final failure."""
        rank = attempt.rank
        now = time.monotonic()
        elapsed = now - rank_started[rank]
        durations = attempt_seconds.setdefault(rank, [])
        durations.append(now - attempt.started)
        if obs is not None:
            obs.trace.complete(
                name=f"rank{rank}#try{attempt.tries}",
                cat="driver",
                ts_us=attempt.obs_start_us,
                dur_us=obs.clock.now_us() - attempt.obs_start_us,
                pid=0,
                tid=1,
                args={"rank": rank, "try": attempt.tries, "error": error},
            )
            obs.metrics.inc(
                "repro_driver_attempts_total", 1, {"app": app},
                help_text="rank worker attempts launched",
            )
            if error is not None and error.startswith("timed out"):
                obs.metrics.inc(
                    "repro_driver_timeouts_total", 1, {"app": app},
                    help_text="rank attempts killed on timeout",
                )
        if error is None:
            outcomes[rank] = RankOutcome(
                rank, str(rank_path(out_root, app, rank)), attempt.tries,
                elapsed, attempt_seconds=durations,
            )
        elif attempt.tries <= retries:
            pending.append((rank, attempt.tries + 1))
        else:
            outcomes[rank] = RankOutcome(
                rank, None, attempt.tries, elapsed, error,
                attempt_seconds=durations,
            )

    while pending or running:
        while pending and len(running) < jobs:
            launch(*pending.pop())

        time.sleep(_POLL_SECONDS)
        now = time.monotonic()
        still_running: list[_Attempt] = []
        for attempt in running:
            process = attempt.process
            out_path = rank_path(out_root, app, attempt.rank)
            if process.is_alive():
                if now < attempt.deadline:
                    still_running.append(attempt)
                    continue
                process.terminate()
                process.join(5.0)
                if process.is_alive():  # ignored SIGTERM: escalate
                    process.kill()
                    process.join()
                settle(attempt, f"timed out after {timeout:.1f}s")
            else:
                process.join()
                if process.exitcode == 0 and out_path.is_file():
                    settle(attempt, None)
                elif process.exitcode == 0:
                    settle(attempt, "worker exited cleanly without output")
                elif process.exitcode == 1:
                    settle(
                        attempt,
                        _read_error(out_path, "worker failed (no traceback)"),
                    )
                else:
                    settle(
                        attempt,
                        f"worker died with exit code {process.exitcode} "
                        "(killed or crashed)",
                    )
            process.close()

        running = still_running

    report = DriverReport(
        app=app,
        variant=variant,
        preset=preset,
        n_ranks=n_ranks,
        jobs=jobs,
        out_dir=str(out_dir),
        outcomes=[outcomes[rank] for rank in sorted(outcomes)],
        elapsed_seconds=time.monotonic() - t0,
    )
    if obs is not None:
        obs.trace.complete(
            name=f"profile_ranks:{app}",
            cat="driver",
            ts_us=obs_t0,
            dur_us=obs.clock.now_us() - obs_t0,
            pid=0,
            tid=1,
            args={"n_ranks": n_ranks, "jobs": jobs},
        )
        metrics = obs.metrics
        labels = {"app": app}
        metrics.set_gauge(
            "repro_driver_ranks", n_ranks, labels,
            help_text="ranks requested from the driver",
        )
        metrics.set_gauge(
            "repro_driver_ranks_failed", len(report.failed_ranks), labels,
            help_text="ranks with no successful attempt",
        )
        metrics.set_gauge(
            "repro_driver_retries_total",
            sum(o.retries for o in report.outcomes), labels,
            help_text="retry attempts across all ranks",
        )
        for outcome in report.outcomes:
            metrics.observe(
                "repro_driver_rank_seconds", outcome.elapsed_seconds, labels,
                help_text="per-rank wall time, launch to settle",
            )
    return report
