"""AMG2006 — the paper's §5.1 case study (MPI+OpenMP on POWER7 nodes).

The benchmark runs in three phases — *initialization*, *setup*,
*solver* — with 4 MPI ranks (one per POWER7 node) x 128 OpenMP threads.

Pathologies and fixes (Table 2, Figures 4-5):

- The CSR arrays of the multigrid hierarchy (``S_diag_j`` and six
  siblings) are allocated with ``hypre_CAlloc`` (calloc) and zero-touched
  by the master thread, so every page lands on the master's NUMA domain;
  the OpenMP solver loops then fight over one memory controller.
  Figure 4: heap data carries 94.9% of remote accesses; ``S_diag_j``
  22.2%, split 19.3%/2.9% over two access loops.  Figure 5 (bottom-up):
  seven allocation sites each account for >7% of remote accesses.
- ``numactl --interleave=all`` fixes the solver (105s -> 87s) but doubles
  initialization (26s -> 52s) because *every* allocation — including
  serial workspace the master itself consumes — becomes mostly remote.
- The surgical libnuma fix interleaves only the seven flagged arrays
  (and leaves thread-local data under first touch): init stays ~26-28s,
  and the solver beats numactl (80s vs 87s) because per-thread workspace
  remains local.

AMG2006 is also the paper's allocation-tracking stress test (§4.1.3):
its setup phase allocates small blocks at high frequency in deep call
chains — tracking all of them costs +150% runtime, cut to <10% by the
threshold + fast-context + trampoline strategies (the A1 ablation bench).

Variants: ``original``, ``numactl``, ``libnuma``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.apps.common import AppResult, analyze_profilers, as_rank_db
from repro.core.profiledb import ProfileDB
from repro.core.profiler import DataCentricProfiler, ProfilerConfig
from repro.machine.presets import Machine, power7_node
from repro.numa.libnuma import numa_alloc_interleaved
from repro.numa.numactl import numactl_interleave_all
from repro.pmu.events import PM_MRK_DATA_FROM_RMEM
from repro.pmu.marked import MarkedEventEngine
from repro.sim.arrays import SimArray
from repro.sim.loader import LoadModule
from repro.sim.mpi import JobResult, MPIJob
from repro.sim.openmp import declare_outlined, omp_chunk
from repro.sim.process import SimProcess
from repro.sim.runtime import Ctx
from repro.sim.source import SourceFile
from repro.util.rng import derive_rank_seed

__all__ = [
    "Config", "run", "run_rank", "rank_config", "VARIANTS", "PROBLEM_ARRAYS",
    "static_model",
]

VARIANTS = ("original", "numactl", "libnuma")

# The seven problem arrays of Figure 5: (name, size in bytes).
PROBLEM_ARRAYS = (
    ("S_diag_j", 65536),
    ("S_diag_i", 49152),
    ("A_diag_j", 49152),
    ("A_diag_i", 49152),
    ("A_diag_data", 49152),
    ("P_diag_j", 49152),
    ("P_diag_data", 49152),
)

# Source-line anchors for par_amg.c, shared by the program image, the
# kernel, and static_model() (reprolint R009 bans restating them as
# literals there); the extraction drift gate verifies each against the
# interpreted kernel.
L_CALL_BUILD = 20
L_CALL_SETUP = 40
L_CALL_SOLVE = 60
L_CALLOC_BODY = 175
L_ALLOC_WORKSPACE0 = 210   # three workspaces, one line each
L_WORKSPACE_SWEEP = 220
L_CALL_CHURN_ENTRY = 305
L_ALLOC_PROBLEM0 = 330     # seven call sites, one line per array
L_MATRIX_FILL = 340
L_ALLOC_TABLES = 350
L_PARALLEL_RELAX = 460
L_ALLOC_VTEMP = 465
L_TOUCH_VTEMP = 466
L_RELAX_S = 470
L_RELAX_AJ = 471
L_RELAX_AD = 472
L_RELAX_WS = 474
L_PARALLEL_INTERP = 490
L_INTERP_S = 495
L_INTERP_PJ = 496
L_INTERP_PD = 497
L_CHURN_FN0 = 600          # hypre_SetupLevel{d} starts at +20*d
L_CHURN_ALLOC = 604
L_CHURN_FREE = 605


@dataclass
class Config:
    n_ranks: int = 4
    n_threads: int = 128
    solve_iterations: int = 4
    rows: int = 8192
    churn_allocs: int = 15000     # small-allocation frequency in setup (§4.1.3)
    churn_depth: int = 8         # call-chain depth of the churn allocations
    setup_compute: int = 5_200_000  # serial setup arithmetic per rank (cycles)
    init_compute: int = 80_000
    variant: str = "original"
    profile: bool = False
    pmu_period: int = 64
    profiler_config: ProfilerConfig | None = None
    machine_factory: Callable[[], Machine] = power7_node
    compute_per_row: int = 55
    seed: int = 0xA39


def _build_image(process: SimProcess):
    src = SourceFile(
        "par_amg.c",
        {
            L_CALLOC_BODY: "ptr = calloc(count, elt_size);",
            L_ALLOC_PROBLEM0:
                "S_diag_j = hypre_CTAlloc(HYPRE_Int, num_nonzeros_diag);",
            L_RELAX_S:
                "for (jj = A_i[i]; jj < A_i[i+1]; jj++) temp += S_diag_j[jj];",
            L_RELAX_AJ: "jcol = A_diag_j[jj];",
            L_RELAX_AD: "tmp  = A_diag_data[jj];",
            L_RELAX_WS: "vtmp = Vtemp_data[i];",
            L_INTERP_S: "if (S_diag_j[jj] == col) weight += 1.0;",
        },
    )
    exe = LoadModule("amg2006.exe", is_executable=True)
    main_fn = exe.add_function("main", src, 1, 100)
    calloc_fn = exe.add_function("hypre_CAlloc", src, 170, 16)
    build_fn = exe.add_function("hypre_BuildIJLaplacian", src, 200, 60)
    setup_fn = exe.add_function("hypre_BoomerAMGSetup", src, 300, 100)
    churn_fns = [
        exe.add_function(f"hypre_SetupLevel{d}", src, L_CHURN_FN0 + 20 * d, 18)
        for d in range(8)
    ]
    solve_fn = exe.add_function("hypre_BoomerAMGSolve", src, 450, 70)
    relax_region = declare_outlined(exe, solve_fn, L_PARALLEL_RELAX, 25,
                                    region_index=0)
    interp_region = declare_outlined(exe, solve_fn, L_PARALLEL_INTERP, 25,
                                     region_index=1)
    process.load_module(exe)
    return (
        src, main_fn, calloc_fn, build_fn, setup_fn, churn_fns,
        solve_fn, relax_region, interp_region,
    )


def _rank_main(cfg: Config, process: SimProcess, rank: int, n_ranks: int) -> None:
    (src, main_fn, calloc_fn, build_fn, setup_fn, churn_fns,
     solve_fn, relax_region, interp_region) = _build_image(process)

    if cfg.variant == "numactl":
        # Process-wide: every page interleaves, no code changes.
        numactl_interleave_all(process)

    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)
    n_threads = cfg.n_threads
    rows = cfg.rows

    # ---- initialization phase ------------------------------------------------
    with process.phase("init"):
        def build_body(c: Ctx) -> None:
            # Serial workspace the master allocates, zero-fills and later
            # consumes itself.  Interleaving it (numactl) makes both the
            # zero-fill and the consumer remote — the 26s -> 52s pathology.
            workspaces = []
            for w in range(3):
                addr = c.calloc(192 * 1024, line=L_ALLOC_WORKSPACE0 + w,
                                var=f"grid_workspace_{w}")
                workspaces.append(addr)
            ip_sweep = c.ip(L_WORKSPACE_SWEEP)
            for addr in workspaces:
                # Fixed-stride consumer sweep over a contiguous workspace:
                # one batched run per workspace.
                c.load_run(addr, 192 * 1024 // 256, 256, ip_sweep)
            c.compute(cfg.init_compute)

        ctx.call_sync(build_fn, L_CALL_BUILD, build_body)

    # ---- setup phase -----------------------------------------------------------
    arrays: dict[str, SimArray] = {}
    small_tables: list[int] = []
    with process.phase("setup"):
        def setup_body(c: Ctx) -> None:
            # The seven problem arrays, each from its own call site into
            # the hypre allocator (Figure 5's bottom-up sites).
            for idx, (name, nbytes) in enumerate(PROBLEM_ARRAYS):
                if cfg.variant == "libnuma":
                    arrays[name] = numa_alloc_interleaved(
                        c, name, (nbytes // 4,), line=L_ALLOC_PROBLEM0 + idx,
                        elem=4, kind="calloc"
                    )
                else:
                    def do_alloc(cc: Ctx, nb=nbytes, nm=name) -> SimArray:
                        base = cc.calloc(nb, line=L_CALLOC_BODY, var=nm)
                        return SimArray(nm, base, (nb // 4,), elem=4)

                    arrays[name] = c.call_sync(
                        calloc_fn, L_ALLOC_PROBLEM0 + idx, do_alloc
                    )

            # High-frequency small allocations in deep call chains: the
            # §4.1.3 overhead stress (+150% when tracked exhaustively).
            def churn(cc: Ctx, depth: int, count: int):
                if depth == 0:
                    live = []
                    for k in range(count):
                        live.append(
                            cc.malloc(192 + (k % 4) * 16, line=L_CHURN_ALLOC,
                                      var="churn")
                        )
                        if len(live) > 16:
                            cc.free(live.pop(0), line=L_CHURN_FREE)
                    for addr in live:
                        cc.free(addr, line=L_CHURN_FREE)
                    return None
                callee = churn_fns[depth - 1]
                call_line = cc.thread.current_function.start_line + 5
                return cc.call_sync(callee, call_line, churn, depth - 1, count)

            batch = max(1, cfg.churn_allocs // 8)
            for _ in range(8):
                churn(c, cfg.churn_depth, batch)

            # Sub-threshold lookup tables shared by the solver threads:
            # untracked (below the 4KB threshold), so their samples land
            # in *unknown data* — Figure 4's ~5% non-heap remainder.
            for t in range(8):
                small_tables.append(c.malloc(3968, line=L_ALLOC_TABLES))
                c.touch_range(small_tables[-1], 3968, line=L_ALLOC_TABLES)

            # Master fills the matrix entries (sequential writes) — one
            # batched store run per array.
            ip_fill = c.ip(L_MATRIX_FILL)
            for name, _ in PROBLEM_ARRAYS[:3]:
                arr = arrays[name]
                c.store_run(arr.base, arr.nbytes // 512, 512, ip_fill)
            c.compute(cfg.setup_compute)

        ctx.call_sync(setup_fn, L_CALL_SETUP, setup_body)

    # ---- solver phase --------------------------------------------------------------
    with process.phase("solve"):
        s_diag_j = arrays["S_diag_j"]
        s_diag_i = arrays["S_diag_i"]
        a_diag_i = arrays["A_diag_i"]
        a_diag_j = arrays["A_diag_j"]
        a_diag_data = arrays["A_diag_data"]
        p_diag_j = arrays["P_diag_j"]
        p_diag_data = arrays["P_diag_data"]
        # Per-thread workspace: allocated and first-touched by each worker
        # inside the first parallel region — local under first touch and
        # libnuma, scattered under numactl (its solver handicap).
        worker_ws: dict[int, int] = {}

        def relax_factory(iteration: int):
            ip_s = relax_region.ip(L_RELAX_S)
            ip_ai = relax_region.ip(L_RELAX_S, 1)
            ip_aj = relax_region.ip(L_RELAX_AJ)
            ip_ad = relax_region.ip(L_RELAX_AD)
            ip_ws = relax_region.ip(L_RELAX_WS)

            def worker(wctx: Ctx, tid: int):
                ws = worker_ws.get(tid)
                if ws is None:
                    ws = wctx.malloc(16 * 1024, line=L_ALLOC_VTEMP,
                                     var="Vtemp_data")
                    wctx.touch_range(ws, 16 * 1024, line=L_TOUCH_VTEMP)
                    worker_ws[tid] = ws
                chunk = omp_chunk(rows, n_threads, (tid + iteration * 31) % n_threads)
                for j, row in enumerate(chunk):
                    nnz0 = row * 12
                    wctx.load_ip(a_diag_i.flat_addr(row % a_diag_i.size), ip_ai)
                    for jj in range(4):
                        k = (nnz0 + jj * 3) % s_diag_j.size
                        if jj < 2:
                            wctx.load_ip(s_diag_j.flat_addr(k), ip_s)
                        wctx.load_ip(a_diag_j.flat_addr(k % a_diag_j.size), ip_aj)
                        wctx.load_ip(a_diag_data.flat_addr(k % a_diag_data.size), ip_ad)
                    wctx.load_ip(ws + (row % 256) * 64, ip_ws)
                    wctx.load_ip(ws + ((row * 7) % 256) * 64, ip_ws)
                    if row % 12 == 5:
                        tbl = small_tables[row % len(small_tables)]
                        wctx.load_ip(tbl + ((row * 11) % 60) * 64, ip_ws)
                    wctx.compute(cfg.compute_per_row)
                    if j % 4 == 3:
                        yield
                yield

            return worker

        def interp_factory(iteration: int):
            ip_s2 = interp_region.ip(L_INTERP_S)
            ip_si = interp_region.ip(L_INTERP_S, 1)
            ip_pj = interp_region.ip(L_INTERP_PJ)
            ip_pd = interp_region.ip(L_INTERP_PD)

            def worker(wctx: Ctx, tid: int):
                chunk = omp_chunk(
                    rows // 2, n_threads, (tid + iteration * 13) % n_threads
                )
                for j, row in enumerate(chunk):
                    wctx.load_ip(s_diag_i.flat_addr((row * 19) % s_diag_i.size), ip_si)
                    wctx.load_ip(a_diag_i.flat_addr((row * 3) % a_diag_i.size), ip_si)
                    if row % 8 == 1:
                        wctx.load_ip(
                            s_diag_j.flat_addr((row * 23) % s_diag_j.size), ip_s2
                        )
                    wctx.load_ip(p_diag_j.flat_addr((row * 11) % p_diag_j.size), ip_pj)
                    wctx.load_ip(
                        p_diag_data.flat_addr((row * 5) % p_diag_data.size), ip_pd
                    )
                    wctx.compute(cfg.compute_per_row // 2)
                    if j % 4 == 3:
                        yield
                yield

            return worker

        def solve_body(c: Ctx) -> None:
            for it in range(cfg.solve_iterations):
                c.parallel(relax_region, relax_factory(it), n_threads,
                           line=L_PARALLEL_RELAX)
                c.parallel(interp_region, interp_factory(it), n_threads,
                           line=L_PARALLEL_INTERP)
                c.comm(rows * 8)  # halo exchange with neighbor ranks

        ctx.call_sync(solve_fn, L_CALL_SOLVE, solve_body)

    ctx.leave()


def static_model(variant: str = "original", preset: str = "smoke"):
    """Declarations for the static analyzer (see repro.staticcheck.model).

    The seven problem arrays all allocate through one ``hypre_CAlloc``
    site (line 175) reached from seven distinct call contexts — Figure
    5's bottom-up shape; calloc under first touch makes the master the
    placement committer, so all seven fire H001 in the original variant.
    The churn chain allocates in a loop but frees (no H003); the
    per-worker ``Vtemp_data`` allocates inside the relax region and
    never frees (H003 in *every* variant — a true finding).
    """
    from repro.sim.openmp import outlined_name
    from repro.staticcheck.model import StaticModel

    if variant not in VARIANTS:
        raise ValueError(f"unknown amg2006 variant {variant!r}")
    cfg = rank_config(preset, variant)
    machine = cfg.machine_factory()
    process = SimProcess(machine, name="amg2006")
    _build_image(process)
    model = StaticModel(
        "amg2006", variant, process, machine, cfg.n_threads,
        process_interleaved=(variant == "numactl"),
    )
    relax_region = outlined_name("hypre_BoomerAMGSolve", 0)
    interp_region = outlined_name("hypre_BoomerAMGSolve", 1)

    model.entry("main")
    model.call("main", L_CALL_BUILD, "hypre_BuildIJLaplacian")
    model.call("main", L_CALL_SETUP, "hypre_BoomerAMGSetup")
    model.call("main", L_CALL_SOLVE, "hypre_BoomerAMGSolve")
    model.parallel_region("hypre_BoomerAMGSolve", L_PARALLEL_RELAX,
                          relax_region, cfg.n_threads)
    model.parallel_region("hypre_BoomerAMGSolve", L_PARALLEL_INTERP,
                          interp_region, cfg.n_threads)
    # The churn call chain: setup -> SetupLevel7 -> ... -> SetupLevel0.
    model.call("hypre_BoomerAMGSetup", L_CALL_CHURN_ENTRY, "hypre_SetupLevel7")
    for d in range(7, 0, -1):
        model.call(f"hypre_SetupLevel{d}", L_CHURN_FN0 + 20 * d + 5,
                   f"hypre_SetupLevel{d - 1}")

    rows = float(cfg.rows)
    iters = float(cfg.solve_iterations)

    # Serial workspace: calloc'd, filled and consumed by the master only
    # — no parallel access, so H001 must NOT fire (interleaving it is the
    # paper's numactl init pathology, not a first-touch defect).
    for w in range(3):
        name = f"grid_workspace_{w}"
        model.alloc("hypre_BuildIJLaplacian", L_ALLOC_WORKSPACE0 + w, name,
                    192 * 1024, kind="calloc")
        model.access("hypre_BuildIJLaplacian", L_WORKSPACE_SWEEP, name,
                     weight=192 * 1024 / 256)

    # The seven problem arrays: libnuma interleaves them at their call
    # sites; otherwise each goes through the shared hypre_CAlloc site.
    for idx, (name, nbytes) in enumerate(PROBLEM_ARRAYS):
        if variant == "libnuma":
            model.alloc(
                "hypre_BoomerAMGSetup", L_ALLOC_PROBLEM0 + idx, name, nbytes,
                kind="numa_interleaved",
            )
        else:
            model.call("hypre_BoomerAMGSetup", L_ALLOC_PROBLEM0 + idx,
                       "hypre_CAlloc")
            model.alloc("hypre_CAlloc", L_CALLOC_BODY, name, nbytes,
                        kind="calloc")

    model.alloc("hypre_SetupLevel0", L_CHURN_ALLOC, "churn", 256,
                kind="malloc", in_loop=True)
    model.free("hypre_SetupLevel0", L_CHURN_FREE, "churn")
    model.alloc("hypre_BoomerAMGSetup", L_ALLOC_TABLES, "small_tables",
                8 * 3968, kind="malloc")
    model.touch("hypre_BoomerAMGSetup", L_ALLOC_TABLES, "small_tables",
                by="master")

    # Master matrix fill (one batched store run each, first three arrays).
    for name, nbytes in PROBLEM_ARRAYS[:3]:
        model.access(
            "hypre_BoomerAMGSetup", L_MATRIX_FILL, name, weight=nbytes / 512,
            is_store=True
        )

    # Per-worker solver workspace: allocated inside the relax region,
    # first-touched by its worker, never freed.
    model.alloc(relax_region, L_ALLOC_VTEMP, "Vtemp_data", 16 * 1024,
                kind="malloc")
    model.touch(relax_region, L_TOUCH_VTEMP, "Vtemp_data", by="workers")

    # Relax sweep: per row one A_diag_i load, two S_diag_j loads, four
    # A_diag_j/A_diag_data loads, two workspace loads, a table poke.
    model.access(relax_region, L_RELAX_S, "A_diag_i", weight=rows * iters)
    model.access(relax_region, L_RELAX_S, "S_diag_j",
                 weight=2 * rows * iters)
    model.access(relax_region, L_RELAX_AJ, "A_diag_j",
                 weight=4 * rows * iters)
    model.access(relax_region, L_RELAX_AD, "A_diag_data",
                 weight=4 * rows * iters)
    model.access(relax_region, L_RELAX_WS, "Vtemp_data",
                 weight=2 * rows * iters)
    model.access(relax_region, L_RELAX_WS, "small_tables",
                 weight=rows * iters / 12)

    # Interpolation sweep over rows/2.
    half = rows / 2
    model.access(interp_region, L_INTERP_S, "S_diag_i", weight=half * iters)
    model.access(interp_region, L_INTERP_S, "A_diag_i", weight=half * iters)
    model.access(interp_region, L_INTERP_S, "S_diag_j",
                 weight=half * iters / 8)
    model.access(interp_region, L_INTERP_PJ, "P_diag_j", weight=half * iters)
    model.access(interp_region, L_INTERP_PD, "P_diag_data",
                 weight=half * iters)
    return model


def _power7_smt1() -> Machine:
    """Smoke-preset node: SMT off so 32 threads still span all 4 sockets
    (all-on-socket-0 pinning would never trigger a remote-memory event)."""
    return power7_node(smt=1)


# Scaled-down knobs for the multiprocess driver's quick runs; "paper"
# keeps the Config defaults (the paper's 4-rank POWER7 geometry).
RANK_PRESETS: dict[str, dict] = {
    "smoke": dict(
        n_threads=32,
        rows=2048,
        solve_iterations=2,
        churn_allocs=2000,
        setup_compute=400_000,
        pmu_period=24,
        machine_factory=_power7_smt1,
    ),
    "paper": {},
}


def rank_config(preset: str = "smoke", variant: str = "original") -> Config:
    if preset not in RANK_PRESETS:
        raise ValueError(f"unknown amg2006 rank preset {preset!r}")
    return Config(variant=variant, profile=True, **RANK_PRESETS[preset])


def run_rank(
    rank: int, n_ranks: int, variant: str = "original", preset: str = "smoke",
    cfg: Config | None = None,
) -> ProfileDB:
    """Profile a single simulated MPI rank; the parallel-driver entry point.

    Each rank gets a fresh node machine (the driver runs ranks in
    separate OS processes, so nothing can be shared anyway) and a
    decorrelated deterministic seed, making any rank reproducible in
    isolation — the property crash-retry relies on.
    """
    if cfg is None:
        cfg = rank_config(preset, variant)
    if cfg.variant not in VARIANTS:
        raise ValueError(f"unknown amg2006 variant {cfg.variant!r}")
    cfg = replace(cfg, n_ranks=n_ranks)
    seed = derive_rank_seed(cfg.seed, rank)
    job = MPIJob(
        cfg.machine_factory,
        n_ranks=n_ranks,
        ranks_per_node=1,
        threads_per_rank=cfg.n_threads,
    )

    def attach(process: SimProcess):
        profiler = DataCentricProfiler(process, cfg.profiler_config).attach()
        process.pmu = MarkedEventEngine(
            PM_MRK_DATA_FROM_RMEM, period=cfg.pmu_period, seed=seed
        )
        return profiler

    result = job.run_one(
        rank, lambda process, r, n: _rank_main(cfg, process, r, n), attach=attach
    )
    return as_rank_db(
        result.attachment.finalize(), "amg2006", rank, n_ranks, cfg.variant, seed,
        process=result.attachment.process,
    )


def run(cfg: Config) -> AppResult:
    if cfg.variant not in VARIANTS:
        raise ValueError(f"unknown amg2006 variant {cfg.variant!r}")
    job = MPIJob(
        cfg.machine_factory,
        n_ranks=cfg.n_ranks,
        ranks_per_node=1,   # one MPI process per POWER7 node, as in the paper
        threads_per_rank=cfg.n_threads,
    )

    def attach(process: SimProcess):
        if not cfg.profile:
            return None
        profiler = DataCentricProfiler(process, cfg.profiler_config).attach()
        process.pmu = MarkedEventEngine(
            PM_MRK_DATA_FROM_RMEM, period=cfg.pmu_period, seed=cfg.seed + process.pid
        )
        return profiler

    result: JobResult = job.run(
        lambda process, rank, n: _rank_main(cfg, process, rank, n),
        attach=attach,
    )
    profilers = [r.attachment for r in result.ranks if r.attachment is not None]
    return AppResult(
        app="amg2006",
        variant=cfg.variant,
        elapsed_cycles=result.elapsed_cycles,
        elapsed_seconds=result.elapsed_seconds(),
        phase_seconds=result.phase_seconds(),
        profilers=profilers,
        experiment=analyze_profilers("amg2006", profilers),
        machines=list(result.machines.values()),
        pmu_engines=[],
    )
