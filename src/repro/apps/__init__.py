"""The paper's five case-study benchmarks, as simulated kernels.

Each app reproduces the *data-structure and access-pattern pathology* its
case study diagnoses (paper §5), in an ``original`` variant and one or
more optimized variants implementing the paper's fix:

- :mod:`repro.apps.amg2006` — MPI+OpenMP algebraic multigrid; master-
  thread callocs of CSR arrays (``S_diag_j`` et al.); fixes: numactl
  interleave-all vs. surgical libnuma (Table 2, Figures 4-5).
- :mod:`repro.apps.sweep3d` — pure-MPI Fortran wavefront sweep; long
  column-major strides through ``Flux``/``Src``/``Face``; fix: dimension
  permutation (Figures 6-7).
- :mod:`repro.apps.lulesh` — OpenMP shock hydrodynamics; master-initia-
  lized heap arrays + irregular static ``f_elem``; fixes: libnuma inter-
  leave and ``f_elem`` transpose (Figures 8-9).
- :mod:`repro.apps.streamcluster` — OpenMP clustering; master-initialized
  ``block``; fix: parallel first-touch init (Figure 10).
- :mod:`repro.apps.nw` — OpenMP Needleman-Wunsch; master-initialized
  ``referrence``/``input_itemsets``; fix: libnuma interleave (Figure 11).
"""

from repro.apps.common import AppResult, profile_attachment
from repro.apps import amg2006, lulesh, nw, streamcluster, sweep3d

__all__ = [
    "AppResult",
    "profile_attachment",
    "amg2006",
    "sweep3d",
    "lulesh",
    "streamcluster",
    "nw",
]
