"""Sweep3D — the paper's §5.2 case study (48 MPI ranks, AMD, IBS).

Pathology: the Fortran arrays ``Flux``, ``Src`` (it x jt x kt) and
``Face`` are column-major, but the sweep's two innermost loops traverse
the *last* dimension fastest — every access strides ``it*jt`` elements,
crossing a page almost every time.  That defeats both spatial locality
and the hardware prefetcher (Figure 6: heap data carries 97.4% of the
measured data-fetch latency; Flux 39.4%, Src 39.1%, Face 14.6%; the
single Flux load deep in the sweep's call chain is 28.6% — Figure 7).

Fix (paper): permute the array dimensions (insert the last dimension
after the first) so the innermost loop becomes unit-stride —
``variant="transposed"`` — reported 15% whole-program speedup.

Being pure MPI, each rank is co-located with its data: no NUMA problem
exists and no NUMA events need examining (the paper makes this point
explicitly; the test suite asserts the remote-access fraction is ~0).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.apps.common import AppResult, analyze_profilers, as_rank_db
from repro.core.profiledb import ProfileDB
from repro.core.profiler import DataCentricProfiler, ProfilerConfig
from repro.machine.presets import Machine, amd_magnycours
from repro.pmu.ibs import IBSEngine
from repro.sim.loader import LoadModule
from repro.sim.mpi import JobResult, MPIJob
from repro.sim.process import SimProcess
from repro.sim.runtime import Ctx
from repro.sim.source import SourceFile
from repro.util.rng import derive_rank_seed

__all__ = ["Config", "run", "run_rank", "rank_config", "VARIANTS", "static_model"]

VARIANTS = ("original", "transposed")

# Source-line anchors for sweep.f, shared by the program image, the
# kernel, and static_model() (reprolint R009 bans restating them as
# literals there); the extraction drift gate verifies each against the
# interpreted kernel.
L_ALLOC_FLUX = 20
L_ALLOC_SRC = 21
L_ALLOC_FACE = 22
L_TOUCH_INIT = 25
L_CALL_INNER = 30
L_CALL_SWEEP = 140
L_FACE_LOAD = 475
L_PHI_STACK = 476
L_SRC_LOAD = 477
L_SRC_LOAD2 = 478
L_FLUX_LOAD = 480
L_FLUX_STORE = 482


@dataclass
class Config:
    it: int = 20
    jt: int = 20
    kt: int = 10
    octants: int = 2
    n_ranks: int = 48
    variant: str = "original"
    profile: bool = False
    # IBS period in instructions; sized so per-rank sample handling stays
    # in the paper's low-single-digit overhead band (Table 1: +2.3%).
    pmu_period: int = 1536
    profiler_config: ProfilerConfig | None = None
    machine_factory: Callable[[], Machine] = amd_magnycours
    compute_per_cell: int = 40
    seed: int = 0x53


def _build_image(process: SimProcess):
    src = SourceFile(
        "sweep.f",
        {
            L_ALLOC_FLUX: "allocate(Flux(it,jt,kt))",
            L_ALLOC_SRC: "allocate(Src(it,jt,kt))",
            L_ALLOC_FACE: "allocate(Face(it,jt,mm))",
            L_FACE_LOAD: "leak = Face(i,j,1) + Face(i,j,2)",
            L_SRC_LOAD: "phi = Src(i,j,k)",
            L_SRC_LOAD2: "phi = phi + Src(i,j,k)*w(m)",
            L_FLUX_LOAD: "phi = phi + Flux(i,j,k)",
            L_FLUX_STORE: "Flux(i,j,k) = phi",
        },
    )
    exe = LoadModule("sweep3d.exe", is_executable=True)
    main_fn = exe.add_function("MAIN__", src, 1, 60)
    inner_fn = exe.add_function("inner_", src, 100, 80)
    sweep_fn = exe.add_function("sweep_", src, 400, 120)
    process.load_module(exe)
    return src, main_fn, inner_fn, sweep_fn


def _rank_main(cfg: Config, process: SimProcess, rank: int, n_ranks: int) -> None:
    src, main_fn, inner_fn, sweep_fn = _build_image(process)
    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)

    it, jt, kt = cfg.it, cfg.jt, cfg.kt
    with process.phase("setup"):
        flux = ctx.alloc_array("Flux", (it, jt, kt), line=L_ALLOC_FLUX,
                               elem=8, order="F")
        source = ctx.alloc_array("Src", (it, jt, kt), line=L_ALLOC_SRC,
                                 elem=8, order="F")
        face = ctx.alloc_array("Face", (it, jt, 16), line=L_ALLOC_FACE,
                               elem=8, order="F")
        # Each rank initializes its own arrays: first touch places every
        # page locally — the reason pure-MPI codes have no NUMA problem.
        for arr in (flux, source, face):
            ctx.touch_range(arr.base, arr.nbytes, line=L_TOUCH_INIT)

    transposed = cfg.variant == "transposed"
    if transposed:
        # The paper's layout fix, modelled as a dimension permutation of
        # the same memory: the innermost (k) loop becomes unit-stride,
        # and Face's inner (j) index becomes contiguous too.
        flux_a = flux.transposed_view((2, 0, 1), name="Flux")
        src_a = source.transposed_view((2, 0, 1), name="Src")
        face_a = face.transposed_view((1, 0, 2), name="Face")
    else:
        flux_a, src_a, face_a = flux, source, face

    def cell(arr, i, j, k):
        if transposed:
            return arr.addr_unchecked(k, i, j)
        return arr.addr_unchecked(i, j, k)

    def face_addr(i, j, c):
        if transposed:
            return face_a.addr_unchecked(j, i, c)
        return face_a.addr_unchecked(i, j, c)

    # Stack-allocated angle workspace (phi/psi temporaries): attributed
    # to *unknown data*, the small non-heap remainder of Figure 6.
    phi_stack = ctx.thread.stack_alloc(4096)

    def sweep_gen(octant: int):
        ip_phi = sweep_fn.ip(L_PHI_STACK)
        ip_face = sweep_fn.ip(L_FACE_LOAD)
        ip_src1 = sweep_fn.ip(L_SRC_LOAD)
        ip_src2 = sweep_fn.ip(L_SRC_LOAD2)
        ip_flux_load = sweep_fn.ip(L_FLUX_LOAD)
        ip_flux_store = sweep_fn.ip(L_FLUX_STORE)
        for i in range(it):
            # Receive the incoming wavefront face for this pencil.
            ctx.comm(jt * 8)
            for j in range(jt):
                ctx.load_ip(face_addr(i, j, (octant * 3 + j) % 16), ip_face)
                ctx.load_ip(face_addr(i, j, (octant * 5 + j + 7) % 16), ip_face)
                ctx.load_ip(phi_stack + ((i * 29 + j * 13 + octant) % 64) * 64, ip_phi)
                for k in range(kt):
                    # The two innermost loops fix the leftmost dimensions:
                    # stride it*jt elements (original) vs. unit (fixed).
                    # Kept scalar: src loads (data-dependent duplication),
                    # flux load and flux store interleave per k, so no
                    # single-array run reproduces this access order; the
                    # batched path covers initialization (touch_range).
                    ctx.load_ip(cell(src_a, i, j, k), ip_src1)
                    if k % 2 == octant % 2:
                        ctx.load_ip(cell(src_a, i, j, k), ip_src2)
                    ctx.load_ip(cell(flux_a, i, j, k), ip_flux_load)
                    ctx.store_ip(cell(flux_a, i, j, k), ip_flux_store)
                    ctx.compute(cfg.compute_per_cell)
                yield
            # Send the outgoing face downstream.
            ctx.comm(jt * 8)

    def main_gen():
        with process.phase("sweep"):
            for octant in range(cfg.octants):
                yield from ctx.call(
                    inner_fn, L_CALL_INNER,
                    ctx.call(sweep_fn, L_CALL_SWEEP, sweep_gen(octant))
                )

    process.run_serial(main_gen())
    ctx.leave()


def static_model(variant: str = "original", preset: str = "smoke"):
    """Declarations for the static analyzer (see repro.staticcheck.model).

    Pure MPI: every rank allocates and first-touches its own arrays and
    there are no parallel regions, so the analyzer must find *nothing* —
    the paper's explicit "no NUMA problem to examine" point.  (The
    spatial-locality pathology of Figure 6 is a latency problem the
    dynamic profiler owns; it has no first-touch or sharing shape.)
    """
    from repro.staticcheck.model import StaticModel

    if variant not in VARIANTS:
        raise ValueError(f"unknown sweep3d variant {variant!r}")
    cfg = rank_config(preset, variant)
    machine = cfg.machine_factory()
    process = SimProcess(machine, name="sweep3d")
    _build_image(process)
    model = StaticModel("sweep3d", variant, process, machine, 1)

    model.entry("MAIN__")
    model.call("MAIN__", L_CALL_INNER, "inner_")
    model.call("inner_", L_CALL_SWEEP, "sweep_")

    it, jt, kt = cfg.it, cfg.jt, cfg.kt
    cells = float(it * jt * kt * cfg.octants)
    model.alloc("MAIN__", L_ALLOC_FLUX, "Flux", it * jt * kt * 8,
                kind="malloc")
    model.alloc("MAIN__", L_ALLOC_SRC, "Src", it * jt * kt * 8, kind="malloc")
    model.alloc("MAIN__", L_ALLOC_FACE, "Face", it * jt * 16 * 8,
                kind="malloc")
    for name in ("Flux", "Src", "Face"):
        model.touch("MAIN__", L_TOUCH_INIT, name, by="master")

    # Two distinct source anchors: the unconditional read and the
    # octant-gated read (k % 2 == octant % 2 hits half the cells).
    model.access("sweep_", L_SRC_LOAD, "Src", weight=cells)
    model.access("sweep_", L_SRC_LOAD2, "Src", weight=cells * 0.5)
    model.access("sweep_", L_FLUX_LOAD, "Flux", weight=cells)
    model.access("sweep_", L_FLUX_STORE, "Flux", weight=cells, is_store=True)
    model.access("sweep_", L_FACE_LOAD, "Face",
                 weight=2.0 * float(it * jt * cfg.octants))
    return model


RANK_PRESETS: dict[str, dict] = {
    "smoke": dict(it=12, jt=12, kt=6, octants=2, pmu_period=96),
    "paper": {},
}


def rank_config(preset: str = "smoke", variant: str = "original") -> Config:
    if preset not in RANK_PRESETS:
        raise ValueError(f"unknown sweep3d rank preset {preset!r}")
    return Config(variant=variant, profile=True, **RANK_PRESETS[preset])


def run_rank(
    rank: int, n_ranks: int, variant: str = "original", preset: str = "smoke",
    cfg: Config | None = None,
) -> ProfileDB:
    """Profile a single simulated MPI rank; the parallel-driver entry point."""
    if cfg is None:
        cfg = rank_config(preset, variant)
    if cfg.variant not in VARIANTS:
        raise ValueError(f"unknown sweep3d variant {cfg.variant!r}")
    cfg = replace(cfg, n_ranks=n_ranks)
    seed = derive_rank_seed(cfg.seed, rank)
    probe = cfg.machine_factory()
    job = MPIJob(
        cfg.machine_factory,
        n_ranks=n_ranks,
        ranks_per_node=min(n_ranks, probe.topology.n_cores),
        threads_per_rank=1,
    )

    def attach(process: SimProcess):
        profiler = DataCentricProfiler(process, cfg.profiler_config).attach()
        process.pmu = IBSEngine(period=cfg.pmu_period, seed=seed)
        return profiler

    result = job.run_one(
        rank, lambda process, r, n: _rank_main(cfg, process, r, n), attach=attach
    )
    return as_rank_db(
        result.attachment.finalize(), "sweep3d", rank, n_ranks, cfg.variant, seed,
        process=result.attachment.process,
    )


def run(cfg: Config) -> AppResult:
    if cfg.variant not in VARIANTS:
        raise ValueError(f"unknown sweep3d variant {cfg.variant!r}")
    probe = cfg.machine_factory()
    job = MPIJob(
        cfg.machine_factory,
        n_ranks=cfg.n_ranks,
        ranks_per_node=min(cfg.n_ranks, probe.topology.n_cores),
        threads_per_rank=1,
    )

    def attach(process: SimProcess):
        if not cfg.profile:
            return None
        profiler = DataCentricProfiler(process, cfg.profiler_config).attach()
        process.pmu = IBSEngine(period=cfg.pmu_period, seed=cfg.seed + process.pid)
        return profiler

    result: JobResult = job.run(
        lambda process, rank, n: _rank_main(cfg, process, rank, n),
        attach=attach,
    )
    profilers = [r.attachment for r in result.ranks if r.attachment is not None]
    machines = list(result.machines.values())
    return AppResult(
        app="sweep3d",
        variant=cfg.variant,
        elapsed_cycles=result.elapsed_cycles,
        elapsed_seconds=result.elapsed_seconds(),
        phase_seconds=result.phase_seconds(),
        profilers=profilers,
        experiment=analyze_profilers("sweep3d", profilers),
        machines=machines,
        pmu_engines=[],
    )
