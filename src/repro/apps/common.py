"""Shared plumbing for the case-study apps."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.util.rng import derive_rank_seed

from repro.core.analyzer import Analyzer, ExperimentDB
from repro.core.profiledb import ProfileDB
from repro.core.profiler import DataCentricProfiler, ProfilerConfig
from repro.machine.presets import Machine
from repro.sim.process import SimProcess

__all__ = [
    "AppResult",
    "profile_attachment",
    "analyze_profilers",
    "as_rank_db",
    "single_process_rank",
]


@dataclass
class AppResult:
    """Outcome of one app run (one variant, profiled or not)."""

    app: str
    variant: str
    elapsed_cycles: int
    elapsed_seconds: float
    phase_seconds: dict[str, float] = field(default_factory=dict)
    profilers: list[DataCentricProfiler] = field(default_factory=list)
    experiment: ExperimentDB | None = None
    machines: list[Machine] = field(default_factory=list)
    pmu_engines: list = field(default_factory=list)

    @property
    def profiled(self) -> bool:
        return bool(self.profilers)

    def profile_size_bytes(self) -> int:
        return sum(p.finalize().size_bytes() for p in self.profilers)

    def overhead_vs(self, baseline: "AppResult") -> float:
        """Runtime overhead of this (profiled) run over a baseline run."""
        if baseline.elapsed_cycles == 0:
            return 0.0
        return (
            self.elapsed_cycles - baseline.elapsed_cycles
        ) / baseline.elapsed_cycles

    def speedup_over(self, other: "AppResult") -> float:
        """Wall-clock speedup of *this* run relative to ``other`` (>1 = faster)."""
        if self.elapsed_cycles == 0:
            return 0.0
        return other.elapsed_cycles / self.elapsed_cycles


def profile_attachment(
    pmu_factory: Callable[[], object] | None,
    profiler_config: ProfilerConfig | None = None,
) -> Callable[[SimProcess], DataCentricProfiler]:
    """Build an ``attach`` callback installing a profiler (+PMU) on a process."""

    def attach(process: SimProcess) -> DataCentricProfiler:
        profiler = DataCentricProfiler(process, profiler_config).attach()
        if pmu_factory is not None:
            process.pmu = pmu_factory()
        return profiler

    return attach


def as_rank_db(
    db: ProfileDB,
    app: str,
    rank: int,
    n_ranks: int,
    variant: str,
    seed: int,
    process: SimProcess | None = None,
) -> ProfileDB:
    """Stamp one rank's profile database with its provenance.

    The parallel driver writes this DB to ``measurements/<app>/<rank>.rpdb``;
    the metadata lets the merge (and a human with ``hpcview info``) tell
    which rank of which run a stray file belongs to.  When the simulated
    ``process`` is supplied, its elapsed cycles and — under a sampled
    session — the sampler's tallies ride along, which is what the
    fidelity report and ``hpcview`` read back.
    """
    db.process_name = f"{app}.rank{rank:04d}"
    db.meta.update(
        app=app,
        rank=str(rank),
        n_ranks=str(n_ranks),
        variant=variant,
        seed=str(seed),
    )
    if process is not None:
        db.meta["elapsed_cycles"] = str(process.elapsed_cycles)
        # The machine preset the rank ran on: the formula registry keys
        # per-architecture constant overrides (latencies, thresholds) on
        # this when deriving metrics from the merged profile.
        db.meta["machine"] = process.machine.spec.name
        if process.sampler is not None:
            db.meta.update(process.sampler.to_meta())
    return db


def single_process_rank(
    run_fn: Callable, app: str, cfg, rank: int, n_ranks: int
) -> ProfileDB:
    """Run one rank-shard of a single-process app under the parallel driver.

    Shared-memory apps (lulesh, nw, streamcluster) have no MPI ranks of
    their own; the driver treats each rank as an independent replica of
    the whole run, distinguished only by a decorrelated deterministic
    seed — the multi-trial measurement mode the paper uses to average
    sampling noise.
    """
    seed = derive_rank_seed(cfg.seed, rank)
    cfg = replace(cfg, seed=seed, profile=True)
    result = run_fn(cfg)
    profiler = result.profilers[0]
    return as_rank_db(
        profiler.finalize(), app, rank, n_ranks, cfg.variant, seed,
        process=profiler.process,
    )


def analyze_profilers(
    name: str, profilers: list[DataCentricProfiler]
) -> ExperimentDB | None:
    """Merge all profilers' databases into one experiment DB."""
    if not profilers:
        return None
    analyzer = Analyzer(name)
    for profiler in profilers:
        analyzer.add(profiler.finalize())
    return analyzer.analyze()
