"""LULESH — the paper's §5.3 case study (48-core AMD, IBS latency).

Two pathologies:

1. *Heap/NUMA* (Figure 8): every domain array (coordinates, velocities,
   forces, energy, ...) is allocated and initialized by the master
   thread, so first-touch homes all of them on one of the eight NUMA
   domains; the OpenMP loops then fetch them remotely and contend for
   that controller.  The paper attributes 66.8% of data-fetch latency
   and 94.2% of remote accesses to heap data, with each of the top seven
   arrays carrying 3.0-9.4% of total latency.  Fix: libnuma interleaved
   allocation of the hot arrays — 13% faster.

2. *Static/spatial* (Figure 9): the static array ``f_elem[n][3][8]`` is
   accessed with an indirect first subscript (via
   ``nodeElemCornerList``) and a computed last subscript, while the
   middle subscript (0..2) is the innermost loop — three touches per
   visit that straddle three cache lines.  Statics carry 23.6% of
   latency, ``f_elem`` alone 17%.  Fix: transpose ``f_elem`` to
   ``[n][8][3]`` so the inner three touches share a line — 2.2% faster.

Variants: ``original``, ``libnuma``, ``transpose``, ``both``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps.common import AppResult, analyze_profilers, single_process_rank
from repro.core.profiledb import ProfileDB
from repro.core.profiler import DataCentricProfiler, ProfilerConfig
from repro.machine.presets import Machine, amd_magnycours
from repro.numa.libnuma import numa_alloc_interleaved
from repro.pmu.ibs import IBSEngine
from repro.sim.loader import LoadModule
from repro.sim.openmp import declare_outlined, omp_chunk
from repro.sim.process import SimProcess
from repro.sim.runtime import Ctx
from repro.sim.source import SourceFile

__all__ = [
    "Config", "run", "run_rank", "rank_config", "VARIANTS", "DOMAIN_ARRAYS",
    "static_model",
]

VARIANTS = ("original", "libnuma", "transpose", "both")

# The domain arrays of Figure 8 (names as in the LULESH source).
DOMAIN_ARRAYS = (
    "m_x", "m_y", "m_z",        # coordinates
    "m_xd", "m_yd", "m_zd",     # velocities
    "m_fx", "m_fy", "m_fz",     # forces
    "m_e", "m_p", "m_q",        # energy / pressure / viscosity
)

_F_ELEM_MAX_NODES = 2048

# Source-line anchors for lulesh.cc, shared by the program image, the
# kernel, and static_model() (reprolint R009 bans restating them as
# literals there); the extraction drift gate verifies each against the
# interpreted kernel.
L_STATIC_F_ELEM = 15
L_STATIC_GAMMA = 16
L_ALLOC_DOMAIN0 = 22      # first domain array; one line per array
L_ALLOC_CORNER_LIST = 40
L_ALLOC_SCRATCH = 45
L_TOUCH_INIT = 60
L_CALL_KINEMATICS = 85
L_CALL_STRESS = 86
L_PARALLEL_KIN = 690
L_KIN_STREAM = 700
L_KIN_STORE = 705
L_PARALLEL_STRESS = 790
L_STRESS_STREAM = 800
L_CORNER_GATHER = 801
L_F_ELEM_STORE = 802


@dataclass
class Config:
    nelem: int = 4096
    nnode: int = 2048
    iterations: int = 3
    n_threads: int = 48
    variant: str = "original"
    profile: bool = False
    pmu_period: int = 256
    profiler_config: ProfilerConfig | None = None
    machine_factory: Callable[[], Machine] = amd_magnycours
    compute_per_elem: int = 90   # MLP/arithmetic stand-in (see DESIGN.md)
    corner_every: int = 4        # f_elem corner update density (Figure 9 knob)
    seed: int = 0x1E


def _build_image(process: SimProcess):
    src = SourceFile(
        "lulesh.cc",
        {
            L_ALLOC_DOMAIN0:
                "m_x = new Real_t[numElem]; /* ... one line per array */",
            L_TOUCH_INIT:
                "for (Index_t i=0; i<numElem; ++i) m_x[i] = Real_t(0.);",
            L_KIN_STREAM: "Real_t vx = xd[k]; Real_t vy = yd[k]; ...",
            L_KIN_STORE: "e_new[k] = e[k] - delvc[k]*p[k];",
            L_CORNER_GATHER: "Index_t corner = nodeElemCornerList[i*2+c];",
            L_F_ELEM_STORE: "f_elem[corner][k][Find_Pos(i,c)] += fx_local;",
        },
    )
    exe = LoadModule("lulesh.exe", is_executable=True)
    main_fn = exe.add_function("main", src, 1, 120)
    kinematics = exe.add_function("CalcKinematicsForElems", src, 680, 40)
    stress = exe.add_function("IntegrateStressForElems", src, 780, 40)
    kin_region = declare_outlined(exe, kinematics, L_PARALLEL_KIN, 25)
    stress_region = declare_outlined(exe, stress, L_PARALLEL_STRESS, 25)
    f_elem_sym = exe.add_static(
        "f_elem", _F_ELEM_MAX_NODES * 3 * 8 * 8, src, L_STATIC_F_ELEM
    )
    gamma_sym = exe.add_static("Gamma", 4 * 8 * 8 * 8 * 8, src, L_STATIC_GAMMA)
    process.load_module(exe)
    return (
        src, main_fn, kinematics, stress,
        kin_region, stress_region, f_elem_sym, gamma_sym,
    )


RANK_PRESETS: dict[str, dict] = {
    "smoke": dict(nelem=1024, nnode=512, iterations=2, n_threads=24, pmu_period=64),
    "paper": {},
}


def rank_config(preset: str = "smoke", variant: str = "original") -> Config:
    if preset not in RANK_PRESETS:
        raise ValueError(f"unknown lulesh rank preset {preset!r}")
    return Config(variant=variant, profile=True, **RANK_PRESETS[preset])


def run_rank(
    rank: int, n_ranks: int, variant: str = "original", preset: str = "smoke",
    cfg: Config | None = None,
) -> ProfileDB:
    """Profile one rank-replica of lulesh; the parallel-driver entry point."""
    if cfg is None:
        cfg = rank_config(preset, variant)
    return single_process_rank(run, "lulesh", cfg, rank, n_ranks)


def static_model(variant: str = "original", preset: str = "smoke"):
    """Declarations for the static analyzer (see repro.staticcheck.model).

    The 12 domain arrays are the H001 set (master touch at line 60, wide
    teams in both solver regions); ``nodeElemCornerList`` and the scratch
    blocks sit below the share threshold, and the two statics (f_elem,
    Gamma) are first touched by workers — none of those may fire.
    """
    from repro.sim.openmp import outlined_name
    from repro.staticcheck.model import StaticModel

    if variant not in VARIANTS:
        raise ValueError(f"unknown lulesh variant {variant!r}")
    cfg = rank_config(preset, variant)
    machine = cfg.machine_factory()
    process = SimProcess(machine, name="lulesh")
    _build_image(process)
    model = StaticModel("lulesh", variant, process, machine, cfg.n_threads)
    kin_region = outlined_name("CalcKinematicsForElems", 0)
    stress_region = outlined_name("IntegrateStressForElems", 0)

    model.entry("main")
    model.call("main", L_CALL_KINEMATICS, "CalcKinematicsForElems")
    model.call("main", L_CALL_STRESS, "IntegrateStressForElems")
    model.parallel_region("CalcKinematicsForElems", L_PARALLEL_KIN,
                          kin_region, cfg.n_threads)
    model.parallel_region("IntegrateStressForElems", L_PARALLEL_STRESS,
                          stress_region, cfg.n_threads)

    interleaved = variant in ("libnuma", "both")
    kind = "numa_interleaved" if interleaved else "malloc"
    nelem = float(cfg.nelem)
    iters = float(cfg.iterations)
    for idx, name in enumerate(DOMAIN_ARRAYS):
        model.alloc("main", L_ALLOC_DOMAIN0 + idx, name, cfg.nelem * 8,
                    kind=kind)
        model.touch("main", L_TOUCH_INIT, name, by="master")
    model.alloc("main", L_ALLOC_CORNER_LIST, "nodeElemCornerList",
                cfg.nelem * 2 * 4, kind="malloc")
    model.touch("main", L_TOUCH_INIT, "nodeElemCornerList", by="master")
    model.alloc("main", L_ALLOC_SCRATCH, "scratch", 12 * 3968, kind="malloc")
    model.touch("main", L_TOUCH_INIT, "scratch", by="master")
    model.alloc("main", L_STATIC_F_ELEM, "f_elem", 0, kind="static")
    model.alloc("main", L_STATIC_GAMMA, "Gamma", 0, kind="static")

    # Kinematics: six streamed loads per element, one energy-family store
    # and one force load (each array takes a third), plus a scratch poke.
    for name in ("m_x", "m_y", "m_z", "m_xd", "m_yd", "m_zd"):
        model.access(kin_region, L_KIN_STREAM, name, weight=nelem * iters)
    for name in ("m_e", "m_p", "m_q"):
        model.access(kin_region, L_KIN_STORE, name, weight=nelem * iters / 3,
                     is_store=True)
    for name in ("m_fx", "m_fy", "m_fz"):
        model.access(kin_region, L_KIN_STORE, name, weight=nelem * iters / 3)
    model.access(kin_region, L_KIN_STORE, "scratch", weight=nelem * iters / 4)

    # Stress integration: six streamed loads per element, corner-list
    # gather + three f_elem stores every 4th element, Gamma every 4th.
    for name in ("m_fx", "m_fy", "m_fz", "m_p", "m_q", "m_e"):
        model.access(stress_region, L_STRESS_STREAM, name,
                     weight=nelem * iters)
    corner = nelem * iters / max(1, cfg.corner_every)
    model.access(stress_region, L_CORNER_GATHER, "nodeElemCornerList",
                 weight=corner)
    model.access(stress_region, L_F_ELEM_STORE, "f_elem", weight=3 * corner,
                 is_store=True)
    model.access(stress_region, L_F_ELEM_STORE, "Gamma",
                 weight=nelem * iters / 4)
    return model


def run(cfg: Config) -> AppResult:
    if cfg.variant not in VARIANTS:
        raise ValueError(f"unknown lulesh variant {cfg.variant!r}")
    machine = cfg.machine_factory()
    if cfg.n_threads > machine.n_threads:
        raise ValueError("n_threads exceeds machine hardware threads")
    if cfg.nnode > _F_ELEM_MAX_NODES:
        raise ValueError("nnode exceeds the f_elem static symbol size")
    process = SimProcess(machine, name="lulesh")
    profiler = None
    pmu = None
    if cfg.profile:
        profiler = DataCentricProfiler(process, cfg.profiler_config).attach()
        pmu = IBSEngine(period=cfg.pmu_period, seed=cfg.seed)
        process.pmu = pmu

    (src, main_fn, kinematics, stress, kin_region, stress_region,
     f_elem_sym, gamma_sym) = _build_image(process)
    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)

    nelem, nnode = cfg.nelem, cfg.nnode
    interleaved = cfg.variant in ("libnuma", "both")
    transposed = cfg.variant in ("transpose", "both")

    with process.phase("setup"):
        arrays = {}
        for idx, name in enumerate(DOMAIN_ARRAYS):
            if interleaved:
                arrays[name] = numa_alloc_interleaved(
                    ctx, name, (nelem,), line=L_ALLOC_DOMAIN0 + idx, elem=8
                )
            else:
                arrays[name] = ctx.alloc_array(
                    name, (nelem,), line=L_ALLOC_DOMAIN0 + idx, elem=8
                )
        corner_list = ctx.alloc_array(
            "nodeElemCornerList", (nelem * 2,), line=L_ALLOC_CORNER_LIST,
            elem=4
        )
        # Sub-threshold temporaries (sigxx/determ scratch): land in
        # *unknown data*, the ~10% latency remainder of Figure 8.
        scratch = [ctx.malloc(3968, line=L_ALLOC_SCRATCH) for _ in range(12)]
        # Master-thread initialization commits first touch (or fills the
        # interleave override ranges) for every page.
        for name in DOMAIN_ARRAYS:
            ctx.touch_range(arrays[name].base, arrays[name].nbytes,
                            line=L_TOUCH_INIT)
        ctx.touch_range(corner_list.base, corner_list.nbytes,
                        line=L_TOUCH_INIT)
        for addr in scratch:
            ctx.touch_range(addr, 3968, line=L_TOUCH_INIT)

        if transposed:
            f_elem = ctx.static_array(f_elem_sym, (nnode, 8, 3), elem=8)
        else:
            f_elem = ctx.static_array(f_elem_sym, (nnode, 3, 8), elem=8)
        gamma = ctx.static_array(gamma_sym, (4, 8, 8, 8), elem=8)

    stream_names = ("m_x", "m_y", "m_z", "m_xd", "m_yd", "m_zd")
    store_names = ("m_e", "m_p", "m_q")

    def kin_worker_factory(iteration: int):
        ips = [
            kin_region.ip(L_KIN_STREAM, slot)
            for slot in range(len(stream_names))
        ]
        ip_store = kin_region.ip(L_KIN_STORE, 0)
        ip_force = kin_region.ip(L_KIN_STORE, 1)
        ip_scratch = kin_region.ip(L_KIN_STORE, 2)
        bases = [arrays[n] for n in stream_names]
        stores = [arrays[n] for n in store_names]
        forces = [arrays["m_fx"], arrays["m_fy"], arrays["m_fz"]]

        def worker(wctx: Ctx, tid: int):
            # Chunks rotate across iterations: at full scale each chunk far
            # exceeds the private caches, so every timestep re-streams it
            # from DRAM; the scaled-down mesh preserves that by handing
            # each thread a cold chunk per iteration (see DESIGN.md).
            # The per-element loop interleaves six stream arrays plus
            # store/force/scratch accesses, so it stays on the scalar API
            # (batching one array at a time would reorder the stream);
            # mesh initialization uses the batched touch_range path.
            chunk = omp_chunk(
                nelem, cfg.n_threads, (tid + iteration * 17) % cfg.n_threads
            )
            for j, e in enumerate(chunk):
                for arr, ip in zip(bases, ips):
                    wctx.load_ip(arr.flat_addr(e), ip)
                wctx.store_ip(stores[e % 3].flat_addr(e), ip_store)
                wctx.load_ip(forces[e % 3].flat_addr(e), ip_force)
                if e % 4 == 3:
                    s = scratch[e % len(scratch)]
                    wctx.load_ip(s + ((e * 37 + iteration) % 60) * 64, ip_scratch)
                wctx.compute(cfg.compute_per_elem)
                if j % 8 == 7:
                    yield
            yield

        return worker

    def stress_worker_factory(iteration: int):
        ip_corner = stress_region.ip(L_CORNER_GATHER)
        ip_f = [stress_region.ip(L_F_ELEM_STORE, slot) for slot in range(3)]
        ip_gamma = stress_region.ip(L_F_ELEM_STORE, 3)
        stream_bases = [arrays[n] for n in ("m_fx", "m_fy", "m_fz", "m_p", "m_q", "m_e")]
        stream_ips = [stress_region.ip(L_STRESS_STREAM, slot) for slot in range(6)]

        def worker(wctx: Ctx, tid: int):
            chunk = omp_chunk(
                nelem, cfg.n_threads, (tid + iteration * 17) % cfg.n_threads
            )
            for j, e in enumerate(chunk):
                # Stress integration also streams the coordinate arrays.
                for arr, ip in zip(stream_bases, stream_ips):
                    wctx.load_ip(arr.flat_addr(e), ip)
                wctx.compute(cfg.compute_per_elem // 4)
                if e % cfg.corner_every == 0:
                    wctx.load_ip(corner_list.flat_addr(e * 2), ip_corner)
                    corner = (e * 131 + iteration * 8191) % nnode
                    # ``Find_Pos`` yields a different position per
                    # component, so even the transposed layout keeps some
                    # irregularity — the fix recovers only part of the
                    # spatial locality, as in the paper's modest 2.2% gain.
                    for k in range(3):
                        pos = (e * 7 + k * 3) % 8
                        if transposed:
                            addr = f_elem.addr_unchecked(corner, pos, k)
                        else:
                            addr = f_elem.addr_unchecked(corner, k, pos)
                        wctx.store_ip(addr, ip_f[k])
                if e % 4 == 1:
                    wctx.load_ip(
                        gamma.addr_unchecked(e % 4, (e // 4) % 8, e % 8, 0), ip_gamma
                    )
                wctx.compute(cfg.compute_per_elem // 4)
                if j % 8 == 7:
                    yield
            yield

        return worker

    with process.phase("solve"):
        for it in range(cfg.iterations):
            ctx.call_sync(
                kinematics,
                L_CALL_KINEMATICS,
                lambda c, it=it: c.parallel(
                    kin_region, kin_worker_factory(it), cfg.n_threads,
                    line=L_PARALLEL_KIN
                ),
            )
            ctx.call_sync(
                stress,
                L_CALL_STRESS,
                lambda c, it=it: c.parallel(
                    stress_region, stress_worker_factory(it), cfg.n_threads,
                    line=L_PARALLEL_STRESS
                ),
            )

    ctx.leave()
    profilers = [profiler] if profiler else []
    return AppResult(
        app="lulesh",
        variant=cfg.variant,
        elapsed_cycles=process.elapsed_cycles,
        elapsed_seconds=process.elapsed_seconds(),
        phase_seconds=process.phase_seconds(),
        profilers=profilers,
        experiment=analyze_profilers("lulesh", profilers),
        machines=[machine],
        pmu_engines=[pmu] if pmu else [],
    )
