"""Streamcluster (Rodinia) — the paper's §5.4 case study.

Pathology: the coordinate ``block`` (and the point array ``point.p``) are
allocated *and serially initialized* by the master thread, so first touch
pins every page to the master's NUMA domain; all 128 worker threads then
stream through them remotely, contending for one memory controller.
Figure 10 attributes 98.2% of remote accesses to heap data, 92.6% to
``block``, split 55.5%/37% across the two OpenMP contexts that call
``dist`` (line 175), plus 5.5% to ``point.p``.

Fix (paper): initialize in parallel so first touch distributes the pages
— ``variant="parallel-init"`` — reported 28% faster.

Scaling note: the real pgain() streams each candidate-center evaluation
over a >cache working set.  Our scaled-down block would fit in the
simulated caches if each thread kept its own chunk, so worker chunks
*rotate* across passes — preserving the DRAM-resident, bandwidth-bound
character the fix targets (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.apps.common import AppResult, analyze_profilers, single_process_rank
from repro.core.profiledb import ProfileDB
from repro.core.profiler import DataCentricProfiler, ProfilerConfig
from repro.machine.presets import Machine, power7_node
from repro.pmu.events import PM_MRK_DATA_FROM_RMEM
from repro.pmu.marked import MarkedEventEngine
from repro.sim.loader import LoadModule
from repro.sim.openmp import declare_outlined, omp_chunks
from repro.sim.process import SimProcess
from repro.sim.runtime import Ctx
from repro.sim.source import SourceFile

__all__ = ["Config", "run", "run_rank", "rank_config", "VARIANTS", "static_model"]

VARIANTS = ("original", "parallel-init")

# Source-line anchors for streamcluster.cpp, shared by the program
# image, the kernel, and static_model() (reprolint R009 bans restating
# them as literals there); the extraction drift gate verifies each
# against the interpreted kernel.
L_ALLOC_BLOCK = 30
L_ALLOC_POINT_P = 32
L_ALLOC_SCRATCH = 34
L_TOUCH_SERIAL = 40
L_PARALLEL_INIT = 42
L_TOUCH_PARALLEL = 43
L_CALL_PGAIN = 50
L_PARALLEL_REGION1 = 140
L_CALL_DIST1 = 141
L_PARALLEL_REGION2 = 160
L_CALL_DIST2 = 161
L_DIST_COORD = 175
# The weight/scratch poke slots sit 7 lines into each region body.
L_WEIGHT_SLOT1 = L_CALL_DIST1 + 7
L_WEIGHT_SLOT2 = L_CALL_DIST2 + 7


@dataclass
class Config:
    """Workload scale and measurement options."""

    npoints: int = 2048
    dim: int = 16
    passes_region1: int = 3
    passes_region2: int = 2
    n_threads: int = 128
    variant: str = "original"
    profile: bool = False
    pmu_period: int = 48
    profiler_config: ProfilerConfig | None = None
    machine_factory: Callable[[], Machine] = power7_node
    # Abstract FLOPs per dist() call, per coordinate: stands in for the
    # real kernel's arithmetic plus the memory-level parallelism a real
    # out-of-order core overlaps with misses (the simulator serializes
    # accesses); calibrated so the parallel-init fix lands near the
    # paper's 28% gain.
    compute_per_coord: int = 52
    seed: int = 0x5C


def _build_image(process: SimProcess):
    src = SourceFile(
        "streamcluster.cpp",
        {
            L_ALLOC_BLOCK:
                "block = (float*)malloc(numPoints*dim*sizeof(float));",
            L_ALLOC_POINT_P:
                "points.p = (Point*)malloc(numPoints*sizeof(Point));",
            L_TOUCH_SERIAL:
                "for(i=0;i<n*d;i++) block[i] = 0;  /* serial init */",
            145: "change += pgain_dist(x, points, k);",
            165: "cost += pgain_dist(x, points, k);",
            L_DIST_COORD:
                "result += (p1.coord[i]-p2.coord[i])*(p1.coord[i]-p2.coord[i]);",
            178: "w = p2.weight;",
        },
    )
    exe = LoadModule("streamcluster.exe", is_executable=True)
    main_fn = exe.add_function("main", src, 1, 100)
    pgain_fn = exe.add_function("_Z5pgainlP6Points", src, 130, 80)
    dist_fn = exe.add_function("_Z4distP5PointS0_i", src, 170, 15)
    init_region = declare_outlined(exe, main_fn, L_PARALLEL_INIT, 8,
                                   region_index=0)
    region1 = declare_outlined(exe, pgain_fn, L_PARALLEL_REGION1, 65,
                               region_index=0)
    region2 = declare_outlined(exe, pgain_fn, L_PARALLEL_REGION2, 45,
                               region_index=1)
    process.load_module(exe)
    return src, main_fn, pgain_fn, dist_fn, init_region, region1, region2


RANK_PRESETS: dict[str, dict] = {
    # n_threads must span >=2 sockets or first-touch data is all-local
    # and the remote-event engine never fires.
    "smoke": dict(npoints=512, n_threads=64, passes_region1=2, passes_region2=1,
                  pmu_period=16),
    "paper": {},
}


def rank_config(preset: str = "smoke", variant: str = "original") -> Config:
    if preset not in RANK_PRESETS:
        raise ValueError(f"unknown streamcluster rank preset {preset!r}")
    return Config(variant=variant, profile=True, **RANK_PRESETS[preset])


def run_rank(
    rank: int, n_ranks: int, variant: str = "original", preset: str = "smoke",
    cfg: Config | None = None,
) -> ProfileDB:
    """Profile one rank-replica of streamcluster; parallel-driver entry point."""
    if cfg is None:
        cfg = rank_config(preset, variant)
    return single_process_rank(run, "streamcluster", cfg, rank, n_ranks)


def static_model(variant: str = "original", preset: str = "smoke"):
    """Declarations for the static analyzer (see repro.staticcheck.model).

    The interesting interprocedural case: block/point.p accesses sit in
    ``dist``, an ordinary function — only the call-graph contexts through
    the two pgain regions make them parallel accesses.  ``point.p``'s
    weight lands *below* the share threshold, a deliberate static miss
    the reconciliation pass surfaces (DESIGN.md discusses this limit).
    """
    from repro.sim.openmp import outlined_name
    from repro.staticcheck.model import StaticModel

    if variant not in VARIANTS:
        raise ValueError(f"unknown streamcluster variant {variant!r}")
    cfg = rank_config(preset, variant)
    machine = cfg.machine_factory()
    process = SimProcess(machine, name="streamcluster")
    _build_image(process)
    model = StaticModel("streamcluster", variant, process, machine, cfg.n_threads)
    pgain = "_Z5pgainlP6Points"
    dist = "_Z4distP5PointS0_i"
    init_region = outlined_name("main", 0)
    region1 = outlined_name(pgain, 0)
    region2 = outlined_name(pgain, 1)

    model.entry("main")
    model.call("main", L_CALL_PGAIN, pgain)
    model.parallel_region(pgain, L_PARALLEL_REGION1, region1, cfg.n_threads)
    model.parallel_region(pgain, L_PARALLEL_REGION2, region2, cfg.n_threads)
    model.call(region1, L_CALL_DIST1, dist)
    model.call(region2, L_CALL_DIST2, dist)

    npoints, dim = cfg.npoints, cfg.dim
    model.alloc("main", L_ALLOC_BLOCK, "block", npoints * dim * 4,
                kind="malloc")
    model.alloc("main", L_ALLOC_POINT_P, "point.p", npoints * 32,
                kind="malloc")
    model.alloc("main", L_ALLOC_SCRATCH, "scratch", 16 * 3968, kind="malloc")
    model.touch("main", L_ALLOC_SCRATCH, "scratch", by="master")
    if variant == "parallel-init":
        model.parallel_region("main", L_PARALLEL_INIT, init_region,
                              cfg.n_threads)
        model.touch(init_region, L_TOUCH_PARALLEL, "block", by="workers")
        model.touch(init_region, L_TOUCH_PARALLEL, "point.p", by="workers")
    else:
        model.touch("main", L_TOUCH_SERIAL, "block", by="master")
        model.touch("main", L_TOUCH_SERIAL, "point.p", by="master")

    passes = float(cfg.passes_region1 + cfg.passes_region2)
    per_pass = float(npoints)
    # dist streams dim coords of p2 from block plus one p1 load per call.
    model.access(dist, L_DIST_COORD, "block",
                 weight=passes * per_pass * (dim + 1))
    # One point.p weight read per 8 points, one scratch poke per 12, at
    # the weight slots inside each region body.
    for region, region_passes in (
        (region1, float(cfg.passes_region1)),
        (region2, float(cfg.passes_region2)),
    ):
        line = L_WEIGHT_SLOT1 if region == region1 else L_WEIGHT_SLOT2
        model.access(region, line, "point.p", weight=region_passes * per_pass / 8)
        model.access(region, line, "scratch", weight=region_passes * per_pass / 12)
    return model


def run(cfg: Config) -> AppResult:
    if cfg.variant not in VARIANTS:
        raise ValueError(f"unknown streamcluster variant {cfg.variant!r}")
    machine = cfg.machine_factory()
    if cfg.n_threads > machine.n_threads:
        raise ValueError("n_threads exceeds machine hardware threads")
    process = SimProcess(machine, name="streamcluster")
    profiler = None
    pmu = None
    if cfg.profile:
        profiler = DataCentricProfiler(process, cfg.profiler_config).attach()
        pmu = MarkedEventEngine(PM_MRK_DATA_FROM_RMEM, period=cfg.pmu_period, seed=cfg.seed)
        process.pmu = pmu

    src, main_fn, pgain_fn, dist_fn, init_region, region1, region2 = _build_image(process)
    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)

    npoints, dim = cfg.npoints, cfg.dim
    line_size = 1 << machine.hierarchy.line_bits

    block = ctx.alloc_array("block", (npoints, dim), line=L_ALLOC_BLOCK,
                            elem=4)
    point_p = ctx.alloc_array("point.p", (npoints,), line=L_ALLOC_POINT_P,
                              elem=32)
    # Sub-threshold scratch blocks (temporary vectors the real code keeps
    # per pgain round): too small for the profiler to capture contexts,
    # so their samples land in *unknown data* — the ~2% non-heap remainder
    # of Figure 10.
    scratch = [ctx.malloc(3968, line=L_ALLOC_SCRATCH) for _ in range(16)]
    for addr in scratch:
        ctx.touch_range(addr, 3968, line=L_ALLOC_SCRATCH)
    chunks = omp_chunks(npoints, cfg.n_threads)

    with process.phase("init"):
        # Initialization touches one store per page: enough to commit
        # first-touch placement; the (identical-in-both-variants) zero-fill
        # streaming cost is not modelled so the clustering phase dominates,
        # as it does at the paper's full scale.
        if cfg.variant == "original":
            ctx.touch_range(block.base, block.nbytes, line=L_TOUCH_SERIAL)
            ctx.touch_range(point_p.base, point_p.nbytes, line=L_TOUCH_SERIAL)
        else:
            # Parallel first touch: each worker initializes its own chunk.
            def init_worker(wctx: Ctx, tid: int):
                chunk = chunks[tid]
                if len(chunk):
                    wctx.touch_range(block.addr(chunk.start, 0),
                                     len(chunk) * dim * 4,
                                     line=L_TOUCH_PARALLEL)
                    wctx.touch_range(point_p.addr(chunk.start),
                                     len(chunk) * 8, line=L_TOUCH_PARALLEL)
                yield

            ctx.parallel(init_region, init_worker, cfg.n_threads,
                         line=L_PARALLEL_INIT)

    def dist_body(c: Ctx, pt: int, ip_p2: int, ip_p1: int) -> None:
        # p2.coord streams from block; p1.coord is the candidate center
        # (one hot row, cache-resident after the first touch).  The
        # coordinate sweep is one contiguous run — batched fast path.
        c.load_run(*block.axis_run(1, pt, 0), ip_p2)
        c.load_ip(block.addr(0, 0), ip_p1)
        c.compute(cfg.compute_per_coord * dim)

    def make_region_worker(region_fn, passes: int, rotation_salt: int):
        ip_p2 = dist_fn.ip(L_DIST_COORD, 0)
        ip_p1 = dist_fn.ip(L_DIST_COORD, 1)
        call_line = L_CALL_DIST1 if region_fn is region1 else L_CALL_DIST2
        ip_weight = region_fn.ip(call_line + 7)

        def worker(wctx: Ctx, tid: int):
            for pass_i in range(passes):
                # Rotate chunk ownership every other pass: a rotation
                # streams cold data (models pgain's per-candidate
                # streaming; see DESIGN.md), the following pass re-reads
                # it warm (the real kernel's reuse of the swap set).
                chunk = chunks[
                    (tid + ((pass_i + 3) // 3) * rotation_salt) % cfg.n_threads
                ]
                for j, pt in enumerate(chunk):
                    wctx.call_sync(dist_fn, call_line, dist_body, pt, ip_p2, ip_p1)
                    if pt % 8 == 0:
                        wctx.load_ip(point_p.addr(pt), ip_weight)
                    if pt % 12 == 5:
                        wctx.load_ip(
                            scratch[pt % len(scratch)]
                            + ((pt * 67 + pass_i) % 60) * 64,
                            ip_weight,
                        )
                    yield
                yield

        return worker

    def pgain_body(c: Ctx) -> None:
        c.parallel(
            region1,
            make_region_worker(region1, cfg.passes_region1, 17),
            cfg.n_threads,
            line=L_PARALLEL_REGION1,
        )
        c.parallel(
            region2,
            make_region_worker(region2, cfg.passes_region2, 29),
            cfg.n_threads,
            line=L_PARALLEL_REGION2,
        )

    with process.phase("cluster"):
        ctx.call_sync(pgain_fn, L_CALL_PGAIN, pgain_body)

    ctx.leave()

    profilers = [profiler] if profiler else []
    return AppResult(
        app="streamcluster",
        variant=cfg.variant,
        elapsed_cycles=process.elapsed_cycles,
        elapsed_seconds=process.elapsed_seconds(),
        phase_seconds=process.phase_seconds(),
        profilers=profilers,
        experiment=analyze_profilers("streamcluster", profilers),
        machines=[machine],
        pmu_engines=[pmu] if pmu else [],
    )
