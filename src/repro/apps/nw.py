"""Needleman-Wunsch (Rodinia) — the paper's §5.5 case study.

Pathology: the two score matrices, ``referrence`` (sic — Rodinia's own
spelling) and ``input_itemsets``, are allocated and initialized by the
master thread; the wavefront workers in
``_Z7runTestiPPc.omp_fn.0`` (the ``maximum`` calls on lines 163-165)
then hammer the master's memory controller.  Figure 11 attributes 90.9%
of remote accesses to heap data: 61.4% ``referrence``, 29.5%
``input_itemsets``.

Fix (paper): libnuma-interleave both arrays across all NUMA domains —
``variant="libnuma"`` — reported 53% faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps.common import AppResult, analyze_profilers, single_process_rank
from repro.core.profiledb import ProfileDB
from repro.core.profiler import DataCentricProfiler, ProfilerConfig
from repro.machine.presets import Machine, power7_node
from repro.numa.libnuma import numa_alloc_interleaved
from repro.pmu.events import PM_MRK_DATA_FROM_RMEM
from repro.pmu.marked import MarkedEventEngine
from repro.sim.loader import LoadModule
from repro.sim.openmp import declare_outlined
from repro.sim.process import SimProcess
from repro.sim.runtime import Ctx
from repro.sim.source import SourceFile

__all__ = ["Config", "run", "run_rank", "rank_config", "VARIANTS", "static_model"]

VARIANTS = ("original", "libnuma")

# Source-line anchors for needle.cpp, shared by the program image, the
# kernel, and static_model() (reprolint R009 bans restating them as
# literals there); the extraction drift gate verifies each against the
# interpreted kernel.
L_ALLOC_REFERRENCE = 45
L_ALLOC_ITEMSETS = 46
L_TOUCH_INIT = 50
L_CALL_RUNTEST = 60
L_PARALLEL_WAVEFRONT = 150
L_REF_LOAD = 163
L_ITEMS_LOAD = 164
L_ITEMS_STORE = 165


@dataclass
class Config:
    n: int = 256                 # matrix edge (cells = n*n)
    block: int = 8               # wavefront tile edge
    n_threads: int = 128
    variant: str = "original"
    profile: bool = False
    pmu_period: int = 48
    profiler_config: ProfilerConfig | None = None
    machine_factory: Callable[[], Machine] = power7_node
    compute_per_cell: int = 8
    # Every `ref_gather_every`-th cell reads referrence column-wise (the
    # substitution-score gather), which defeats spatial locality — the
    # knob that sets referrence's ~2:1 lead over input_itemsets in
    # Figure 11's remote-access ranking.
    ref_gather_every: int = 4
    # Differential twin: replay the worker's exact access order through
    # scalar load_ip/store_ip instead of batched load_run/store_run.
    # The two must be bit-identical (pinned in tests).
    scalar_worker: bool = False
    seed: int = 0x2F


def _build_image(process: SimProcess):
    src = SourceFile(
        "needle.cpp",
        {
            L_ALLOC_REFERRENCE:
                "referrence = (int*)malloc(max_rows*max_cols*sizeof(int));",
            L_ALLOC_ITEMSETS:
                "input_itemsets = (int*)malloc(max_rows*max_cols*sizeof(int));",
            L_TOUCH_INIT:
                "for(i=0;i<max_rows*max_cols;i++) input_itemsets[i] = 0;",
            L_REF_LOAD:
                "t1 = input_itemsets[idx-1-max_cols] + referrence[idx];",
            L_ITEMS_LOAD: "t2 = input_itemsets[idx-1] - penalty;",
            L_ITEMS_STORE: "input_itemsets[idx] = maximum(t1, t2, t3);",
        },
    )
    exe = LoadModule("needle.exe", is_executable=True)
    main_fn = exe.add_function("main", src, 1, 100)
    run_test = exe.add_function("_Z7runTestiPPc", src, 120, 90)
    region = declare_outlined(
        exe, run_test, L_PARALLEL_WAVEFRONT, 40, region_index=0
    )
    process.load_module(exe)
    return src, main_fn, run_test, region


RANK_PRESETS: dict[str, dict] = {
    # n_threads must span >=2 sockets or first-touch data is all-local
    # and the remote-event engine never fires.
    "smoke": dict(n=96, n_threads=64, pmu_period=16),
    "paper": {},
}


def rank_config(preset: str = "smoke", variant: str = "original") -> Config:
    if preset not in RANK_PRESETS:
        raise ValueError(f"unknown nw rank preset {preset!r}")
    return Config(variant=variant, profile=True, **RANK_PRESETS[preset])


def run_rank(
    rank: int, n_ranks: int, variant: str = "original", preset: str = "smoke",
    cfg: Config | None = None,
) -> ProfileDB:
    """Profile one rank-replica of nw; the parallel-driver entry point."""
    if cfg is None:
        cfg = rank_config(preset, variant)
    return single_process_rank(run, "nw", cfg, rank, n_ranks)


def static_model(variant: str = "original", preset: str = "smoke"):
    """Declarations for the static analyzer (see repro.staticcheck.model).

    Mirrors exactly what run() does: who allocates, who touches first,
    and which region accesses what with which estimated weight.  The
    weights follow the wavefront loop bounds — every interior cell does
    two referrence loads and one input_itemsets load + store (lines
    163-165) — so static shares line up with Figure 11's dynamic split.
    """
    from repro.sim.openmp import outlined_name
    from repro.staticcheck.model import StaticModel

    if variant not in VARIANTS:
        raise ValueError(f"unknown nw variant {variant!r}")
    cfg = rank_config(preset, variant)
    machine = cfg.machine_factory()
    process = SimProcess(machine, name="nw")
    _build_image(process)
    model = StaticModel("nw", variant, process, machine, cfg.n_threads)
    region = outlined_name("_Z7runTestiPPc", 0)

    model.entry("main")
    model.call("main", L_CALL_RUNTEST, "_Z7runTestiPPc")
    model.parallel_region(
        "_Z7runTestiPPc", L_PARALLEL_WAVEFRONT, region, cfg.n_threads
    )

    kind = "numa_interleaved" if variant == "libnuma" else "malloc"
    n = cfg.n
    nbytes = n * n * 4
    model.alloc("main", L_ALLOC_REFERRENCE, "referrence", nbytes, kind=kind)
    model.alloc("main", L_ALLOC_ITEMSETS, "input_itemsets", nbytes, kind=kind)
    model.touch("main", L_TOUCH_INIT, "referrence", by="master")
    model.touch("main", L_TOUCH_INIT, "input_itemsets", by="master")

    cells = float((n - 1) * (n - 1))  # interior wavefront cells
    model.access(region, L_REF_LOAD, "referrence", weight=2 * cells)
    model.access(region, L_ITEMS_LOAD, "input_itemsets", weight=cells)
    model.access(
        region, L_ITEMS_STORE, "input_itemsets", weight=cells, is_store=True
    )
    return model


def run(cfg: Config) -> AppResult:
    if cfg.variant not in VARIANTS:
        raise ValueError(f"unknown nw variant {cfg.variant!r}")
    machine = cfg.machine_factory()
    if cfg.n_threads > machine.n_threads:
        raise ValueError("n_threads exceeds machine hardware threads")
    process = SimProcess(machine, name="nw")
    profiler = None
    pmu = None
    if cfg.profile:
        profiler = DataCentricProfiler(process, cfg.profiler_config).attach()
        pmu = MarkedEventEngine(PM_MRK_DATA_FROM_RMEM, period=cfg.pmu_period, seed=cfg.seed)
        process.pmu = pmu

    src, main_fn, run_test, region = _build_image(process)
    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)

    n = cfg.n
    line_size = 1 << machine.hierarchy.line_bits

    with process.phase("init"):
        if cfg.variant == "libnuma":
            referrence = numa_alloc_interleaved(
                ctx, "referrence", (n, n), line=L_ALLOC_REFERRENCE, elem=4
            )
            itemsets = numa_alloc_interleaved(
                ctx, "input_itemsets", (n, n), line=L_ALLOC_ITEMSETS, elem=4
            )
        else:
            referrence = ctx.alloc_array(
                "referrence", (n, n), line=L_ALLOC_REFERRENCE, elem=4
            )
            itemsets = ctx.alloc_array(
                "input_itemsets", (n, n), line=L_ALLOC_ITEMSETS, elem=4
            )
        # The master initializes both matrices either way (the libnuma fix
        # leaves the init code alone; the policy override spreads pages).
        # One store per page commits placement; the identical zero-fill
        # streaming cost is left unmodelled so alignment dominates runtime.
        ctx.touch_range(referrence.base, referrence.nbytes, line=L_TOUCH_INIT)
        ctx.touch_range(itemsets.base, itemsets.nbytes, line=L_TOUCH_INIT)

    block = cfg.block  # Rodinia-style blocked wavefront, one tile per task

    def wavefront_worker_factory(nblocks_on_diag: int, brow0: int, bdiag: int):
        """Workers for one anti-diagonal of 16x16 blocks.

        Block-to-thread assignment is spread across the whole machine
        (cyclic with a per-diagonal offset): at full scale every diagonal
        holds far more blocks than threads, so workers on every NUMA node
        take part; the scaled-down matrix must preserve that regime or
        the short diagonals would execute entirely on socket 0.
        """
        ip_ref = region.ip(L_REF_LOAD, 0)
        ip_ref2 = region.ip(L_REF_LOAD, 1)
        ip_items_load = region.ip(L_ITEMS_LOAD, 0)
        ip_items_store = region.ip(L_ITEMS_STORE, 0)
        stride = max(1, cfg.n_threads // max(1, nblocks_on_diag))
        assignment = [
            (b * stride + bdiag * 13) % cfg.n_threads
            for b in range(nblocks_on_diag)
        ]

        gather = max(1, cfg.ref_gather_every)

        batched = not cfg.scalar_worker

        def worker(wctx: Ctx, tid: int):
            # Batched Ctx.load_run/store_run port: the fixed-stride row
            # sweeps (referrence row read at 163, input_itemsets read at
            # 164 and store at 165) each issue one run per block row; the
            # column-wise substitution-score gather is data-dependent and
            # stays scalar.  cfg.scalar_worker selects a twin that
            # replays the identical access order through scalar
            # load_ip/store_ip — the bit-identity pin.
            chunk = [b for b in range(nblocks_on_diag) if assignment[b] == tid]
            for b in chunk:
                bi = brow0 + b
                bj = bdiag - bi
                j_lo = max(bj * block, 1)
                j_hi = min((bj + 1) * block, n)
                ncols = j_hi - j_lo
                for i in range(max(bi * block, 1), min((bi + 1) * block, n)):
                    # Row-wise referrence read — the 2:1 lead of Figure 11
                    # together with the gather below.
                    if batched:
                        wctx.load_run(
                            referrence.addr_unchecked(i, j_lo), ncols, 4, ip_ref
                        )
                    else:
                        for j in range(j_lo, j_hi):
                            wctx.load_ip(referrence.addr_unchecked(i, j), ip_ref)
                    for j in range(j_lo, j_hi):
                        if (i + j) % gather == 0:
                            wctx.load_ip(
                                referrence.addr_unchecked((j * 31 + i) % n, i), ip_ref2
                            )
                        else:
                            wctx.load_ip(referrence.addr_unchecked(i, j - 1), ip_ref2)
                    if batched:
                        wctx.load_run(
                            itemsets.addr_unchecked(i - 1, j_lo), ncols, 4,
                            ip_items_load,
                        )
                        wctx.store_run(
                            itemsets.addr_unchecked(i, j_lo), ncols, 4,
                            ip_items_store,
                        )
                    else:
                        for j in range(j_lo, j_hi):
                            wctx.load_ip(
                                itemsets.addr_unchecked(i - 1, j), ip_items_load
                            )
                        for j in range(j_lo, j_hi):
                            wctx.store_ip(
                                itemsets.addr_unchecked(i, j), ip_items_store
                            )
                    wctx.compute(cfg.compute_per_cell * ncols)
                    yield
            yield

        return worker

    with process.phase("align"):
        nblocks = (n + block - 1) // block

        def run_test_body(c: Ctx) -> None:
            # Blocked forward wavefront over block anti-diagonals.
            for bd in range(0, 2 * nblocks - 1):
                lo = max(0, bd - nblocks + 1)
                hi = min(bd, nblocks - 1)
                c.parallel(
                    region,
                    wavefront_worker_factory(hi - lo + 1, lo, bd),
                    cfg.n_threads,
                    line=L_PARALLEL_WAVEFRONT,
                )

        ctx.call_sync(run_test, L_CALL_RUNTEST, run_test_body)

    ctx.leave()
    profilers = [profiler] if profiler else []
    return AppResult(
        app="nw",
        variant=cfg.variant,
        elapsed_cycles=process.elapsed_cycles,
        elapsed_seconds=process.elapsed_seconds(),
        phase_seconds=process.phase_seconds(),
        profilers=profilers,
        experiment=analyze_profilers("nw", profilers),
        machines=[machine],
        pmu_engines=[pmu] if pmu else [],
    )
