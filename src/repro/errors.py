"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A machine/profiler/workload configuration is invalid."""


class AddressError(ReproError):
    """A virtual or physical address is outside any mapped range."""


class AllocationError(ReproError):
    """The simulated heap could not satisfy a request, or a free is invalid."""


class SimulationError(ReproError):
    """The program simulation entered an inconsistent state."""


class ProfileError(ReproError):
    """Profile data is malformed or cannot be merged/analyzed."""


class FormulaError(ReproError):
    """A derived-metric formula is ill-formed (unknown reference, unit
    mismatch, dependency cycle) or cannot be evaluated over a source."""


class ObsError(ReproError):
    """The telemetry layer was used inconsistently (e.g. one metric name
    observed with different label-key sets, which would silently
    interleave unrelated series in the exports)."""


class ServeError(ReproError):
    """The continuous-profiling service rejected a request or reached an
    inconsistent store state (bad namespace, malformed frame, querying an
    app that has no compacted rollup yet)."""
