"""The boundness-triage metrics, as formula nodes (paper §5).

Before applying data-centric analysis, the paper "computes derived
metrics to identify whether a program is memory-bound enough for data
locality optimization".  This module declares that triage — previously
ad-hoc arithmetic in ``repro/core/derived.py`` — as nodes in a
:class:`repro.metrics.formula.FormulaRegistry`, evaluated over either a
merged profile or a live machine through the adapters in
:mod:`repro.metrics.sources`.

Three override mechanisms replace what used to be hard-coded:

* **per-architecture constants** — every bundled machine preset
  registers its latency model (and topology-derived mean remote hop
  distance) as constant overrides keyed by the preset name, so a
  profile stamped ``machine=amd-magnycours`` prices DRAM with
  Magny-Cours latencies;
* **per-source-kind nodes** — ``mem_cycles`` reads the *measured*
  sampled latency on a profile source but sums modelled level costs on
  a machine source; ``compute_cycles`` likewise (NONMEM instruction
  estimate vs. elapsed-minus-memory);
* **observed hop pricing** — remote DRAM cycles come from the
  hierarchy's per-hop access counts when available (machine sources),
  falling back to the preset's mean remote distance.  The old code
  priced *all* remote DRAM at a fixed 2-hop ``lat.dram(2)``, which
  overcharged every same-socket/cross-die access on multi-die parts
  like Magny-Cours.

The top-down hierarchy (LIKWID/pmu-tools style) hangs off the same
nodes: level-0 ``total_cycles`` splits into frontend/retiring/backend,
backend into core/memory, memory into cache/DRAM/TLB, and DRAM into
local/NUMA/queue.  The simulator has no frontend or core pipeline model,
so those nodes are explicit zeros rather than absent — the renderer
shows the whole accounting.  ``tlb_bound`` overlaps its siblings (a TLB
walk accrues on an access that is *also* counted under cache or DRAM);
the overlap is documented in the node and flagged by the renderer.

On sampled-profile sources the level-3/4 breakdown is modelled from
sample counts and latency constants (samples don't record per-level
cycle splits); the top of the tree uses the measured latency, so the
``memory_bound`` share equals the report's ``memory_cycle_fraction``
exactly on both source kinds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.latency import LatencyModel
from repro.machine.presets import MachineSpec, builtin_specs
from repro.metrics.formula import (
    CounterSource,
    EvalResult,
    FormulaRegistry,
    Ref,
    Resolver,
)

__all__ = [
    "REGISTRY",
    "BoundnessReport",
    "register_spec",
    "evaluate_boundness",
    "report_from_source",
    "MEMORY_BOUND_FRACTION",
    "NUMA_BOUND_REMOTE",
    "TLB_PRESSURE",
    "MIN_SHARE",
    "CONFIRM_REMOTE_FRACTION",
    "REMOTE_DOMINANT_FRACTION",
]

# The paper's §5 gates (defaults; presets may override per architecture).
MEMORY_BOUND_FRACTION = 0.25
NUMA_BOUND_REMOTE = 0.4
TLB_PRESSURE = 0.2

# Data-centric triage thresholds shared by the static analyzer, the
# reconciliation pass and the guidance pass.  Defined ONCE here (and as
# registry constants below, so per-preset overrides apply); the old
# copies in ``repro.staticcheck.analyze`` and ``repro.core.guidance``
# are now imports of these names.
MIN_SHARE = 0.03                 # below this share a variable is noise
CONFIRM_REMOTE_FRACTION = 0.2    # remote share that confirms an H001 prediction
REMOTE_DOMINANT_FRACTION = 0.5   # remote share that makes NUMA the diagnosis


@dataclass(frozen=True)
class BoundnessReport:
    """Triage verdict for a profiled execution."""

    memory_cycle_fraction: float   # memory cycles / total cycles
    dram_intensity: float          # DRAM-serviced / all memory samples
    remote_intensity: float        # remote / DRAM-serviced samples
    tlb_intensity: float           # TLB-missing / all memory samples
    samples: int
    # Total accounted cycles (memory + compute).  Distinguishes a truly
    # empty input (samples == 0 *and* total_cycles == 0 -> inconclusive)
    # from a genuinely compute-only execution (no memory samples but
    # real elapsed cycles -> compute-bound).
    total_cycles: int = 0
    # The thresholds this report was judged against (per-architecture
    # overrides may have shifted them from the defaults).
    memory_bound_fraction: float = MEMORY_BOUND_FRACTION
    numa_bound_remote: float = NUMA_BOUND_REMOTE
    tlb_pressure: float = TLB_PRESSURE

    @property
    def memory_bound(self) -> bool:
        """Worth running data-centric analysis at all (paper's gate)."""
        return self.memory_cycle_fraction >= self.memory_bound_fraction

    @property
    def numa_bound(self) -> bool:
        """Worth examining NUMA events specifically."""
        return self.memory_bound and self.remote_intensity >= self.numa_bound_remote

    def verdict(self) -> str:
        if self.samples == 0 and self.total_cycles == 0:
            # An empty profile used to read "compute-bound", which is a
            # misleading answer to "should I optimize locality?" when
            # nothing at all was observed.
            return "inconclusive: no samples or cycles observed (empty profile?)"
        if not self.memory_bound:
            return "compute-bound: data-locality optimization has little headroom"
        if self.numa_bound:
            return "NUMA-bound: examine remote-access events and placement"
        if self.tlb_intensity > self.tlb_pressure:
            return "latency-bound with TLB pressure: suspect long strides/layout"
        return "memory-bound: examine cache locality and data layout"


# ---------------------------------------------------------------------------
# Registry: counter vocabulary
# ---------------------------------------------------------------------------

REGISTRY = FormulaRegistry("boundness")

REGISTRY.counter("samples", "count", "memory accesses observed (sampled or exact)")
REGISTRY.counter("l1_samples", "count", "accesses served by L1")
REGISTRY.counter("l2_samples", "count", "accesses served by L2")
REGISTRY.counter("l3_samples", "count", "accesses served by L3")
REGISTRY.counter("lmem_samples", "count", "accesses served by local DRAM")
REGISTRY.counter("rmem_samples", "count", "accesses served by remote DRAM")
REGISTRY.counter("tlb_miss_samples", "count", "accesses that took a TLB walk")
REGISTRY.counter(
    "hop1_samples", "count",
    "DRAM accesses observed at 1 interconnect hop (machine sources)",
)
REGISTRY.counter(
    "hop2_samples", "count",
    "DRAM accesses observed at 2 interconnect hops (machine sources)",
)
REGISTRY.counter(
    "queue_cycles", "cycles",
    "controller queueing delay accrued at the DRAM controllers",
)
REGISTRY.counter(
    "elapsed_cycles", "cycles", "wall clock of the run (machine sources)"
)
REGISTRY.counter(
    "measured_memory_cycles", "cycles",
    "summed sampled access latency (profile sources)",
)
REGISTRY.counter(
    "nonmem_event_cycles", "cycles",
    "period-scaled non-memory instruction estimate (profile sources)",
)
REGISTRY.counter(
    "metric_share", "fraction",
    "this variable's share of the ranked metric (per-variable sources; "
    "whole-execution sources omit it and count as share 1.0)",
)

# ---------------------------------------------------------------------------
# Constants: latency model + thresholds, with per-architecture overrides
# ---------------------------------------------------------------------------

_DEFAULT_LAT = LatencyModel()

REGISTRY.constant("lat_l1", _DEFAULT_LAT.l1, "cycles", "L1 hit latency")
REGISTRY.constant("lat_l2", _DEFAULT_LAT.l2, "cycles", "L2 hit latency")
REGISTRY.constant("lat_l3", _DEFAULT_LAT.l3, "cycles", "L3 hit latency")
REGISTRY.constant(
    "lat_local_dram", _DEFAULT_LAT.local_dram, "cycles", "local DRAM latency"
)
REGISTRY.constant(
    "lat_hop", _DEFAULT_LAT.hop, "cycles", "per-interconnect-hop DRAM penalty"
)
REGISTRY.constant(
    "lat_tlb_walk", _DEFAULT_LAT.tlb_walk, "cycles", "page-table walk cost"
)
REGISTRY.constant(
    "avg_remote_hops", 2.0, "count",
    "mean interconnect distance of a remote access (fallback when no "
    "per-hop counts were observed)",
)
REGISTRY.constant(
    "memory_bound_fraction", MEMORY_BOUND_FRACTION, "fraction",
    "memory-cycle share above which locality optimization has headroom",
)
REGISTRY.constant(
    "numa_bound_remote", NUMA_BOUND_REMOTE, "fraction",
    "remote share of DRAM samples above which NUMA events are worth it",
)
REGISTRY.constant(
    "tlb_pressure", TLB_PRESSURE, "fraction",
    "TLB-miss share above which long strides/layout are suspect",
)
REGISTRY.constant(
    "min_share", MIN_SHARE, "fraction",
    "metric share below which a variable is noise (analyzer, reconciler "
    "and guidance all read this one constant)",
)
REGISTRY.constant(
    "confirm_remote_fraction", CONFIRM_REMOTE_FRACTION, "fraction",
    "remote-DRAM share above which a dynamic profile confirms a static "
    "H001 (master first touch) prediction",
)
REGISTRY.constant(
    "remote_dominant_fraction", REMOTE_DOMINANT_FRACTION, "fraction",
    "remote-DRAM share above which a variable's pathology is NUMA "
    "placement rather than plain cache locality",
)

_registered_specs: set[str] = set()


def register_spec(spec: MachineSpec) -> None:
    """Register one machine preset's per-architecture constant overrides.

    Idempotent by preset name; all bundled presets are registered at
    import, so this only matters for user-defined specs.
    """
    if spec.name in _registered_specs:
        return
    _registered_specs.add(spec.name)
    lat = spec.latency
    for cname, value in (
        ("lat_l1", lat.l1),
        ("lat_l2", lat.l2),
        ("lat_l3", lat.l3),
        ("lat_local_dram", lat.local_dram),
        ("lat_hop", lat.hop),
        ("lat_tlb_walk", lat.tlb_walk),
    ):
        REGISTRY.constant(cname, value, override=spec.name)
    REGISTRY.constant("avg_remote_hops", spec.avg_remote_hops, override=spec.name)
    for cname, value in (
        ("memory_bound_fraction", spec.memory_bound_fraction),
        ("numa_bound_remote", spec.numa_bound_remote),
        ("tlb_pressure", spec.tlb_pressure),
    ):
        if value is not None:
            REGISTRY.constant(cname, value, override=spec.name)


for _spec in builtin_specs():
    register_spec(_spec)

# ---------------------------------------------------------------------------
# Value nodes: modelled cycle costs
# ---------------------------------------------------------------------------

_N = REGISTRY.node

_N(
    "l1_cycles", "cycles",
    lambda ev: ev("l1_samples") * ev("lat_l1"),
    reqs=("l1_samples:count", "lat_l1:cycles"),
    doc="modelled cycles spent in L1-serviced accesses",
)
_N(
    "l2_cycles", "cycles",
    lambda ev: ev("l2_samples") * ev("lat_l2"),
    reqs=("l2_samples:count", "lat_l2:cycles"),
    doc="modelled cycles spent in L2-serviced accesses",
)
_N(
    "l3_cycles", "cycles",
    lambda ev: ev("l3_samples") * ev("lat_l3"),
    reqs=("l3_samples:count", "lat_l3:cycles"),
    doc="modelled cycles spent in L3-serviced accesses",
)
_N(
    "local_dram_cycles", "cycles",
    lambda ev: ev("lmem_samples") * ev("lat_local_dram"),
    reqs=("lmem_samples:count", "lat_local_dram:cycles"),
    doc="modelled cycles spent in local-DRAM-serviced accesses",
)


def _remote_dram_cycles(ev: Resolver) -> float:
    """Price remote DRAM by observed hop distance when available.

    Machine sources expose the hierarchy's per-hop access counts, so
    each access is charged its actual interconnect distance (this is
    the fix for the old fixed ``lat.dram(2)`` pricing, which overcharged
    same-socket/cross-die accesses on multi-die parts).  Profile sources
    don't observe hop distance; fall back to the preset's mean remote
    distance over a uniform placement.
    """
    local = ev("lat_local_dram")
    hop = ev("lat_hop")
    if ev.has("hop1_samples") and ev.has("hop2_samples"):
        return ev("hop1_samples") * (local + hop) + ev("hop2_samples") * (
            local + 2 * hop
        )
    return int(ev("rmem_samples") * (local + ev("avg_remote_hops") * hop))


_N(
    "remote_dram_cycles", "cycles",
    _remote_dram_cycles,
    reqs=(
        Ref("hop1_samples", "count", optional=True),
        Ref("hop2_samples", "count", optional=True),
        "rmem_samples:count",
        "lat_local_dram:cycles",
        "lat_hop:cycles",
        "avg_remote_hops:count",
    ),
    doc="modelled cycles spent in remote-DRAM-serviced accesses",
)
_N(
    "tlb_cycles", "cycles",
    lambda ev: ev("tlb_miss_samples") * ev("lat_tlb_walk"),
    reqs=("tlb_miss_samples:count", "lat_tlb_walk:cycles"),
    doc="modelled cycles spent in page-table walks",
)
_N(
    "cache_cycles", "cycles",
    lambda ev: ev("l1_cycles") + ev("l2_cycles") + ev("l3_cycles"),
    reqs=("l1_cycles:cycles", "l2_cycles:cycles", "l3_cycles:cycles"),
    doc="modelled cycles in cache-serviced accesses",
)
_N(
    "dram_cycles", "cycles",
    lambda ev: ev("local_dram_cycles")
    + ev("remote_dram_cycles")
    + ev.get("queue_cycles", 0),
    reqs=(
        "local_dram_cycles:cycles",
        "remote_dram_cycles:cycles",
        Ref("queue_cycles", "cycles", optional=True),
    ),
    doc="modelled cycles in DRAM-serviced accesses, queueing included",
)
_N(
    "dram_samples", "count",
    lambda ev: ev("lmem_samples") + ev("rmem_samples"),
    reqs=("lmem_samples:count", "rmem_samples:count"),
    doc="accesses serviced by DRAM (local + remote)",
)

# mem_cycles is the triage basis.  The base variant sums the modelled
# level costs (what a machine source supports); the "profile" override
# uses the latency the sampler actually measured.
_N(
    "mem_cycles", "cycles",
    lambda ev: ev("cache_cycles") + ev("dram_cycles"),
    reqs=("cache_cycles:cycles", "dram_cycles:cycles"),
    doc="cycles attributable to the memory subsystem",
)
_N(
    "mem_cycles", "cycles",
    lambda ev: ev("measured_memory_cycles"),
    reqs=("measured_memory_cycles:cycles",),
    doc="cycles attributable to the memory subsystem (measured latency)",
    override="profile",
)

# compute_cycles: the profile path estimates compute from non-memory IBS
# samples; on a machine the exact clock is available, so compute is
# whatever the memory model doesn't account for.
_N(
    "compute_cycles", "cycles",
    lambda ev: ev.get("nonmem_event_cycles", 0),
    reqs=(Ref("nonmem_event_cycles", "cycles", optional=True),),
    doc="cycles attributable to computation",
)
_N(
    "compute_cycles", "cycles",
    lambda ev: max(0, ev("elapsed_cycles") - ev("mem_cycles")),
    reqs=("elapsed_cycles:cycles", "mem_cycles:cycles"),
    doc="cycles attributable to computation (elapsed minus memory)",
    override="machine",
)

# ---------------------------------------------------------------------------
# Ratio and flag nodes (the report's fields)
# ---------------------------------------------------------------------------


def _memory_cycle_fraction(ev: Resolver) -> float:
    total = ev("mem_cycles") + ev("compute_cycles")
    return (ev("mem_cycles") / total) if total else 0.0


_N(
    "memory_cycle_fraction", "fraction",
    _memory_cycle_fraction,
    reqs=("mem_cycles:cycles", "compute_cycles:cycles"),
    doc="memory cycles / total cycles — the locality-optimization headroom",
)
_N(
    "dram_intensity", "fraction",
    lambda ev: (ev("dram_samples") / ev("samples")) if ev("samples") else 0.0,
    reqs=("dram_samples:count", "samples:count"),
    doc="fraction of accesses served by memory",
)
_N(
    "remote_intensity", "fraction",
    lambda ev: (ev("rmem_samples") / ev("dram_samples"))
    if ev("dram_samples")
    else 0.0,
    reqs=("rmem_samples:count", "dram_samples:count"),
    doc="fraction of DRAM-serviced accesses that crossed the interconnect",
)
_N(
    "tlb_intensity", "fraction",
    lambda ev: (ev("tlb_miss_samples") / ev("samples")) if ev("samples") else 0.0,
    reqs=("tlb_miss_samples:count", "samples:count"),
    doc="fraction of accesses that took a page walk",
)
_N(
    "is_memory_bound", "flag",
    lambda ev: 1.0
    if ev("memory_cycle_fraction") >= ev("memory_bound_fraction")
    else 0.0,
    reqs=("memory_cycle_fraction:fraction", "memory_bound_fraction:fraction"),
    doc="paper §5 gate: worth running data-centric analysis at all",
)
_N(
    "is_numa_bound", "flag",
    lambda ev: 1.0
    if ev("is_memory_bound") and ev("remote_intensity") >= ev("numa_bound_remote")
    else 0.0,
    reqs=(
        "is_memory_bound:flag",
        "remote_intensity:fraction",
        "numa_bound_remote:fraction",
    ),
    doc="paper §5 gate: worth configuring NUMA marked events",
)

# ---------------------------------------------------------------------------
# Data-centric hazard predicates (per-variable sources)
# ---------------------------------------------------------------------------
#
# These used to live as hand-rolled comparisons in
# ``repro.staticcheck.analyze``/``reconcile`` and ``repro.core.guidance``.
# Expressed as flag nodes they evaluate identically over a per-variable
# slice of a dynamic profile (VariableProfileSource) and over the static
# predictor's counters (repro.staticcheck.predict), with per-preset
# constant overrides applying to both.

_N(
    "remote_dram_fraction", "fraction",
    lambda ev: ev("remote_intensity"),
    reqs=("remote_intensity:fraction",),
    doc="remote / DRAM-serviced accesses — the H001 evidence metric "
    "(alias of remote_intensity under its data-centric name)",
)
_N(
    "is_remote_dominant", "flag",
    lambda ev: 1.0
    if ev("remote_dram_fraction") >= ev("remote_dominant_fraction")
    else 0.0,
    reqs=("remote_dram_fraction:fraction", "remote_dominant_fraction:fraction"),
    doc="this variable's DRAM traffic is mostly remote — placement, not "
    "cache locality, is the diagnosis",
)
_N(
    "is_tlb_hot", "flag",
    lambda ev: 1.0 if ev("tlb_intensity") >= ev("tlb_pressure") else 0.0,
    reqs=("tlb_intensity:fraction", "tlb_pressure:fraction"),
    doc="this variable's accesses take page walks often enough to "
    "suspect stride/layout",
)
_N(
    "is_significant", "flag",
    lambda ev: 1.0 if ev.get("metric_share", 1.0) >= ev("min_share") else 0.0,
    reqs=(Ref("metric_share", "fraction", optional=True), "min_share:fraction"),
    doc="this variable carries enough of the ranked metric to be worth "
    "reporting at all (sources without a share count as significant)",
)
_N(
    "h001_confirmed", "flag",
    lambda ev: 1.0
    if ev("remote_dram_fraction") >= ev("confirm_remote_fraction")
    else 0.0,
    reqs=("remote_dram_fraction:fraction", "confirm_remote_fraction:fraction"),
    doc="the observed remote share is high enough to confirm a static "
    "master-first-touch (H001) prediction",
)

# ---------------------------------------------------------------------------
# Top-down hierarchy (LIKWID style); levels 0-4
# ---------------------------------------------------------------------------

_N(
    "total_cycles", "cycles",
    lambda ev: ev("mem_cycles") + ev("compute_cycles"),
    reqs=("mem_cycles:cycles", "compute_cycles:cycles"),
    level=0,
    doc="all accounted cycles",
)
_N(
    "frontend_bound", "cycles",
    lambda ev: 0,
    level=1, parent="total_cycles",
    doc="fetch/decode stalls — the simulator has no frontend model (always 0)",
)
_N(
    "retiring", "cycles",
    lambda ev: ev("compute_cycles"),
    reqs=("compute_cycles:cycles",),
    level=1, parent="total_cycles",
    doc="useful computation",
)
_N(
    "backend_bound", "cycles",
    lambda ev: ev("mem_cycles"),
    reqs=("mem_cycles:cycles",),
    level=1, parent="total_cycles",
    doc="stalls waiting on the backend (all memory in this model)",
)
_N(
    "core_bound", "cycles",
    lambda ev: 0,
    level=2, parent="backend_bound",
    doc="execution-port pressure — no core pipeline model (always 0)",
)
_N(
    "memory_bound", "cycles",
    lambda ev: ev("mem_cycles"),
    reqs=("mem_cycles:cycles",),
    level=2, parent="backend_bound",
    doc="stalls in the memory subsystem",
)
_N(
    "cache_bound", "cycles",
    lambda ev: ev("cache_cycles"),
    reqs=("cache_cycles:cycles",),
    level=3, parent="memory_bound",
    doc="cycles in cache-serviced accesses (modelled)",
)
_N(
    "dram_bound", "cycles",
    lambda ev: ev("dram_cycles"),
    reqs=("dram_cycles:cycles",),
    level=3, parent="memory_bound",
    doc="cycles in DRAM-serviced accesses (modelled)",
)
_N(
    "tlb_bound", "cycles",
    lambda ev: ev("tlb_cycles"),
    reqs=("tlb_cycles:cycles",),
    level=3, parent="memory_bound",
    doc="page-walk cycles; overlaps siblings (a walk accrues on an "
    "access also counted under cache or DRAM)",
)
_N(
    "l1_bound", "cycles",
    lambda ev: ev("l1_cycles"),
    reqs=("l1_cycles:cycles",),
    level=4, parent="cache_bound",
    doc="cycles in L1-serviced accesses",
)
_N(
    "l2_bound", "cycles",
    lambda ev: ev("l2_cycles"),
    reqs=("l2_cycles:cycles",),
    level=4, parent="cache_bound",
    doc="cycles in L2-serviced accesses",
)
_N(
    "l3_bound", "cycles",
    lambda ev: ev("l3_cycles"),
    reqs=("l3_cycles:cycles",),
    level=4, parent="cache_bound",
    doc="cycles in L3-serviced accesses",
)
_N(
    "local_dram_bound", "cycles",
    lambda ev: ev("local_dram_cycles"),
    reqs=("local_dram_cycles:cycles",),
    level=4, parent="dram_bound",
    doc="cycles in local DRAM accesses",
)
_N(
    "numa_bound", "cycles",
    lambda ev: ev("remote_dram_cycles"),
    reqs=("remote_dram_cycles:cycles",),
    level=4, parent="dram_bound",
    doc="cycles in remote (cross-interconnect) DRAM accesses",
)
_N(
    "queue_bound", "cycles",
    lambda ev: ev.get("queue_cycles", 0),
    reqs=(Ref("queue_cycles", "cycles", optional=True),),
    level=4, parent="dram_bound",
    doc="controller queueing delay (bandwidth contention)",
)

# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def evaluate_boundness(source: CounterSource) -> EvalResult:
    """Evaluate every boundness node over ``source``."""
    spec = getattr(source, "spec", None)
    if spec is not None:
        register_spec(spec)
    return REGISTRY.evaluate(source)


def report_from_source(source: CounterSource) -> BoundnessReport:
    """Build the triage report by evaluating the formula DAG."""
    result = evaluate_boundness(source)
    return BoundnessReport(
        memory_cycle_fraction=result["memory_cycle_fraction"],
        dram_intensity=result["dram_intensity"],
        remote_intensity=result["remote_intensity"],
        tlb_intensity=result["tlb_intensity"],
        samples=int(source.counter("samples")),
        total_cycles=int(result["total_cycles"]),
        memory_bound_fraction=result["memory_bound_fraction"],
        numa_bound_remote=result["numa_bound_remote"],
        tlb_pressure=result["tlb_pressure"],
    )
