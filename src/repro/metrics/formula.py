"""Declarative derived-metric formula DAG (pmu-tools style).

The paper gates data-centric analysis on derived metrics ("is this
execution memory-bound enough for locality optimization?", §5).  Those
metrics used to be ad-hoc arithmetic scattered across three number
paths (``repro.core.derived``, the ``repro.obs`` gauges, the
``repro.staticcheck`` weights); this module is the one engine they all
route through now.

A :class:`FormulaRegistry` holds three kinds of named entities:

* **counters** — the raw-input vocabulary a :class:`CounterSource`
  adapter provides (``samples``, ``rmem_samples``, ...).  Declaring them
  up front is what makes "unknown reference" a *registration-time*
  error instead of a KeyError three layers deep at evaluation.
* **constants** — model parameters (latency costs, thresholds) with a
  base value and optional per-architecture / per-preset / per-source
  overrides.
* **formula nodes** — one derived metric each: a typed ``requires(...)``
  list referencing counters, constants or other nodes, a ``compute``
  callable receiving a resolver, and optionally a position (``level`` +
  ``parent``) in a LIKWID-style top-down hierarchy.

Validation is eager, in the spirit of pmu-tools' ``knl_ratios.py``
``@requires`` classes: every reference must already be declared, units
must match, hierarchy links must be consistent, and the dependency
graph (across *all* override variants) must stay acyclic — all checked
at registration, so a broken formula fails at import time with a clear
error, never mid-evaluation.

Evaluation runs over a :class:`CounterSource` adapter; overrides are
resolved through the source's ``override_keys`` (most specific first),
which is how one node definition can price remote DRAM differently per
machine preset, or read measured latency on a profile source while
summing modelled level costs on a live machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    TypeVar,
    runtime_checkable,
)

from repro.errors import FormulaError

__all__ = [
    "UNITS",
    "Ref",
    "requires",
    "Counter",
    "Constant",
    "FormulaNode",
    "CounterSource",
    "FormulaRegistry",
    "EvalResult",
    "Resolver",
    "TreeRow",
]

_T = TypeVar("_T")

# The unit vocabulary: "count" (events/samples), "cycles" (costs),
# "fraction" (ratios in [0, 1]) and "flag" (0.0/1.0 verdict bits).
UNITS = frozenset({"count", "cycles", "fraction", "flag"})


@dataclass(frozen=True)
class Ref:
    """One typed dependency of a formula node.

    ``unit`` (when given) must match the declared unit of the referenced
    entity — checked at registration.  ``optional`` marks counters a
    source may legitimately lack (e.g. queue cycles on a sampled-profile
    source); the node's ``compute`` reads those via ``ev.get(name,
    default)`` and must cope with their absence.
    """

    name: str
    unit: str | None = None
    optional: bool = False


def requires(*specs: "Ref | str") -> tuple[Ref, ...]:
    """Normalize dependency declarations: ``"name"``, ``"name:unit"`` or
    :class:`Ref` instances."""
    out: list[Ref] = []
    for spec in specs:
        if isinstance(spec, Ref):
            out.append(spec)
        elif isinstance(spec, str):
            name, _, unit = spec.partition(":")
            out.append(Ref(name, unit or None))
        else:
            raise FormulaError(f"bad requires() entry {spec!r}: want str or Ref")
    return tuple(out)


@dataclass(frozen=True)
class Counter:
    """A declared raw counter (provided by a :class:`CounterSource`)."""

    name: str
    unit: str
    doc: str = ""


@dataclass(frozen=True)
class Constant:
    """A named model parameter (base value or one override variant)."""

    name: str
    value: float
    unit: str
    doc: str = ""


@dataclass(frozen=True)
class FormulaNode:
    """One derived metric: typed inputs, a compute, a hierarchy slot."""

    name: str
    unit: str
    compute: Callable[["_Resolver"], float]
    requires: tuple[Ref, ...] = ()
    level: int | None = None
    parent: str | None = None
    doc: str = ""


@runtime_checkable
class CounterSource(Protocol):
    """The uniform raw-counter protocol both adapters implement.

    ``override_keys`` drives constant/node variant resolution, most
    specific key first (e.g. ``("smoke", "amd-magnycours", "machine")``).
    """

    kind: str
    override_keys: tuple[str, ...]

    def has(self, name: str) -> bool: ...

    def counter(self, name: str) -> float: ...

    def describe(self) -> str: ...


@dataclass(frozen=True)
class TreeRow:
    """One evaluated hierarchy node, ready for rendering."""

    name: str
    level: int
    value: float
    parent: str | None
    share_of_parent: float | None  # None at the root
    share_of_total: float
    doc: str = ""


class _Resolver:
    """The ``ev`` object handed to a node's ``compute``.

    Enforces the pmu-tools discipline: a compute may only read names it
    declared in ``requires(...)`` — an undeclared read is a
    :class:`FormulaError`, not a silent lookup.
    """

    __slots__ = ("_registry", "_node", "_allowed", "_eval")

    def __init__(
        self,
        registry: "FormulaRegistry",
        node: FormulaNode,
        evaluate: Callable[[str], float],
    ) -> None:
        self._registry = registry
        self._node = node
        self._allowed = {ref.name: ref for ref in node.requires}
        self._eval = evaluate

    def _ref(self, name: str) -> Ref:
        ref = self._allowed.get(name)
        if ref is None:
            raise FormulaError(
                f"formula {self._node.name!r} reads {name!r} without "
                f"declaring it in requires(...)"
            )
        return ref

    def __call__(self, name: str) -> float:
        self._ref(name)
        value = self._eval(name)
        if value is _MISSING:
            raise FormulaError(
                f"formula {self._node.name!r} requires counter {name!r} "
                f"which this source does not provide (declare the Ref "
                f"optional and read it with ev.get() if that is expected)"
            )
        return value

    def get(self, name: str, default: float = 0.0) -> float:
        self._ref(name)
        value = self._eval(name)
        return default if value is _MISSING else value

    def has(self, name: str) -> bool:
        self._ref(name)
        return self._eval(name) is not _MISSING


# Sentinel: counter absent from the source.  Typed ``Any`` so it can
# flow through the float-typed evaluation plumbing without casts.
_MISSING: Any = object()

# Public name for the resolver type handed to ``compute`` callables, so
# def-style formula computes outside this module can annotate their
# parameter (strict mypy requires it).
Resolver = _Resolver


class EvalResult(Mapping[str, float]):
    """Evaluated node (and resolved constant) values for one source."""

    def __init__(
        self,
        registry: "FormulaRegistry",
        source: CounterSource,
        values: dict[str, float],
    ) -> None:
        self._registry = registry
        self.source = source
        self._values = values

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def node_values(self) -> dict[str, float]:
        """Only the formula-node values (no constants)."""
        return {
            name: self._values[name]
            for name in self._registry.node_names()
            if name in self._values
        }

    def tree(self) -> list[TreeRow]:
        """Hierarchy nodes in parent-before-child (DFS) order."""
        reg = self._registry
        roots = [n for n in reg.hierarchy_names() if reg.base_node(n).parent is None]
        children: dict[str, list[str]] = {}
        for name in reg.hierarchy_names():
            parent = reg.base_node(name).parent
            if parent is not None:
                children.setdefault(parent, []).append(name)
        total = sum(abs(self._values[r]) for r in roots) or None
        rows: list[TreeRow] = []

        def walk(name: str, parent: str | None) -> None:
            node = reg.base_node(name)
            value = self._values[name]
            if parent is None:
                share = None
            else:
                pval = self._values[parent]
                share = (value / pval) if pval else 0.0
            rows.append(
                TreeRow(
                    name=name,
                    level=node.level or 0,
                    value=value,
                    parent=parent,
                    share_of_parent=share,
                    share_of_total=(value / total) if total else 0.0,
                    doc=node.doc,
                )
            )
            for child in children.get(name, ()):
                walk(child, name)

        for root in roots:
            walk(root, None)
        return rows


class FormulaRegistry:
    """Named counters, constants and formula nodes with eager validation."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: dict[str, Counter] = {}
        # name -> {override_key | None: entity}; None is the base variant.
        self._constants: dict[str, dict[str | None, Constant]] = {}
        self._nodes: dict[str, dict[str | None, FormulaNode]] = {}
        self._node_order: list[str] = []

    # -- declaration --------------------------------------------------------

    def _check_unit(self, unit: str, what: str) -> None:
        if unit not in UNITS:
            raise FormulaError(
                f"{what}: unknown unit {unit!r}; choose one of "
                f"{', '.join(sorted(UNITS))}"
            )

    def _check_fresh(self, name: str, what: str) -> None:
        for namespace, label in (
            (self._counters, "counter"),
            (self._constants, "constant"),
            (self._nodes, "formula"),
        ):
            if name in namespace:
                raise FormulaError(
                    f"{what}: {name!r} is already declared as a {label} "
                    f"in registry {self.name!r}"
                )

    def counter(self, name: str, unit: str, doc: str = "") -> Counter:
        """Declare one raw counter of the source vocabulary."""
        self._check_unit(unit, f"counter {name!r}")
        self._check_fresh(name, f"counter {name!r}")
        entity = Counter(name, unit, doc)
        self._counters[name] = entity
        return entity

    def constant(
        self,
        name: str,
        value: float,
        unit: str | None = None,
        doc: str = "",
        override: str | None = None,
    ) -> Constant:
        """Declare a model parameter, or an override variant of one.

        Base declaration requires ``unit``; overrides inherit (and must
        not contradict) the base unit and must name an existing base.
        """
        if override is None:
            if unit is None:
                raise FormulaError(f"constant {name!r}: base declaration needs a unit")
            self._check_unit(unit, f"constant {name!r}")
            self._check_fresh(name, f"constant {name!r}")
            entity = Constant(name, value, unit, doc)
            self._constants[name] = {None: entity}
            return entity
        variants = self._constants.get(name)
        if variants is None:
            raise FormulaError(
                f"override of unknown constant {name!r} (register the base first)"
            )
        base = variants[None]
        if unit is not None and unit != base.unit:
            raise FormulaError(
                f"constant {name!r} override {override!r}: unit {unit!r} "
                f"contradicts base unit {base.unit!r}"
            )
        variants[override] = Constant(name, value, base.unit, doc or base.doc)
        return variants[override]

    def node(
        self,
        name: str,
        unit: str,
        compute: Callable[[_Resolver], float],
        reqs: Iterable[Ref | str] = (),
        level: int | None = None,
        parent: str | None = None,
        doc: str = "",
        override: str | None = None,
    ) -> FormulaNode:
        """Register one formula node (or an override variant of one).

        All validation happens here, not at evaluation: unknown
        references, unit mismatches, hierarchy inconsistencies and
        dependency cycles (across every override variant) all raise
        :class:`FormulaError` immediately.
        """
        refs = requires(*reqs)
        self._check_unit(unit, f"formula {name!r}")

        if override is None:
            self._check_fresh(name, f"formula {name!r}")
        else:
            variants = self._nodes.get(name)
            if variants is None:
                raise FormulaError(
                    f"override of unknown formula {name!r} (register the base first)"
                )
            base = variants[None]
            if unit != base.unit:
                raise FormulaError(
                    f"formula {name!r} override {override!r}: unit {unit!r} "
                    f"contradicts base unit {base.unit!r}"
                )

        for ref in refs:
            declared_unit = self._unit_of(ref.name)
            if declared_unit is None:
                raise FormulaError(
                    f"formula {name!r} requires unknown reference {ref.name!r} "
                    f"(registry {self.name!r} declares no such counter, "
                    f"constant or formula)"
                )
            if ref.unit is not None and ref.unit != declared_unit:
                raise FormulaError(
                    f"formula {name!r}: reference {ref.name!r} declared as "
                    f"{ref.unit!r} but {ref.name!r} is a {declared_unit!r}"
                )

        if override is None:
            if parent is not None:
                parent_variants = self._nodes.get(parent)
                if parent_variants is None:
                    raise FormulaError(
                        f"formula {name!r}: parent {parent!r} is not a "
                        f"registered formula (register parents first)"
                    )
                parent_level = parent_variants[None].level
                if parent_level is None:
                    raise FormulaError(
                        f"formula {name!r}: parent {parent!r} has no hierarchy level"
                    )
                if level != parent_level + 1:
                    raise FormulaError(
                        f"formula {name!r}: level {level} under parent "
                        f"{parent!r} (level {parent_level}) — children sit "
                        f"exactly one level below their parent"
                    )
            elif level is not None and level != 0:
                raise FormulaError(
                    f"formula {name!r}: level {level} without a parent "
                    f"(only level-0 roots have no parent)"
                )
        else:
            # Overrides replace the compute, never the hierarchy slot.
            base = self._nodes[name][None]
            level, parent = base.level, base.parent

        entity = FormulaNode(
            name=name, unit=unit, compute=compute, requires=refs,
            level=level, parent=parent, doc=doc,
        )
        if override is None:
            self._nodes[name] = {None: entity}
            self._node_order.append(name)
        else:
            self._nodes[name][override] = entity
        try:
            self._check_cycles()
        except FormulaError:
            # Roll the registration back so the registry stays usable.
            if override is None:
                del self._nodes[name]
                self._node_order.remove(name)
            else:
                del self._nodes[name][override]
            raise
        return entity

    def formula(
        self, name: str, unit: str, **kwargs: Any
    ) -> Callable[[Callable[[_Resolver], float]], Callable[[_Resolver], float]]:
        """Decorator form of :meth:`node` for def-style computes."""

        def wrap(fn: Callable[[_Resolver], float]) -> Callable[[_Resolver], float]:
            reqs = kwargs.pop("reqs", ())
            self.node(name, unit, fn, reqs=reqs, doc=fn.__doc__ or "", **kwargs)
            return fn

        return wrap

    # -- introspection ------------------------------------------------------

    def _unit_of(self, name: str) -> str | None:
        if name in self._counters:
            return self._counters[name].unit
        if name in self._constants:
            return self._constants[name][None].unit
        if name in self._nodes:
            return self._nodes[name][None].unit
        return None

    def counter_names(self) -> tuple[str, ...]:
        return tuple(self._counters)

    def constant_names(self) -> tuple[str, ...]:
        return tuple(self._constants)

    def node_names(self) -> tuple[str, ...]:
        return tuple(self._node_order)

    def hierarchy_names(self) -> tuple[str, ...]:
        return tuple(
            n for n in self._node_order if self._nodes[n][None].level is not None
        )

    def base_node(self, name: str) -> FormulaNode:
        return self._nodes[name][None]

    def counter_doc(self, name: str) -> str:
        return self._counters[name].doc

    def node_doc(self, name: str) -> str:
        return self._nodes[name][None].doc

    # -- validation ---------------------------------------------------------

    def _check_cycles(self) -> None:
        """DFS over the union graph (all override variants) for cycles."""
        edges: dict[str, list[str]] = {}
        for name, variants in self._nodes.items():
            deps: list[str] = []
            for variant in variants.values():
                for ref in variant.requires:
                    if ref.name in self._nodes and ref.name not in deps:
                        deps.append(ref.name)
            edges[name] = deps
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in edges}
        for start in edges:
            if color[start] != WHITE:
                continue
            path: list[str] = []
            stack: list[tuple[str, int]] = [(start, 0)]
            color[start] = GREY
            path.append(start)
            while stack:
                name, idx = stack.pop()
                deps = edges[name]
                if idx < len(deps):
                    stack.append((name, idx + 1))
                    child = deps[idx]
                    if color[child] == GREY:
                        cycle = path[path.index(child):] + [child]
                        raise FormulaError(
                            f"registry {self.name!r}: dependency cycle "
                            + " -> ".join(cycle)
                        )
                    if color[child] == WHITE:
                        color[child] = GREY
                        path.append(child)
                        stack.append((child, 0))
                else:
                    color[name] = BLACK
                    path.pop()

    # -- evaluation ---------------------------------------------------------

    def _pick(self, variants: Mapping[str | None, _T], keys: tuple[str, ...]) -> _T:
        for key in keys:
            if key in variants:
                return variants[key]
        return variants[None]

    def constant_value(self, name: str, keys: tuple[str, ...] = ()) -> float:
        """Resolve one constant through override ``keys`` without a source.

        This is how non-formula code (the static analyzer's share gate,
        the guidance pass) reads thresholds from the same registry the
        metric DAG evaluates, so a per-preset override shifts every
        consumer at once.
        """
        variants = self._constants.get(name)
        if variants is None:
            raise FormulaError(
                f"registry {self.name!r} declares no constant {name!r}"
            )
        return self._pick(variants, tuple(keys)).value

    def evaluate(
        self, source: CounterSource, only: Iterable[str] | None = None
    ) -> EvalResult:
        """Evaluate formula nodes over ``source``; returns an
        :class:`EvalResult` mapping node and constant names to values.

        ``only`` restricts evaluation to the listed nodes (plus their
        transitive dependencies); by default every registered node is
        evaluated.
        """
        keys = tuple(source.override_keys)
        cache: dict[str, float] = {}
        in_flight: list[str] = []

        def resolve(name: str) -> float:
            if name in cache:
                return cache[name]
            if name in self._counters:
                if not source.has(name):
                    return _MISSING
                value = source.counter(name)
            elif name in self._constants:
                value = self._pick(self._constants[name], keys).value
            elif name in self._nodes:
                if name in in_flight:
                    cycle = in_flight[in_flight.index(name):] + [name]
                    raise FormulaError(
                        f"registry {self.name!r}: dependency cycle at "
                        "evaluation: " + " -> ".join(cycle)
                    )
                node = self._pick(self._nodes[name], keys)
                in_flight.append(name)
                try:
                    value = node.compute(_Resolver(self, node, resolve))
                finally:
                    in_flight.pop()
            else:
                raise FormulaError(
                    f"registry {self.name!r} declares no entity {name!r}"
                )
            cache[name] = value
            return value

        wanted = tuple(only) if only is not None else self.node_names()
        for name in wanted:
            if name not in self._nodes:
                raise FormulaError(
                    f"evaluate(only=...): {name!r} is not a formula in "
                    f"registry {self.name!r}"
                )
            value = resolve(name)
            if value is _MISSING:  # pragma: no cover - nodes never go missing
                raise FormulaError(f"formula {name!r} did not evaluate")
        values = {
            name: v for name, v in cache.items() if v is not _MISSING
        }
        # Resolved constants ride along for introspection/rendering.
        for cname in self._constants:
            if cname not in values:
                values[cname] = self._pick(self._constants[cname], keys).value
        return EvalResult(self, source, values)
