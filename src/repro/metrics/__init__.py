"""Derived-metric formula engine and the boundness triage built on it.

:mod:`repro.metrics.formula` is the generic engine (declare counters,
constants and formula nodes; eager validation; evaluate over any
:class:`~repro.metrics.formula.CounterSource`).
:mod:`repro.metrics.boundness` declares the paper's §5 triage metrics and
the LIKWID-style top-down hierarchy as nodes of one registry, and
:mod:`repro.metrics.sources` adapts merged profiles and live machines to
the counter protocol.
"""

from repro.metrics.boundness import (
    CONFIRM_REMOTE_FRACTION,
    MIN_SHARE,
    REGISTRY,
    REMOTE_DOMINANT_FRACTION,
    BoundnessReport,
    evaluate_boundness,
    register_spec,
    report_from_source,
)
from repro.metrics.formula import (
    Constant,
    Counter,
    CounterSource,
    EvalResult,
    FormulaNode,
    FormulaRegistry,
    Ref,
    Resolver,
    TreeRow,
    requires,
)
from repro.metrics.render import render_topdown
from repro.metrics.sources import (
    MachineSource,
    ProfileSource,
    StaticSource,
    VariableProfileSource,
)

__all__ = [
    "FormulaRegistry",
    "FormulaNode",
    "Counter",
    "Constant",
    "CounterSource",
    "Ref",
    "Resolver",
    "requires",
    "EvalResult",
    "TreeRow",
    "REGISTRY",
    "BoundnessReport",
    "register_spec",
    "evaluate_boundness",
    "report_from_source",
    "MIN_SHARE",
    "CONFIRM_REMOTE_FRACTION",
    "REMOTE_DOMINANT_FRACTION",
    "StaticSource",
    "ProfileSource",
    "VariableProfileSource",
    "MachineSource",
    "render_topdown",
]
