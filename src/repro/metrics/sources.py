"""Counter-source adapters for the formula engine.

The engine evaluates formula nodes over anything implementing the
:class:`repro.metrics.formula.CounterSource` protocol.  Two adapters
cover the repo's measurement modes:

* :class:`ProfileSource` — a merged ``.rpdb`` profile
  (:class:`repro.core.analyzer.ExperimentDB`): sampled counters, plus
  the *measured* per-sample latency the old ``derive_from_profile``
  summed directly.
* :class:`MachineSource` — a live simulated :class:`Machine`: exact
  level counts, observed per-hop DRAM counts, controller queue cycles
  and the elapsed-cycle clock.

Both speak the same counter vocabulary (declared in
:mod:`repro.metrics.boundness`), so one set of formula nodes produces
reports from either; counters only one mode can provide
(``measured_memory_cycles``, ``elapsed_cycles``, per-hop counts) are
declared ``optional`` in the nodes that read them, and per-kind
overrides (keys ``"profile"`` / ``"machine"``) pick the right compute
where the two modes genuinely differ.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.machine.hierarchy import LVL_L1, LVL_L2, LVL_L3, LVL_LMEM, LVL_RMEM

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard, typing only
    from repro.core.analyzer import ExperimentDB
    from repro.core.views import VariableReport
    from repro.machine.presets import Machine

__all__ = [
    "StaticSource",
    "ProfileSource",
    "VariableProfileSource",
    "MachineSource",
]


class StaticSource:
    """A :class:`CounterSource` over a plain dict (tests, what-if runs)."""

    def __init__(
        self,
        counters: dict[str, float],
        kind: str = "static",
        override_keys: tuple[str, ...] = (),
        description: str = "static counters",
    ) -> None:
        self.kind = kind
        self.override_keys = override_keys or (kind,)
        self._counters = dict(counters)
        self._description = description

    def has(self, name: str) -> bool:
        return name in self._counters

    def counter(self, name: str) -> float:
        return self._counters[name]

    def describe(self) -> str:
        return self._description


class ProfileSource(StaticSource):
    """Raw counters gathered from a merged profile database.

    Sums the same per-storage-class inclusive metrics the old
    ``derive_from_profile`` walked: sampled accesses, their measured
    latency, per-level counts, TLB misses, plus the NONMEM (period-scaled
    instruction) estimate of compute cycles.  The rank DBs stamp the
    machine preset they ran on into profile metadata, which becomes the
    leading override key so per-architecture constants resolve for
    profiles too.
    """

    kind = "profile"

    def __init__(self, exp: "ExperimentDB") -> None:
        from repro.core.storage import StorageClass

        profile = exp.profile
        samples = latency = tlb = 0
        levels = [0, 0, 0, 0, 0]
        for storage in (StorageClass.HEAP, StorageClass.STATIC,
                        StorageClass.STACK, StorageClass.UNKNOWN):
            cct = profile.get_cct(storage)
            if cct is None:
                continue
            m = cct.root.inclusive()
            samples += m.samples
            latency += m.latency
            tlb += m.tlb_misses
            for lvl in range(len(levels)):
                levels[lvl] += m.levels[lvl]
        compute = 0
        nonmem_cct = profile.get_cct(StorageClass.NONMEM)
        if nonmem_cct is not None:
            compute = nonmem_cct.root.inclusive().events
        machine_name = exp.db.meta.get("machine", "")
        keys = (machine_name, "profile") if machine_name else ("profile",)
        super().__init__(
            counters={
                "samples": samples,
                "l1_samples": levels[LVL_L1],
                "l2_samples": levels[LVL_L2],
                "l3_samples": levels[LVL_L3],
                "lmem_samples": levels[LVL_LMEM],
                "rmem_samples": levels[LVL_RMEM],
                "tlb_miss_samples": tlb,
                "measured_memory_cycles": latency,
                "nonmem_event_cycles": compute,
            },
            kind="profile",
            override_keys=keys,
            description=(
                f"merged profile ({exp.db.process_name or 'unnamed'}, "
                f"{samples} samples"
                + (f", machine {machine_name}" if machine_name else "")
                + ")"
            ),
        )


class VariableProfileSource(StaticSource):
    """One variable's slice of a merged profile, as a counter source.

    Feeds the per-variable hazard predicates (``remote_dram_fraction``,
    ``is_remote_dominant``, ``h001_confirmed``, ``is_significant``) with
    the variable's own inclusive counters from the data-centric view,
    plus its ``metric_share`` of the ranked metric.  Carries the same
    override keys as the whole-profile source, so per-architecture
    threshold overrides resolve identically.
    """

    kind = "profile"

    def __init__(self, var: "VariableReport", exp: "ExperimentDB") -> None:
        levels = tuple(var.levels) + (0,) * (5 - len(var.levels))
        machine_name = exp.db.meta.get("machine", "")
        keys = (machine_name, "profile") if machine_name else ("profile",)
        super().__init__(
            counters={
                "samples": var.samples,
                "l1_samples": levels[LVL_L1],
                "l2_samples": levels[LVL_L2],
                "l3_samples": levels[LVL_L3],
                "lmem_samples": levels[LVL_LMEM],
                "rmem_samples": levels[LVL_RMEM],
                "tlb_miss_samples": var.tlb_misses,
                "measured_memory_cycles": var.latency,
                "metric_share": var.share,
            },
            kind="profile",
            override_keys=keys,
            description=(
                f"variable {var.name} ({var.samples} samples, "
                f"share {var.share:.1%})"
            ),
        )


class MachineSource(StaticSource):
    """Raw counters snapshotted from a live simulated machine.

    Exact (unsampled) hierarchy counters, including the observed per-hop
    DRAM distribution that prices remote accesses by actual interconnect
    distance instead of the old fixed-2-hop assumption.
    """

    kind = "machine"

    def __init__(self, machine: "Machine", elapsed_cycles: int) -> None:
        h = machine.hierarchy
        counts = h.level_counts
        hops = h.hop_counts
        super().__init__(
            counters={
                "samples": sum(counts),
                "l1_samples": counts[LVL_L1],
                "l2_samples": counts[LVL_L2],
                "l3_samples": counts[LVL_L3],
                "lmem_samples": counts[LVL_LMEM],
                "rmem_samples": counts[LVL_RMEM],
                "tlb_miss_samples": sum(t.misses for t in h.tlb),
                "hop1_samples": hops[1],
                "hop2_samples": hops[2],
                "queue_cycles": h.contention.total_queue_cycles,
                "elapsed_cycles": elapsed_cycles,
            },
            kind="machine",
            override_keys=(machine.spec.name, "machine"),
            description=(
                f"machine {machine.spec.name} "
                f"({sum(counts)} accesses, {elapsed_cycles} elapsed cycles)"
            ),
        )
        self.spec = machine.spec
