"""LIKWID-style text rendering of the top-down hierarchy."""

from __future__ import annotations

from repro.metrics.formula import EvalResult

__all__ = ["render_topdown"]


def render_topdown(result: EvalResult, title: str = "") -> str:
    """Render an evaluated hierarchy as an indented share-of-parent tree.

    One row per hierarchy node, indented by level, with the node's cycle
    value, its share of its parent and its share of the root — the shape
    of LIKWID's topdown group output.  The triage verdict rides along at
    the bottom so the tree answers the paper's §5 question directly.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"top-down over {result.source.describe()}")
    lines.append("")
    name_width = max(
        (2 * row.level + len(row.name) for row in result.tree()), default=10
    )
    for row in result.tree():
        label = "  " * row.level + row.name
        if row.share_of_parent is None:
            share = "        root  "
        else:
            share = f"{row.share_of_parent:6.1%} of parent"
        note = ""
        if "overlap" in row.doc:
            note = "  (overlaps siblings)"
        elif "always 0" in row.doc:
            note = "  (not modelled)"
        lines.append(
            f"  {label:<{name_width}}  {row.value:>14,.0f} cy"
            f"  {share}  {row.share_of_total:6.1%} of total{note}"
        )
    lines.append("")
    lines.append(
        "gates: memory_cycle_fraction="
        f"{result['memory_cycle_fraction']:.3f} "
        f"(>= {result['memory_bound_fraction']:g} -> memory-bound: "
        f"{'yes' if result['is_memory_bound'] else 'no'})   "
        "remote_intensity="
        f"{result['remote_intensity']:.3f} "
        f"(>= {result['numa_bound_remote']:g} -> NUMA-bound: "
        f"{'yes' if result['is_numa_bound'] else 'no'})"
    )
    return "\n".join(lines)
