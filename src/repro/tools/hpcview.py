"""``python -m repro.tools.hpcview`` — inspect serialized profile databases.

The text-mode stand-in for the paper's hpcviewer GUI.  Works on ``.rpdb``
files written with :meth:`repro.core.profiledb.ProfileDB.to_bytes`:

    python -m repro.tools.hpcview run    --app lulesh --ranks 8 --jobs 4
    python -m repro.tools.hpcview merge  rank0.rpdb rank1.rpdb -o job.rpdb
    python -m repro.tools.hpcview merge  measurements/lulesh/*.rpdb -o job.rpdb --jobs 4
    python -m repro.tools.hpcview top    job.rpdb --metric remote -n 10
    python -m repro.tools.hpcview bottom job.rpdb --metric latency
    python -m repro.tools.hpcview advise job.rpdb
    python -m repro.tools.hpcview topdown job.rpdb
    python -m repro.tools.hpcview topdown --app nw --preset smoke
    python -m repro.tools.hpcview topdown --static-app nw
    python -m repro.tools.hpcview info   job.rpdb
    python -m repro.tools.hpcview staticcheck --app nw --reconcile job.rpdb
    python -m repro.tools.hpcview staticcheck --app nw --reconcile-run --reconcile-metrics
    python -m repro.tools.hpcview info   --machine-stats run.mstats.json
    python -m repro.tools.hpcview serve  --store store --port 9178
    python -m repro.tools.hpcview serve  --smoke --smoke-blobs 32
    python -m repro.tools.hpcview query  nw --port 9178 --view topdown
    python -m repro.tools.hpcview query  --port 9178 --view metricsz

``info --machine-stats`` renders a machine self-instrumentation snapshot
(a JSON-serialized :class:`repro.machine.stats.MachineStats`, as written
by ``benchmarks/bench_simulator_throughput.py --stats-out`` or any
``hierarchy.stats().to_dict()`` dump) next to the profile summaries.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.analyzer import Analyzer, ExperimentDB
from repro.core.derived import derive_from_profile
from repro.core.guidance import advise
from repro.core.metrics import MetricKind
from repro.core.profiledb import ProfileDB
from repro.core.render import (
    render_bottom_up,
    render_hazard_catalogue,
    render_metric_reconciliation,
    render_reconciliation,
    render_sanitizer_report,
    render_static_report,
    render_top_down,
    render_variable_table,
)
from repro.machine.stats import MachineStats
from repro.util.fmt import format_table, human_bytes

__all__ = ["main", "load_profiles", "save_profile"]


def save_profile(db: ProfileDB, path: str | Path) -> int:
    """Write a profile database to disk; returns its size in bytes."""
    data = db.to_bytes()
    Path(path).write_bytes(data)
    return len(data)


def load_profiles(paths: list[str]) -> list[ProfileDB]:
    return [ProfileDB.from_bytes(Path(p).read_bytes()) for p in paths]


def _experiment(paths: list[str]) -> ExperimentDB:
    return Analyzer("hpcview").add_all(load_profiles(paths)).analyze()


def _metric(name: str) -> MetricKind:
    try:
        return MetricKind(name)
    except ValueError:
        choices = ", ".join(m.value for m in MetricKind)
        raise SystemExit(f"unknown metric {name!r}; choose one of: {choices}")


def cmd_info(args: argparse.Namespace) -> None:
    if not args.profiles and not args.machine_stats:
        raise SystemExit("info: give profile files and/or --machine-stats")
    for path in args.profiles:
        db = ProfileDB.from_bytes(Path(path).read_bytes())
        rows = []
        for profile in db.all_profiles():
            classes = ", ".join(s.value for s in profile.storage_classes())
            rows.append((profile.thread_name, profile.node_count(), classes))
        print(format_table(
            ("thread", "cct nodes", "storage classes"),
            rows,
            title=f"{path}: process {db.process_name!r}, "
                  f"{human_bytes(Path(path).stat().st_size)}",
        ))
        if db.meta:
            print(format_table(
                ("meta key", "value"),
                sorted(db.meta.items()),
                title=f"{path}: provenance",
            ))
        print()
    for path in args.machine_stats:
        stats = MachineStats.from_dict(json.loads(Path(path).read_text()))
        print(format_table(
            ("counter", "value"),
            stats.rows(),
            title=f"{path}: machine self-instrumentation",
        ))
        print()


def cmd_top(args: argparse.Namespace) -> None:
    exp = _experiment(args.profiles)
    view = exp.top_down(_metric(args.metric), accesses_per_var=args.accesses)
    print(render_top_down(view, top_n=args.n, title="top-down data-centric view"))


def cmd_table(args: argparse.Namespace) -> None:
    exp = _experiment(args.profiles)
    view = exp.top_down(_metric(args.metric))
    print(render_variable_table(view, top_n=args.n))


def cmd_bottom(args: argparse.Namespace) -> None:
    exp = _experiment(args.profiles)
    print(render_bottom_up(exp.bottom_up(_metric(args.metric)), top_n=args.n))


def cmd_advise(args: argparse.Namespace) -> None:
    exp = _experiment(args.profiles)
    triage = derive_from_profile(exp)
    print(f"triage: {triage.verdict()}")
    print(f"  memory cycle fraction: {triage.memory_cycle_fraction:.0%}   "
          f"remote intensity: {triage.remote_intensity:.0%}   "
          f"tlb intensity: {triage.tlb_intensity:.0%}")
    print()
    static_findings = None
    if args.static_app:
        from repro.staticcheck import (
            analyze_model,
            build_static_model,
            report_with_impacts,
        )

        model = build_static_model(
            args.static_app, args.static_variant, args.static_preset
        )
        static_findings = report_with_impacts(
            model, analyze_model(model)
        ).findings
    recommendations = advise(
        exp, _metric(args.metric), top_n=args.n, static_findings=static_findings
    )
    if not recommendations:
        print("no variable clears the significance threshold")
    for rec in recommendations:
        print(" -", rec)


def cmd_topdown(args: argparse.Namespace) -> int:
    from repro.metrics import (
        MachineSource,
        ProfileSource,
        evaluate_boundness,
        report_from_source,
        render_topdown,
    )

    n_modes = sum(
        1 for given in (args.profiles, args.app, args.static_app) if given
    )
    if n_modes != 1:
        raise SystemExit(
            "topdown: give merged profile files, --app for a live run, "
            "or --static-app for a no-execution prediction"
        )
    if args.static_app:
        # Static adapter: predict counters from the app's static model
        # and render them on the same tree — no execution at all.
        from repro.staticcheck import build_static_model, predict_model
        from repro.staticcheck.predict import model_source

        model = build_static_model(
            args.static_app, args.variant, args.preset
        )
        source = model_source(predict_model(model))
        title = (
            f"topdown: {args.static_app}/{args.variant} ({args.preset} "
            f"preset, static counter prediction — nothing executed)"
        )
    elif args.app:
        # Live machine adapter: run the app in-process and read the
        # hierarchy's exact counters (including observed per-hop DRAM).
        from importlib import import_module

        from repro.parallel import APPS

        if args.app not in APPS:
            raise SystemExit(
                f"unknown app {args.app!r}; known apps: {', '.join(APPS)}"
            )
        module = import_module(f"repro.apps.{args.app}")
        result = module.run(module.rank_config(args.preset, args.variant))
        source = MachineSource(result.machines[0], result.elapsed_cycles)
        title = (
            f"topdown: {args.app}/{args.variant} ({args.preset} preset, "
            f"live machine counters)"
        )
    else:
        # Profile adapter: sampled counters from merged .rpdb files.
        source = ProfileSource(_experiment(args.profiles))
        title = f"topdown: {' '.join(args.profiles)} (merged profile)"
    print(render_topdown(evaluate_boundness(source), title=title))
    print(f"verdict: {report_from_source(source).verdict()}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.parallel import APPS, profile_ranks

    if args.sampled:
        # Activate before the driver forks its workers: each inherits the
        # session and derives an independent stream from its rank pid.
        from repro.sim.sampling import sampling

        session = sampling(
            rate=args.sample_rate,
            min_run=args.sample_min_run,
            seed=args.sample_seed,
        )
    else:
        session = nullcontext()
    with session:
        report = profile_ranks(
            args.app,
            args.ranks,
            args.out,
            variant=args.variant,
            preset=args.preset,
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
        )
    for outcome in report.outcomes:
        status = outcome.path if outcome.ok else f"FAILED: {outcome.error}"
        print(f"  rank {outcome.rank:4d}  {outcome.elapsed_seconds:6.2f}s  "
              f"attempts={outcome.attempts}  {status}")
        if outcome.retries:
            tries = " ".join(f"{s:.2f}s" for s in outcome.attempt_seconds)
            print(f"        attempt durations: {tries}")
    print(report.summary())
    return 0 if report.ok else 1


def cmd_fidelity(args: argparse.Namespace) -> int:
    from repro.parallel.fidelity import measure_fidelity, render_fidelity

    report = measure_fidelity(
        args.app,
        preset=args.preset,
        variant=args.variant,
        rate=args.rate,
        min_run=args.min_run,
        seed=args.seed,
        top_n=args.n,
    )
    print(render_fidelity(report))
    ok = report.within(args.max_metric_err, args.max_share_delta)
    verdict = "PASS" if ok else "FAIL"
    print(f"  bound: metric rel_err <= {args.max_metric_err} "
          f"share delta <= {args.max_share_delta} -> {verdict}")
    return 0 if ok else 1


def _load_defect_module(path: str):
    import importlib.util

    file = Path(path)
    if not file.exists():
        raise SystemExit(f"defect corpus not found: {file}")
    spec = importlib.util.spec_from_file_location("repro_defect_corpus", file)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_defect_seeds(path: str) -> dict:
    return _load_defect_module(path).SEEDS


def cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.sanitize import SanitizerConfig, parse_fail_on, sanitizing

    if args.list_defects:
        for name, (_runner, expected) in _load_defect_seeds(args.defects_file).items():
            print(f"{name:16s} -> {expected or '<no finding>'}")
        return 0
    if bool(args.app) == bool(args.defect):
        args.parser.error("give exactly one of --app or --defect")
    fail_kinds = parse_fail_on(args.fail_on) if args.fail_on else frozenset()
    # Defect seeds free everything except the leak seed's block, so leak
    # checking is always sound there; real apps opt in with --check-leaks.
    config = SanitizerConfig(check_leaks=args.check_leaks or bool(args.defect))

    if args.defect:
        seeds = _load_defect_seeds(args.defects_file)
        if args.defect not in seeds:
            args.parser.error(
                f"unknown defect seed {args.defect!r}; known: {', '.join(seeds)}"
            )
        runner, _expected = seeds[args.defect]
        with sanitizing(config) as session:
            runner()
        title = f"sanitize: defect seed {args.defect!r}"
    else:
        from repro.parallel.registry import run_app_rank

        with sanitizing(config) as session:
            run_app_rank(
                args.app, args.rank, args.ranks,
                variant=args.variant, preset=args.preset,
            )
        title = f"sanitize: {args.app} rank {args.rank}/{args.ranks}"

    report = session.report()
    print(render_sanitizer_report(report, title=title))
    if fail_kinds and report.matching(fail_kinds):
        return 1
    return 0


def cmd_staticcheck(args: argparse.Namespace) -> int:
    from repro.staticcheck import (
        analyze_model,
        app_variants,
        build_static_model,
        diff_models,
        extract_model,
        reconcile,
        reconcile_metrics,
        report_with_impacts,
    )

    if args.list_hazards:
        print(render_hazard_catalogue(min_share=args.min_share))
        return 0
    if args.list_defects:
        module = _load_defect_module(args.defects_file)
        expected = getattr(module, "STATIC_EXPECTED", {})
        for name in module.STATIC_SEEDS:
            codes, _var = expected.get(name, ((), None))
            print(f"{name:20s} -> {', '.join(codes) or '<no finding>'}")
        return 0
    if args.diff_model and not args.extract:
        args.parser.error("--diff-model needs --extract")
    if bool(args.app) == bool(args.defect):
        args.parser.error("give exactly one of --app or --defect")
    if args.extract and not args.app:
        args.parser.error("--extract interprets app kernels; give --app")
    if args.variant == "all" and not args.app:
        args.parser.error("--variant all needs --app")
    if args.variant == "all" and (args.reconcile or args.reconcile_run):
        args.parser.error("--variant all cannot reconcile; pick one variant")

    variants = (
        list(app_variants(args.app))
        if args.app and args.variant == "all"
        else [args.variant]
    )

    if args.diff_model:
        # The drift gate: structural diff of extracted vs registered
        # declarations per variant; exit 1 on any divergence.
        diverged = False
        for variant in variants:
            extraction = extract_model(args.app, variant, args.preset)
            registered = build_static_model(args.app, variant, args.preset)
            diff = diff_models(
                registered, extraction.model, extraction.inexact_sizes
            )
            print(diff.render())
            diverged = diverged or not diff.ok
        return 1 if diverged else 0

    exit_code = 0
    module = None
    for variant in variants:
        if args.app:
            if args.extract:
                model = extract_model(args.app, variant, args.preset).model
            else:
                model = build_static_model(args.app, variant, args.preset)
        else:
            module = _load_defect_module(args.defects_file)
            seeds = module.STATIC_SEEDS
            if args.defect not in seeds:
                args.parser.error(
                    f"unknown static seed {args.defect!r}; "
                    f"known: {', '.join(seeds)}"
                )
            model = seeds[args.defect]()
        report = report_with_impacts(
            model, analyze_model(model, min_share=args.min_share)
        )
        title = "static model extracted from source" if args.extract else ""
        print(render_static_report(report, top_n=args.n, title=title))

        exp = None
        if args.reconcile:
            exp = _experiment(args.reconcile)
        elif args.reconcile_run:
            if args.app:
                from repro.parallel.registry import run_app_rank

                db = run_app_rank(
                    args.app, 0, 1, variant=variant, preset=args.preset
                )
            else:
                runners = getattr(module, "STATIC_PROFILE_RUNNERS", {})
                if args.defect not in runners:
                    args.parser.error(
                        f"static seed {args.defect!r} has no dynamic profile "
                        f"runner to reconcile against"
                    )
                db = runners[args.defect]()
            exp = Analyzer("staticcheck").add(db).analyze()
        if args.reconcile_metrics and exp is None:
            args.parser.error(
                "--reconcile-metrics needs --reconcile or --reconcile-run"
            )
        if exp is not None:
            print()
            print(render_reconciliation(
                reconcile(report, exp, min_share=args.min_share)
            ))
            if args.reconcile_metrics:
                print()
                print(render_metric_reconciliation(
                    reconcile_metrics(model, exp)
                ))

        if args.fail_on:
            wanted = {
                c.strip().upper() for c in args.fail_on.split(",") if c.strip()
            }
            if any("ANY" in wanted or f.code in wanted for f in report.findings):
                exit_code = 1
    return exit_code


def _run_observed(
    app: str,
    ranks: int,
    variant: str,
    preset: str,
    jobs: int,
    out_root: str | Path,
):
    """Shared trace/metrics pipeline, executed under an active obs session.

    Four legs, so every span category and metric layer is exercised by
    real subsystem code paths: (1) each rank once in-process — the only
    place sim-time spans (phase, parallel region, rank, malloc) and
    machine/profiler metrics can be captured, since driver workers are
    separate OS processes; (2) the real multiprocess driver — wall-clock
    driver spans and retry/timeout metrics; (3) a pool merge of the
    driver's output — merge spans/metrics plus codec decode spans;
    (4) a loopback pass through the continuous-profiling service —
    ingest/compaction/query serve spans and ``repro_serve_*`` metrics.
    """
    from repro.parallel import merge_rpdb_files, profile_ranks
    from repro.parallel.registry import run_app_rank

    for rank in range(ranks):
        db = run_app_rank(app, rank, ranks, variant=variant, preset=preset)
        db.to_bytes()  # codec-encode telemetry for this process's profiles
    report = profile_ranks(
        app, ranks, out_root, variant=variant, preset=preset, jobs=jobs
    )
    merged = None
    if report.paths:
        merged, _stats, _merge_report = merge_rpdb_files(
            report.paths, app, jobs=1
        )
        _serve_leg(app, report.paths)
    return report, merged


def _serve_leg(app: str, paths: list) -> None:
    """Loop the driver's output back through ``repro.serve``.

    Single sequential client so the span/metric stream stays
    deterministic under ``--deterministic`` (ManualClock); the repeated
    topdown query records one cache miss and one hit, populating the
    cache-ratio gauge with a stable value.
    """
    import asyncio
    import tempfile

    from repro.serve import ProfileService, ProfileStore, ServeClient

    async def _loop_back() -> None:
        with tempfile.TemporaryDirectory(prefix="hpcview-serve-") as root:
            store = ProfileStore(Path(root) / "store", shards=2)
            service = ProfileService(store, queue_size=8)
            host, port = await service.start()
            try:
                async with ServeClient(host, port) as client:
                    for path in paths:
                        await client.ingest(app, Path(path).read_bytes())
                    await client.compact(app)
                    await client.query(app, "topdown")
                    await client.query(app, "topdown")
            finally:
                await service.stop()

    asyncio.run(_loop_back())


def cmd_trace(args: argparse.Namespace) -> int:
    import tempfile

    from repro.obs import ManualClock, ObsConfig, observing

    config = ObsConfig(
        wall_clock=ManualClock() if args.deterministic else None,
        trace_malloc=not args.no_malloc,
    )
    tmp = None
    out_root = args.measurements
    if out_root is None:
        tmp = tempfile.TemporaryDirectory(prefix="hpcview-trace-")
        out_root = tmp.name
    try:
        with observing(config) as session:
            report, _merged = _run_observed(
                args.app, args.ranks, args.variant, args.preset,
                args.jobs, out_root,
            )
        session.finalize()
    finally:
        if tmp is not None:
            tmp.cleanup()
    path = session.trace.write(args.out)
    print(f"wrote {path}: {len(session.trace.events)} events "
          f"({session.trace.dropped_events} dropped)")
    print(f"span categories: {', '.join(sorted(session.trace.categories()))}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    print(f"max measurement dilation: {session.max_dilation_percent():.2f}%")
    print(report.summary())
    return 0 if report.ok else 1


def cmd_metrics(args: argparse.Namespace) -> int:
    import tempfile
    from contextlib import nullcontext

    from repro.obs import ManualClock, ObsConfig, observing

    config = ObsConfig(
        wall_clock=ManualClock() if args.deterministic else None,
    )
    # Sanitize by default so the sanitizer layer's series are populated;
    # --no-sanitize measures the uninstrumented run instead.
    if args.no_sanitize:
        san_cm = nullcontext(None)
    else:
        from repro.sanitize import sanitizing

        san_cm = sanitizing()
    with tempfile.TemporaryDirectory(prefix="hpcview-metrics-") as out_root:
        with san_cm as san_session, observing(config) as session:
            _report, _merged = _run_observed(
                args.app, args.ranks, args.variant, args.preset,
                args.jobs, out_root,
            )
            if san_session is not None:
                san_session.report()  # finalize sanitizers -> final stats
        session.finalize()
    text = (
        session.metrics.to_prometheus()
        if args.format == "prom"
        else session.metrics.to_json()
    )
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}: {session.metrics.series_count()} series")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    if args.jobs is not None:
        from repro.parallel import merge_rpdb_files

        db, stats, report = merge_rpdb_files(
            args.profiles, Path(args.output).stem,
            jobs=args.jobs, arity=args.arity,
        )
        size = save_profile(db, args.output)
        print(f"{report.summary()} -> {args.output} ({human_bytes(size)})")
        if report.partial:
            for label, why in report.dropped:
                print(f"  dropped {label}: {why}")
        return 0
    dbs = load_profiles(args.profiles)
    exp = Analyzer(Path(args.output).stem).add_all(dbs).analyze()
    size = save_profile(exp.db, args.output)
    stats = exp.merge_stats
    print(f"merged {stats.profiles_in} thread profiles in {stats.rounds} rounds "
          f"-> {args.output} ({human_bytes(size)})")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ProfileService, ProfileStore

    store = ProfileStore(args.store, shards=args.shards, arity=args.arity)
    service = ProfileService(
        store, queue_size=args.queue_size, compact_every=args.compact_every
    )
    if args.smoke:
        return asyncio.run(_serve_smoke(service, args.smoke_blobs))

    async def _serve_forever() -> None:
        host, port = await service.start(args.host, args.port)
        print(f"serving {store.root} on {host}:{port} "
              f"(queue {args.queue_size}, {store.shards} shards/app, "
              f"compact_every={args.compact_every or 'manual'})")
        try:
            await asyncio.Event().wait()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve_forever())
    except KeyboardInterrupt:
        print("stopped")
    return 0


async def _serve_smoke(service, n_blobs: int) -> int:
    """Self-test: concurrent two-app ingest, compact, query, verify.

    One client connection per app ingesting concurrently, then a
    compaction and a topdown query per app, then the store invariant:
    each rollup must be byte-identical to a sequential merge of its
    leaves.  Exit 0 only if both rollups verify.
    """
    import asyncio

    from repro.parallel.registry import run_app_rank
    from repro.serve import ServeClient

    apps = ("nw", "streamcluster")
    per_app = max(1, n_blobs // len(apps))
    host, port = await service.start("127.0.0.1", 0)

    async def _ship(app: str) -> None:
        async with ServeClient(host, port) as client:
            for rank in range(per_app):
                blob = run_app_rank(app, rank, per_app).to_bytes(canonical=True)
                await client.ingest(app, blob)

    try:
        await asyncio.gather(*(_ship(app) for app in apps))
        async with ServeClient(host, port) as client:
            for app in apps:
                print((await client.compact(app))["text"])
            print((await client.query(apps[0], "topdown"))["text"])
            print((await client.query("", "status"))["text"])
    finally:
        await service.stop()

    ok = True
    for app in apps:
        identical, covered = service.store.verify_rollup(app)
        verdict = "PASS" if identical else "FAIL"
        print(f"{app}: rollup vs sequential merge of {covered} leaves "
              f"-> byte-identical {verdict}")
        ok = ok and identical
    return 0 if ok else 1


def cmd_query(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ServeError
    from repro.serve import ServeClient

    async def _ask() -> dict:
        async with ServeClient(args.host, args.port) as client:
            if args.compact:
                return await client.compact(args.app)
            return await client.query(
                args.app, args.view, metric=args.metric, n=args.n
            )

    try:
        result = asyncio.run(_ask())
    except ServeError as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result, sort_keys=True, indent=2))
    else:
        print(result.get("text", json.dumps(result, sort_keys=True)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hpcview",
        description="inspect data-centric profile databases (.rpdb)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, help_text, profiles_nargs="+"):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("profiles", nargs=profiles_nargs, help="profile database files")
        p.add_argument("--metric", default="samples",
                       help="samples|latency|events|remote|tlb_miss")
        p.add_argument("-n", type=int, default=10, help="rows to show")
        p.set_defaults(func=fn)
        return p

    info = add("info", cmd_info, "list threads/CCTs in each database",
               profiles_nargs="*")
    info.add_argument("--machine-stats", action="append", default=[],
                      metavar="FILE.json",
                      help="also render a MachineStats snapshot (JSON dict)")
    top = add("top", cmd_top, "top-down view: variables with allocation paths")
    top.add_argument("--accesses", type=int, default=3,
                     help="hot accesses to show per variable")
    add("table", cmd_table, "compact one-row-per-variable ranking")
    add("bottom", cmd_bottom, "bottom-up view: allocation call sites")
    advise_p = add("advise", cmd_advise, "triage + optimization guidance")
    advise_p.add_argument("--static-app", default=None, metavar="APP",
                          help="also run the static analyzer on APP and cite "
                               "its predictions in the recommendations")
    advise_p.add_argument("--static-variant", default="original",
                          help="variant for --static-app (default: original)")
    advise_p.add_argument("--static-preset", default="smoke",
                          help="preset for --static-app (default: smoke)")
    merge = add("merge", cmd_merge, "merge databases into one (reduction tree)")
    merge.add_argument("-o", "--output", required=True, help="output .rpdb file")
    merge.add_argument("--jobs", type=int, default=None, metavar="J",
                       help="merge on a J-worker process pool "
                            "(default: in-process sequential merge)")
    merge.add_argument("--arity", type=int, default=2,
                       help="reduction-tree fan-in (with --jobs; default 2)")

    topdown = sub.add_parser(
        "topdown",
        help="LIKWID-style top-down boundness hierarchy, from merged "
             "profiles or a live in-process run",
    )
    topdown.add_argument("profiles", nargs="*",
                         help="merged profile database files (.rpdb)")
    topdown.add_argument("--app", default=None,
                         help="run this app in-process and read the live "
                              "machine counters instead of profiles")
    topdown.add_argument("--static-app", default=None, metavar="APP",
                         help="render the static counter prediction of APP "
                              "on the same tree — nothing is executed")
    topdown.add_argument("--variant", default="original",
                         help="app variant for --app/--static-app "
                              "(default: original)")
    topdown.add_argument("--preset", default="smoke",
                         help="workload preset for --app/--static-app "
                              "(default: smoke)")
    topdown.set_defaults(func=cmd_topdown)

    run = sub.add_parser(
        "run", help="profile an app, one worker process per MPI rank"
    )
    run.add_argument("--app", required=True,
                     help="app to profile (see repro.parallel.APPS)")
    run.add_argument("--ranks", type=int, required=True, metavar="N",
                     help="number of simulated MPI ranks")
    run.add_argument("--jobs", type=int, default=None, metavar="J",
                     help="max concurrent worker processes (default: CPU count)")
    run.add_argument("--variant", default="original",
                     help="app variant (default: original)")
    run.add_argument("--preset", default="smoke",
                     help="workload preset (default: smoke)")
    run.add_argument("--out", default="measurements", metavar="DIR",
                     help="measurement root; writes DIR/<app>/<rank>.rpdb")
    run.add_argument("--timeout", type=float, default=300.0,
                     help="per-rank wall-clock limit in seconds")
    run.add_argument("--retries", type=int, default=1,
                     help="retries per failed rank before giving up")
    run.add_argument("--sampled", action="store_true",
                     help="sampled simulation: simulate a deterministic "
                          "subset of access runs and extrapolate "
                          "(see `hpcview fidelity` for the error report)")
    run.add_argument("--sample-rate", type=float, default=0.25,
                     help="fraction of eligible runs simulated (default 0.25)")
    run.add_argument("--sample-min-run", type=int, default=64,
                     help="runs shorter than this are always simulated")
    run.add_argument("--sample-seed", type=int, default=0x5EED,
                     help="seed of the sampling decision stream")
    run.set_defaults(func=cmd_run)

    fidelity = sub.add_parser(
        "fidelity",
        help="run an app full and sampled, report per-metric/per-variable "
             "divergence, fail above the bound",
    )
    fidelity.add_argument("--app", required=True,
                          help="app to measure (see repro.parallel.APPS)")
    fidelity.add_argument("--preset", default="smoke",
                          help="workload preset (default: smoke)")
    fidelity.add_argument("--variant", default="original",
                          help="app variant (default: original)")
    fidelity.add_argument("--rate", type=float, default=0.25,
                          help="fraction of eligible runs simulated")
    fidelity.add_argument("--min-run", type=int, default=64,
                          help="runs shorter than this are always simulated")
    fidelity.add_argument("--seed", type=int, default=0x5EED,
                          help="seed of the sampling decision stream")
    fidelity.add_argument("-n", type=int, default=8,
                          help="top variables to compare (default 8)")
    fidelity.add_argument("--max-metric-err", type=float, default=0.10,
                          help="relative-error bound per metric (default 0.10)")
    fidelity.add_argument("--max-share-delta", type=float, default=0.02,
                          help="per-variable share-delta bound (default 0.02)")
    fidelity.set_defaults(func=cmd_fidelity)

    sanitize = sub.add_parser(
        "sanitize",
        help="run an app or defect seed under the shadow-memory/race checker",
    )
    sanitize.add_argument("--app", default=None,
                          help="app to sanitize (see repro.parallel.APPS)")
    sanitize.add_argument("--defect", default=None, metavar="SEED",
                          help="defect-corpus seed to sanitize instead of an app")
    sanitize.add_argument("--defects-file", default="examples/defects.py",
                          help="path to the seeded-defect corpus")
    sanitize.add_argument("--list-defects", action="store_true",
                          help="list defect seeds and expected findings")
    sanitize.add_argument("--preset", default="smoke",
                          help="workload preset (default: smoke)")
    sanitize.add_argument("--variant", default="original",
                          help="app variant (default: original)")
    sanitize.add_argument("--rank", type=int, default=0,
                          help="MPI rank to run in-process (default 0)")
    sanitize.add_argument("--ranks", type=int, default=2,
                          help="total simulated ranks (default 2)")
    sanitize.add_argument("--check-leaks", action="store_true",
                          help="also report heap blocks still live at exit")
    sanitize.add_argument("--fail-on", default=None, metavar="CLASSES",
                          help="exit 1 when findings match these classes "
                               "(comma list: oob,race,uaf,free,uninit,leak,"
                               "sharing,any or exact kinds)")
    sanitize.set_defaults(func=cmd_sanitize, parser=sanitize)

    static = sub.add_parser(
        "staticcheck",
        help="predict data-centric hazards without running: call graph, "
             "allocation reaching, NUMA/sharing analysis",
    )
    static.add_argument("--app", default=None,
                        help="app to analyze (see repro.staticcheck.STATIC_APPS)")
    static.add_argument("--defect", default=None, metavar="SEED",
                        help="static defect seed to analyze instead of an app")
    static.add_argument("--defects-file", default="examples/defects.py",
                        help="path to the seeded-defect corpus")
    static.add_argument("--list-defects", action="store_true",
                        help="list static seeds and expected hazard codes")
    static.add_argument("--variant", default="original",
                        help="app variant, or 'all' to loop every variant "
                             "(default: original)")
    static.add_argument("--preset", default="smoke",
                        help="workload preset (default: smoke)")
    static.add_argument("--extract", action="store_true",
                        help="recover the model from kernel source by AST "
                             "interpretation instead of the registered "
                             "static_model() declarations")
    static.add_argument("--diff-model", action="store_true",
                        help="structurally diff the extracted model against "
                             "the registered declarations (the drift gate); "
                             "exit 1 on divergence; needs --extract")
    static.add_argument("--list-hazards", action="store_true",
                        help="print the H001..H004 hazard catalogue with "
                             "registry-resolved thresholds and exit")
    static.add_argument("-n", type=int, default=10,
                        help="variables to show (default 10)")
    static.add_argument("--min-share", type=float, default=None,
                        help="minimum static access share for a placement "
                             "finding (default: the formula registry's "
                             "min_share constant, 0.03 unless overridden "
                             "per preset)")
    static.add_argument("--fail-on", default=None, metavar="CODES",
                        help="exit 1 when findings match these hazard codes "
                             "(comma list of H001..H004, or 'any')")
    static.add_argument("--reconcile", nargs="+", default=None,
                        metavar="FILE.rpdb",
                        help="label predictions against these merged profiles")
    static.add_argument("--reconcile-run", action="store_true",
                        help="profile the app (rank 0) or the seed's dynamic "
                             "twin in-process and reconcile against it")
    static.add_argument("--reconcile-metrics", action="store_true",
                        help="also compare static vs dynamic evaluations of "
                             "the derived-metric DAG per variable, with "
                             "relative error (needs --reconcile or "
                             "--reconcile-run)")
    static.set_defaults(func=cmd_staticcheck, parser=static)

    def add_telemetry_args(p):
        p.add_argument("--app", default="nw",
                       help="app to run (see repro.parallel.APPS; default nw)")
        p.add_argument("--ranks", type=int, default=2, metavar="N",
                       help="simulated MPI ranks (default 2)")
        p.add_argument("--variant", default="original",
                       help="app variant (default: original)")
        p.add_argument("--preset", default="smoke",
                       help="workload preset (default: smoke)")
        p.add_argument("--jobs", type=int, default=1, metavar="J",
                       help="driver worker processes (default 1)")
        p.add_argument("--deterministic", action="store_true",
                       help="use a fixed-step manual clock for wall-domain "
                            "spans: byte-identical output across runs")

    trace = sub.add_parser(
        "trace",
        help="run an app under the telemetry layer; write a Perfetto/"
             "Chrome trace-event timeline",
    )
    add_telemetry_args(trace)
    trace.add_argument("--out", default="trace.json", metavar="FILE",
                       help="trace JSON output path (default trace.json)")
    trace.add_argument("--no-malloc", action="store_true",
                       help="skip malloc-lifetime spans (smaller traces)")
    trace.add_argument("--measurements", default=None, metavar="DIR",
                       help="keep driver .rpdb output here "
                            "(default: temporary directory)")
    trace.set_defaults(func=cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run an app under the telemetry layer; export the metrics "
             "registry",
    )
    add_telemetry_args(metrics)
    metrics.add_argument("--format", choices=("prom", "json"), default="prom",
                         help="export format (default: prom)")
    metrics.add_argument("--out", default=None, metavar="FILE",
                         help="write here instead of stdout")
    metrics.add_argument("--no-sanitize", action="store_true",
                         help="run without the sanitizer (drops that "
                              "layer's metric series)")
    metrics.set_defaults(func=cmd_metrics)

    serve = sub.add_parser(
        "serve",
        help="run the continuous-profiling service: async ingest of "
             ".rpdb blobs, sharded store, incremental rollup compaction",
    )
    serve.add_argument("--store", default="store", metavar="DIR",
                       help="store root; grows DIR/<app>/<shard>/ "
                            "(default: store)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default 0: ephemeral, printed)")
    serve.add_argument("--queue-size", type=int, default=64, metavar="N",
                       help="bounded ingest queue: validated blobs "
                            "awaiting commit (the backpressure window)")
    serve.add_argument("--compact-every", type=int, default=0, metavar="N",
                       help="auto-compact an app after N ingests "
                            "(default 0: only on explicit compact requests)")
    serve.add_argument("--shards", type=int, default=4,
                       help="leaf shards per app (default 4)")
    serve.add_argument("--arity", type=int, default=8,
                       help="compaction reduction-tree fan-in (default 8)")
    serve.add_argument("--smoke", action="store_true",
                       help="self-test: concurrent two-app ingest, compact, "
                            "query, then verify rollups byte-identical to a "
                            "sequential merge; exit 1 on mismatch")
    serve.add_argument("--smoke-blobs", type=int, default=32, metavar="N",
                       help="total blobs the smoke test ingests (default 32)")
    serve.set_defaults(func=cmd_serve)

    query = sub.add_parser(
        "query",
        help="query a running serve instance: topdown/bottomup/variables "
             "views, store status, service metricsz",
    )
    query.add_argument("app", nargs="?", default="",
                       help="app namespace (omit for status/metricsz)")
    query.add_argument("--host", default="127.0.0.1",
                       help="service address (default 127.0.0.1)")
    query.add_argument("--port", type=int, required=True,
                       help="service port")
    query.add_argument("--view", default="status",
                       choices=("topdown", "bottomup", "variables",
                                "status", "metricsz"),
                       help="view to render (default: status)")
    query.add_argument("--metric", default="latency",
                       help="metric for bottomup/variables "
                            "(samples|latency|events|remote|tlb_miss)")
    query.add_argument("-n", type=int, default=10,
                       help="rows for bottomup/variables (default 10)")
    query.add_argument("--compact", action="store_true",
                       help="trigger a compaction for APP instead of a view")
    query.add_argument("--json", action="store_true",
                       help="print the raw JSON payload, not rendered text")
    query.set_defaults(func=cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args) or 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
