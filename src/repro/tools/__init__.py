"""Command-line tools: save, inspect, and merge profile databases."""
