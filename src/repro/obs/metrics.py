"""Labelled metrics registry with deterministic JSON/Prometheus export.

One registry per :class:`repro.obs.ObsSession`.  Three instrument
kinds, mirroring the Prometheus data model:

* counter   — monotonically increasing float (``inc``)
* gauge     — last-write-wins float (``set_gauge``)
* histogram — fixed-bucket distribution (``observe``) exported as
  cumulative ``_bucket``/``_sum``/``_count`` series plus estimated
  ``_p50``/``_p95``/``_p99`` summary lines (bucket interpolation)

Every series is identified by ``(name, sorted label items)``; both
export formats emit series sorted by that key, so two runs that record
the same values produce byte-identical output regardless of insertion
order.  No clocks here — values carry their own timestamps if callers
want them (we don't: scrape-style export only).
"""

from __future__ import annotations

import json

from repro.errors import ObsError

DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)

_KINDS = ("counter", "gauge", "histogram")

# Quantile summaries derived from histogram buckets at export time.
SUMMARY_QUANTILES = ((50, 0.50), (95, 0.95), (99, 0.99))


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


class _Histogram:
    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.count += 1
        # counts[i] holds the i-th bucket's own tally; cumulative() sums.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def cumulative(self) -> list[tuple[float, int]]:
        out, running = [], 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile from bucket counts (Prometheus-style).

        Linear interpolation inside the bucket that crosses the target
        rank; observations above the last finite bucket are clamped to
        that bound (the same convention as ``histogram_quantile``), so
        the estimate is bucket-resolution accurate, not exact.
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        prev_bound, prev_cum = 0.0, 0
        for bound, cum in self.cumulative():
            if cum >= target:
                in_bucket = cum - prev_cum
                if in_bucket == 0:
                    return bound
                frac = (target - prev_cum) / in_bucket
                return prev_bound + (bound - prev_bound) * frac
            prev_bound, prev_cum = bound, cum
        # Target rank lies among overflow (> last bucket) observations.
        return self.buckets[-1] if self.buckets else 0.0


class MetricsRegistry:
    """Collects labelled series; exports deterministic JSON/Prometheus."""

    def __init__(self) -> None:
        # name -> (kind, help)
        self._meta: dict[str, tuple[str, str]] = {}
        # (name, label_key) -> float | _Histogram
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        # name -> label-key names of the first observation; every later
        # observation must use the same keys or the exports would silently
        # interleave unrelated series under one metric name.
        self._label_names: dict[str, tuple[str, ...]] = {}

    # -- declaration --------------------------------------------------------

    def _declare(self, name: str, kind: str, help_text: str) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        existing = self._meta.get(name)
        if existing is not None and existing[0] != kind:
            raise ValueError(
                f"metric {name!r} re-declared as {kind} (was {existing[0]})"
            )
        if existing is None:
            self._meta[name] = (kind, help_text)

    def _checked_label_key(
        self, name: str, labels: dict[str, str] | None
    ) -> tuple[tuple[str, str], ...]:
        key = _label_key(labels)
        names = tuple(k for k, _ in key)
        expected = self._label_names.get(name)
        if expected is None:
            self._label_names[name] = names
        elif expected != names:
            raise ObsError(
                f"metric {name!r} observed with label keys {names!r}; "
                f"previous observations used {expected!r} — one metric "
                f"name must keep one label-key set"
            )
        return key

    # -- recording ----------------------------------------------------------

    def inc(
        self,
        name: str,
        amount: float = 1.0,
        labels: dict[str, str] | None = None,
        help_text: str = "",
    ) -> None:
        self._declare(name, "counter", help_text)
        key = (name, self._checked_label_key(name, labels))
        self._series[key] = float(self._series.get(key, 0.0)) + float(amount)

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: dict[str, str] | None = None,
        help_text: str = "",
    ) -> None:
        self._declare(name, "gauge", help_text)
        self._series[(name, self._checked_label_key(name, labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        help_text: str = "",
    ) -> None:
        self._declare(name, "histogram", help_text)
        key = (name, self._checked_label_key(name, labels))
        hist = self._series.get(key)
        if hist is None:
            hist = _Histogram(buckets)
            self._series[key] = hist
        hist.observe(value)

    # -- introspection ------------------------------------------------------

    def series_count(self) -> int:
        """Distinct (name, labels) series, histograms counted once."""
        return len(self._series)

    def metric_names(self) -> list[str]:
        return sorted(self._meta)

    def value(self, name: str, labels: dict[str, str] | None = None) -> float:
        entry = self._series[(name, _label_key(labels))]
        if isinstance(entry, _Histogram):
            raise TypeError(f"{name} is a histogram; no scalar value")
        return float(entry)

    # -- export -------------------------------------------------------------

    def _sorted_series(self):
        return sorted(self._series.items(), key=lambda item: item[0])

    def to_json(self) -> str:
        series = []
        for (name, label_key), entry in self._sorted_series():
            kind, help_text = self._meta[name]
            record: dict = {
                "name": name,
                "kind": kind,
                "labels": {k: v for k, v in label_key},
            }
            if help_text:
                record["help"] = help_text
            if isinstance(entry, _Histogram):
                record["sum"] = entry.total
                record["count"] = entry.count
                record["buckets"] = [
                    {"le": bound, "count": n} for bound, n in entry.cumulative()
                ]
                for pct, q in SUMMARY_QUANTILES:
                    record[f"p{pct}"] = entry.quantile(q)
            else:
                record["value"] = entry
            series.append(record)
        return json.dumps(
            {"series": series}, sort_keys=True, separators=(",", ":")
        )

    def to_prometheus(self) -> str:
        lines: list[str] = []
        emitted_header: set[str] = set()
        for (name, label_key), entry in self._sorted_series():
            kind, help_text = self._meta[name]
            if name not in emitted_header:
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                emitted_header.add(name)
            if isinstance(entry, _Histogram):
                for bound, n in entry.cumulative():
                    bucket_key = label_key + (("le", _format_value(bound)),)
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_key)} {n}"
                    )
                inf_key = label_key + (("le", "+Inf"),)
                lines.append(
                    f"{name}_bucket{_render_labels(inf_key)} {entry.count}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(label_key)} "
                    f"{_format_value(entry.total)}"
                )
                lines.append(
                    f"{name}_count{_render_labels(label_key)} {entry.count}"
                )
                for pct, q in SUMMARY_QUANTILES:
                    lines.append(
                        f"{name}_p{pct}{_render_labels(label_key)} "
                        f"{_format_value(entry.quantile(q))}"
                    )
            else:
                lines.append(
                    f"{name}{_render_labels(label_key)} "
                    f"{_format_value(float(entry))}"
                )
        return "\n".join(lines) + ("\n" if lines else "")
