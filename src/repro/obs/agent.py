"""Per-process observability agent (the sim-time half of the tracer).

One :class:`ObsAgent` attaches to one :class:`~repro.sim.process.SimProcess`
as an ordinary hook (same list the profiler sits in) plus the
``process.obs`` back-pointer that ``SimProcess.phase`` consults.  It
records *sim-time* spans — phases, ``Ctx.parallel`` regions, MPI ranks,
malloc lifetimes — with timestamps derived purely from simulated cycles,
so traces are as deterministic as the profiles themselves.

The agent is strictly read-only with respect to simulation state: it
never touches thread clocks, machine counters, or the heap, which is
what keeps profiles byte-identical whether or not a session is active
(pinned by tests/test_obs.py).

At :meth:`finalize` it folds the process's end-of-run state into the
session's metrics registry: every :class:`MachineStats` field, the
contention/DRAM queue model, heap allocator occupancy, sanitizer
counters when one is installed, and the profiler's self-overhead as a
dilation percentage (measurement cycles vs. total simulated cycles —
the paper's <3% claim, checked in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import ObsSession
    from repro.sim.loader import LoadModule
    from repro.sim.process import SimProcess
    from repro.sim.thread import SimThread

# Wall-domain events (driver, merge, codec) live in pid 0; simulated
# processes get pid = rank + SIM_PID_BASE so the two domains never
# collide in the timeline view.
SIM_PID_BASE = 1


class ObsAgent:
    """Hook recording sim-time spans and end-of-run metrics for a process."""

    def __init__(self, session: "ObsSession", process: "SimProcess") -> None:
        self.session = session
        self.process = process
        self.pid = SIM_PID_BASE + process.pid
        self.samples_seen = 0
        self._region_stack: list[tuple[int, int]] = []  # (start_cycles, n_threads)
        self._region_count = 0
        self._live_allocs: dict[int, tuple[int, int, int, str | None]] = {}
        self._malloc_spans = 0
        self._rank_span_emitted = False
        self._finalized = False
        trace = session.trace
        trace.process_name(self.pid, f"sim:{process.name}")
        trace.thread_name(self.pid, 0, f"{process.name}.main")

    # -- sim-time helpers ----------------------------------------------------

    def _us(self, cycles: int) -> float:
        return self.process.machine.cycles_to_seconds(cycles) * 1e6

    # -- required hook protocol (no-ops where we have nothing to record) -----

    def on_module_load(self, process: "SimProcess", module: "LoadModule") -> None:
        return

    def on_module_unload(self, process: "SimProcess", module: "LoadModule") -> None:
        return

    def on_thread_create(self, process: "SimProcess", thread: "SimThread") -> None:
        self.session.trace.thread_name(
            self.pid, thread.thread_index, thread.name
        )

    def on_sample(self, process: "SimProcess", thread: "SimThread", sample) -> None:
        self.samples_seen += 1

    def on_alloc(
        self,
        process: "SimProcess",
        thread: "SimThread",
        addr: int,
        nbytes: int,
        callsite_ip: int,
        kind: str,
        var: str | None = None,
    ) -> None:
        if not self.session.config.trace_malloc:
            return
        self._live_allocs[addr] = (thread.clock, thread.thread_index, nbytes, var)

    def on_free(self, process: "SimProcess", thread: "SimThread", addr: int) -> None:
        entry = self._live_allocs.pop(addr, None)
        if entry is None:
            return
        self._emit_malloc_span(addr, entry, end_cycles=thread.clock)

    # -- optional hook protocol ---------------------------------------------

    def on_parallel_begin(self, process: "SimProcess", n_threads: int) -> None:
        self._region_stack.append((process.master.clock, n_threads))

    def on_parallel_end(self, process: "SimProcess") -> None:
        if not self._region_stack:
            return
        start, n_threads = self._region_stack.pop()
        self._region_count += 1
        end = process.master.clock
        self.session.trace.complete(
            name=f"parallel[{n_threads}t]",
            cat="parallel",
            ts_us=self._us(start),
            dur_us=self._us(end - start),
            pid=self.pid,
            tid=0,
            args={"n_threads": n_threads, "cycles": end - start},
        )

    # -- calls from SimProcess / MPIJob (not part of the hook list) ---------

    def on_phase(
        self, process: "SimProcess", name: str, start_cycles: int, end_cycles: int
    ) -> None:
        self.session.trace.complete(
            name=f"phase:{name}",
            cat="phase",
            ts_us=self._us(start_cycles),
            dur_us=self._us(end_cycles - start_cycles),
            pid=self.pid,
            tid=0,
            args={"cycles": end_cycles - start_cycles},
        )

    def on_rank_complete(self, process: "SimProcess") -> None:
        """Emit the whole-rank span (also called from finalize as a backstop)."""
        if self._rank_span_emitted:
            return
        self._rank_span_emitted = True
        end = process.master.clock
        self.session.trace.complete(
            name=f"rank:{process.name}",
            cat="rank",
            ts_us=0.0,
            dur_us=self._us(end),
            pid=self.pid,
            tid=0,
            args={"pid": process.pid, "cycles": end},
        )

    # -- internals -----------------------------------------------------------

    def _emit_malloc_span(
        self, addr: int, entry: tuple[int, int, int, str | None], end_cycles: int
    ) -> None:
        start, tid, nbytes, var = entry
        end = max(end_cycles, start)
        self._malloc_spans += 1
        self.session.trace.complete(
            name=f"malloc:{var}" if var else "malloc",
            cat="malloc",
            ts_us=self._us(start),
            dur_us=self._us(end - start),
            pid=self.pid,
            tid=tid,
            args={"addr": addr, "bytes": nbytes},
        )

    # -- end-of-run metrics ---------------------------------------------------

    def finalize(self) -> None:
        """Close open spans and fold process state into session metrics."""
        if self._finalized:
            return
        self._finalized = True
        process = self.process
        now = process.master.clock
        for addr, entry in sorted(self._live_allocs.items()):
            self._emit_malloc_span(addr, entry, end_cycles=max(now, entry[0]))
        self._live_allocs.clear()
        self.on_rank_complete(process)

        metrics = self.session.metrics
        labels = {"process": process.name}

        # Machine layer: every MachineStats counter plus the queueing model.
        # Tuple-valued fields fan out into labelled series (per data-source
        # level, per NUMA node); scalars map 1:1.
        hierarchy = process.machine.hierarchy
        level_names = ("L1", "L2", "L3", "LMEM", "RMEM")
        for field, value in hierarchy.stats().to_dict().items():
            if isinstance(value, list):
                if "hop" in field:
                    key = "hops"
                elif "dram" in field:
                    key = "node"
                else:
                    key = "level"
                for i, item in enumerate(value):
                    sub = dict(labels)
                    sub[key] = (
                        level_names[i]
                        if key == "level" and i < len(level_names)
                        else str(i)
                    )
                    metrics.set_gauge(
                        f"repro_machine_{field}", item, sub,
                        help_text="end-of-run machine hierarchy counter",
                    )
            else:
                metrics.set_gauge(
                    f"repro_machine_{field}", value, labels,
                    help_text="end-of-run machine hierarchy counter",
                )
        # Derived-metric layer: evaluate the boundness formula DAG over
        # the live machine and fold every node value into the registry —
        # the same engine (and therefore the same numbers) behind
        # ``derive_from_machine`` and ``hpcview topdown``, replacing the
        # hand-rolled gauge arithmetic this block used to do.
        from repro.metrics.boundness import REGISTRY, evaluate_boundness
        from repro.metrics.sources import MachineSource

        result = evaluate_boundness(MachineSource(process.machine, now))
        for name, value in sorted(result.node_values().items()):
            metrics.set_gauge(
                f"repro_derived_{name}", value, labels,
                help_text=REGISTRY.node_doc(name) or "derived metric node",
            )
        contention = getattr(hierarchy, "contention", None)
        if contention is not None:
            metrics.set_gauge(
                "repro_machine_contention_queue_cycles",
                result["queue_bound"], labels,
                help_text="cycles spent queued on DRAM contention",
            )

        # Heap layer: allocator occupancy (also sanitizer quarantine below).
        heap = getattr(process.aspace, "heap", None)
        if heap is not None:
            for name, attr in (
                ("repro_heap_live_bytes", "live_bytes"),
                ("repro_heap_peak_bytes", "peak_bytes"),
                ("repro_heap_alloc_count", "alloc_count"),
                ("repro_heap_free_count", "free_count"),
            ):
                value = getattr(heap, attr, None)
                if value is not None:
                    metrics.set_gauge(
                        name, value, labels, help_text="heap allocator state"
                    )
            quarantine = getattr(heap, "quarantine_bytes", None)
            if quarantine is not None:
                metrics.set_gauge(
                    "repro_sanitizer_quarantine_bytes", quarantine, labels,
                    help_text="bytes held in the sanitizer free-quarantine",
                )

        # Sanitizer layer (only when a sanitize session installed one).
        sanitizer = getattr(process, "sanitizer", None)
        if sanitizer is not None:
            for key, value in sorted(getattr(sanitizer, "stats", {}).items()):
                metrics.set_gauge(
                    f"repro_sanitizer_{key}", value, labels,
                    help_text="sanitizer activity counter",
                )
            findings = getattr(sanitizer, "findings", None)
            if findings is not None:
                metrics.set_gauge(
                    "repro_sanitizer_findings", len(findings), labels,
                    help_text="sanitizer findings for this process",
                )

        # Sampled-simulation layer (only when a sampling session attached
        # a RunSampler): the tallies behind the fidelity report, so an
        # obs scrape can tell how much of a profile was extrapolated.
        sampler = getattr(process, "sampler", None)
        if sampler is not None:
            for name, attr in (
                ("repro_sim_sampling_issued_runs", "issued_runs"),
                ("repro_sim_sampling_issued_accesses", "issued_accesses"),
                ("repro_sim_sampling_scalar_accesses", "scalar_accesses"),
                ("repro_sim_sampling_skipped_runs", "skipped_runs"),
                ("repro_sim_sampling_skipped_accesses", "skipped_accesses"),
                ("repro_sim_sampling_estimated_cycles", "estimated_cycles"),
                ("repro_sim_sampling_simulated_cycles", "simulated_cycles"),
            ):
                metrics.set_gauge(
                    name, getattr(sampler, attr), labels,
                    help_text="run-sampling tally",
                )
            metrics.set_gauge(
                "repro_sim_sampling_scale", sampler.scale(), labels,
                help_text="extrapolation factor for count-type metrics",
            )

        # Simulator layer.
        metrics.set_gauge(
            "repro_sim_elapsed_cycles", now, labels,
            help_text="master-clock cycles simulated",
        )
        metrics.set_gauge(
            "repro_sim_parallel_regions", self._region_count, labels,
            help_text="parallel regions executed",
        )
        metrics.set_gauge(
            "repro_sim_malloc_spans", self._malloc_spans, labels,
            help_text="malloc lifetime spans traced",
        )
        for name, cycles in sorted(process.phase_cycles.items()):
            metrics.set_gauge(
                "repro_sim_phase_cycles", cycles,
                {"process": process.name, "phase": name},
                help_text="cycles per named phase",
            )

        # Profiler self-overhead: dilation% vs simulated work (paper <3%).
        overhead = 0
        samples = self.samples_seen
        for hook in process.hooks:
            stats = getattr(hook, "stats", None)
            cycles = getattr(stats, "overhead_cycles", None)
            if cycles is not None:
                overhead += cycles
                samples = max(samples, getattr(stats, "samples", 0))
        if samples or overhead:
            metrics.set_gauge(
                "repro_profiler_samples", samples, labels,
                help_text="PMU samples handled",
            )
            metrics.set_gauge(
                "repro_profiler_overhead_cycles", overhead, labels,
                help_text="cycles charged to measurement machinery",
            )
            dilation = 100.0 * overhead / now if now else 0.0
            metrics.set_gauge(
                "repro_profiler_dilation_percent", dilation, labels,
                help_text="measurement dilation vs simulated work",
            )
            self.session.dilation_percents[process.name] = dilation
