"""Clock facade for the observability layer.

Every wall-clock read made by ``repro.obs`` lives in this file — the
reprolint rule R005 bans ``time`` usage in the rest of the package so
that the trace/metrics pipeline stays deterministic by construction:
callers inject a :class:`Clock`, and tests (or ``hpcview trace
--deterministic``) inject :class:`ManualClock` to get byte-identical
output across runs.

Two clock *domains* exist in a trace (see DESIGN.md "Observability"):

* **sim-time** — simulated cycles converted to microseconds via the
  machine's clock rate.  These never come from this module; the
  scheduler owns them and they are deterministic already.
* **wall-clock** — host time for the parallel driver, pool merge and
  codec spans.  These come from a :class:`Clock` instance.
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic wall-clock source; returns microseconds as a float."""

    def now_us(self) -> float:
        raise NotImplementedError


class WallClock(Clock):
    """Real host clock based on ``time.perf_counter`` (monotonic)."""

    def __init__(self) -> None:
        self._origin = time.perf_counter()

    def now_us(self) -> float:
        return (time.perf_counter() - self._origin) * 1e6


class ManualClock(Clock):
    """Deterministic clock: advances by a fixed step on every read.

    Used by the determinism tests and ``--deterministic`` tracing so
    wall-domain spans get reproducible (if physically meaningless)
    timestamps.  ``advance`` allows explicit jumps in tests.
    """

    def __init__(self, start_us: float = 0.0, step_us: float = 1.0) -> None:
        self._now = float(start_us)
        self._step = float(step_us)

    def now_us(self) -> float:
        current = self._now
        self._now += self._step
        return current

    def advance(self, delta_us: float) -> None:
        self._now += float(delta_us)
