"""Unified telemetry layer (``repro.obs``): spans, metrics, timelines.

Opt-in observability across the whole stack — simulator phases and
parallel regions, MPI ranks, malloc lifetimes (sim-time domain), the
multiprocess driver, pool merge and profile codec (wall-clock domain) —
plus a labelled metrics registry every subsystem folds its end-of-run
counters into.  Traces load directly in https://ui.perfetto.dev or
``chrome://tracing``; metrics export as JSON or Prometheus text.

Activation mirrors ``repro.sanitize`` exactly::

    from repro.obs import observing

    with observing() as session:
        run_app_rank("nw", 0, 2)          # every SimProcess built in
    session.finalize()                     # scope is auto-instrumented
    session.trace.write("trace.json")
    print(session.metrics.to_prometheus())

:class:`repro.sim.SimProcess` consults ``sys.modules`` for this package
at construction; if it was never imported no observability code runs at
all, and importing without entering :func:`observing` is equally inert
(profiles stay byte-identical — pinned by a subprocess differential
test).  Even with a session active, agents never mutate simulation
state, so profile bytes are identical with tracing on or off.

Clock discipline: sim-time spans derive from simulated cycles; wall
spans read the session's injected :class:`~repro.obs.clock.Clock`.
Nothing else in this package may touch ``time`` (reprolint R005) —
pass :class:`~repro.obs.clock.ManualClock` for deterministic traces.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.errors import ConfigError
from repro.obs.agent import ObsAgent
from repro.obs.clock import Clock, ManualClock, WallClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import DEFAULT_MAX_EVENTS, TraceWriter

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = [
    "Clock",
    "ManualClock",
    "MetricsRegistry",
    "ObsAgent",
    "ObsConfig",
    "ObsSession",
    "TraceWriter",
    "WallClock",
    "active_session",
    "maybe_attach",
    "observing",
]

# pid 0 of the trace holds all wall-domain lanes; sim processes start at 1.
WALL_PID = 0
WALL_TID_DRIVER = 1
WALL_TID_MERGE = 2
WALL_TID_CODEC = 3
WALL_TID_SERVE = 4

_WALL_TID_NAMES = {
    WALL_TID_DRIVER: "driver",
    WALL_TID_MERGE: "merge",
    WALL_TID_CODEC: "codec",
    WALL_TID_SERVE: "serve",
}


class ObsConfig:
    """Session knobs.  ``wall_clock=None`` means a real monotonic clock."""

    def __init__(
        self,
        wall_clock: Clock | None = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        trace_malloc: bool = True,
    ) -> None:
        self.wall_clock = wall_clock
        self.max_events = max_events
        self.trace_malloc = trace_malloc


class ObsSession:
    """One tracing+metrics scope; collects an agent per SimProcess."""

    def __init__(self, config: ObsConfig | None = None) -> None:
        self.config = config or ObsConfig()
        self.clock: Clock = self.config.wall_clock or WallClock()
        self.trace = TraceWriter(max_events=self.config.max_events)
        self.metrics = MetricsRegistry()
        self.agents: list[ObsAgent] = []
        self.dilation_percents: dict[str, float] = {}
        self._finalized = False
        self.trace.process_name(WALL_PID, "host")
        for tid, name in sorted(_WALL_TID_NAMES.items()):
            self.trace.thread_name(WALL_PID, tid, name)

    # -- sim-domain attachment ----------------------------------------------

    def attach(self, process: "SimProcess") -> ObsAgent:
        agent = ObsAgent(self, process)
        process.hooks.append(agent)
        process.obs = agent
        self.agents.append(agent)
        return agent

    # -- wall-domain spans ---------------------------------------------------

    @contextmanager
    def wall_span(
        self,
        name: str,
        cat: str,
        tid: int = WALL_TID_DRIVER,
        args: dict | None = None,
    ) -> Iterator[None]:
        """Record a wall-clock span around the enclosed work (pid 0)."""
        start = self.clock.now_us()
        try:
            yield
        finally:
            self.trace.complete(
                name=name,
                cat=cat,
                ts_us=start,
                dur_us=self.clock.now_us() - start,
                pid=WALL_PID,
                tid=tid,
                args=args,
            )

    # -- wrap-up -------------------------------------------------------------

    def finalize(self) -> None:
        """Finalize all agents and fold session-level metrics in (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        for agent in self.agents:
            agent.finalize()
        self.metrics.inc(
            "repro_obs_trace_events_total",
            len(self.trace.events),
            help_text="trace events recorded this session",
        )
        self.metrics.inc(
            "repro_obs_trace_dropped_total",
            self.trace.dropped_events,
            help_text="trace events dropped by the bounded buffer",
        )

    def max_dilation_percent(self) -> float:
        """Worst per-rank measurement dilation seen (EXPERIMENTS <3% band)."""
        return max(self.dilation_percents.values(), default=0.0)


_ACTIVE: ObsSession | None = None


@contextmanager
def observing(config: ObsConfig | None = None) -> Iterator[ObsSession]:
    """Activate observability for every :class:`SimProcess` built in scope."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise ConfigError("observing() sessions do not nest")
    session = ObsSession(config)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = None


def active_session() -> ObsSession | None:
    """The in-scope session, if any — the seam driver/merge/codec consult."""
    return _ACTIVE


def maybe_attach(process: "SimProcess") -> None:
    """Called by ``SimProcess.__init__``; attaches only inside a session."""
    if _ACTIVE is not None:
        _ACTIVE.attach(process)
