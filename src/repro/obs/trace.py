"""Chrome trace-event / Perfetto JSON writer.

Spans are recorded as "complete" events (``ph: "X"``) with explicit
timestamps — the recorder never reads a clock itself (R005); callers
supply begin/end microseconds from whichever clock domain owns the
span.  Output is the standard ``{"traceEvents": [...]}`` JSON object
that both ``chrome://tracing`` and https://ui.perfetto.dev load
directly.

Determinism: events serialize in insertion order with ``sort_keys``
inside each object and fixed separators, so the same run produces
byte-identical files.  The buffer is bounded (``max_events``); once
full, further events are dropped and counted in ``dropped_events`` —
a truncated trace plus an honest drop count beats unbounded memory.
Writes go through a ``.tmp`` sibling then ``os.replace`` so a crash
mid-write never leaves a torn file, matching the .rpdb convention.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

DEFAULT_MAX_EVENTS = 200_000


class TraceWriter:
    """Bounded in-memory recorder for Chrome trace-event JSON.

    Emission is thread-safe: the bound check, the append and the drop
    counter update happen under one lock, so concurrent emitters (the
    ingest service's client handlers, pool-merge callbacks) can never
    overshoot ``max_events`` or lose a drop from the count.
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped_events = 0
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------

    def _emit(self, event: dict) -> None:
        with self._lock:
            if len(self.events) >= self.max_events:
                self.dropped_events += 1
                return
            self.events.append(event)

    def complete(
        self,
        name: str,
        cat: str,
        ts_us: float,
        dur_us: float,
        pid: int,
        tid: int,
        args: dict | None = None,
    ) -> None:
        """A span: ``ph "X"`` complete event with explicit begin/duration."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": round(float(ts_us), 3),
            "dur": round(max(float(dur_us), 0.0), 3),
            "pid": int(pid),
            "tid": int(tid),
        }
        if args:
            event["args"] = args
        self._emit(event)

    def instant(
        self,
        name: str,
        cat: str,
        ts_us: float,
        pid: int,
        tid: int,
        args: dict | None = None,
    ) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": round(float(ts_us), 3),
            "pid": int(pid),
            "tid": int(tid),
            "s": "t",
        }
        if args:
            event["args"] = args
        self._emit(event)

    def process_name(self, pid: int, name: str) -> None:
        self._emit(
            {
                "name": "process_name",
                "ph": "M",
                "pid": int(pid),
                "tid": 0,
                "args": {"name": name},
            }
        )

    def thread_name(self, pid: int, tid: int, name: str) -> None:
        self._emit(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": int(pid),
                "tid": int(tid),
                "args": {"name": name},
            }
        )

    # -- output -------------------------------------------------------------

    def categories(self) -> set[str]:
        return {e["cat"] for e in self.events if "cat" in e}

    def to_json(self) -> str:
        # Snapshot under the lock so a concurrent emitter can't mutate the
        # event list while json.dumps iterates it (torn serialization).
        with self._lock:
            events = list(self.events)
            dropped = self.dropped_events
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": dropped},
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def write(self, path: str | Path) -> Path:
        """Atomically write the trace JSON to ``path`` (.tmp + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(self.to_json(), encoding="utf-8")
        os.replace(tmp, path)
        return path
