"""numactl-style process-wide placement policies (paper Table 2).

``numactl --interleave=all`` is the coarse-grained fix the paper tries
first on AMG2006: *every* page the process touches — including
thread-private and serial-phase data — is spread round-robin across all
NUMA domains.  The solver speeds up but initialization slows down, which
motivates the surgical per-allocation libnuma approach.
"""

from __future__ import annotations

from repro.machine.policies import Bind, FirstTouch, Interleave
from repro.sim.process import SimProcess

__all__ = ["numactl_interleave_all", "numactl_membind", "numactl_default"]


def numactl_interleave_all(process: SimProcess) -> None:
    """``numactl --interleave=all <cmd>``: interleave everything."""
    nodes = list(range(process.machine.n_numa_nodes))
    process.aspace.set_default_policy(Interleave(nodes))


def numactl_membind(process: SimProcess, node: int) -> None:
    """``numactl --membind=<node> <cmd>``: pin all pages to one node."""
    process.aspace.set_default_policy(Bind(node))


def numactl_default(process: SimProcess) -> None:
    """Restore the Linux default first-touch policy."""
    process.aspace.set_default_policy(FirstTouch())
