"""libnuma-style per-allocation placement (paper §5.1, §5.3, §5.5).

The surgical fix: apply interleaving only to the variables the profiler
flagged, leaving thread-local and serial data under first-touch.
``numa_alloc_interleaved`` allocates and installs an interleave override
for exactly that address range; ``numa_interleave_range`` retrofits an
override onto an existing allocation before it is first touched.
"""

from __future__ import annotations

from repro.machine.policies import Bind, Interleave
from repro.sim.arrays import SimArray
from repro.sim.runtime import Ctx

__all__ = [
    "numa_alloc_interleaved",
    "numa_alloc_onnode",
    "numa_interleave_range",
    "numa_bind_range",
]


def numa_interleave_range(
    ctx: Ctx, start: int, nbytes: int, nodes: list[int] | None = None
) -> None:
    """Interleave the pages of ``[start, start+nbytes)`` across ``nodes``.

    Must be applied before the range is first touched (like
    ``numa_interleave_memory`` on freshly mmapped memory).
    """
    if nodes is None:
        nodes = list(range(ctx.process.machine.n_numa_nodes))
    ctx.process.aspace.set_range_policy(start, start + nbytes, Interleave(nodes))


def numa_bind_range(ctx: Ctx, start: int, nbytes: int, node: int) -> None:
    """Bind the pages of a range to one node (``numa_tonode_memory``)."""
    ctx.process.aspace.set_range_policy(start, start + nbytes, Bind(node))


def numa_alloc_interleaved(
    ctx: Ctx,
    name: str,
    shape,
    line: int,
    elem: int = 8,
    order: str = "C",
    kind: str = "malloc",
    nodes: list[int] | None = None,
) -> SimArray:
    """Allocate an array whose pages interleave across NUMA nodes.

    Equivalent to ``numa_alloc_interleaved(size)``: the override is
    installed between allocation and first touch, so even calloc's
    zeroing commits pages round-robin.
    """
    # Reserve the address range first (malloc does not touch pages), then
    # install the policy override, then let any zeroing commit placement.
    thread = ctx.thread
    addr = ctx.process.aspace.heap.malloc(elem * _numel(shape))
    nbytes = elem * _numel(shape)
    numa_interleave_range(ctx, addr, nbytes, nodes)
    # Re-enter the allocator path for profiler visibility: hand the block
    # back and allocate it again through the wrapped entry point, now that
    # the policy override covers the range.
    ctx.process.aspace.heap.free(addr)
    if kind == "calloc":
        real = ctx.calloc(nbytes, line, var=name)
    else:
        real = ctx.malloc(nbytes, line, var=name)
    if real != addr:
        # First-fit returns the same block here; if the allocator ever
        # changes, move the override to the actual range.
        ctx.process.aspace.clear_range_policy(addr)
        numa_interleave_range(ctx, real, nbytes, nodes)
    return SimArray(name, real, tuple(shape), elem=elem, order=order)


def numa_alloc_onnode(
    ctx: Ctx,
    name: str,
    shape,
    line: int,
    node: int,
    elem: int = 8,
    order: str = "C",
) -> SimArray:
    """Allocate an array bound to one NUMA node (``numa_alloc_onnode``)."""
    nbytes = elem * _numel(shape)
    addr = ctx.process.aspace.heap.malloc(nbytes)
    ctx.process.aspace.heap.free(addr)
    numa_bind_range(ctx, addr, nbytes, node)
    real = ctx.malloc(nbytes, line, var=name)
    if real != addr:
        ctx.process.aspace.clear_range_policy(addr)
        numa_bind_range(ctx, real, nbytes, node)
    return SimArray(name, real, tuple(shape), elem=elem, order=order)


def _numel(shape) -> int:
    n = 1
    for s in shape:
        n *= int(s)
    return n
