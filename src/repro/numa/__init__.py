"""NUMA policy tools: the numactl / libnuma stand-ins used by the fixes."""

from repro.numa.numactl import numactl_interleave_all, numactl_membind, numactl_default
from repro.numa.libnuma import (
    numa_alloc_interleaved,
    numa_alloc_onnode,
    numa_interleave_range,
    numa_bind_range,
)

__all__ = [
    "numactl_interleave_all",
    "numactl_membind",
    "numactl_default",
    "numa_alloc_interleaved",
    "numa_alloc_onnode",
    "numa_interleave_range",
    "numa_bind_range",
]
