"""The columnar access_run engine vs the scalar oracle.

``repro.machine.vector`` vectorizes ``MemoryHierarchy.access_run`` by
proving, per fixed-stride segment, that every probed line/page is either
all-miss (cold sweep) or all-hit (hot sweep) and applying closed forms;
anything it cannot prove falls back to the PR 1 per-access loop.  The
scalar ``access`` loop is retained as the differential oracle, and this
suite drives randomized and adversarial workloads through both, asserting
bit-identical final ``MachineStats``, total cycles, per-access records,
prefetch-stream state and LRU orders.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tiny_machine
from repro.errors import ConfigError
from repro.machine.presets import Machine, MachineSpec, amd_magnycours
from tests.test_machine_bulk_access import (
    batched_replay,
    hierarchy_state,
    scalar_replay,
)

PAGE = 4096


def _twins(prefetch=True, engine="vector"):
    a = tiny_machine(prefetch=prefetch, engine="python").hierarchy
    b = tiny_machine(prefetch=prefetch, engine=engine).hierarchy
    return a, b


def assert_vector_matches_scalar(runs, prefetch=True):
    a, b = _twins(prefetch)
    stream_a = scalar_replay(a, runs)
    stream_b = batched_replay(b, runs)
    assert stream_a == stream_b
    assert hierarchy_state(a) == hierarchy_state(b)
    assert a.stats() == b.stats()


# ---------------------------------------------------------------------------
# randomized run generator: mixed strides, page-straddling bases,
# load/store mixes, region reuse (hot regime), prefetch on/off


@st.composite
def run_program(draw):
    """A list of runs with deliberate region reuse and nasty bases."""
    # A few shared regions: re-sweeping one that is still resident is
    # what drives the engine's hot (all-hit) regime.
    regions = draw(
        st.lists(
            st.integers(min_value=-PAGE, max_value=1 << 18),
            min_size=1, max_size=3,
        )
    )
    n_runs = draw(st.integers(min_value=1, max_value=6))
    runs = []
    for _ in range(n_runs):
        region = draw(st.sampled_from(regions))
        # Page-straddling offsets: land near boundaries on purpose.
        offset = draw(st.sampled_from([0, 1, 7, PAGE - 1, PAGE - 8, PAGE + 3]))
        stride = draw(
            st.sampled_from(
                [1, 3, 4, 8, 16, 64, 100, 256, 640, PAGE, PAGE + 8,
                 -1, -3, -8, -64, -100, -PAGE, -(PAGE + 8)]
            )
        )
        count = draw(st.integers(min_value=1, max_value=400))
        base = region + offset
        if stride < 0:
            base += count * -stride  # walk down through the region
        runs.append(
            (
                draw(st.integers(min_value=0, max_value=3)),  # hw_tid
                base,
                stride,
                count,
                draw(st.integers(min_value=0, max_value=1)),  # home
                draw(st.booleans()),                          # is_store
            )
        )
    return runs


class TestRandomizedDifferential:
    @settings(max_examples=80, deadline=None)
    @given(runs=run_program(), prefetch=st.booleans())
    def test_stats_and_cycles_bit_identical(self, runs, prefetch):
        a, b = _twins(prefetch)
        total_a = sum(
            sum(h[0] for h in scalar_replay(a, [run])) for run in runs
        )
        total_b = sum(b.access_run(*run[:5], run[5]) for run in runs)
        assert total_a == total_b
        assert a.stats() == b.stats()
        assert hierarchy_state(a) == hierarchy_state(b)

    @settings(max_examples=40, deadline=None)
    @given(runs=run_program())
    def test_records_bit_identical(self, runs):
        assert_vector_matches_scalar(runs)


# ---------------------------------------------------------------------------
# regime edge cases


class TestRegimeEdges:
    def test_hot_resweep_promotes_identically(self):
        # Second sweep of an L1-resident region: all hits, LRU promotion
        # order must match the scalar loop's per-access promotes.
        runs = [
            (0, 0x10000, 8, 64, 0, False),   # 8 lines: fits tiny L1
            (0, 0x10000, 8, 64, 0, False),   # hot resweep
            (0, 0x10000, 8, 64, 0, True),    # hot store resweep
        ]
        assert_vector_matches_scalar(runs)

    def test_prefetch_chain_collision_truncates(self):
        # A unit-line sweep seeds a stream at expected-next-miss; a second
        # sweep whose probed range contains that stream value must split
        # where the prefetch hit lands.
        runs = [
            (0, 0x40000, 64, 10, 0, False),          # seeds stream at +10 lines
            (0, 0x40000 + 64 * 5, 64, 20, 0, False),  # collides mid-run
        ]
        assert_vector_matches_scalar(runs)

    def test_descending_page_crossing_tlb(self):
        # dq = -1: page transitions walk downward; TLB install order and
        # walk charges must match.
        runs = [(0, 6 * PAGE + 11, -8, 5 * PAGE // 8, 0, False)]
        assert_vector_matches_scalar(runs)

    def test_page_multiple_stride(self):
        # stride % page == 0: every access is a page transition.
        runs = [
            (0, 0x100000, PAGE, 120, 0, False),
            (0, 0x100000 + 64, 2 * PAGE, 60, 0, True),
            (0, 0x100000 + 120 * PAGE, -PAGE, 120, 0, False),
        ]
        assert_vector_matches_scalar(runs)

    def test_l2_resident_falls_back_correctly(self):
        # Sweep a region larger than L1 but L2-resident, then resweep:
        # the resweep is neither all-L1-hit nor cold, so the engine must
        # delegate to the python loop — and still match the oracle.
        lines = 12  # > tiny L1 capacity (8 lines), <= L2 (16)
        runs = [
            (0, 0x20000, 64, lines, 0, False),
            (0, 0x20000, 64, lines, 0, False),
        ]
        assert_vector_matches_scalar(runs)

    def test_subline_strides_share_line_lookups(self):
        # Sub-line strides repeat each line several times: repeat credits
        # and the first-probe-per-line structure must agree.
        runs = [
            (0, PAGE - 9, 3, 500, 0, False),   # straddles the page start
            (1, -7, 5, 300, 1, True),          # begins on page -1
        ]
        assert_vector_matches_scalar(runs)

    def test_interleaved_threads_share_l3(self):
        # Different cores' sweeps through one shared region: the second
        # core's L1 is cold but L3 is warm — a mixed regime per core.
        runs = [
            (0, 0x80000, 64, 100, 0, False),
            (2, 0x80000, 64, 100, 0, False),
            (0, 0x80000, 64, 100, 0, False),
        ]
        assert_vector_matches_scalar(runs)

    @pytest.mark.parametrize("prefetch", [True, False])
    def test_magnycours_preset_parity(self, prefetch):
        # The bench machine, mid-size workload, both prefetch settings.
        spec = amd_magnycours().spec
        a = Machine(
            MachineSpec(**{**spec.__dict__, "sim_engine": "python",
                           "prefetch": prefetch})
        ).hierarchy
        b = Machine(
            MachineSpec(**{**spec.__dict__, "sim_engine": "vector",
                           "prefetch": prefetch})
        ).hierarchy
        runs = [
            (0, 1 << 30, 8, 3000, 0, False),
            (1, (1 << 30) + 64, 64, 1500, 1, True),
            (0, 1 << 30, 8, 3000, 0, False),
            (3, (1 << 30) + 9 * PAGE, -8, 2000, 0, False),
        ]
        stream_a = scalar_replay(a, runs)
        stream_b = batched_replay(b, runs)
        assert stream_a == stream_b
        assert a.stats() == b.stats()


# ---------------------------------------------------------------------------
# engine knob


class TestEngineKnob:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            tiny_machine(engine="fortran")

    def test_python_engine_never_vectorizes(self):
        h = tiny_machine(engine="python").hierarchy
        assert h.engine == "python"
        assert h._vector_run is None

    def test_auto_gates_on_run_length(self):
        from repro.machine.vector import VECTOR_MIN_RUN

        h = tiny_machine(engine="auto").hierarchy
        assert h.engine == "auto"
        assert h._vector_min == VECTOR_MIN_RUN
        forced = tiny_machine(engine="vector").hierarchy
        assert forced._vector_min < VECTOR_MIN_RUN

    def test_results_identical_across_knob_values(self):
        runs = [
            (0, 0x5000, 8, 600, 0, False),
            (1, 0x5000, 8, 600, 1, True),
            (0, 0x9000 + 5, 3, 50, 0, False),  # below the auto threshold
        ]
        states = []
        for engine in ("python", "auto", "vector"):
            h = tiny_machine(engine=engine).hierarchy
            total = sum(h.access_run(*run[:5], run[5]) for run in runs)
            states.append((total, hierarchy_state(h)))
        assert states[0] == states[1] == states[2]
