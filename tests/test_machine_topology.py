"""Topology: thread/core/socket/NUMA mapping and hop distances."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.machine.topology import Topology


class TestShape:
    def test_counts(self):
        t = Topology(sockets=4, cores_per_socket=8, smt=4)
        assert t.n_cores == 32
        assert t.n_threads == 128
        assert t.n_numa_nodes == 4

    def test_numa_per_socket(self):
        t = Topology(sockets=4, cores_per_socket=12, smt=1, numa_per_socket=2)
        assert t.n_numa_nodes == 8
        assert t.n_threads == 48

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigError):
            Topology(0, 1)
        with pytest.raises(ConfigError):
            Topology(1, 0)
        with pytest.raises(ConfigError):
            Topology(1, 1, smt=0)

    def test_rejects_indivisible_numa_split(self):
        with pytest.raises(ConfigError):
            Topology(1, 5, numa_per_socket=2)


class TestMapping:
    def test_smt_threads_share_core(self):
        t = Topology(sockets=2, cores_per_socket=2, smt=4)
        assert t.core_of(0) == t.core_of(3) == 0
        assert t.core_of(4) == 1

    def test_socket_and_numa_of_thread(self):
        t = Topology(sockets=2, cores_per_socket=2, smt=2)
        # threads 0-3 -> cores 0,1 -> socket 0; threads 4-7 -> socket 1
        assert t.socket_of(0) == 0
        assert t.socket_of(3) == 0
        assert t.socket_of(4) == 1
        assert t.numa_of(0) == 0
        assert t.numa_of(7) == 1

    def test_magny_cours_two_dies_per_socket(self):
        t = Topology(sockets=4, cores_per_socket=12, numa_per_socket=2)
        # First 6 cores of socket 0 on die/numa 0, next 6 on numa 1.
        assert t.numa_of(0) == 0
        assert t.numa_of(5) == 0
        assert t.numa_of(6) == 1
        assert t.numa_of(11) == 1
        assert t.numa_of(12) == 2  # socket 1, die 0

    def test_threads_on_numa_partition(self):
        t = Topology(sockets=2, cores_per_socket=4, smt=2)
        all_threads = sorted(
            tid for node in range(t.n_numa_nodes) for tid in t.threads_on_numa(node)
        )
        assert all_threads == list(range(t.n_threads))

    def test_thread_record_consistency(self):
        t = Topology(sockets=2, cores_per_socket=2, smt=2, numa_per_socket=1)
        for tid in range(t.n_threads):
            rec = t.thread(tid)
            assert rec.hw_tid == tid
            assert rec.core == t.core_of(tid)
            assert rec.socket == t.socket_of(tid)
            assert rec.numa_node == t.numa_of(tid)


class TestHops:
    def test_same_node_zero(self):
        t = Topology(2, 2)
        assert t.hops(0, 0) == 0

    def test_cross_socket_two(self):
        t = Topology(2, 2)
        assert t.hops(0, 1) == 2

    def test_same_socket_different_die_one(self):
        t = Topology(2, 4, numa_per_socket=2)
        assert t.hops(0, 1) == 1   # dies of socket 0
        assert t.hops(0, 2) == 2   # socket 0 die 0 -> socket 1 die 0

    def test_symmetry(self):
        t = Topology(4, 4, numa_per_socket=2)
        for a in range(t.n_numa_nodes):
            for b in range(t.n_numa_nodes):
                assert t.hops(a, b) == t.hops(b, a)

    def test_socket_of_numa(self):
        t = Topology(3, 4, numa_per_socket=2)
        assert t.socket_of_numa(0) == 0
        assert t.socket_of_numa(1) == 0
        assert t.socket_of_numa(4) == 2
