"""DataCentricProfiler: attribution, thresholds, trampoline, overhead."""

from __future__ import annotations

import pytest

from repro.core.cct import HEAP_MARKER_KEY, KIND_STATIC_VAR
from repro.core.metrics import MetricKind
from repro.core.profiler import DataCentricProfiler, ProfilerConfig
from repro.core.storage import StorageClass
from repro.core.trampoline import TrampolineUnwinder
from repro.errors import ProfileError
from repro.pmu.ibs import IBSEngine
from tests.conftest import MiniProgram


def _run_loads(mini, addrs, line=10, yield_every=32):
    ctx = mini.master_ctx()
    ip = ctx.ip(line)

    def kern():
        for i, a in enumerate(addrs):
            ctx.load_ip(a, ip)
            if i % yield_every == 0:
                yield

    mini.process.run_serial(kern())
    return ctx


class TestAttribution:
    def test_heap_sample_under_alloc_path_and_marker(self, profiled_mini):
        mini, profiler = profiled_mini
        mini.process.pmu = IBSEngine(period=8, seed=1)
        ctx = mini.master_ctx()
        arr = ctx.alloc_array("buf", (8192,), line=20, elem=8)
        _run_loads(mini, [arr.flat_addr(i % arr.size) for i in range(2000)])
        db = profiler.finalize()
        heap = db.threads[mini.process.master.name].cct(StorageClass.HEAP)
        markers = heap.root.find(lambda n: n.key == HEAP_MARKER_KEY)
        assert len(markers) == 1
        assert markers[0].inclusive().samples > 0
        assert profiler.stats.heap_samples > 0

    def test_static_sample_under_variable_dummy_node(self, profiled_mini):
        mini, profiler = profiled_mini
        mini.process.pmu = IBSEngine(period=8, seed=2)
        base = mini.bss.address
        _run_loads(mini, [base + (i * 8) % mini.bss.size for i in range(2000)])
        db = profiler.finalize()
        static = db.threads[mini.process.master.name].cct(StorageClass.STATIC)
        var_nodes = static.root.find(lambda n: n.key[0] == KIND_STATIC_VAR)
        assert [n.key[2] for n in var_nodes] == ["g_table"]
        assert var_nodes[0].inclusive().samples == profiler.stats.static_samples > 0

    def test_stack_data_is_unknown(self, profiled_mini):
        mini, profiler = profiled_mini
        mini.process.pmu = IBSEngine(period=8, seed=3)
        sp = mini.process.master.stack_alloc(1 << 14)
        _run_loads(mini, [sp + (i * 8) % (1 << 14) for i in range(2000)])
        assert profiler.stats.unknown_samples > 0
        assert profiler.stats.heap_samples == 0

    def test_small_alloc_samples_fall_to_unknown(self, profiled_mini):
        mini, profiler = profiled_mini
        mini.process.pmu = IBSEngine(period=8, seed=4)
        ctx = mini.master_ctx()
        addr = ctx.malloc(512, line=20)  # below 4K threshold
        _run_loads(mini, [addr + (i * 8) % 512 for i in range(2000)])
        assert profiler.stats.allocs_skipped_small == 1
        assert profiler.stats.heap_samples == 0
        assert profiler.stats.unknown_samples > 0

    def test_threshold_zero_tracks_small_allocs(self):
        mini = MiniProgram()
        profiler = DataCentricProfiler(
            mini.process, ProfilerConfig(track_threshold=0)
        ).attach()
        mini.process.pmu = IBSEngine(period=8, seed=5)
        ctx = mini.master_ctx()
        addr = ctx.malloc(512, line=20)
        _run_loads(mini, [addr + (i * 8) % 512 for i in range(1000)])
        assert profiler.stats.allocs_tracked == 1
        assert profiler.stats.heap_samples > 0

    def test_free_then_realloc_not_misattributed(self, profiled_mini):
        """Address reuse after free must attribute to the new variable."""
        mini, profiler = profiled_mini
        mini.process.pmu = IBSEngine(period=8, seed=6)
        ctx = mini.master_ctx()
        a = ctx.alloc_array("first", (8192,), line=20)
        ctx.free(a.base, line=21)
        b = ctx.alloc_array("second", (8192,), line=22)
        assert b.base == a.base  # first-fit reuse
        _run_loads(mini, [b.flat_addr(i % b.size) for i in range(2000)])
        view_vars = {
            v.site_label
            for v in [profiler.heap_map.lookup(b.base)]
        }
        assert view_vars == {"second"}

    def test_small_alloc_free_does_not_leak_map(self, profiled_mini):
        mini, profiler = profiled_mini
        ctx = mini.master_ctx()
        addr = ctx.malloc(256, line=20)
        ctx.free(addr, line=21)
        # A tracked allocation can now reuse the address cleanly.
        big = ctx.malloc(8192, line=22)
        assert profiler.heap_map.lookup(big) is not None

    def test_free_of_untracked_raises(self, profiled_mini):
        mini, profiler = profiled_mini
        with pytest.raises(ProfileError):
            profiler.heap_map.untrack(0x123456)

    def test_nonmem_samples_in_own_cct(self, profiled_mini):
        mini, profiler = profiled_mini
        mini.process.pmu = IBSEngine(period=16, seed=7)
        ctx = mini.master_ctx()

        def kern():
            for _ in range(100):
                ctx.compute(10)
                yield

        mini.process.run_serial(kern())
        db = profiler.finalize()
        profile = db.threads[mini.process.master.name]
        assert profile.has_cct(StorageClass.NONMEM)
        assert profile.cct(StorageClass.NONMEM).total(MetricKind.SAMPLES) > 0

    def test_alloc_var_hint_recorded(self, profiled_mini):
        mini, profiler = profiled_mini
        ctx = mini.master_ctx()
        arr = ctx.alloc_array("S_diag_j", (8192,), line=20, kind="calloc")
        var = profiler.heap_map.lookup(arr.base)
        assert var.site_label == "S_diag_j"
        leaf_key, leaf_info = var.alloc_path[-1]
        assert leaf_info["var"] == "S_diag_j"
        assert leaf_info["alloc_kind"] == "calloc"

    def test_alloc_path_contains_call_chain(self, profiled_mini):
        mini, profiler = profiled_mini
        ctx = mini.master_ctx()

        def shim(c, n):
            return c.malloc(n, line=210)

        addr = ctx.call_sync(mini.alloc_shim, 20, shim, 8192)
        var = profiler.heap_map.lookup(addr)
        names = [key[1] for key, _ in var.alloc_path if key[0] == "frame"]
        assert names == ["main", "alloc_shim"]


class TestAllocMerging:
    def test_same_callsite_allocations_merge_into_one_variable(self, profiled_mini):
        """Paper Figure 2: 100 allocations in a loop = one logical variable."""
        mini, profiler = profiled_mini
        mini.process.pmu = IBSEngine(period=8, seed=8)
        ctx = mini.master_ctx()
        arrays = [ctx.alloc_array("v", (1024,), line=20) for _ in range(20)]
        addrs = []
        for i in range(4000):
            arr = arrays[i % len(arrays)]
            addrs.append(arr.flat_addr(i % arr.size))
        _run_loads(mini, addrs)
        db = profiler.finalize()
        heap = db.threads[mini.process.master.name].cct(StorageClass.HEAP)
        markers = heap.root.find(lambda n: n.key == HEAP_MARKER_KEY)
        assert len(markers) == 1  # coalesced online by allocation path

    def test_different_callsites_stay_separate(self, profiled_mini):
        mini, profiler = profiled_mini
        mini.process.pmu = IBSEngine(period=8, seed=9)
        ctx = mini.master_ctx()
        a = ctx.alloc_array("a", (2048,), line=20)
        b = ctx.alloc_array("b", (2048,), line=21)
        addrs = []
        for i in range(4000):
            arr = a if i % 2 else b
            addrs.append(arr.flat_addr(i % arr.size))
        _run_loads(mini, addrs)
        db = profiler.finalize()
        heap = db.threads[mini.process.master.name].cct(StorageClass.HEAP)
        markers = heap.root.find(lambda n: n.key == HEAP_MARKER_KEY)
        assert len(markers) == 2


class TestTrampoline:
    def test_adjacent_allocs_reuse_prefix(self, mini):
        tramp = TrampolineUnwinder()
        ctx = mini.master_ctx()
        th = ctx.thread
        th.push_frame(mini.work, mini.main.ip(10))
        entries1, unwound1 = tramp.unwind(th)
        assert unwound1 == 2
        entries2, unwound2 = tramp.unwind(th)
        assert unwound2 == 0
        assert entries2 == entries1

    def test_lca_after_partial_pop(self, mini):
        tramp = TrampolineUnwinder()
        ctx = mini.master_ctx()
        th = ctx.thread
        th.push_frame(mini.work, mini.main.ip(10))
        tramp.unwind(th)
        th.pop_frame()
        th.push_frame(mini.work, mini.main.ip(11))
        _, unwound = tramp.unwind(th)
        assert unwound == 1  # only the new frame above the common 'main'

    def test_reentered_same_function_is_new_frame(self, mini):
        tramp = TrampolineUnwinder()
        ctx = mini.master_ctx()
        th = ctx.thread
        th.push_frame(mini.work, mini.main.ip(10))
        tramp.unwind(th)
        th.pop_frame()
        th.push_frame(mini.work, mini.main.ip(10))  # same site, new frame
        _, unwound = tramp.unwind(th)
        assert unwound == 1

    def test_invalidate(self, mini):
        tramp = TrampolineUnwinder()
        ctx = mini.master_ctx()
        tramp.unwind(ctx.thread)
        tramp.invalidate()
        _, unwound = tramp.unwind(ctx.thread)
        assert unwound == 1


class TestOverhead:
    def _alloc_heavy(self, config):
        mini = MiniProgram()
        profiler = DataCentricProfiler(mini.process, config).attach()
        ctx = mini.master_ctx()

        def kern():
            blocks = []
            for i in range(300):
                blocks.append(ctx.malloc(8192, line=20))
                if len(blocks) > 8:
                    ctx.free(blocks.pop(0), line=21)
                yield

        mini.process.run_serial(kern())
        return profiler.stats.overhead_cycles

    def test_threshold_reduces_overhead(self):
        tracked = self._alloc_heavy(ProfilerConfig(track_threshold=0))
        skipped = self._alloc_heavy(ProfilerConfig(track_threshold=16384))
        assert skipped < tracked

    def test_fast_context_reduces_overhead(self):
        slow = self._alloc_heavy(ProfilerConfig(fast_context=False, use_trampoline=False))
        fast = self._alloc_heavy(ProfilerConfig(fast_context=True, use_trampoline=False))
        assert fast < slow

    def test_trampoline_reduces_overhead(self):
        off = self._alloc_heavy(ProfilerConfig(use_trampoline=False))
        on = self._alloc_heavy(ProfilerConfig(use_trampoline=True))
        assert on < off

    def test_charge_overhead_flag(self):
        mini_on = MiniProgram()
        prof_on = DataCentricProfiler(
            mini_on.process, ProfilerConfig(charge_overhead=True)
        ).attach()
        mini_off = MiniProgram()
        prof_off = DataCentricProfiler(
            mini_off.process, ProfilerConfig(charge_overhead=False)
        ).attach()
        for m in (mini_on, mini_off):
            ctx = m.master_ctx()
            ctx.malloc(8192, line=20)
        assert prof_on.stats.overhead_cycles == prof_off.stats.overhead_cycles
        assert mini_on.process.master.clock > mini_off.process.master.clock


class TestLifecycle:
    def test_attach_idempotent(self, mini):
        profiler = DataCentricProfiler(mini.process)
        profiler.attach()
        profiler.attach()
        assert mini.process.hooks.count(profiler) == 1

    def test_detach_stops_observation(self, mini):
        profiler = DataCentricProfiler(mini.process).attach()
        profiler.detach()
        ctx = mini.master_ctx()
        ctx.malloc(8192, line=20)
        assert profiler.stats.allocs_seen == 0

    def test_module_loaded_after_attach_is_tracked(self, mini):
        from repro.sim.loader import LoadModule
        from repro.sim.source import SourceFile

        profiler = DataCentricProfiler(mini.process).attach()
        lib = LoadModule("liblate.so")
        src = SourceFile("late.c")
        var = lib.add_static("late_var", 4096, src, 1)
        mini.process.load_module(lib)
        assert profiler.static_map.lookup(var.address) is var

    def test_module_unload_removes_statics(self, mini):
        profiler = DataCentricProfiler(mini.process).attach()
        addr = mini.bss.address
        assert profiler.static_map.lookup(addr) is mini.bss
        mini.process.unload_module(mini.exe)
        assert profiler.static_map.lookup(addr) is None
