"""Golden tests for the static analyzer (repro.staticcheck).

Pins (1) the call-graph shape of every bundled app's static model,
(2) the exact hazard list per app/variant — the paper's NUMA case
studies must be predicted on their `original` variants and the fixed
variants must come back clean — (3) the per-variable context counts
(AMG's seven problem arrays reaching one shared hypre_CAlloc site is
the Figure 5 shape), (4) exact single hits on the seeded static
defects, and (5) the reconciliation loop: H001 predictions confirmed
by dynamic remote-access metrics.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.core.analyzer import Analyzer
from repro.errors import ConfigError
from repro.staticcheck import (
    MIN_SHARE,
    STATIC_APPS,
    analyze_model,
    build_callgraph,
    build_static_model,
    reconcile,
)
from repro.staticcheck.model import CallSite

REPO = Path(__file__).resolve().parents[1]


def _load_defects():
    spec = importlib.util.spec_from_file_location(
        "defect_corpus", REPO / "examples" / "defects.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# app -> variant -> (n_functions, n_edges, n_reachable)
GRAPH_GOLDEN = {
    "nw": {"original": (3, 2, 3), "libnuma": (3, 2, 3)},
    "streamcluster": {"original": (6, 5, 5), "parallel-init": (6, 6, 6)},
    "lulesh": {
        "original": (5, 4, 5),
        "libnuma": (5, 4, 5),
        "both": (5, 4, 5),
    },
    "amg2006": {
        "original": (15, 20, 15),
        "numactl": (15, 20, 15),
        "libnuma": (15, 13, 14),
    },
    "sweep3d": {"original": (3, 2, 3), "transposed": (3, 2, 3)},
}

LULESH_DOMAIN_ARRAYS = (
    "m_x", "m_y", "m_z", "m_xd", "m_yd", "m_zd",
    "m_fx", "m_fy", "m_fz", "m_e", "m_p", "m_q",
)
AMG_PROBLEM_ARRAYS = (
    "A_diag_i", "A_diag_j", "A_diag_data",
    "S_diag_i", "S_diag_j",
    "P_diag_j", "P_diag_data",
)

# app -> variant -> sorted list of (code, variable) the analyzer must
# produce, exactly.
FINDINGS_GOLDEN = {
    "nw": {
        "original": [("H001", "input_itemsets"), ("H001", "referrence")],
        "libnuma": [],
    },
    "streamcluster": {
        # point.p stays below MIN_SHARE by design: the deliberate
        # static miss that the reconciliation pass demonstrates.
        "original": [("H001", "block")],
        "parallel-init": [],
    },
    "lulesh": {
        "original": sorted(("H001", v) for v in LULESH_DOMAIN_ARRAYS),
        "libnuma": [],
        "both": [],
    },
    "amg2006": {
        "original": sorted(
            [("H001", v) for v in AMG_PROBLEM_ARRAYS]
            + [("H003", "Vtemp_data")]
        ),
        "numactl": [("H003", "Vtemp_data")],
        "libnuma": [("H003", "Vtemp_data")],
    },
    "sweep3d": {"original": [], "transposed": []},
}

ALL_CASES = [
    (app, variant)
    for app, variants in GRAPH_GOLDEN.items()
    for variant in variants
]


@pytest.fixture(scope="module")
def reports():
    return {
        (app, variant): analyze_model(build_static_model(app, variant))
        for app, variant in ALL_CASES
    }


class TestCallGraphGolden:
    @pytest.mark.parametrize("app,variant", ALL_CASES)
    def test_graph_shape(self, reports, app, variant):
        report = reports[(app, variant)]
        assert (
            report.n_functions, report.n_edges, report.n_reachable
        ) == GRAPH_GOLDEN[app][variant]
        assert not report.truncated

    def test_registry_lists_all_apps(self):
        assert set(STATIC_APPS) == set(GRAPH_GOLDEN)

    def test_outlined_edges_present(self):
        model = build_static_model("nw")
        graph = build_callgraph(model)
        edges = {(caller, callee) for caller, _line, callee, _kind in graph.edges}
        assert ("_Z7runTestiPPc", "_Z7runTestiPPc$$OL$$0") in edges

    def test_interprocedural_contexts(self):
        # streamcluster's dist() is reached through BOTH pgain regions:
        # the reaching analysis must see two distinct contexts.
        model = build_static_model("streamcluster")
        graph = build_callgraph(model)
        ctxs = graph.contexts_of("_Z4distP5PointS0_i")
        assert len(ctxs) == 2
        hosts = {frame.fn for ctx in ctxs for frame in ctx}
        assert "_Z5pgainlP6Points$$OL$$0" in hosts
        assert "_Z5pgainlP6Points$$OL$$1" in hosts


class _StubModel:
    """Just the three attributes ``build_callgraph`` reads.

    Building a combinatorial call structure through ``StaticModel``
    would need a real ``SimProcess`` with hundreds of functions; the
    enumeration cap is a property of the graph walk alone, so a stub
    keeps the tests on-point.
    """

    def __init__(self, functions, entries, calls):
        self.functions = {fn: None for fn in functions}
        self.entries = list(entries)
        self.calls = list(calls)


def _fanout_model(width: int):
    """main calls f at ``width`` sites; f calls g at ``width`` sites.

    g is reached through ``width**2`` distinct contexts — enough to
    cross any small ``max_contexts`` cap.
    """
    calls = [CallSite("main", line, "f", "call") for line in range(1, width + 1)]
    calls += [CallSite("f", line, "g", "call") for line in range(1, width + 1)]
    return _StubModel(["main", "f", "g"], ["main"], calls)


class TestContextEnumerationCap:
    """The cap truncates with a flag instead of blowing up (callgraph.py)."""

    def test_truncated_false_below_cap(self):
        graph = build_callgraph(_fanout_model(3))
        assert not graph.truncated
        assert len(graph.contexts_of("g")) == 9

    def test_max_contexts_caps_bucket_and_sets_flag(self):
        graph = build_callgraph(_fanout_model(10), max_contexts=16)
        assert graph.truncated
        assert len(graph.contexts_of("g")) == 16
        # Other buckets stay complete: only g crossed the cap.
        assert len(graph.contexts_of("f")) == 10

    def test_capped_enumeration_is_a_prefix_of_the_full_one(self):
        # Determinism pin: the cap must keep the FIRST max_contexts
        # contexts of the full enumeration, not an arbitrary subset.
        full = build_callgraph(_fanout_model(10)).contexts_of("g")
        capped = build_callgraph(_fanout_model(10), max_contexts=16)
        assert capped.contexts_of("g") == full[:16]

    def test_capped_contexts_sorted_and_reproducible(self):
        # Call sites are declared in ascending line order, so the DFS
        # emits contexts in sorted (caller, line)-tuple order; repeated
        # builds must agree exactly.
        first = build_callgraph(_fanout_model(10), max_contexts=16)
        second = build_callgraph(_fanout_model(10), max_contexts=16)
        ctxs = first.contexts_of("g")
        assert ctxs == second.contexts_of("g")
        keys = [tuple((fr.fn, fr.line) for fr in ctx) for ctx in ctxs]
        assert keys == sorted(keys)

    def test_max_depth_stops_deep_chains(self):
        fns = [f"f{i}" for i in range(12)]
        calls = [
            CallSite(fns[i], 1, fns[i + 1], "call")
            for i in range(len(fns) - 1)
        ]
        model = _StubModel(fns, [fns[0]], calls)
        graph = build_callgraph(model, max_depth=4)
        assert graph.truncated
        # Functions within the depth budget keep their one context;
        # anything deeper is simply never visited.
        assert graph.reachable("f4")
        assert not graph.reachable("f5")
        full = build_callgraph(model)
        assert not full.truncated
        assert all(full.reachable(fn) for fn in fns)

    def test_cycle_cut_flags_truncation_but_terminates(self):
        calls = [
            CallSite("main", 1, "f", "call"),
            CallSite("f", 2, "g", "call"),
            CallSite("g", 3, "f", "call"),  # back edge
        ]
        graph = build_callgraph(_StubModel(["main", "f", "g"], ["main"], calls))
        assert graph.truncated
        assert len(graph.contexts_of("f")) == 1
        assert len(graph.contexts_of("g")) == 1

    def test_bundled_models_fit_comfortably_under_the_defaults(self, reports):
        # The GRAPH_GOLDEN pin already asserts not-truncated per app;
        # this pins the headroom so a default-cap change cannot silently
        # start truncating real models.
        for report in reports.values():
            assert not report.truncated


class TestFindingsGolden:
    @pytest.mark.parametrize("app,variant", ALL_CASES)
    def test_exact_findings(self, reports, app, variant):
        report = reports[(app, variant)]
        got = sorted((f.code, f.variable) for f in report.findings)
        assert got == FINDINGS_GOLDEN[app][variant]

    @pytest.mark.parametrize("app,variant", ALL_CASES)
    def test_each_defect_flagged_at_most_once(self, reports, app, variant):
        report = reports[(app, variant)]
        keys = [(f.code, f.variable) for f in report.findings]
        assert len(keys) == len(set(keys))

    def test_zero_false_placement_findings_on_clean_variants(self, reports):
        clean = [
            ("nw", "libnuma"), ("streamcluster", "parallel-init"),
            ("lulesh", "libnuma"), ("lulesh", "both"),
            ("amg2006", "numactl"), ("amg2006", "libnuma"),
            ("sweep3d", "original"), ("sweep3d", "transposed"),
        ]
        for key in clean:
            codes = reports[key].codes
            assert "H001" not in codes and "H002" not in codes, key

    def test_h001_carries_variable_site_and_context(self, reports):
        finding = reports[("nw", "original")].finding_for("referrence")
        assert finding.code == "H001"
        assert finding.site == "main:50"
        assert finding.contexts == ("main:45",)
        assert "NUMA" in finding.message or "nodes" in finding.message

    def test_amg_h003_names_the_region_alloc(self, reports):
        finding = reports[("amg2006", "original")].finding_for("Vtemp_data")
        assert finding.code == "H003"
        assert finding.site == "hypre_BoomerAMGSolve$$OL$$0:465"


class TestVariableSummaries:
    def test_amg_problem_arrays_share_alloc_site_contexts(self, reports):
        # Seven arrays allocated through one hypre_CAlloc call site,
        # reached by seven distinct contexts — Figure 5's shape.
        report = reports[("amg2006", "original")]
        for var in report.variables:
            if var.name in AMG_PROBLEM_ARRAYS:
                assert var.n_alloc_contexts == 7, var.name

    def test_amg_libnuma_flattens_the_alloc_contexts(self, reports):
        report = reports[("amg2006", "libnuma")]
        for var in report.variables:
            if var.name in AMG_PROBLEM_ARRAYS:
                assert var.n_alloc_contexts == 1, var.name

    def test_nw_context_counts(self, reports):
        by_name = {v.name: v for v in reports[("nw", "original")].variables}
        assert by_name["input_itemsets"].n_access_contexts == 3
        assert by_name["referrence"].n_access_contexts == 2

    def test_static_storage_size_comes_from_the_image(self, reports):
        by_name = {v.name: v for v in reports[("lulesh", "original")].variables}
        assert by_name["f_elem"].storage == "static"
        assert by_name["f_elem"].nbytes == 393216

    def test_variables_sorted_by_share(self, reports):
        for report in reports.values():
            shares = [v.share for v in report.variables]
            assert shares == sorted(shares, reverse=True)


class TestStaticSeeds:
    @pytest.fixture(scope="class")
    def corpus(self):
        return _load_defects()

    def test_every_seed_hits_exactly_its_expected_hazard(self, corpus):
        for name, builder in corpus.STATIC_SEEDS.items():
            report = analyze_model(builder())
            codes, variable = corpus.STATIC_EXPECTED[name]
            got = tuple(f.code for f in report.findings)
            assert got == codes, name
            if variable is not None:
                assert report.findings[0].variable == variable, name

    def test_seed_sites(self, corpus):
        report = analyze_model(corpus.STATIC_SEEDS["master_first_touch"]())
        f = report.finding_for("table")
        assert (f.fn, f.line) == ("main", 10)  # the calloc commits placement
        report = analyze_model(corpus.STATIC_SEEDS["parallel_no_free"]())
        f = report.finding_for("stream")
        assert (f.fn, f.line) == ("main$$OL$$1", 105)
        report = analyze_model(corpus.STATIC_SEEDS["dead_alloc"]())
        f = report.finding_for("ghost")
        assert (f.fn, f.line) == ("orphan_init", 205)

    def test_corpus_self_check_is_green(self, corpus, capsys):
        assert corpus.main() == 0


class TestReconcile:
    def test_defect_h001_confirmed_by_dynamic_profile(self):
        corpus = _load_defects()
        report = analyze_model(corpus.STATIC_SEEDS["master_first_touch"]())
        db = corpus.STATIC_PROFILE_RUNNERS["master_first_touch"]()
        exp = Analyzer("defects").add(db).analyze()
        rec = reconcile(report, exp)
        h001 = [v for v in rec.verdicts if v.code == "H001"]
        assert h001 and all(v.label == "confirmed" for v in h001)
        assert rec.precision == 1.0 and rec.recall == 1.0
        assert rec.n_missed == 0

    def test_nw_h001_predictions_confirmed(self):
        from repro.apps.nw import run_rank

        report = analyze_model(build_static_model("nw"))
        exp = Analyzer("nw").add(run_rank(0, 1)).analyze()
        rec = reconcile(report, exp)
        confirmed = {v.variable for v in rec.with_label("confirmed")}
        assert confirmed == {"referrence", "input_itemsets"}
        assert rec.precision == 1.0 and rec.recall == 1.0

    def test_streamcluster_below_threshold_var_is_not_predicted(self):
        # point.p sits below the static share threshold by design: the
        # documented boundary of structure-only analysis (its dynamic
        # samples, when present, are what reconciliation would surface).
        report = analyze_model(build_static_model("streamcluster"))
        assert report.finding_for("point.p") is None
        assert any(v.name == "point.p" for v in report.variables)

    def test_unpredicted_remote_dominant_var_reported_missed(self):
        # Strip the predictions: the remote-dominant variable must then
        # surface as a miss, and recall must drop to zero.
        corpus = _load_defects()
        report = analyze_model(corpus.STATIC_SEEDS["master_first_touch"]())
        report.findings.clear()
        db = corpus.STATIC_PROFILE_RUNNERS["master_first_touch"]()
        exp = Analyzer("defects").add(db).analyze()
        rec = reconcile(report, exp)
        missed = rec.with_label("missed")
        assert [v.variable for v in missed] == ["table"]
        assert rec.recall == 0.0


class TestModelValidation:
    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError):
            build_static_model("nope")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_static_model("nw", "nope")

    def test_site_outside_function_span_rejected(self):
        model = build_static_model("nw")
        with pytest.raises(ConfigError):
            model.access("main", 999, "referrence", weight=1.0)

    def test_unknown_function_rejected(self):
        model = build_static_model("nw")
        with pytest.raises(ConfigError):
            model.alloc("nofn", 1, "x", 16)

    def test_region_host_mismatch_rejected(self):
        model = build_static_model("nw")
        with pytest.raises(ConfigError):
            model.parallel_region("main", 50, "_Z7runTestiPPc$$OL$$0", 4)

    def test_min_share_threshold_matches_guidance(self):
        from repro.core.guidance import _MIN_SHARE

        assert MIN_SHARE == _MIN_SHARE
