"""Case-study apps: fast scaled-down runs asserting each pathology.

These use reduced thread/rank counts so the whole file runs in seconds;
the full-scale paper configurations are exercised by the benchmark
harness (`benchmarks/`).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.apps import amg2006, lulesh, nw, streamcluster, sweep3d
from repro.core.metrics import MetricKind
from repro.core.storage import StorageClass


# ---------------------------------------------------------------- streamcluster


@pytest.fixture(scope="module")
def sc_runs():
    cfg = dict(npoints=1024, n_threads=64)
    orig = streamcluster.run(streamcluster.Config(variant="original", **cfg))
    opt = streamcluster.run(streamcluster.Config(variant="parallel-init", **cfg))
    prof = streamcluster.run(
        streamcluster.Config(variant="original", profile=True, pmu_period=16, **cfg)
    )
    return orig, opt, prof


class TestStreamcluster:
    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            streamcluster.run(streamcluster.Config(variant="nope"))

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            streamcluster.run(streamcluster.Config(n_threads=4096))

    def test_original_concentrates_pages_on_master_node(self, sc_runs):
        orig, opt, _ = sc_runs
        mm_orig = orig.machines[0].hierarchy.memmgr
        assert mm_orig.dram_accesses[0] > 0
        assert sum(mm_orig.dram_accesses[1:]) < mm_orig.dram_accesses[0] * 0.05

    def test_parallel_init_spreads_traffic(self, sc_runs):
        orig, opt, _ = sc_runs
        # With 64 of 128 HW threads participating, first touch spreads
        # pages over the participating sockets only — still far more even
        # than the all-on-master original.
        assert opt.machines[0].hierarchy.memmgr.imbalance() < (
            orig.machines[0].hierarchy.memmgr.imbalance() * 0.7
        )

    def test_fix_speeds_up(self, sc_runs):
        orig, opt, _ = sc_runs
        assert opt.speedup_over(orig) > 1.05

    def test_block_dominates_remote_accesses(self, sc_runs):
        _, _, prof = sc_runs
        exp = prof.experiment
        assert exp.storage_share(StorageClass.HEAP, MetricKind.REMOTE) > 0.8
        assert exp.variable_share("block", MetricKind.REMOTE) > 0.6
        top = exp.top_variables(MetricKind.REMOTE, 1)[0]
        assert top.name == "block"

    def test_block_has_two_access_contexts(self, sc_runs):
        _, _, prof = sc_runs
        var = prof.experiment.variable("block", MetricKind.REMOTE)
        assert len(var.accesses) >= 2
        # Both contexts resolve to the dist() source line of the paper.
        assert all("175" in a.label for a in var.accesses[:2])

    def test_profiling_overhead_moderate(self, sc_runs):
        orig, _, prof = sc_runs
        assert prof.overhead_vs(orig) < 0.15

    def test_phases_recorded(self, sc_runs):
        orig, _, _ = sc_runs
        assert set(orig.phase_seconds) == {"init", "cluster"}


# ------------------------------------------------------------------------- nw


@pytest.fixture(scope="module")
def nw_runs():
    cfg = dict(n=128, n_threads=64)
    orig = nw.run(nw.Config(variant="original", **cfg))
    opt = nw.run(nw.Config(variant="libnuma", **cfg))
    prof = nw.run(nw.Config(variant="original", profile=True, pmu_period=16, **cfg))
    return orig, opt, prof


class TestNW:
    def test_libnuma_speeds_up(self, nw_runs):
        # The scaled-down matrix shrinks the gain (the paper-scale config
        # in the benchmarks shows ~1.4x); here we only assert direction.
        orig, opt, _ = nw_runs
        assert opt.speedup_over(orig) > 1.02

    def test_interleave_spreads_pages(self, nw_runs):
        orig, opt, _ = nw_runs
        assert opt.machines[0].hierarchy.memmgr.imbalance() < (
            orig.machines[0].hierarchy.memmgr.imbalance() * 0.7
        )

    def test_two_hot_variables(self, nw_runs):
        _, _, prof = nw_runs
        exp = prof.experiment
        tops = exp.top_variables(MetricKind.REMOTE, 2)
        assert {v.name for v in tops} == {"referrence", "input_itemsets"}

    def test_referrence_leads_itemsets(self, nw_runs):
        _, _, prof = nw_runs
        exp = prof.experiment
        ref = exp.variable_share("referrence", MetricKind.REMOTE)
        items = exp.variable_share("input_itemsets", MetricKind.REMOTE)
        assert ref > items > 0

    def test_heap_dominates(self, nw_runs):
        _, _, prof = nw_runs
        assert prof.experiment.storage_share(StorageClass.HEAP, MetricKind.REMOTE) > 0.8

    def test_accesses_in_outlined_region(self, nw_runs):
        _, _, prof = nw_runs
        var = prof.experiment.variable("referrence", MetricKind.REMOTE)
        assert var.alloc_kind == "malloc"
        assert var.accesses
        assert any("163" in a.label for a in var.accesses)

    def test_batched_worker_bit_identical_to_scalar_twin(self):
        # The wavefront worker batches its fixed-stride row sweeps through
        # load_run/store_run; cfg.scalar_worker replays the identical
        # access order through scalar load_ip/store_ip.  Everything
        # observable must match bit-for-bit.
        cfg = nw.Config(n=48, block=8, n_threads=32, profile=True, pmu_period=24)
        runs = [nw.run(cfg), nw.run(replace(cfg, scalar_worker=True))]

        def state(res):
            h = res.machines[0].hierarchy
            return (
                res.elapsed_cycles,
                list(h.level_counts),
                h.load_count,
                h.store_count,
                [(t.hits, t.misses) for t in h.tlb],
                h.stats(),
                {
                    name: res.experiment.variable_share(name, MetricKind.REMOTE)
                    for name in ("referrence", "input_itemsets")
                },
            )

        assert state(runs[0]) == state(runs[1])


# --------------------------------------------------------------------- sweep3d


@pytest.fixture(scope="module")
def sweep_runs():
    cfg = dict(n_ranks=2)
    orig = sweep3d.run(sweep3d.Config(variant="original", **cfg))
    opt = sweep3d.run(sweep3d.Config(variant="transposed", **cfg))
    prof = sweep3d.run(sweep3d.Config(variant="original", profile=True, pmu_period=24, **cfg))
    return orig, opt, prof


class TestSweep3D:
    def test_transpose_speeds_up(self, sweep_runs):
        orig, opt, _ = sweep_runs
        assert opt.speedup_over(orig) > 1.05

    def test_no_numa_problem_in_pure_mpi(self, sweep_runs):
        """Ranks are co-located with their data (paper §5.2)."""
        orig, _, _ = sweep_runs
        mm = orig.machines[0].hierarchy.memmgr
        assert mm.total_remote_accesses() == 0

    def test_three_hot_arrays(self, sweep_runs):
        _, _, prof = sweep_runs
        exp = prof.experiment
        names = [v.name for v in exp.top_variables(MetricKind.LATENCY, 3)]
        assert set(names) == {"Flux", "Src", "Face"}

    def test_flux_and_src_dominate(self, sweep_runs):
        _, _, prof = sweep_runs
        exp = prof.experiment
        flux = exp.variable_share("Flux", MetricKind.LATENCY)
        src = exp.variable_share("Src", MetricKind.LATENCY)
        face = exp.variable_share("Face", MetricKind.LATENCY)
        assert flux > face
        assert src > face
        assert flux + src + face > 0.75

    def test_heap_latency_dominates(self, sweep_runs):
        _, _, prof = sweep_runs
        assert prof.experiment.storage_share(StorageClass.HEAP, MetricKind.LATENCY) > 0.85

    def test_deep_call_chain_access(self, sweep_runs):
        """Figure 7: the hot Flux access sits under MAIN__ -> inner_ -> sweep_."""
        _, _, prof = sweep_runs
        var = prof.experiment.variable("Flux", MetricKind.LATENCY)
        hot = var.accesses[0]
        assert "480" in hot.label

    def test_rank_profiles_merged(self, sweep_runs):
        _, _, prof = sweep_runs
        assert len(prof.profilers) == 2
        assert prof.experiment.merge_stats.profiles_in == 2

    def test_transposed_reduces_total_latency_per_access(self, sweep_runs):
        orig, opt, _ = sweep_runs
        h_orig = orig.machines[0].hierarchy
        h_opt = opt.machines[0].hierarchy
        # Same access count, cheaper hierarchy response.
        assert h_opt.total_accesses() == h_orig.total_accesses()
        assert h_opt.prefetch_hits > h_orig.prefetch_hits


# ---------------------------------------------------------------------- lulesh


@pytest.fixture(scope="module")
def lulesh_runs():
    cfg = dict(nelem=2048, nnode=1024, n_threads=24)
    runs = {
        v: lulesh.run(lulesh.Config(variant=v, **cfg)) for v in lulesh.VARIANTS
    }
    prof = lulesh.run(lulesh.Config(variant="original", profile=True, pmu_period=32, **cfg))
    return runs, prof


class TestLULESH:
    def test_libnuma_speeds_up(self, lulesh_runs):
        runs, _ = lulesh_runs
        assert runs["libnuma"].speedup_over(runs["original"]) > 1.03

    def test_transpose_speeds_up_modestly(self, lulesh_runs):
        runs, _ = lulesh_runs
        gain = runs["transpose"].speedup_over(runs["original"])
        assert 1.0 < gain < 1.2

    def test_both_fixes_compose(self, lulesh_runs):
        runs, _ = lulesh_runs
        assert runs["both"].elapsed_cycles < runs["libnuma"].elapsed_cycles
        assert runs["both"].elapsed_cycles < runs["transpose"].elapsed_cycles

    def test_heap_latency_dominates_with_static_minority(self, lulesh_runs):
        _, prof = lulesh_runs
        exp = prof.experiment
        heap = exp.storage_share(StorageClass.HEAP, MetricKind.LATENCY)
        static = exp.storage_share(StorageClass.STATIC, MetricKind.LATENCY)
        assert heap > static > 0

    def test_f_elem_is_hot_static(self, lulesh_runs):
        _, prof = lulesh_runs
        exp = prof.experiment
        statics = exp.top_variables(MetricKind.LATENCY, 3, storage=StorageClass.STATIC)
        assert statics
        assert statics[0].name == "f_elem"

    def test_many_heap_arrays_share_latency(self, lulesh_runs):
        """Figure 8: several arrays each carry a few percent, none dominates."""
        _, prof = lulesh_runs
        exp = prof.experiment
        tops = exp.top_variables(MetricKind.LATENCY, 7, storage=StorageClass.HEAP)
        assert len(tops) == 7
        assert tops[0].share < 0.30

    def test_domain_arrays_allocated_by_master(self, lulesh_runs):
        _, prof = lulesh_runs
        exp = prof.experiment
        tops = exp.top_variables(MetricKind.LATENCY, 5, storage=StorageClass.HEAP)
        # Workers on other NUMA domains fetch the master-homed arrays
        # remotely for the most part (of the accesses that reach DRAM).
        avg_remote = sum(v.dram_remote_fraction for v in tops) / len(tops)
        assert avg_remote > 0.4


# --------------------------------------------------------------------- amg2006

# smt=1 keeps 32 threads spread over all four sockets of the node.
AMG_CFG = dict(n_ranks=2, n_threads=32, rows=2048, solve_iterations=2,
               churn_allocs=2000, setup_compute=400_000,
               machine_factory=lambda: __import__("repro").power7_node(smt=1))


@pytest.fixture(scope="module")
def amg_runs():
    runs = {
        v: amg2006.run(amg2006.Config(variant=v, **AMG_CFG))
        for v in amg2006.VARIANTS
    }
    prof = amg2006.run(
        amg2006.Config(variant="original", profile=True, pmu_period=24, **AMG_CFG)
    )
    return runs, prof


class TestAMG2006:
    def test_three_phases(self, amg_runs):
        runs, _ = amg_runs
        assert set(runs["original"].phase_seconds) == {"init", "setup", "solve"}

    def test_numactl_slows_init(self, amg_runs):
        runs, _ = amg_runs
        init_orig = runs["original"].phase_seconds["init"]
        init_numactl = runs["numactl"].phase_seconds["init"]
        assert init_numactl > init_orig * 1.3

    def test_libnuma_keeps_init_cheap(self, amg_runs):
        runs, _ = amg_runs
        init_orig = runs["original"].phase_seconds["init"]
        init_libnuma = runs["libnuma"].phase_seconds["init"]
        assert init_libnuma < init_orig * 1.2

    def test_both_policies_speed_up_solve(self, amg_runs):
        runs, _ = amg_runs
        solve = {v: runs[v].phase_seconds["solve"] for v in amg2006.VARIANTS}
        assert solve["numactl"] < solve["original"]
        assert solve["libnuma"] < solve["original"]

    def test_libnuma_solve_beats_numactl(self, amg_runs):
        runs, _ = amg_runs
        assert (
            runs["libnuma"].phase_seconds["solve"]
            < runs["numactl"].phase_seconds["solve"]
        )

    def test_setup_insensitive_to_policy(self, amg_runs):
        runs, _ = amg_runs
        setups = [runs[v].phase_seconds["setup"] for v in amg2006.VARIANTS]
        assert max(setups) / min(setups) < 1.1

    def test_s_diag_j_is_among_hottest_variables(self, amg_runs):
        # At this scaled config S_diag_j and A_diag_j trade places; the
        # paper-scale benchmark asserts the strict #1 ranking.
        _, prof = amg_runs
        exp = prof.experiment
        tops = [v.name for v in exp.top_variables(MetricKind.REMOTE, 2)]
        assert "S_diag_j" in tops

    def test_s_diag_j_two_contexts_skewed(self, amg_runs):
        _, prof = amg_runs
        var = prof.experiment.variable("S_diag_j", MetricKind.REMOTE)
        assert len(var.accesses) >= 2
        assert var.accesses[0].value > var.accesses[1].value

    def test_bottom_up_lists_multiple_calloc_sites(self, amg_runs):
        _, prof = amg_runs
        bu = prof.experiment.bottom_up(MetricKind.REMOTE)
        hypre_sites = [s for s in bu.sites if "hypre_CAlloc" in s.label]
        assert len(hypre_sites) >= 5
        names = {n for s in hypre_sites for n in s.names}
        assert "S_diag_j" in names

    def test_alloc_paths_include_hypre_calloc_frame(self, amg_runs):
        _, prof = amg_runs
        var = prof.experiment.variable("S_diag_j", MetricKind.REMOTE)
        assert any("hypre_CAlloc" in frame for frame in var.alloc_path)

    def test_rank_profiles_collected(self, amg_runs):
        _, prof = amg_runs
        assert len(prof.profilers) == 2
