"""Address spaces: segments, page placement, policy overrides, migration."""

from __future__ import annotations

import pytest

from repro.errors import AddressError
from repro.machine.memory import MemoryManager
from repro.machine.policies import Bind, FirstTouch, Interleave
from repro.sim.address_space import AddressSpace


@pytest.fixture
def aspace():
    return AddressSpace(asid=0, memmgr=MemoryManager(4), page_bits=12)


class TestSegments:
    def test_disjoint_slabs_per_asid(self):
        mm = MemoryManager(2)
        a = AddressSpace(0, mm)
        b = AddressSpace(1, mm)
        assert a.base != b.base
        assert abs(a.base - b.base) >= 1 << 40

    def test_text_static_heap_stack_disjoint(self, aspace):
        text = aspace.reserve_text(0x2000)
        static = aspace.reserve_static(0x2000)
        heap = aspace.heap.base
        stack = aspace.stack_base(0)
        regions = sorted([text, static, heap, stack])
        assert len(set(regions)) == 4
        assert text < static < heap < stack

    def test_text_reservations_do_not_overlap(self, aspace):
        a = aspace.reserve_text(0x1800)
        b = aspace.reserve_text(0x10)
        assert b >= a + 0x1800

    def test_thread_stacks_disjoint(self, aspace):
        assert aspace.stack_base(1) - aspace.stack_base(0) >= 1 << 20


class TestFirstTouch:
    def test_page_placed_on_toucher_node(self, aspace):
        addr = aspace.heap.base
        assert aspace.home_of(addr, toucher_node=2) == 2
        # Sticky: later touch from another node does not move it.
        assert aspace.home_of(addr, toucher_node=0) == 2

    def test_same_page_one_placement(self, aspace):
        base = aspace.heap.base
        aspace.home_of(base, 1)
        aspace.home_of(base + 100, 3)  # same 4K page
        assert aspace.touched_pages() == 1
        assert aspace.pages_by_node(4) == [0, 1, 0, 0]

    def test_distinct_pages_placed_separately(self, aspace):
        base = aspace.heap.base
        assert aspace.home_of(base, 0) == 0
        assert aspace.home_of(base + 4096, 3) == 3

    def test_memmgr_accounting(self, aspace):
        aspace.home_of(aspace.heap.base, 1)
        assert aspace.memmgr.pages_on_node[1] == 1

    def test_page_home_if_touched(self, aspace):
        base = aspace.heap.base
        assert aspace.page_home_if_touched(base) is None
        aspace.home_of(base, 2)
        assert aspace.page_home_if_touched(base) == 2


class TestPolicies:
    def test_default_policy_interleave(self, aspace):
        aspace.set_default_policy(Interleave([0, 1, 2, 3]))
        base = aspace.heap.base
        homes = [aspace.home_of(base + i * 4096, 0) for i in range(8)]
        assert sorted(set(homes)) == [0, 1, 2, 3]
        # position-keyed: consecutive pages rotate
        assert homes[:4] != [homes[0]] * 4

    def test_range_override_beats_default(self, aspace):
        base = aspace.heap.base
        aspace.set_range_policy(base, base + 4096 * 4, Bind(3))
        inside = aspace.home_of(base, toucher_node=0)
        outside = aspace.home_of(base + 4096 * 8, toucher_node=0)
        assert inside == 3
        assert outside == 0  # first-touch default

    def test_policy_for(self, aspace):
        base = aspace.heap.base
        aspace.set_range_policy(base, base + 4096, Bind(2))
        assert isinstance(aspace.policy_for(base), Bind)
        assert isinstance(aspace.policy_for(base + 4096), FirstTouch)

    def test_clear_range_policy(self, aspace):
        base = aspace.heap.base
        aspace.set_range_policy(base, base + 4096, Bind(2))
        aspace.clear_range_policy(base)
        assert isinstance(aspace.policy_for(base), FirstTouch)


class TestMigration:
    def test_migrate_moves_touched_pages(self, aspace):
        base = aspace.heap.base
        for i in range(4):
            aspace.home_of(base + i * 4096, 0)
        moved = aspace.migrate_range(base, base + 4 * 4096, node=2)
        assert moved == 4
        assert aspace.pages_by_node(4) == [0, 0, 4, 0]
        assert aspace.home_of(base, 0) == 2

    def test_migrate_skips_untouched_and_already_there(self, aspace):
        base = aspace.heap.base
        aspace.home_of(base, 2)
        moved = aspace.migrate_range(base, base + 8 * 4096, node=2)
        assert moved == 0

    def test_migrate_empty_range_raises(self, aspace):
        with pytest.raises(AddressError):
            aspace.migrate_range(100, 100, node=0)
