"""Heap allocator: first-fit, coalescing, reuse, invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.sim.malloc import HeapAllocator

BASE = 0x1000


@pytest.fixture
def heap():
    return HeapAllocator(BASE, 1 << 20)


class TestBasics:
    def test_first_allocation_at_base(self, heap):
        assert heap.malloc(64) == BASE

    def test_alignment_16(self, heap):
        a = heap.malloc(3)
        b = heap.malloc(3)
        assert a % 16 == 0 and b % 16 == 0
        assert b - a == 16

    def test_sequential_allocations_disjoint(self, heap):
        blocks = [(heap.malloc(100), 100) for _ in range(10)]
        for i, (a, _) in enumerate(blocks):
            for b, _ in blocks[i + 1 :]:
                assert abs(a - b) >= 100

    def test_free_and_reuse_first_fit(self, heap):
        a = heap.malloc(64)
        heap.malloc(64)
        heap.free(a)
        assert heap.malloc(64) == a  # first fit reuses the hole

    def test_smaller_request_splits_hole(self, heap):
        a = heap.malloc(256)
        heap.malloc(16)
        heap.free(a)
        x = heap.malloc(64)
        y = heap.malloc(64)
        assert x == a
        assert y == a + 64

    def test_size_of(self, heap):
        a = heap.malloc(100)  # rounds to 112
        assert heap.size_of(a) == 112
        assert heap.size_of(a + 1) is None

    def test_live_blocks(self, heap):
        a = heap.malloc(32)
        b = heap.malloc(32)
        heap.free(a)
        assert set(heap.live_blocks()) == {b}


class TestErrors:
    def test_nonpositive_malloc(self, heap):
        with pytest.raises(AllocationError):
            heap.malloc(0)
        with pytest.raises(AllocationError):
            heap.malloc(-5)

    def test_double_free(self, heap):
        a = heap.malloc(32)
        heap.free(a)
        with pytest.raises(AllocationError):
            heap.free(a)

    def test_free_wild_pointer(self, heap):
        with pytest.raises(AllocationError):
            heap.free(0xDEAD)

    def test_out_of_memory(self):
        h = HeapAllocator(0, 256)
        h.malloc(200)
        with pytest.raises(AllocationError):
            h.malloc(100)

    def test_zero_capacity_rejected(self):
        with pytest.raises(AllocationError):
            HeapAllocator(0, 0)


class TestCoalescing:
    def test_free_all_restores_single_hole(self, heap):
        blocks = [heap.malloc(64) for _ in range(8)]
        for b in blocks:
            heap.free(b)
        heap.check_invariants()
        # After full coalescing a capacity-sized block fits again.
        assert heap.malloc(heap.capacity) == BASE

    def test_coalesce_with_predecessor_and_successor(self, heap):
        a = heap.malloc(64)
        b = heap.malloc(64)
        c = heap.malloc(64)
        heap.malloc(64)  # guard
        heap.free(a)
        heap.free(c)
        heap.free(b)  # merges the three into one hole
        heap.check_invariants()
        assert heap.malloc(192) == a

    def test_accounting(self, heap):
        a = heap.malloc(100)
        heap.malloc(50)
        assert heap.alloc_count == 2
        assert heap.live_bytes == 112 + 64
        assert heap.peak_bytes == heap.live_bytes
        heap.free(a)
        assert heap.free_count == 1
        assert heap.live_bytes == 64
        assert heap.peak_bytes == 112 + 64


class TestRealloc:
    def test_realloc_moves_block(self, heap):
        a = heap.malloc(64)
        heap.malloc(16)  # prevent in-place growth
        b = heap.realloc(a, 256)
        assert heap.size_of(a) is None
        assert heap.size_of(b) == 256

    def test_realloc_null_behaves_like_malloc(self, heap):
        a = heap.realloc(0, 64)
        assert heap.size_of(a) == 64

    def test_realloc_of_last_block_reuses_address(self, heap):
        # Growing the last block coalesces its freed space with the
        # wilderness, so first-fit hands the same address back (libc's
        # grow-in-place).  Regression: realloc used to malloc before
        # freeing, which made in-place growth impossible.
        heap.malloc(64)  # earlier unrelated block
        a = heap.malloc(64)
        b = heap.realloc(a, 4096)
        assert b == a
        assert heap.size_of(a) == 4096
        heap.check_invariants()

    def test_realloc_shrink_in_place(self, heap):
        a = heap.malloc(256)
        heap.malloc(16)  # block after a: shrink must still fit at a
        b = heap.realloc(a, 64)
        assert b == a
        assert heap.size_of(a) == 64
        heap.check_invariants()

    def test_realloc_does_not_inflate_peak(self):
        # With free-before-malloc the old and new extents overlap, so a
        # near-full heap can still grow its last block.
        heap = HeapAllocator(0x4000, 1024)
        a = heap.malloc(600)
        b = heap.realloc(a, 1024)
        assert b == a
        assert heap.peak_bytes == 1024
        heap.check_invariants()


class TestProperties:
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(1, 2048)),
                st.tuples(st.just("free"), st.integers(0, 40)),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=60)
    def test_random_alloc_free_keeps_invariants(self, ops):
        heap = HeapAllocator(0x4000, 1 << 22)
        live: list[int] = []
        for op, arg in ops:
            if op == "alloc":
                live.append(heap.malloc(arg))
            elif live:
                heap.free(live.pop(arg % len(live)))
        heap.check_invariants()
        # Live blocks never overlap.
        blocks = sorted(heap.live_blocks().items())
        for (a, sa), (b, _sb) in zip(blocks, blocks[1:]):
            assert a + sa <= b

    @given(st.lists(st.integers(1, 512), min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_free_everything_returns_all_memory(self, sizes):
        heap = HeapAllocator(0, 1 << 20)
        addrs = [heap.malloc(s) for s in sizes]
        for a in addrs:
            heap.free(a)
        heap.check_invariants()
        assert heap.live_bytes == 0
        assert heap.malloc(1 << 20) == 0


class TestReallocZero:
    def test_realloc_zero_frees_and_returns_null(self, heap):
        a = heap.malloc(128)
        assert heap.realloc(a, 0) == 0
        assert heap.size_of(a) is None
        assert heap.live_bytes == 0
        heap.check_invariants()

    def test_realloc_null_zero_is_noop(self, heap):
        assert heap.realloc(0, 0) == 0
        assert heap.live_bytes == 0
        heap.check_invariants()

    def test_realloc_zero_of_dead_block_raises(self, heap):
        a = heap.malloc(64)
        heap.free(a)
        with pytest.raises(AllocationError):
            heap.realloc(a, 0)


class TestSanitizerKnobs:
    def test_redzone_offsets_block_inside_reservation(self):
        heap = HeapAllocator(BASE, 1 << 20)
        heap.redzone = 64
        a = heap.malloc(100)
        assert a == BASE + 64
        assert heap.size_of(a) == 112  # usable size is still the aligned request
        assert heap.redzone_of(a) == 64
        assert heap.live_bytes == 112 + 128
        heap.free(a)
        assert heap.live_bytes == 0
        heap.check_invariants()

    def test_quarantine_defers_address_reuse(self):
        heap = HeapAllocator(BASE, 1 << 20)
        heap.quarantine_capacity = 1 << 16
        a = heap.malloc(64)
        heap.free(a)
        b = heap.malloc(64)
        assert b != a  # a's range is parked, not reused
        heap.check_invariants()
        heap.flush_quarantine()
        assert heap.quarantine_bytes == 0
        heap.check_invariants()

    def test_quarantine_evict_hook_fires_fifo(self):
        heap = HeapAllocator(BASE, 1 << 20)
        heap.quarantine_capacity = 128
        evicted = []
        heap.set_evict_hook(lambda addr, size: evicted.append((addr, size)))
        blocks = [heap.malloc(64) for _ in range(4)]
        for block in blocks:
            heap.free(block)
        # 4 * 64B freed with a 128B budget: the two oldest were evicted.
        assert [addr for addr, _size in evicted] == blocks[:2]
        heap.check_invariants()

    def test_quarantine_drained_before_oom(self):
        heap = HeapAllocator(BASE, 1 << 10)
        heap.quarantine_capacity = 1 << 20
        a = heap.malloc(1 << 10)
        heap.free(a)
        # The whole heap is quarantined; a new allocation must recycle it
        # rather than raising.
        b = heap.malloc(1 << 10)
        assert b == a
        heap.check_invariants()


class TestStepwiseInvariants:
    """Random malloc/calloc/realloc/free drivers with invariant checks
    after *every* step, across sanitizer-knob configurations."""

    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("malloc"), st.integers(1, 2048)),
                st.tuples(st.just("calloc"), st.integers(1, 2048)),
                st.tuples(st.just("realloc"), st.integers(0, 1024)),
                st.tuples(st.just("free"), st.integers(0, 40)),
            ),
            min_size=1,
            max_size=120,
        ),
        redzone=st.sampled_from([0, 16, 64]),
        quarantine=st.sampled_from([0, 4096]),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_after_every_step(self, ops, redzone, quarantine):
        heap = HeapAllocator(0x4000, 1 << 22)
        heap.redzone = redzone
        heap.quarantine_capacity = quarantine
        live: list[int] = []
        for op, arg in ops:
            if op in ("malloc", "calloc"):
                # calloc's zero-fill is a Ctx-level behaviour; the allocator
                # sees the same carve either way.
                live.append(heap.malloc(arg))
            elif op == "realloc" and live:
                idx = arg % len(live)
                new = heap.realloc(live.pop(idx), arg)
                if new:
                    live.append(new)
            elif op == "free" and live:
                heap.free(live.pop(arg % len(live)))
            heap.check_invariants()
        for addr in live:
            heap.free(addr)
        heap.check_invariants()
        heap.flush_quarantine()
        heap.check_invariants()
        assert heap.live_bytes == 0
        assert heap.quarantine_bytes == 0
