"""End-to-end pipeline properties: sim -> PMU -> profiler -> merge -> views.

These tests drive realistic multi-threaded / multi-process runs and check
invariants that span module boundaries: sample conservation, serialization
round trips through the merge, cross-process coalescing, determinism.
"""

from __future__ import annotations

import pytest

from repro import (
    Analyzer,
    Ctx,
    DataCentricProfiler,
    IBSEngine,
    LoadModule,
    MetricKind,
    SimProcess,
    SourceFile,
    StorageClass,
    merge_profiles,
    power7_node,
    tiny_machine,
)
from repro.core.profiledb import ProfileDB
from repro.sim.mpi import MPIJob
from repro.sim.openmp import declare_outlined, omp_chunk


def _build_program(process: SimProcess):
    src = SourceFile("app.c", {8: "sum += data[idx];", 20: "data = malloc(...);"})
    exe = LoadModule("app.exe", is_executable=True)
    main_fn = exe.add_function("main", src, 1, 40)
    region = declare_outlined(exe, main_fn, 5, 10)
    static = exe.add_static("table", 32768, src, 2)
    process.load_module(exe)
    return main_fn, region, static


def _run_parallel_app(process: SimProcess, n_threads: int, iters: int = 2000):
    main_fn, region, static = _build_program(process)
    ctx = Ctx(process, process.master)
    ctx.enter(main_fn)
    data = ctx.alloc_array("data", (8192,), line=20, kind="calloc")
    table = ctx.static_array(static, (4096,), elem=8)

    def worker(wctx: Ctx, tid: int):
        ip = region.ip(8)
        ip2 = region.ip(8, 1)
        for i in omp_chunk(iters, n_threads, tid):
            wctx.load_ip(data.flat_addr((i * 16) % data.size), ip)
            if i % 3 == 0:
                wctx.load_ip(table.flat_addr((i * 8) % table.size), ip2)
            if i % 16 == 15:
                yield
        yield

    ctx.parallel(region, worker, n_threads, line=5)
    ctx.leave()


@pytest.fixture(scope="module")
def profiled_parallel_run():
    machine = power7_node(smt=1)
    process = SimProcess(machine, name="pipeline")
    profiler = DataCentricProfiler(process).attach()
    process.pmu = IBSEngine(period=16, seed=99)
    _run_parallel_app(process, n_threads=16)
    return process, profiler


class TestSampleConservation:
    def test_every_sample_lands_in_exactly_one_cct(self, profiled_parallel_run):
        _, profiler = profiled_parallel_run
        s = profiler.stats
        assert s.samples > 0
        filed = (
            s.heap_samples + s.static_samples + s.stack_samples + s.unknown_samples
        )
        assert filed == s.mem_samples
        db = profiler.finalize()
        total_in_cct = 0
        for profile in db.all_profiles():
            for storage in profile.storage_classes():
                total_in_cct += profile.cct(storage).total(MetricKind.SAMPLES)
        assert total_in_cct == s.samples  # mem + nonmem

    def test_merge_conserves_samples(self, profiled_parallel_run):
        _, profiler = profiled_parallel_run
        db = profiler.finalize()
        before = sum(
            p.cct(s).total(MetricKind.SAMPLES)
            for p in db.all_profiles()
            for s in p.storage_classes()
        )
        merged = merge_profiles([db])
        profile = next(iter(merged.threads.values()))
        after = sum(
            profile.cct(s).total(MetricKind.SAMPLES)
            for s in profile.storage_classes()
        )
        assert after == before

    def test_latency_conserved_through_serialization_and_merge(
        self, profiled_parallel_run
    ):
        _, profiler = profiled_parallel_run
        db = profiler.finalize()
        raw = db.to_bytes()
        restored = ProfileDB.from_bytes(raw)
        merged = merge_profiles([restored])
        exp = Analyzer("x").add(profiler.finalize()).analyze()
        profile = next(iter(merged.threads.values()))
        assert (
            profile.cct(StorageClass.HEAP).total(MetricKind.LATENCY)
            == exp.profile.cct(StorageClass.HEAP).total(MetricKind.LATENCY)
        )


class TestCrossThreadCoalescing:
    def test_one_heap_variable_across_all_threads(self, profiled_parallel_run):
        _, profiler = profiled_parallel_run
        exp = Analyzer("x").add(profiler.finalize()).analyze()
        heap_vars = exp.top_variables(MetricKind.SAMPLES, 10, storage=StorageClass.HEAP)
        assert len(heap_vars) == 1
        assert heap_vars[0].name == "data"

    def test_one_static_variable_across_all_threads(self, profiled_parallel_run):
        _, profiler = profiled_parallel_run
        exp = Analyzer("x").add(profiler.finalize()).analyze()
        statics = exp.top_variables(MetricKind.SAMPLES, 10, storage=StorageClass.STATIC)
        assert [v.name for v in statics] == ["table"]

    def test_worker_threads_all_contributed(self, profiled_parallel_run):
        _, profiler = profiled_parallel_run
        db = profiler.finalize()
        contributing = [
            p.thread_name
            for p in db.all_profiles()
            if p.node_count() > 1
        ]
        assert len(contributing) >= 12  # most of the 16 workers sampled


class TestCrossProcessPipeline:
    def test_mpi_ranks_coalesce_into_shared_variables(self):
        def rank_main(process, rank, n_ranks):
            _run_parallel_app(process, n_threads=4, iters=600)

        profilers = []

        def attach(process):
            profiler = DataCentricProfiler(process).attach()
            process.pmu = IBSEngine(period=12, seed=100 + process.pid)
            profilers.append(profiler)
            return profiler

        job = MPIJob(lambda: tiny_machine(sockets=2, cores_per_socket=2),
                     n_ranks=3, ranks_per_node=1)
        job.run(rank_main, attach=attach)

        analyzer = Analyzer("job")
        for profiler in profilers:
            analyzer.add(profiler.finalize())
        exp = analyzer.analyze()
        # Identical programs in every rank: allocation paths coalesce to
        # ONE logical heap variable and one static across the whole job.
        heap_vars = exp.top_variables(MetricKind.SAMPLES, 10, storage=StorageClass.HEAP)
        assert [v.name for v in heap_vars] == ["data"]
        statics = exp.top_variables(MetricKind.SAMPLES, 10, storage=StorageClass.STATIC)
        assert [v.name for v in statics] == ["table"]
        assert exp.merge_stats.profiles_in >= 9  # 3 ranks x (master pool)


class TestDeterminism:
    def _run_once(self):
        machine = tiny_machine()
        process = SimProcess(machine, name="det")
        profiler = DataCentricProfiler(process).attach()
        process.pmu = IBSEngine(period=16, seed=3)
        _run_parallel_app(process, n_threads=4, iters=800)
        return process.elapsed_cycles, profiler.finalize().to_bytes()

    def test_identical_runs_bit_identical(self):
        cycles_a, bytes_a = self._run_once()
        cycles_b, bytes_b = self._run_once()
        assert cycles_a == cycles_b
        assert bytes_a == bytes_b


class TestProfilerPerturbation:
    """The observer effect: profiling must not change *what* the program does."""

    def test_memory_behavior_identical_with_and_without_profiler(self):
        def run(profiled: bool):
            machine = tiny_machine()
            process = SimProcess(machine, name="obs")
            if profiled:
                DataCentricProfiler(process).attach()
                process.pmu = IBSEngine(period=16, seed=3)
            _run_parallel_app(process, n_threads=4, iters=800)
            h = machine.hierarchy
            return (h.total_accesses(), tuple(h.level_counts),
                    tuple(h.memmgr.dram_accesses), process.elapsed_cycles)

        acc_n, lvl_n, dram_n, cycles_n = run(False)
        acc_p, lvl_p, dram_p, cycles_p = run(True)
        # Same accesses, same hierarchy response, same placement...
        assert acc_p == acc_n
        assert lvl_p == lvl_n
        assert dram_p == dram_n
        # ...but time dilated by the measurement overhead.
        assert cycles_p > cycles_n
