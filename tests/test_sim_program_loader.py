"""Program text model and load modules: IPs, symbols, load/unload."""

from __future__ import annotations

import pytest

from repro.errors import AddressError, ConfigError
from repro.sim.loader import LoadModule
from repro.sim.program import BYTES_PER_SLOT, SLOTS_PER_LINE, Function
from repro.sim.source import SourceFile


@pytest.fixture
def module():
    return LoadModule("libtest.so")


@pytest.fixture
def src():
    return SourceFile("test.c", {5: "int x = a[i];"})


class TestSourceFile:
    def test_line_text_and_location(self, src):
        assert src.line_text(5) == "int x = a[i];"
        assert src.line_text(6) == ""
        assert src.location(5) == "test.c:5"

    def test_set_line(self, src):
        src.set_line(7, "y++;")
        assert src.line_text(7) == "y++;"


class TestFunctionIPs:
    def test_ip_line_slot_roundtrip(self, module, src):
        fn = module.add_function("f", src, 10, 20)
        module.place(0x400000, 0x500000)
        for line in (10, 15, 29):
            for slot in (0, 1, 15):
                ip = fn.ip(line, slot)
                assert fn.line_slot_of(ip) == (line, slot)

    def test_distinct_slots_distinct_ips(self, module, src):
        fn = module.add_function("f", src, 1, 5)
        module.place(0, 0)
        assert fn.ip(1, 0) != fn.ip(1, 1)

    def test_line_out_of_range(self, module, src):
        fn = module.add_function("f", src, 10, 5)
        module.place(0, 0)
        with pytest.raises(ConfigError):
            fn.ip(15)
        with pytest.raises(ConfigError):
            fn.ip(9)

    def test_slot_out_of_range(self, module, src):
        fn = module.add_function("f", src, 1, 5)
        module.place(0, 0)
        with pytest.raises(ConfigError):
            fn.ip(1, SLOTS_PER_LINE)

    def test_text_size(self, module, src):
        fn = module.add_function("f", src, 1, 3)
        assert fn.text_size == 3 * SLOTS_PER_LINE * BYTES_PER_SLOT

    def test_functions_do_not_overlap(self, module, src):
        f = module.add_function("f", src, 1, 10)
        g = module.add_function("g", src, 20, 10)
        module.place(0x1000, 0)
        assert f.text_base + f.text_size <= g.text_base


class TestModuleResolution:
    def test_resolve_ip(self, module, src):
        f = module.add_function("f", src, 1, 10)
        g = module.add_function("g", src, 20, 10)
        module.place(0x1000, 0x9000)
        fn, line, slot = module.resolve_ip(g.ip(25, 3))
        assert fn is g
        assert (line, slot) == (25, 3)

    def test_resolve_unknown_ip_raises(self, module, src):
        module.add_function("f", src, 1, 10)
        module.place(0x1000, 0)
        with pytest.raises(AddressError):
            module.resolve_ip(0x10)

    def test_contains_ip(self, module, src):
        f = module.add_function("f", src, 1, 1)
        module.place(0x1000, 0)
        assert module.contains_ip(f.ip(1))
        assert not module.contains_ip(0)


class TestStatics:
    def test_static_addresses_after_place(self, module, src):
        a = module.add_static("a", 100, src, 1)
        b = module.add_static("b", 50, src, 2)
        module.place(0x1000, 0x8000)
        assert a.address >= 0x8000
        assert b.address >= a.end  # alignment may pad
        assert module.static_at(a.address) is a
        assert module.static_at(a.end - 1) is a
        assert module.static_at(b.address) is b

    def test_static_alignment(self, module, src):
        module.add_static("a", 3, align=64)
        b = module.add_static("b", 8, align=64)
        module.place(0, 0x8000)
        assert b.address % 64 == 0

    def test_static_at_miss_returns_none(self, module, src):
        module.add_static("a", 10)
        module.place(0, 0x8000)
        assert module.static_at(0x7FFF) is None

    def test_rejects_zero_size_static(self, module):
        with pytest.raises(ConfigError):
            module.add_static("z", 0)


class TestLoadUnload:
    def test_cannot_add_after_place(self, module, src):
        module.place(0, 0)
        with pytest.raises(ConfigError):
            module.add_function("f", src, 1, 1)
        with pytest.raises(ConfigError):
            module.add_static("v", 8)

    def test_double_place_rejected(self, module):
        module.place(0, 0)
        with pytest.raises(ConfigError):
            module.place(0, 0)

    def test_unplace_clears_resolution(self, module, src):
        f = module.add_function("f", src, 1, 4)
        v = module.add_static("v", 64)
        module.place(0x1000, 0x8000)
        ip = f.ip(2)
        addr = v.address
        module.unplace()
        assert not module.loaded
        assert not module.contains_ip(ip)
        # Re-place at a different base: everything resolves at new addresses.
        module.place(0x2000, 0x9000)
        assert f.ip(2) == ip - 0x1000 + 0x2000
        assert v.address == addr - 0x8000 + 0x9000

    def test_unplace_when_not_loaded(self, module):
        with pytest.raises(ConfigError):
            module.unplace()


class TestProcessIntegration:
    def test_load_module_into_process(self, mini):
        # conftest's MiniProgram loads mini.exe already
        proc = mini.process
        assert mini.exe in proc.modules
        assert proc.module_of_ip(mini.main.ip(1)) is mini.exe
        assert proc.module_of_ip(0xDEAD) is None

    def test_unload_module(self, mini):
        proc = mini.process
        proc.unload_module(mini.exe)
        assert mini.exe not in proc.modules
        assert not mini.exe.loaded

    def test_load_two_modules_disjoint_text(self, mini):
        lib = LoadModule("libextra.so")
        src = SourceFile("extra.c")
        f = lib.add_function("extra_fn", src, 1, 10)
        mini.process.load_module(lib)
        assert mini.process.module_of_ip(f.ip(5)) is lib
        assert mini.process.module_of_ip(mini.main.ip(1)) is mini.exe
