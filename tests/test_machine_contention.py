"""The windowed contention model: unloaded-window semantics and bulk path.

The headline pin here is ``TestUnloadedWindows`` (referenced from the
``repro.machine.contention`` docstring): a window below ``min_traffic``
*discards* its traffic and issuing-thread set by default — intended
behaviour, since ``min_traffic`` is a per-window bandwidth threshold —
while the opt-in ``unloaded_carry`` knob decays sub-threshold traffic
forward so sustained near-threshold imbalance can still build a share.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.machine.contention import ControllerContention


def _loaded_window(c: ControllerContention, node: int = 0, n: int = 200,
                   tids: int = 4) -> None:
    for t in range(tids):
        for _ in range(n // tids):
            c.dram_access(node, hw_tid=t)


class TestUnloadedWindows:
    """Below-``min_traffic`` windows: default discard vs opt-in carry."""

    def test_default_discards_traffic_and_tids(self):
        c = ControllerContention(n_nodes=4, capacity_per_window=64)
        # 64 windows of sub-threshold, fully-imbalanced traffic from many
        # threads: aggregate share says "congested", the rate threshold
        # says "unloaded" — the rate threshold wins, by design.
        for _ in range(64):
            for t in range(8):
                c.dram_access(0, hw_tid=t)
            assert c.window_load(0) == 8
            c.new_window()
            assert c.window_load(0) == 0, "unloaded window must drop counts"
            assert c.congestion_delay(0) == 0
        assert c.total_queue_cycles == 0

    def test_discarded_tids_do_not_leak_concurrency(self):
        c = ControllerContention(n_nodes=4, capacity_per_window=64)
        # Eight threads issue in an unloaded window; the next window's
        # traffic comes from a single thread.  If the thread set leaked,
        # the concurrency gate would open and charge a penalty.
        for t in range(8):
            c.dram_access(0, hw_tid=t)
        c.new_window()
        for _ in range(200):
            c.dram_access(0, hw_tid=0)
        c.new_window()
        assert c.congestion_delay(0) == 0

    def test_loaded_window_still_penalizes(self):
        c = ControllerContention(n_nodes=4, capacity_per_window=64)
        _loaded_window(c)
        c.new_window()
        assert c.congestion_delay(0) > 0

    def test_carry_accumulates_subthreshold_imbalance(self):
        # With carry, steady sub-threshold one-node traffic eventually
        # crosses min_traffic (carried + fresh) and charges a penalty.
        c = ControllerContention(
            n_nodes=4, capacity_per_window=64, unloaded_carry=0.5
        )
        penalised = False
        for _ in range(20):
            for t in range(8):
                for _ in range(7):  # 56/window: just below threshold
                    c.dram_access(0, hw_tid=t)
            c.new_window()
            if c.congestion_delay(0) > 0:
                penalised = True
                break
        assert penalised, "carried traffic never crossed the threshold"

    def test_carry_keeps_tids_while_traffic_remains(self):
        c = ControllerContention(
            n_nodes=2, capacity_per_window=64, unloaded_carry=0.5
        )
        for t in range(4):
            c.dram_access(0, hw_tid=t)
        c.new_window()
        assert c.window_load(0) == 2  # 4 * 0.5 carried forward
        # Once decay empties the carried counts, the set resets too.
        c.new_window()  # 2 -> 1
        c.new_window()  # 1 -> 0: cleared
        assert c.window_load(0) == 0
        for _ in range(200):
            c.dram_access(0, hw_tid=0)
        c.new_window()
        assert c.congestion_delay(0) == 0, "stale tids leaked through decay"

    def test_carry_zero_matches_legacy(self):
        a = ControllerContention(n_nodes=4, capacity_per_window=64)
        b = ControllerContention(
            n_nodes=4, capacity_per_window=64, unloaded_carry=0.0
        )
        for c in (a, b):
            for t in range(8):
                c.dram_access(0, hw_tid=t)
            c.new_window()
            _loaded_window(c)
            c.new_window()
        assert a.congestion_delay(0) == b.congestion_delay(0)
        assert a.total_queue_cycles == b.total_queue_cycles

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 2.0])
    def test_carry_validation(self, bad):
        with pytest.raises(ConfigError):
            ControllerContention(n_nodes=2, unloaded_carry=bad)


class TestBulkAccounting:
    def test_bulk_equals_scalar_within_window(self):
        a = ControllerContention(n_nodes=4, capacity_per_window=64)
        b = ControllerContention(n_nodes=4, capacity_per_window=64)
        for c in (a, b):
            _loaded_window(c)
            c.new_window()
        total_a = sum(a.dram_access(0, hw_tid=1) for _ in range(300))
        delay_b = b.dram_access_bulk(0, 1, 300)
        assert total_a == delay_b * 300
        assert a.window_load(0) == b.window_load(0)
        assert a.total_queue_cycles == b.total_queue_cycles
        a.new_window()
        b.new_window()
        assert a.congestion_delay(0) == b.congestion_delay(0)

    def test_bulk_registers_issuing_thread(self):
        c = ControllerContention(n_nodes=4, capacity_per_window=64)
        for t in range(4):
            c.dram_access_bulk(0, t, 50)
        c.new_window()
        assert c.congestion_delay(0) > 0  # concurrency gate saw 4 threads
