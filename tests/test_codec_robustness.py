"""Codec hardening: corrupt input, version compat, round-trip fidelity.

The codec is the wire format between the parallel driver's worker
processes and the pool merge, so every malformed input must surface as
:class:`ProfileError` — never a raw ``IndexError``/``UnicodeDecodeError``
/``RecursionError`` escaping the parser guts — and a well-formed
round-trip must preserve profiles exactly (merge-equivalence included).
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cct import KIND_FRAME, KIND_IP
from repro.core.merge import merge_profiles
from repro.core.metrics import MetricKind
from repro.core.profiledb import ProfileDB, ThreadProfile
from repro.core.storage import StorageClass
from repro.errors import ProfileError
from repro.pmu.sample import Sample


def _sample(latency=10, level=3):
    return Sample("T", 1, 1, 0x10, latency, level, False, False, 64)


def _profile(thread_name: str, spec) -> ThreadProfile:
    profile = ThreadProfile(thread_name)
    for storage, names, latency in spec:
        path = [((KIND_FRAME, n, 0), {"label": n}) for n in names[:-1]]
        path.append(((KIND_IP, names[-1], 1, 0), {"label": names[-1]}))
        profile.cct(storage).add_sample_at(path, _sample(latency=latency))
    return profile


def _reference_db() -> ProfileDB:
    db = ProfileDB("p0", meta={"app": "unit", "rank": "3"})
    db.add_thread(_profile("t0", [
        (StorageClass.HEAP, ("main", "solve", "x"), 5),
        (StorageClass.STATIC, ("main", "y"), 3),
    ]))
    db.add_thread(_profile("t1", [
        (StorageClass.HEAP, ("main", "solve", "x"), 7),
        (StorageClass.UNKNOWN, ("main", "z"), 2),
    ]))
    return db


def _uv(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


class TestCorruptInput:
    """No malformed buffer may raise anything but ProfileError."""

    def test_every_truncation_rejected(self):
        data = _reference_db().to_bytes()
        for end in range(len(data)):
            with pytest.raises(ProfileError):
                ProfileDB.from_bytes(data[:end])

    def test_every_single_byte_corruption_is_contained(self):
        """Flip every byte: either a clean ProfileError or a valid parse
        (some flips only change a metric value), never a raw exception."""
        data = _reference_db().to_bytes()
        for offset in range(len(data)):
            mutated = bytearray(data)
            mutated[offset] ^= 0xFF
            try:
                ProfileDB.from_bytes(bytes(mutated))
            except ProfileError:
                pass

    def test_trailing_garbage_rejected(self):
        data = _reference_db().to_bytes()
        with pytest.raises(ProfileError, match="trailing"):
            ProfileDB.from_bytes(data + b"\x00")

    def test_unbounded_varint_run_rejected(self):
        # A corrupt continuation run right where the string-table count
        # lives must hit the shift cap, not shift forever.
        payload = b"RPDB" + struct.pack("<H", 2) + b"\x80" * 64 + b"\x01"
        with pytest.raises(ProfileError, match="64 bits"):
            ProfileDB.from_bytes(payload)

    def test_absurd_count_rejected_before_allocation(self):
        # string-table count claims ~2**28 entries in a 10-byte buffer.
        payload = b"RPDB" + struct.pack("<H", 2) + b"\xff\xff\xff\x7f"
        with pytest.raises(ProfileError, match="count"):
            ProfileDB.from_bytes(payload)

    def test_bad_utf8_string_rejected(self):
        table = _uv(1) + _uv(2) + b"\xff\xfe"
        payload = b"RPDB" + struct.pack("<H", 2) + table + _uv(0) + _uv(0) + _uv(0)
        with pytest.raises(ProfileError, match="UTF-8"):
            ProfileDB.from_bytes(payload)

    def test_unknown_version_rejected(self):
        data = bytearray(_reference_db().to_bytes())
        struct.pack_into("<H", data, 4, 99)
        with pytest.raises(ProfileError, match="version"):
            ProfileDB.from_bytes(bytes(data))

    def test_deep_nesting_does_not_recurse(self):
        """A pathologically deep chain decodes iteratively."""
        profile = ThreadProfile("t")
        path = [((KIND_FRAME, f"f{i}", 0), None) for i in range(5000)]
        profile.cct(StorageClass.HEAP).insert_path(path)
        db = ProfileDB("deep")
        db.add_thread(profile)
        rt = ProfileDB.from_bytes(db.to_bytes())
        assert rt.node_count() == db.node_count()


class TestVersionCompat:
    def test_v1_payload_without_meta_decodes(self):
        # Hand-built v1 body: no metadata section between the process
        # name and the thread count.
        strings = [b"p", b"t", b"nonmem"]
        table = _uv(len(strings)) + b"".join(_uv(len(s)) + s for s in strings)
        empty_node = _uv(0) + _uv(0) + _uv(0) * 10 + _uv(0)  # key/info/metrics/kids
        body = _uv(0) + _uv(1) + _uv(1) + _uv(1) + _uv(2) + empty_node
        payload = b"RPDB" + struct.pack("<H", 1) + table + body
        db = ProfileDB.from_bytes(payload)
        assert db.process_name == "p"
        assert db.meta == {}
        assert db.threads["t"].storage_classes() == [StorageClass.NONMEM]

    def test_writer_emits_v2(self):
        data = _reference_db().to_bytes()
        assert struct.unpack_from("<H", data, 4)[0] == 2


class TestRoundTrip:
    def test_meta_round_trips(self):
        db = _reference_db()
        rt = ProfileDB.from_bytes(db.to_bytes())
        assert rt.meta == {"app": "unit", "rank": "3"}
        assert rt.to_bytes() == db.to_bytes()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(StorageClass)),
                st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=4),
                st.integers(0, 2**40),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_everything(self, spec):
        db = ProfileDB("p", meta={"k": "v"})
        db.add_thread(_profile("t", spec))
        rt = ProfileDB.from_bytes(db.to_bytes())
        assert rt.node_count() == db.node_count()
        assert rt.meta == db.meta
        for storage in db.threads["t"].storage_classes():
            orig = db.threads["t"].get_cct(storage)
            back = rt.threads["t"].get_cct(storage)
            assert back is not None
            assert back.root.to_dict() == orig.root.to_dict()
            for kind in MetricKind:
                assert back.total(kind) == orig.total(kind)
        # The round-trip is also stable: re-encoding yields the same bytes.
        assert rt.to_bytes() == db.to_bytes()

    def test_roundtrip_is_merge_equivalent_for_app_profile(self):
        """A real (short) app run survives the codec: merging the
        round-tripped copies gives byte-identical results to merging
        the originals."""
        from repro.apps.lulesh import run_rank

        dbs = [run_rank(rank, 2) for rank in range(2)]
        assert all(db.node_count() > 0 for db in dbs)
        round_tripped = [ProfileDB.from_bytes(db.to_bytes()) for db in dbs]
        merged_orig = merge_profiles(dbs, "job")
        merged_rt = merge_profiles(round_tripped, "job")
        assert merged_rt.canonical_bytes() == merged_orig.canonical_bytes()
