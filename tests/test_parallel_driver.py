"""The multiprocess driver and the pool-based reduction-tree merge.

Covers the real-parallel acceptance properties: worker-per-rank
profiling with deterministic output, the process-pool merge producing
canonical bytes identical to the sequential merge with MergeStats
matching the modelled schedule, and graceful degradation (killed
workers, crashing apps, corrupt blobs) into *reported* partial results
instead of hangs or crashes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import pytest

from repro.core.cct import KIND_FRAME, KIND_IP
from repro.core.merge import merge_profiles, reduction_tree_merge
from repro.core.profiledb import ProfileDB, ThreadProfile
from repro.core.storage import StorageClass
from repro.errors import ConfigError, ProfileError
from repro.parallel import (
    merge_rpdb_files,
    parallel_reduction_merge,
    profile_ranks,
    rank_runner,
    register_app,
    run_app_rank,
)
from repro.parallel.driver import rank_path
from repro.pmu.sample import Sample

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="test-registered apps require fork inheritance"
)


def _sample(latency=10, level=3):
    return Sample("T", 1, 1, 0x10, latency, level, False, False, 64)


def _synthetic_db(i: int) -> ProfileDB:
    db = ProfileDB(f"p{i}")
    for t in range(2):
        profile = ThreadProfile(f"p{i}.t{t}")
        profile.cct(StorageClass.HEAP).add_sample_at(
            [
                ((KIND_FRAME, "main", 0), None),
                ((KIND_IP, "kernel", 100 + (i % 5), 0), None),
            ],
            _sample(latency=3 + i + t),
        )
        db.add_thread(profile)
    return db


def _tiny_rank(rank, n_ranks, variant="original", preset="smoke"):
    """A fast app stand-in: real work shape, no simulator cost."""
    db = _synthetic_db(rank)
    db.process_name = f"tiny.rank{rank:04d}"
    db.meta.update(rank=str(rank), n_ranks=str(n_ranks))
    return db


class TestRegistry:
    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError, match="unknown app"):
            rank_runner("no-such-app")

    def test_registered_app_runs_in_process(self):
        register_app("tiny", _tiny_rank)
        db = run_app_rank("tiny", 1, 4)
        assert db.process_name == "tiny.rank0001"
        assert db.meta["n_ranks"] == "4"

    def test_builtin_apps_resolve(self):
        for app in ("amg2006", "lulesh", "nw", "streamcluster", "sweep3d"):
            assert callable(rank_runner(app))


@needs_fork
class TestDriver:
    def test_smoke_writes_one_rpdb_per_rank(self, tmp_path):
        register_app("tiny", _tiny_rank)
        report = profile_ranks("tiny", 4, tmp_path, jobs=2, timeout=60)
        assert report.ok and report.failed_ranks == []
        assert len(report.paths) == 4
        for rank in range(4):
            path = rank_path(tmp_path, "tiny", rank)
            assert path.is_file()
            db = ProfileDB.from_bytes(path.read_bytes())
            assert db.meta["rank"] == str(rank)
        assert "4/4 ranks" in report.summary()

    def test_output_deterministic_across_runs(self, tmp_path):
        """Same app + ranks -> byte-identical .rpdb files (the property
        that makes crash-retry safe)."""
        from repro.apps import lulesh

        first = profile_ranks("lulesh", 2, tmp_path / "a", jobs=2, timeout=120)
        second = profile_ranks("lulesh", 2, tmp_path / "b", jobs=2, timeout=120)
        assert first.ok and second.ok
        for p1, p2 in zip(first.paths, second.paths):
            assert p1.read_bytes() == p2.read_bytes()
        # Worker output == in-process output, and ranks are decorrelated.
        in_proc = lulesh.run_rank(0, 2)
        assert first.paths[0].read_bytes() == in_proc.to_bytes()
        assert first.paths[0].read_bytes() != first.paths[1].read_bytes()

    def test_killed_worker_reported_not_hung(self, tmp_path):
        def killer(rank, n_ranks, variant="original", preset="smoke"):
            if rank == 1:
                os.kill(os.getpid(), 9)
            return _tiny_rank(rank, n_ranks, variant, preset)

        register_app("killer", killer)
        report = profile_ranks("killer", 3, tmp_path, jobs=2, timeout=60, retries=1)
        assert not report.ok
        assert report.failed_ranks == [1]
        (failed,) = [o for o in report.outcomes if o.rank == 1]
        assert failed.attempts == 2  # first try + one retry
        assert "exit code -9" in failed.error
        assert len(report.paths) == 2  # survivors still written

    def test_crashing_app_traceback_surfaced(self, tmp_path):
        def broken(rank, n_ranks, variant="original", preset="smoke"):
            raise RuntimeError(f"rank {rank} exploded")

        register_app("broken", broken)
        report = profile_ranks("broken", 2, tmp_path, jobs=2, timeout=60, retries=0)
        assert report.failed_ranks == [0, 1]
        assert "rank 0 exploded" in report.outcomes[0].error

    def test_hung_worker_times_out(self, tmp_path):
        def hangy(rank, n_ranks, variant="original", preset="smoke"):
            time.sleep(600)

        register_app("hangy", hangy)
        t0 = time.monotonic()
        report = profile_ranks("hangy", 1, tmp_path, jobs=1, timeout=0.5, retries=0)
        assert time.monotonic() - t0 < 30
        assert not report.ok
        assert "timed out" in report.outcomes[0].error

    def test_no_torn_files_from_killed_worker(self, tmp_path):
        """Atomic write: a dead worker leaves no .rpdb (not a torn one)."""

        def die_mid_run(rank, n_ranks, variant="original", preset="smoke"):
            os.kill(os.getpid(), 9)

        register_app("die", die_mid_run)
        report = profile_ranks("die", 2, tmp_path, jobs=2, timeout=60, retries=0)
        assert report.failed_ranks == [0, 1]
        out_dir = tmp_path / "die"
        assert sorted(p.name for p in out_dir.glob("*.rpdb")) == []

    def test_per_attempt_durations_recorded(self, tmp_path):
        register_app("tiny", _tiny_rank)
        report = profile_ranks("tiny", 3, tmp_path, jobs=2, timeout=60)
        assert report.ok
        for outcome in report.outcomes:
            assert outcome.attempts == 1 and outcome.retries == 0
            assert len(outcome.attempt_seconds) == 1
            assert 0.0 <= outcome.attempt_seconds[0] <= outcome.elapsed_seconds

    def test_failed_ranks_carry_durations_and_retries(self, tmp_path):
        """Satellite: duration/retry accounting exists even when every
        attempt failed — no scraping .err files or timing by hand."""

        def killer(rank, n_ranks, variant="original", preset="smoke"):
            if rank == 1:
                os.kill(os.getpid(), 9)
            return _tiny_rank(rank, n_ranks, variant, preset)

        register_app("killer-durations", killer)
        report = profile_ranks(
            "killer-durations", 2, tmp_path, jobs=2, timeout=60, retries=2
        )
        (failed,) = [o for o in report.outcomes if o.rank == 1]
        assert not failed.ok
        assert failed.attempts == 3 and failed.retries == 2
        assert len(failed.attempt_seconds) == 3
        assert all(d >= 0.0 for d in failed.attempt_seconds)
        # elapsed spans first launch -> final settle, so it bounds any
        # single attempt from above.
        assert failed.elapsed_seconds >= max(failed.attempt_seconds)
        (survivor,) = [o for o in report.outcomes if o.rank == 0]
        assert survivor.ok and survivor.retries == 0
        assert len(survivor.attempt_seconds) == 1

    def test_timed_out_attempt_duration_near_timeout(self, tmp_path):
        def hangy(rank, n_ranks, variant="original", preset="smoke"):
            time.sleep(600)

        register_app("hangy-durations", hangy)
        report = profile_ranks(
            "hangy-durations", 1, tmp_path, jobs=1, timeout=0.5, retries=0
        )
        (outcome,) = report.outcomes
        assert not outcome.ok and "timed out" in outcome.error
        assert len(outcome.attempt_seconds) == 1
        assert outcome.attempt_seconds[0] >= 0.5

    def test_bad_arguments_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            profile_ranks("tiny", 0, tmp_path)
        with pytest.raises(ConfigError):
            profile_ranks("tiny", 1, tmp_path, timeout=0)
        with pytest.raises(ConfigError):
            profile_ranks("tiny", 1, tmp_path, jobs=0)


class TestParallelMerge:
    def _blobs(self, n):
        return [_synthetic_db(i).to_bytes() for i in range(n)]

    @pytest.mark.parametrize("n,arity", [(1, 2), (2, 2), (5, 2), (9, 4), (16, 2)])
    def test_byte_identical_to_sequential_merge(self, n, arity):
        dbs = [_synthetic_db(i) for i in range(n)]
        expected = merge_profiles(dbs, "job").canonical_bytes()
        merged, stats, report = parallel_reduction_merge(
            [db.to_bytes() for db in dbs], "job", arity=arity, jobs=2
        )
        assert merged.canonical_bytes() == expected
        assert merged.meta == {}
        assert not report.partial

    @pytest.mark.parametrize("n,arity", [(2, 2), (7, 2), (9, 4)])
    def test_stats_match_modelled_schedule(self, n, arity):
        dbs = [_synthetic_db(i) for i in range(n)]
        _, model = reduction_tree_merge(dbs, "job", arity=arity)
        _, real, _ = parallel_reduction_merge(
            [db.to_bytes() for db in dbs], "job", arity=arity, jobs=2
        )
        assert real.per_round_visits == model.per_round_visits
        assert real.critical_path_visits == model.critical_path_visits
        assert real.node_visits == model.node_visits
        assert real.rounds == model.rounds
        assert real.profiles_in == model.profiles_in
        assert real.pairwise_merges == model.pairwise_merges

    def test_corrupt_blob_degrades_to_reported_partial(self):
        blobs = self._blobs(4)
        blobs[2] = b"RPDB" + b"\x00" * 8  # bad version/garbage
        merged, _, report = parallel_reduction_merge(blobs, "job", jobs=2)
        assert report.partial
        assert [label for label, _ in report.dropped] == ["input[2]"]
        assert merged.meta["partial"] == "true"
        assert merged.meta["dropped"] == "input[2]"
        survivors = [_synthetic_db(i) for i in (0, 1, 3)]
        expected = merge_profiles(survivors, "job")
        merged.meta.clear()
        assert merged.canonical_bytes() == expected.canonical_bytes()

    def test_all_corrupt_raises(self):
        with pytest.raises(ProfileError, match="nothing to merge"):
            parallel_reduction_merge([b"junk", b"trash"], jobs=1)
        with pytest.raises(ProfileError):
            parallel_reduction_merge([])

    def test_merge_rpdb_files_skips_unreadable(self, tmp_path):
        paths = []
        for i in range(3):
            path = tmp_path / f"{i}.rpdb"
            path.write_bytes(_synthetic_db(i).to_bytes())
            paths.append(path)
        paths.append(tmp_path / "missing.rpdb")
        merged, _, report = merge_rpdb_files(paths, "job", jobs=2)
        assert report.partial
        assert merged.meta["dropped_count"] == "1"
        assert "missing.rpdb" in merged.meta["dropped"]

    @needs_fork
    def test_end_to_end_driver_then_merge(self, tmp_path):
        register_app("tiny", _tiny_rank)
        report = profile_ranks("tiny", 6, tmp_path, jobs=2, timeout=60)
        assert report.ok
        merged, stats, mreport = merge_rpdb_files(report.paths, "job", jobs=2)
        dbs = [ProfileDB.from_bytes(p.read_bytes()) for p in report.paths]
        assert merged.canonical_bytes() == merge_profiles(dbs, "job").canonical_bytes()
        assert stats.profiles_in == 12  # 6 ranks x 2 threads
        assert not mreport.partial


@needs_fork
class TestHpcviewCLI:
    def test_run_then_merge_quickstart(self, tmp_path, capsys):
        from repro.tools.hpcview import main

        register_app("tiny", _tiny_rank)
        out = tmp_path / "meas"
        code = main([
            "run", "--app", "tiny", "--ranks", "3", "--jobs", "2",
            "--out", str(out),
        ])
        assert code == 0
        ranks = sorted((out / "tiny").glob("*.rpdb"))
        assert len(ranks) == 3

        job = tmp_path / "job.rpdb"
        code = main([
            "merge", *map(str, ranks), "-o", str(job), "--jobs", "2",
        ])
        assert code == 0
        merged = ProfileDB.from_bytes(job.read_bytes())
        assert merged.process_name == "job"
        captured = capsys.readouterr().out
        assert "3/3 ranks" in captured and "— ok" in captured

    def test_run_reports_failure_exit_code(self, tmp_path, capsys):
        from repro.tools.hpcview import main

        def broken(rank, n_ranks, variant="original", preset="smoke"):
            raise RuntimeError("nope")

        register_app("cli-broken", broken)
        code = main([
            "run", "--app", "cli-broken", "--ranks", "1", "--jobs", "1",
            "--retries", "0", "--out", str(tmp_path),
        ])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out
