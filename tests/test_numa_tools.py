"""numactl / libnuma stand-ins: policy installation and placement effects."""

from __future__ import annotations

import pytest

from repro.machine.policies import Bind, FirstTouch, Interleave
from repro.numa.libnuma import (
    numa_alloc_interleaved,
    numa_alloc_onnode,
    numa_bind_range,
    numa_interleave_range,
)
from repro.numa.numactl import numactl_default, numactl_interleave_all, numactl_membind
from tests.conftest import MiniProgram


@pytest.fixture
def mini4():
    from repro import tiny_machine

    return MiniProgram(machine=tiny_machine(sockets=4, cores_per_socket=1))


class TestNumactl:
    def test_interleave_all_spreads_every_allocation(self, mini4):
        numactl_interleave_all(mini4.process)
        ctx = mini4.master_ctx()
        addr = ctx.calloc(4096 * 8, line=20)
        homes = {
            mini4.process.aspace.page_home_if_touched(addr + off)
            for off in range(0, 4096 * 8, 4096)
        }
        assert homes == {0, 1, 2, 3}

    def test_membind_pins_everything(self, mini4):
        numactl_membind(mini4.process, node=2)
        ctx = mini4.master_ctx()
        addr = ctx.calloc(4096 * 4, line=20)
        homes = {
            mini4.process.aspace.page_home_if_touched(addr + off)
            for off in range(0, 4096 * 4, 4096)
        }
        assert homes == {2}

    def test_default_restores_first_touch(self, mini4):
        numactl_interleave_all(mini4.process)
        numactl_default(mini4.process)
        assert isinstance(mini4.process.aspace.default_policy, FirstTouch)

    def test_policy_objects_installed(self, mini4):
        numactl_interleave_all(mini4.process)
        assert isinstance(mini4.process.aspace.default_policy, Interleave)
        numactl_membind(mini4.process, 1)
        assert isinstance(mini4.process.aspace.default_policy, Bind)


class TestLibnuma:
    def test_alloc_interleaved_spreads_pages(self, mini4):
        ctx = mini4.master_ctx()
        arr = numa_alloc_interleaved(ctx, "v", (4096,), line=20, elem=8, kind="calloc")
        homes = {
            mini4.process.aspace.page_home_if_touched(arr.base + off)
            for off in range(0, arr.nbytes, 4096)
        }
        assert homes == {0, 1, 2, 3}

    def test_alloc_interleaved_leaves_other_allocations_alone(self, mini4):
        ctx = mini4.master_ctx()
        numa_alloc_interleaved(ctx, "v", (4096,), line=20, elem=8, kind="calloc")
        other = ctx.calloc(4096 * 4, line=21)
        homes = {
            mini4.process.aspace.page_home_if_touched(other + off)
            for off in range(0, 4096 * 4, 4096)
        }
        assert homes == {mini4.process.master.numa_node}  # still first-touch

    def test_alloc_interleaved_node_subset(self, mini4):
        ctx = mini4.master_ctx()
        arr = numa_alloc_interleaved(
            ctx, "v", (4096,), line=20, elem=8, kind="calloc", nodes=[1, 3]
        )
        homes = {
            mini4.process.aspace.page_home_if_touched(arr.base + off)
            for off in range(0, arr.nbytes, 4096)
        }
        assert homes == {1, 3}

    def test_alloc_interleaved_visible_to_profiler(self, mini4):
        from repro import DataCentricProfiler

        profiler = DataCentricProfiler(mini4.process).attach()
        ctx = mini4.master_ctx()
        arr = numa_alloc_interleaved(ctx, "named", (4096,), line=20, elem=8)
        var = profiler.heap_map.lookup(arr.base)
        assert var is not None
        assert var.site_label == "named"

    def test_alloc_onnode(self, mini4):
        ctx = mini4.master_ctx()
        arr = numa_alloc_onnode(ctx, "v", (4096,), line=20, node=3, elem=8)
        ctx.touch_range(arr.base, arr.nbytes, line=10)
        homes = {
            mini4.process.aspace.page_home_if_touched(arr.base + off)
            for off in range(0, arr.nbytes, 4096)
        }
        assert homes == {3}

    def test_interleave_range_before_touch(self, mini4):
        ctx = mini4.master_ctx()
        addr = ctx.malloc(4096 * 4, line=20)  # malloc does not touch
        numa_interleave_range(ctx, addr, 4096 * 4)
        ctx.touch_range(addr, 4096 * 4, line=10)
        homes = {
            mini4.process.aspace.page_home_if_touched(addr + off)
            for off in range(0, 4096 * 4, 4096)
        }
        assert len(homes) == 4

    def test_bind_range(self, mini4):
        ctx = mini4.master_ctx()
        addr = ctx.malloc(4096 * 2, line=20)
        numa_bind_range(ctx, addr, 4096 * 2, node=1)
        ctx.touch_range(addr, 4096 * 2, line=10)
        assert mini4.process.aspace.page_home_if_touched(addr) == 1
