"""CLI legs of the continuous-profiling service: ``hpcview serve``/``query``.

The smoke leg runs the whole scenario in-process (concurrent two-app
ingest, compaction, a topdown query, rollup-vs-sequential-merge byte
verification); the query tests speak real TCP to a service running on a
background thread's event loop — the same path a human's ``hpcview
query`` takes against a long-running ``hpcview serve``.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.parallel.registry import run_app_rank
from repro.serve import ProfileService, ProfileStore
from repro.tools.hpcview import main


class TestServeSmoke:
    def test_smoke_verifies_byte_identity(self, tmp_path, capsys):
        rc = main([
            "serve", "--smoke", "--smoke-blobs", "4",
            "--store", str(tmp_path / "store"), "--shards", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("byte-identical PASS") == 2
        assert "folded 2 leaf blob(s)" in out
        assert "backend_bound" in out  # the topdown query rendered


@pytest.fixture()
def live_service(tmp_path):
    """A compacted two-blob service on a daemon thread; yields its port."""
    store = ProfileStore(tmp_path / "store", shards=2)
    for rank in range(2):
        store.ingest(
            "nw", run_app_rank("nw", rank, 2).to_bytes(canonical=True)
        )
    store.compact("nw")

    loop = asyncio.new_event_loop()
    service = ProfileService(store, queue_size=4)
    started = threading.Event()
    bound: dict = {}

    def run() -> None:
        asyncio.set_event_loop(loop)
        bound["host"], bound["port"] = loop.run_until_complete(service.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10)
    try:
        yield bound["port"]
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


class TestQueryCommand:
    def test_topdown_over_tcp(self, live_service, capsys):
        rc = main([
            "query", "nw", "--port", str(live_service), "--view", "topdown",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend_bound" in out and "rollup gen 1" in out

    def test_status_and_json_payload(self, live_service, capsys):
        rc = main([
            "query", "--port", str(live_service), "--view", "status", "--json",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["apps"]["nw"]["leaves"] == 2
        assert payload["apps"]["nw"]["generation"] == 1

    def test_compact_flag_triggers_compaction(self, live_service, capsys):
        rc = main(["query", "nw", "--port", str(live_service), "--compact"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "nothing to compact" in out  # already fully compacted

    def test_metricsz_shows_serve_series(self, live_service, capsys):
        main(["query", "nw", "--port", str(live_service), "--view", "topdown"])
        capsys.readouterr()
        rc = main([
            "query", "--port", str(live_service), "--view", "metricsz",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro_serve_request_seconds" in out
        assert "repro_serve_query_latency_seconds" in out

    def test_query_failure_exits_one_with_stderr(self, live_service, capsys):
        rc = main([
            "query", "ghost-app", "--port", str(live_service),
            "--view", "topdown",
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "query failed" in captured.err
        assert "no compacted rollup" in captured.err

    def test_unreachable_service_exits_one(self, capsys):
        rc = main(["query", "nw", "--port", "1", "--view", "status"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "cannot reach" in captured.err
