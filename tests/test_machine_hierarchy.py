"""MemoryHierarchy: level resolution, latency ordering, NUMA, prefetch."""

from __future__ import annotations

import pytest

from repro.machine.hierarchy import (
    LVL_L1,
    LVL_L2,
    LVL_L3,
    LVL_LMEM,
    LVL_RMEM,
    MemoryHierarchy,
)
from repro.machine.latency import LatencyModel
from repro.machine.presets import tiny_machine
from repro.errors import ConfigError


@pytest.fixture
def hier():
    return tiny_machine(prefetch=False).hierarchy


class TestLevels:
    def test_cold_access_hits_dram(self, hier):
        lat, lvl, tlb = hier.access(0, 0x10000, home_node=0)
        assert lvl == LVL_LMEM
        assert tlb  # cold TLB
        assert lat >= hier.latency.local_dram

    def test_repeat_access_hits_l1(self, hier):
        hier.access(0, 0x10000, 0)
        lat, lvl, tlb = hier.access(0, 0x10000, 0)
        assert lvl == LVL_L1
        assert not tlb
        assert lat == hier.latency.l1

    def test_remote_node_classified_rmem(self, hier):
        remote = hier.topology.n_numa_nodes - 1
        _, lvl, _ = hier.access(0, 0x20000, home_node=remote)
        assert lvl == LVL_RMEM

    def test_remote_latency_exceeds_local(self, hier):
        lat_local, _, _ = hier.access(0, 0x30000, home_node=0)
        remote = hier.topology.n_numa_nodes - 1
        lat_remote, _, _ = hier.access(0, 0x40000, home_node=remote)
        assert lat_remote > lat_local

    def test_latency_ordering_l1_l2_l3_dram(self):
        m = tiny_machine(prefetch=False)
        h = m.hierarchy
        lat = h.latency
        assert lat.l1 < lat.l2 < lat.l3 < lat.local_dram

    def test_l2_hit_after_l1_eviction(self, hier):
        # Fill L1 set beyond associativity with same-set lines; earlier
        # lines remain in the larger L2.
        l1 = hier.l1[0]
        line_bytes = 1 << hier.line_bits
        same_set_stride = l1.n_sets * line_bytes
        addrs = [0x100000 + i * same_set_stride for i in range(l1.assoc + 1)]
        for a in addrs:
            hier.access(0, a, 0)
        lat, lvl, _ = hier.access(0, addrs[0], 0)
        assert lvl == LVL_L2

    def test_l3_shared_across_cores_of_socket(self, hier):
        topo = hier.topology
        # cores 0 and 1 are on socket 0 in the tiny machine
        assert topo.socket_of(0) == topo.socket_of(1)
        hier.access(0, 0x50000, 0)  # core 0 fills L3 of socket 0
        lat, lvl, _ = hier.access(1, 0x50000, 0)
        assert lvl == LVL_L3

    def test_different_socket_no_l3_sharing(self, hier):
        topo = hier.topology
        other = next(
            t for t in range(topo.n_threads) if topo.socket_of(t) != topo.socket_of(0)
        )
        hier.access(0, 0x60000, 0)
        _, lvl, _ = hier.access(other, 0x60000, 0)
        assert lvl in (LVL_LMEM, LVL_RMEM)


class TestCounters:
    def test_level_counts_sum_to_accesses(self, hier):
        for i in range(100):
            hier.access(0, 0x1000 * i, 0)
        for i in range(100):
            hier.access(0, 0x1000 * i, 0, is_store=True)
        assert sum(hier.level_counts) == 200
        assert hier.load_count == 100
        assert hier.store_count == 100

    def test_memmgr_sees_dram_traffic(self, hier):
        hier.access(0, 0x99000, home_node=1)
        assert hier.memmgr.dram_accesses[1] == 1
        my_node = hier.topology.numa_of(0)
        assert hier.memmgr.remote_dram_accesses[1] == (1 if my_node != 1 else 0)

    def test_flush_all(self, hier):
        hier.access(0, 0x1000, 0)
        hier.flush_all()
        _, lvl, tlb = hier.access(0, 0x1000, 0)
        assert lvl in (LVL_LMEM, LVL_RMEM)
        assert tlb


class TestFlushIndependence:
    """flush_all must erase *all* phase-coupling state (incl. _stream_rr)."""

    @staticmethod
    def _run_phase(h):
        line = 1 << h.line_bits
        # Six interleaved miss streams churn the 4 stream slots and leave
        # the replacement cursor mid-rotation.
        for i in range(40):
            for s in range(6):
                h.access(0, (0x100000 * (s + 1)) + i * line, 0)
        return h.prefetch_hits

    def test_two_identical_phases_identical_prefetch_hits(self):
        h = tiny_machine(prefetch=True).hierarchy
        h.flush_all()
        first = self._run_phase(h)
        h.flush_all()
        second = self._run_phase(h) - first
        assert second == first

    def test_post_flush_state_matches_fresh_machine(self):
        # Regression: _stream_rr survived flush_all, so a flushed machine
        # was distinguishable from a fresh one and phase results depended
        # on pre-flush history.
        dirty = tiny_machine(prefetch=True).hierarchy
        line = 1 << dirty.line_bits
        for i in range(7):  # 7 misses: cursor ends mid-rotation
            dirty.access(0, 0x900000 + i * 3 * line, 0)
        dirty.flush_all()
        fresh = tiny_machine(prefetch=True).hierarchy
        assert dirty._streams == fresh._streams
        assert dirty._stream_rr == fresh._stream_rr
        base_dirty = dirty.prefetch_hits
        self._run_phase(dirty)
        self._run_phase(fresh)
        assert dirty.prefetch_hits - base_dirty == fresh.prefetch_hits
        assert dirty._streams == fresh._streams
        assert dirty._stream_rr == fresh._stream_rr


class TestPrefetch:
    def test_sequential_stream_gets_prefetched(self):
        h = tiny_machine(prefetch=True).hierarchy
        line = 1 << h.line_bits
        # Stream far beyond cache capacity; after the stream locks on,
        # misses are served at near-L3 latency.
        for i in range(64):
            h.access(0, 0x200000 + i * line, 0)
        assert h.prefetch_hits > 40

    def test_strided_stream_defeats_prefetcher(self):
        h = tiny_machine(prefetch=True).hierarchy
        line = 1 << h.line_bits
        for i in range(64):
            h.access(0, 0x200000 + i * 7 * line, 0)
        assert h.prefetch_hits == 0

    def test_prefetched_latency_below_dram(self):
        on = tiny_machine(prefetch=True).hierarchy
        off = tiny_machine(prefetch=False).hierarchy
        line = 1 << on.line_bits
        lat_on = sum(on.access(0, 0x200000 + i * line, 0)[0] for i in range(256))
        lat_off = sum(off.access(0, 0x200000 + i * line, 0)[0] for i in range(256))
        assert lat_on < lat_off

    def test_prefetch_still_counts_dram_traffic(self):
        h = tiny_machine(prefetch=True).hierarchy
        line = 1 << h.line_bits
        for i in range(64):
            h.access(0, 0x200000 + i * line, 0)
        # Prefetch hides latency, not bandwidth: traffic reaches the node.
        assert h.memmgr.dram_accesses[0] >= 60


class TestStoreExtra:
    """Pin the write-allocate policy: every store that misses L1 pays
    ``store_extra``, whichever level services it; L1 store hits and all
    loads never do (see the hierarchy module docstring)."""

    EXTRA = 25

    def _hier(self):
        from repro.machine.topology import Topology

        topo = Topology(sockets=1, cores_per_socket=2, smt=1, numa_per_socket=1)
        lat = LatencyModel(store_extra=self.EXTRA)
        return MemoryHierarchy(topo, lat, l1_sets=4, l1_assoc=2, prefetch=False)

    def test_dram_store_pays_extra(self):
        h = self._hier()
        lat, lvl, _ = h.access(0, 0x10000, 0, is_store=True)
        assert lvl == LVL_LMEM
        assert lat == h.latency.tlb_walk + h.latency.local_dram + self.EXTRA

    def test_l1_store_hit_pays_nothing_extra(self):
        h = self._hier()
        h.access(0, 0x10000, 0)
        lat, lvl, _ = h.access(0, 0x10000, 0, is_store=True)
        assert lvl == LVL_L1
        assert lat == h.latency.l1

    def test_l2_store_hit_pays_extra(self):
        h = self._hier()
        l1 = h.l1[0]
        line_bytes = 1 << h.line_bits
        conflict_stride = l1.n_sets * line_bytes
        h.access(0, 0x10000, 0)  # target line into L1+L2+L3
        for i in range(1, l1.assoc + 1):  # evict it from L1 only
            h.access(0, 0x10000 + i * conflict_stride, 0)
        lat, lvl, tlbm = h.access(0, 0x10000, 0, is_store=True)
        assert lvl == LVL_L2
        assert lat == (h.latency.tlb_walk if tlbm else 0) + h.latency.l2 + self.EXTRA

    def test_l3_store_hit_pays_extra(self):
        h = self._hier()
        h.access(0, 0x10000, 0)  # core 0 fills socket-shared L3
        h.access(1, 0x20040, 0)  # warm core 1's TLB on another page
        lat, lvl, tlbm = h.access(1, 0x10000, 0, is_store=True)
        assert lvl == LVL_L3
        assert lat == (h.latency.tlb_walk if tlbm else 0) + h.latency.l3 + self.EXTRA

    def test_loads_never_pay_extra(self):
        h = self._hier()
        lat, lvl, _ = h.access(0, 0x30000, 0, is_store=False)
        assert lvl == LVL_LMEM
        assert lat == h.latency.tlb_walk + h.latency.local_dram


class TestDescribe:
    def test_describe_expands_tuple(self, hier):
        res = hier.access(0, 0xA0000, home_node=1)
        rich = hier.describe(0, res, home_node=1)
        assert rich.latency == res[0]
        assert rich.level == res[1]
        assert rich.home_node == 1
        assert rich.remote == (res[1] == LVL_RMEM)
        assert rich.level_name in ("L1", "L2", "L3", "LMEM", "RMEM")

    def test_rejects_page_smaller_than_line(self):
        m = tiny_machine()
        with pytest.raises(ConfigError):
            MemoryHierarchy(m.topology, LatencyModel(), line_bits=12, page_bits=12)
