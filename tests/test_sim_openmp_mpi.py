"""OpenMP parallel regions and MPI jobs."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.machine.presets import tiny_machine
from repro.sim.mpi import MPIJob
from repro.sim.openmp import declare_outlined, omp_chunk, omp_chunks, outlined_name
from repro.sim.process import SimProcess
from repro.sim.runtime import Ctx
from tests.conftest import MiniProgram


class TestWorksharing:
    def test_chunks_tile_iteration_space(self):
        for n, t in [(100, 7), (5, 8), (64, 4), (1, 1)]:
            chunks = omp_chunks(n, t)
            flat = [i for c in chunks for i in c]
            assert flat == list(range(n))

    def test_balanced_within_one(self):
        chunks = omp_chunks(100, 7)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_threads_than_iterations(self):
        chunks = omp_chunks(3, 8)
        assert sum(len(c) for c in chunks) == 3
        assert all(len(c) <= 1 for c in chunks)

    def test_bad_tid_rejected(self):
        with pytest.raises(ConfigError):
            omp_chunk(10, 4, 4)
        with pytest.raises(ConfigError):
            omp_chunk(10, 0, 0)

    def test_outlined_name_convention(self):
        assert outlined_name("runTest", 0) == "runTest$$OL$$0"


class TestParallelRegion:
    def _declare_region(self, mini):
        return declare_outlined(mini.exe, mini.main, 30, 10)

    def test_workers_execute_and_pin(self, mini):
        # declare_outlined requires an unloaded module; rebuild program
        prog = MiniProgram()
        outl = prog.exe  # module loaded in conftest; declare on a fresh lib
        from repro.sim.loader import LoadModule

        lib = LoadModule("libregion.so")
        region_fn = lib.add_function(outlined_name("main"), prog.source, 30, 10)
        prog.process.load_module(lib)
        ctx = prog.master_ctx()
        executed = []

        def worker(wctx: Ctx, tid: int):
            executed.append((tid, wctx.thread.hw_tid))
            wctx.compute(10)
            yield

        ctx.parallel(region_fn, worker, n_threads=4, line=30)
        assert sorted(t for t, _ in executed) == [0, 1, 2, 3]
        hw = [h for _, h in sorted(executed)]
        assert hw == [0, 1, 2, 3]  # pinned to consecutive HW threads

    def test_region_advances_master_clock_by_max_worker(self, mini):
        from repro.sim.loader import LoadModule

        lib = LoadModule("libregion.so")
        region_fn = lib.add_function(outlined_name("main"), mini.source, 30, 10)
        mini.process.load_module(lib)
        ctx = mini.master_ctx()
        before = ctx.thread.clock

        def worker(wctx, tid):
            wctx.compute(1000 if tid == 0 else 10)
            yield

        ctx.parallel(region_fn, worker, n_threads=2, line=30)
        delta = ctx.thread.clock - before
        assert delta >= 1000
        assert delta < 1500  # max, not sum

    def test_worker_stack_rooted_at_outlined_fn(self, mini):
        from repro.sim.loader import LoadModule

        lib = LoadModule("libregion.so")
        region_fn = lib.add_function(outlined_name("main"), mini.source, 30, 10)
        mini.process.load_module(lib)
        ctx = mini.master_ctx()
        roots = []

        def worker(wctx, tid):
            roots.append(wctx.thread.frames[0].function.name)
            yield

        ctx.parallel(region_fn, worker, n_threads=2, line=30)
        assert roots == [outlined_name("main")] * 2

    def test_workers_persist_across_regions(self, mini):
        from repro.sim.loader import LoadModule

        lib = LoadModule("libregion.so")
        region_fn = lib.add_function(outlined_name("main"), mini.source, 30, 10)
        mini.process.load_module(lib)
        ctx = mini.master_ctx()
        names = []

        def worker(wctx, tid):
            names.append(wctx.thread.name)
            yield

        ctx.parallel(region_fn, worker, n_threads=2, line=30)
        ctx.parallel(region_fn, worker, n_threads=2, line=30)
        assert names[0] == names[2]  # same pool thread reused

    def test_region_needs_at_least_one_thread(self, mini):
        from repro.sim.loader import LoadModule

        lib = LoadModule("libregion.so")
        region_fn = lib.add_function(outlined_name("main"), mini.source, 30, 10)
        mini.process.load_module(lib)
        ctx = mini.master_ctx()
        with pytest.raises(ConfigError):
            ctx.parallel(region_fn, lambda c, t: iter(()), n_threads=0, line=30)

    def test_too_many_threads_for_machine(self, mini):
        with pytest.raises(ConfigError):
            mini.process.omp_thread(mini.machine.n_threads)


class TestMPIJob:
    @staticmethod
    def _rank_main(process: SimProcess, rank: int, n_ranks: int) -> None:
        prog_machine = process.machine
        from repro.sim.loader import LoadModule
        from repro.sim.source import SourceFile

        src = SourceFile("rank.c")
        exe = LoadModule("rank.exe", is_executable=True)
        main_fn = exe.add_function("main", src, 1, 10)
        process.load_module(exe)
        ctx = Ctx(process, process.master)
        ctx.enter(main_fn)

        def body():
            with process.phase("work"):
                ctx.compute(100 * (rank + 1))
            yield

        process.run_serial(body())

    def test_each_rank_gets_own_address_space(self):
        job = MPIJob(tiny_machine, n_ranks=3, ranks_per_node=1)
        result = job.run(self._rank_main)
        bases = {r.process.aspace.base for r in result.ranks}
        assert len(bases) == 3

    def test_ranks_per_node_share_machine(self):
        job = MPIJob(tiny_machine, n_ranks=4, ranks_per_node=2)
        result = job.run(self._rank_main)
        assert len(result.machines) == 2
        assert result.ranks[0].process.machine is result.ranks[1].process.machine
        assert result.ranks[0].process.machine is not result.ranks[2].process.machine

    def test_pinning_within_node(self):
        job = MPIJob(tiny_machine, n_ranks=2, ranks_per_node=2, threads_per_rank=1)
        result = job.run(self._rank_main)
        assert result.ranks[0].process.pin_base == 0
        assert result.ranks[1].process.pin_base == 1

    def test_job_elapsed_is_max_rank(self):
        job = MPIJob(tiny_machine, n_ranks=3)
        result = job.run(self._rank_main)
        assert result.elapsed_cycles == max(r.elapsed_cycles for r in result.ranks)
        assert result.elapsed_cycles >= 300

    def test_phase_cycles_max_across_ranks(self):
        job = MPIJob(tiny_machine, n_ranks=2)
        result = job.run(self._rank_main)
        assert result.phase_cycles()["work"] >= 200

    def test_attach_collects_attachments(self):
        job = MPIJob(tiny_machine, n_ranks=2)
        result = job.run(self._rank_main, attach=lambda p: f"profiler-{p.pid}")
        assert result.attachments() == ["profiler-0", "profiler-1"]

    def test_overcommitted_pinning_rejected(self):
        job = MPIJob(lambda: tiny_machine(), n_ranks=64, ranks_per_node=64)
        with pytest.raises(ConfigError):
            job.run(self._rank_main)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            MPIJob(tiny_machine, n_ranks=0)

    def test_elapsed_seconds(self):
        job = MPIJob(tiny_machine, n_ranks=1)
        result = job.run(self._rank_main)
        assert result.elapsed_seconds() > 0
